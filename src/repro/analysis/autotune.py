"""Automatic application of the Section 5.2 remedies.

:func:`autotune` closes the loop the paper performs by hand: diagnose a
trace's speedup limiters (:mod:`~repro.analysis.diagnostics`), apply
the recommended trace-level transformation for each finding —
unsharing for bottleneck generators, copy-and-constraint for hot
buckets — and report the before/after speedups::

    result = autotune(trace, n_procs=16)
    print(result.summary())
    simulate(result.trace, ...)   # the transformed trace

Small cycles and modify storms have no trace-level transformation (the
paper's remedies there are scheduling policy and source restructuring);
they are reported but left alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from ..mpc.costmodel import DEFAULT_COSTS, ZERO_OVERHEADS, CostModel, \
    OverheadModel
from ..mpc.metrics import speedup
from ..mpc.simulator import simulate, simulate_base
from ..trace.events import SectionTrace
from ..trace.transform import copy_and_constraint_trace, unshare_trace
from ..trace.validate import validate_trace
from .diagnostics import Finding, diagnose

#: Default split factor for copy-and-constraint on hot buckets.
DEFAULT_SPLIT = 4


@dataclass
class AutotuneResult:
    """Outcome of one autotune pass."""

    trace: SectionTrace
    findings: List[Finding]
    applied: List[str]
    skipped: List[str]
    baseline_speedup: float
    tuned_speedup: float
    n_procs: int

    @property
    def improvement(self) -> float:
        if self.baseline_speedup <= 0:
            return 1.0
        return self.tuned_speedup / self.baseline_speedup

    def summary(self) -> str:
        lines = [f"{len(self.findings)} finding(s); "
                 f"{len(self.applied)} transformation(s) applied"]
        lines += [f"  applied: {a}" for a in self.applied]
        lines += [f"  skipped: {s}" for s in self.skipped]
        lines.append(
            f"  speedup @{self.n_procs} procs: "
            f"{self.baseline_speedup:.2f}x -> "
            f"{self.tuned_speedup:.2f}x "
            f"({self.improvement:.2f}x improvement)")
        return "\n".join(lines)


def autotune(trace: SectionTrace, n_procs: int = 16,
             costs: CostModel = DEFAULT_COSTS,
             overheads: OverheadModel = ZERO_OVERHEADS,
             split: int = DEFAULT_SPLIT,
             max_rounds: int = 3) -> AutotuneResult:
    """Diagnose *trace* and apply the paper's remedies until dry.

    Each round re-diagnoses (a transformation can expose the next
    limiter) and transforms at most once per node; rounds stop when no
    applicable finding remains or *max_rounds* is hit.  The tuned trace
    is validated and never slower than the input on the measured
    configuration is **not** guaranteed — the result reports both
    speedups so callers can decide (the paper's own Fig 5-6 gain is
    modest for honest reasons).
    """
    base = simulate_base(trace, costs=costs)
    baseline = speedup(base, simulate(trace, n_procs=n_procs,
                                      costs=costs, overheads=overheads))

    current = trace
    applied: List[str] = []
    skipped: List[str] = []
    seen_skips: Set[str] = set()
    transformed_nodes: Set[int] = set()
    initial_findings: List[Finding] = diagnose(trace)

    for round_index in range(max_rounds):
        findings = initial_findings if round_index == 0 \
            else diagnose(current)
        progressed = False
        for finding in findings:
            if finding.kind == "bottleneck-generator" \
                    and finding.node_id not in transformed_nodes:
                current = unshare_trace(current,
                                        node_ids=[finding.node_id])
                validate_trace(current)
                transformed_nodes.add(finding.node_id)
                applied.append(f"unshare node {finding.node_id} "
                               f"(cycle {finding.cycle_index})")
                progressed = True
            elif finding.kind == "cross-product" \
                    and finding.node_id not in transformed_nodes:
                current = copy_and_constraint_trace(
                    current, finding.node_id, split)
                validate_trace(current)
                transformed_nodes.add(finding.node_id)
                applied.append(
                    f"copy-and-constraint node {finding.node_id} "
                    f"x{split} (cycle {finding.cycle_index})")
                progressed = True
            elif finding.kind in ("small-cycle", "multiple-modify"):
                note = f"{finding.kind} (cycle {finding.cycle_index})"
                if note not in seen_skips:
                    seen_skips.add(note)
                    skipped.append(note + ": no trace-level remedy")
        if not progressed:
            break

    tuned = speedup(base, simulate(current, n_procs=n_procs,
                                   costs=costs, overheads=overheads))
    return AutotuneResult(trace=current, findings=initial_findings,
                          applied=applied, skipped=skipped,
                          baseline_speedup=baseline,
                          tuned_speedup=tuned, n_procs=n_procs)

"""Load-distribution metrics over per-processor activation counts.

Used to quantify the Figure 5-5 phenomena: unevenness within a cycle,
the busy/idle alternation between consecutive cycles, and the rough
evenness of the aggregate.
"""

from __future__ import annotations

import math
from typing import List, Sequence


def mean(loads: Sequence[float]) -> float:
    """Arithmetic mean (0 for empty input)."""
    return sum(loads) / len(loads) if loads else 0.0


def variance(loads: Sequence[float]) -> float:
    """Population variance of the loads."""
    if not loads:
        return 0.0
    mu = mean(loads)
    return sum((x - mu) ** 2 for x in loads) / len(loads)


def coefficient_of_variation(loads: Sequence[float]) -> float:
    """Std-dev over mean: scale-free unevenness (0 = perfectly even)."""
    mu = mean(loads)
    if mu == 0:
        return 0.0
    return math.sqrt(variance(loads)) / mu


def max_over_mean(loads: Sequence[float]) -> float:
    """Busiest processor relative to average: the makespan inflation a
    static distribution causes (1.0 = perfectly balanced)."""
    mu = mean(loads)
    if mu == 0:
        return 1.0
    return max(loads) / mu


def alternation_score(cycle_a: Sequence[float],
                      cycle_b: Sequence[float]) -> float:
    """How anti-correlated two cycles' per-processor loads are.

    Returns the negated Pearson correlation, so *positive* values mean
    the paper's "processors busy in one cycle are idle in the next".
    Returns 0.0 when either cycle is constant.
    """
    if len(cycle_a) != len(cycle_b):
        raise ValueError("cycles must cover the same processors")
    va, vb = variance(cycle_a), variance(cycle_b)
    if va == 0 or vb == 0:
        return 0.0
    mu_a, mu_b = mean(cycle_a), mean(cycle_b)
    cov = sum((a - mu_a) * (b - mu_b)
              for a, b in zip(cycle_a, cycle_b)) / len(cycle_a)
    return -cov / math.sqrt(va * vb)


def aggregate(cycles: Sequence[Sequence[float]]) -> List[float]:
    """Per-processor loads summed over cycles (Fig 5-5's 'aggregated
    distribution')."""
    if not cycles:
        return []
    n = len(cycles[0])
    if any(len(c) != n for c in cycles):
        raise ValueError("cycles must cover the same processors")
    return [sum(c[p] for c in cycles) for p in range(n)]

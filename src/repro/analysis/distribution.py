"""The probabilistic model of active-bucket distribution (Section 5.2.2).

The paper builds "a simple probabilistic model" after random bucket
distribution fails to beat round robin: assume a fraction of the buckets
are *active*, each active bucket receives a single activation, and
buckets land on processors uniformly at random.  Three conclusions are
drawn:

1. Both a completely even and a totally uneven distribution are very
   unlikely (< 1%); the typical outcome is in between.
2. Increasing the number of active buckets (same processor count) makes
   even distributions more likely — why the numerous right buckets
   spread well.
3. Increasing the number of processors makes uneven distributions more
   likely — part of why speedups stop scaling.

This module provides the exact probabilities where tractable and a
seeded Monte Carlo estimator for the rest (expected maximum load, which
determines the cycle makespan under the model).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass



def prob_perfectly_even(m: int, p: int) -> float:
    """P(every processor receives exactly m/p of the m active buckets).

    Zero when p does not divide m.  Computed in log space: the
    multinomial count m! / ((m/p)!)^p over p^m equally likely
    assignments.
    """
    _check(m, p)
    if m % p != 0:
        return 0.0
    q = m // p
    log_prob = (math.lgamma(m + 1) - p * math.lgamma(q + 1)
                - m * math.log(p))
    return math.exp(log_prob)


def prob_all_on_one(m: int, p: int) -> float:
    """P(all m active buckets land on a single processor): p^(1-m)."""
    _check(m, p)
    if p == 1:
        return 1.0
    return float(p) ** (1 - m)


def expected_max_load(m: int, p: int, trials: int = 2000,
                      seed: int = 0) -> float:
    """E[max processor load] when m buckets fall uniformly on p procs.

    Exact by enumeration for tiny (m, p); Monte Carlo with a seeded RNG
    otherwise.  The max load is the model's cycle makespan (all active
    buckets carry one activation each), so
    ``expected_max_load / (m / p)`` is the slowdown versus a perfectly
    even distribution.
    """
    _check(m, p)
    if p == 1:
        return float(m)
    if p ** m <= 200_000:
        return _exact_expected_max(m, p)
    rng = random.Random(seed)
    total = 0
    for _ in range(trials):
        loads = [0] * p
        for _ in range(m):
            loads[rng.randrange(p)] += 1
        total += max(loads)
    return total / trials


def _exact_expected_max(m: int, p: int) -> float:
    """Exact E[max] via P(max <= k) from multinomial enumeration.

    Uses the standard recursion over processors with bounded loads.
    """
    def prob_max_at_most(k: int) -> float:
        # Count assignments where every processor load <= k, via DP on
        # (processors used, buckets placed) with multinomial weights.
        # dp[j] = number of weighted ways to fill some processors with j
        # buckets, divided by j! (exponential generating function).
        dp = [0.0] * (m + 1)
        dp[0] = 1.0
        for _ in range(p):
            new = [0.0] * (m + 1)
            for placed in range(m + 1):
                if dp[placed] == 0.0:
                    continue
                for load in range(0, min(k, m - placed) + 1):
                    new[placed + load] += dp[placed] / math.factorial(load)
            dp = new
        return dp[m] * math.factorial(m) / (p ** m)

    expected = 0.0
    prev = 0.0
    for k in range(1, m + 1):
        cdf = prob_max_at_most(k)
        expected += k * (cdf - prev)
        prev = cdf
        if cdf >= 1.0 - 1e-12:
            break
    return expected


def imbalance_factor(m: int, p: int, trials: int = 2000,
                     seed: int = 0) -> float:
    """E[max load] / (m/p): the model's predicted slowdown vs perfect.

    1.0 means linear speedup is possible; larger means the busiest
    processor serializes the cycle.
    """
    return expected_max_load(m, p, trials=trials, seed=seed) / (m / p)


@dataclass(frozen=True)
class BucketModel:
    """The Section 5.2.2 model for a given (active buckets, processors).

    Convenience wrapper bundling the quantities the paper's three
    conclusions are about.
    """

    active_buckets: int
    processors: int

    def p_even(self) -> float:
        return prob_perfectly_even(self.active_buckets, self.processors)

    def p_all_on_one(self) -> float:
        return prob_all_on_one(self.active_buckets, self.processors)

    def e_max_load(self, trials: int = 2000, seed: int = 0) -> float:
        return expected_max_load(self.active_buckets, self.processors,
                                 trials=trials, seed=seed)

    def imbalance(self, trials: int = 2000, seed: int = 0) -> float:
        return imbalance_factor(self.active_buckets, self.processors,
                                trials=trials, seed=seed)


def _check(m: int, p: int) -> None:
    if m < 1:
        raise ValueError("need at least one active bucket")
    if p < 1:
        raise ValueError("need at least one processor")

"""Analysis toolkit: the Section 5.2.2 probabilistic bucket model, load
metrics for the Figure 5-5 phenomena, and ASCII report formatting."""

from .autotune import AutotuneResult, autotune
from .diagnostics import (Finding, diagnose, diagnose_live,
                          diagnose_measured,
                          find_bottleneck_generators, find_cross_products,
                          find_multiple_modify, find_small_cycles)
from .distribution import (BucketModel, expected_max_load, imbalance_factor,
                           prob_all_on_one, prob_perfectly_even)
from .load import (aggregate, alternation_score, coefficient_of_variation,
                   max_over_mean, mean, variance)
from .report import bar_chart, curve_plot, format_table

__all__ = [
    "AutotuneResult", "autotune",
    "Finding", "diagnose", "diagnose_live", "diagnose_measured",
    "find_bottleneck_generators", "find_cross_products",
    "find_multiple_modify", "find_small_cycles",
    "BucketModel", "expected_max_load", "imbalance_factor",
    "prob_all_on_one", "prob_perfectly_even",
    "aggregate", "alternation_score", "coefficient_of_variation",
    "max_over_mean", "mean", "variance",
    "bar_chart", "curve_plot", "format_table",
]

"""ASCII report formatting shared by the benchmark harness and examples.

Every figure/table of the paper is regenerated as text: speedup curves
as aligned columns, the Figure 5-5 token distribution as a horizontal
bar chart, Table rows as fixed-width lines.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width table with right-aligned numeric-ish columns."""
    cells = [[str(h) for h in headers]] + \
            [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def bar_chart(values: Sequence[float], labels: Optional[Sequence[str]]
              = None, width: int = 50, title: str = "") -> str:
    """Horizontal ASCII bar chart (Figure 5-5 style).

    One row per value; bars scaled to *width* characters at the maximum.
    """
    if labels is None:
        labels = [str(i) for i in range(len(values))]
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    peak = max(values) if values else 0
    lines: List[str] = []
    if title:
        lines.append(title)
    label_w = max((len(l) for l in labels), default=0)
    for label, value in zip(labels, values):
        n = int(round(width * value / peak)) if peak > 0 else 0
        lines.append(f"{label.rjust(label_w)} |{'#' * n} {value:g}")
    return "\n".join(lines)


def curve_plot(proc_counts: Sequence[int],
               series: Sequence[Sequence[float]],
               labels: Sequence[str], height: int = 16,
               title: str = "") -> str:
    """Rough ASCII line plot of speedup-vs-processors curves.

    Good enough to eyeball the shapes of Figures 5-1/5-2/5-4/5-6 in a
    terminal; the precise numbers accompany it via format_table.
    """
    if not series or not proc_counts:
        return title
    peak = max(max(s) for s in series)
    rows: List[str] = []
    markers = "ox+*#@"
    grid = [[" "] * len(proc_counts) for _ in range(height)]
    for si, s in enumerate(series):
        for xi, value in enumerate(s):
            yi = height - 1 - int(round((height - 1) * value / peak))
            yi = min(max(yi, 0), height - 1)
            grid[yi][xi] = markers[si % len(markers)]
    lines = [title] if title else []
    for yi, row in enumerate(grid):
        axis_value = peak * (height - 1 - yi) / (height - 1)
        lines.append(f"{axis_value:6.1f} | " + "  ".join(row))
    lines.append(" " * 7 + "+-" + "-" * (3 * len(proc_counts) - 2))
    lines.append(" " * 9 + " ".join(f"{p:>2}" for p in proc_counts))
    legend = "  ".join(f"{markers[i % len(markers)]}={label}"
                       for i, label in enumerate(labels))
    lines.append(" " * 9 + legend)
    return "\n".join(lines)

"""Trace diagnostics: detect the paper's speedup limiters automatically.

Section 5.2 identifies four phenomena by inspecting traces by hand:

* **small cycles** — cycles with ≲100 tokens, which "limit speedups"
  (Section 5.2.1);
* **bottleneck generators** — a few activations generating most of a
  cycle's tokens (Weaver's 3-of-150), fixable by unsharing or dummy
  nodes;
* **cross-products with no hashing** — a node whose equality-test list
  is empty funnels every token into one bucket (Tourney), fixable by
  copy-and-constraint;
* **the multiple-modify effect** — alternating delete/add streams into
  one bucket caused by modify actions.

:func:`diagnose` runs all detectors over a section trace and returns
:class:`Finding` records with the paper's recommended remedy, so the
whole Section 5.2 methodology is executable::

    for finding in diagnose(trace):
        print(finding)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..rete.hashing import BucketKey
from ..trace.events import SectionTrace

#: "Small cycles are those with few (100 or less) tokens in them."
SMALL_CYCLE_TOKENS = 100

#: A generator is a bottleneck when this fraction of a cycle's
#: activations flows from it (3 activations making 120 of 150 ≈ 0.8 of
#: the generated tokens from 2% of the activations).
BOTTLENECK_SHARE = 0.5

#: Minimum activations in one bucket of one cycle to call it a hot
#: (non-discriminating) bucket.
HOT_BUCKET_TOKENS = 50


@dataclass(frozen=True)
class Finding:
    """One detected phenomenon with its paper-recommended remedy."""

    kind: str            # "small-cycle" | "bottleneck-generator" |
    #                      "cross-product" | "multiple-modify"
    cycle_index: int     # -1 for section-wide findings
    node_id: int         # -1 when not tied to a node
    detail: str
    remedy: str

    def __str__(self) -> str:
        where = (f"cycle {self.cycle_index}" if self.cycle_index >= 0
                 else "section")
        node = f", node {self.node_id}" if self.node_id >= 0 else ""
        return f"[{self.kind}] {where}{node}: {self.detail} " \
               f"-> {self.remedy}"


def find_small_cycles(trace: SectionTrace,
                      threshold: int = SMALL_CYCLE_TOKENS
                      ) -> List[Finding]:
    """Cycles with at most *threshold* two-input tokens."""
    findings = []
    for cycle in trace:
        n = len(cycle.two_input_activations())
        if 0 < n <= threshold:
            findings.append(Finding(
                kind="small-cycle", cycle_index=cycle.index, node_id=-1,
                detail=f"{n} tokens",
                remedy="process the affected productions on a single "
                       "processor to avoid communication overheads "
                       "(Section 5.2.1)"))
    return findings


def find_bottleneck_generators(trace: SectionTrace,
                               share: float = BOTTLENECK_SHARE
                               ) -> List[Finding]:
    """Nodes whose few activations generate most of a cycle's tokens."""
    findings = []
    for cycle in trace:
        total_generated = sum(a.n_successors
                              for a in cycle.two_input_activations())
        if total_generated == 0:
            continue
        by_node: Dict[int, Tuple[int, int]] = {}
        for act in cycle.two_input_activations():
            count, generated = by_node.get(act.node_id, (0, 0))
            by_node[act.node_id] = (count + 1,
                                    generated + act.n_successors)
        n_acts = len(cycle.two_input_activations())
        for node_id, (count, generated) in sorted(by_node.items()):
            if generated >= share * total_generated \
                    and count <= max(3, n_acts // 10):
                findings.append(Finding(
                    kind="bottleneck-generator",
                    cycle_index=cycle.index, node_id=node_id,
                    detail=f"{count} activations generate {generated} "
                           f"of {total_generated} tokens",
                    remedy="unshare the node, or insert dummy nodes, "
                           "or apply copy-and-constraint "
                           "(Section 5.2.1)"))
    return findings


def find_cross_products(trace: SectionTrace,
                        threshold: int = HOT_BUCKET_TOKENS
                        ) -> List[Finding]:
    """Buckets absorbing many tokens in one cycle.

    A valueless bucket key means the node tests no variable — the
    hashing scheme cannot discriminate at all (Tourney's case); keys
    with values can still be hot when the data lacks variety.
    """
    findings = []
    for cycle in trace:
        per_bucket: Dict[BucketKey, int] = {}
        for act in cycle.two_input_activations():
            per_bucket[act.key] = per_bucket.get(act.key, 0) + 1
        for key, count in sorted(per_bucket.items(),
                                 key=lambda kv: -kv[1]):
            if count < threshold:
                break
            no_hash = not key.values
            findings.append(Finding(
                kind="cross-product", cycle_index=cycle.index,
                node_id=key.node_id,
                detail=f"{count} tokens in one bucket"
                       + (" (no variable tested: no hashing "
                          "discrimination)" if no_hash else ""),
                remedy="apply copy-and-constraint to split the culprit "
                       "production (Section 5.2.2)"))
    return findings


def find_multiple_modify(trace: SectionTrace,
                         min_pairs: int = 10) -> List[Finding]:
    """Buckets receiving interleaved delete/add streams.

    The signature of the multiple-modify effect: within one cycle, one
    bucket sees many deletes each (re)followed by adds.
    """
    findings = []
    for cycle in trace:
        tags: Dict[BucketKey, List[str]] = {}
        for act in cycle.two_input_activations():
            tags.setdefault(act.key, []).append(act.tag)
        for key, stream in sorted(tags.items()):
            deletes = stream.count("-")
            adds = stream.count("+")
            flips = sum(1 for a, b in zip(stream, stream[1:])
                        if a != b)
            if deletes >= min_pairs and adds >= min_pairs \
                    and flips >= min_pairs:
                findings.append(Finding(
                    kind="multiple-modify", cycle_index=cycle.index,
                    node_id=key.node_id,
                    detail=f"{adds} adds / {deletes} deletes "
                           f"interleaved ({flips} alternations) in one "
                           f"bucket",
                    remedy="a modify storm on wmes matching one "
                           "production; consider restructuring the "
                           "modifies (Section 5.2.2)"))
    return findings


def diagnose(trace: SectionTrace) -> List[Finding]:
    """Run every detector, ordered by cycle then kind."""
    findings = (find_small_cycles(trace)
                + find_bottleneck_generators(trace)
                + find_cross_products(trace)
                + find_multiple_modify(trace))
    return sorted(findings,
                  key=lambda f: (f.cycle_index, f.kind, f.node_id))


#: Minimum share of measured idle time for a category to be reported.
MEASURED_IDLE_SHARE = 0.15

_MEASURED_REMEDIES = {
    "broadcast_floor":
        "cycles too small to amortize the serial broadcast and constant "
        "tests; process the affected productions on a single processor "
        "(Section 5.2.1)",
    "chain_wait":
        "long dependent chains starve the other processors; unshare the "
        "generating nodes or insert dummy nodes (Section 5.2.1)",
    "comm_overhead":
        "per-message handling dominates the waits; reduce message "
        "overheads or coarsen the granularity (Section 5.1)",
    "imbalance":
        "dominant buckets unbalance the load; apply copy-and-constraint "
        "or the idealized greedy distribution (Sections 5.2.2 and 3.3)",
    "protocol":
        "protocol and fault machinery (stalls, timeouts, recoveries) "
        "dominates; tune the retransmit protocol or fix the network",
}


def diagnose_measured(trace: SectionTrace, n_procs: int = 16,
                      overheads=None) -> List[Finding]:
    """Findings from a *measured* idle-time attribution (not heuristics).

    Simulates *trace* on *n_procs* processors with a timeline recorder,
    runs :func:`repro.mpc.attribution.attribute_timeline`, and reports
    every idle category holding at least :data:`MEASURED_IDLE_SHARE` of
    the measured idle time, largest first.  This is the closed loop the
    static detectors above approximate: the simulator *measures* which
    limiter actually dominates.
    """
    from ..mpc import RunConfig, attribute_timeline, simulate_config
    from ..mpc.costmodel import TABLE_5_1
    from ..mpc.timeline import TimelineRecorder
    if overheads is None:
        overheads = next(o for o in TABLE_5_1 if o.total_us == 8)
    recorder = TimelineRecorder()
    simulate_config(trace, RunConfig(n_procs=n_procs,
                                     overheads=overheads,
                                     recorder=recorder))
    section = attribute_timeline(recorder.timeline)
    shares = section.idle_shares()
    idle_by_category = section.idle_by_category()
    findings = []
    for category in sorted(shares, key=lambda c: -shares[c]):
        if shares[category] < MEASURED_IDLE_SHARE:
            continue
        findings.append(Finding(
            kind="measured-idle", cycle_index=-1, node_id=-1,
            detail=f"{shares[category]:.0%} of idle time at {n_procs} "
                   f"procs ({overheads.label()} overheads) is "
                   f"{category} ({idle_by_category[category] / 1000:.2f} "
                   f"ms of {section.idle_us / 1000:.2f} ms)",
            remedy=_MEASURED_REMEDIES[category]))
    return findings


def diagnose_live(timeline) -> List[Finding]:
    """Findings from a live traced run's measured attribution.

    Same closed loop as :func:`diagnose_measured`, but the numbers are
    wall-clock truth from a traced ``actors`` run: *timeline* is the
    :class:`~repro.obs.trace.LiveTimeline` off ``RunResult.live``
    (``repro run --backend actors --trace-live``).  Attribution comes
    from :func:`repro.obs.trace.live_attribution` — the same
    category vocabulary as the simulator's, so the remedies carry
    over verbatim and a sim-vs-live comparison is category-by-category.
    """
    from ..obs.trace import live_attribution
    section = live_attribution(timeline)
    shares = section.idle_shares()
    idle_by_category = section.idle_by_category()
    findings = []
    for category in sorted(shares, key=lambda c: -shares[c]):
        if shares[category] < MEASURED_IDLE_SHARE:
            continue
        findings.append(Finding(
            kind="live-idle", cycle_index=-1, node_id=-1,
            detail=f"{shares[category]:.0%} of measured live idle time "
                   f"on {timeline.n_procs} actors "
                   f"({timeline.transport} transport) is {category} "
                   f"({idle_by_category[category] / 1000:.2f} ms of "
                   f"{section.idle_us / 1000:.2f} ms)",
            remedy=_MEASURED_REMEDIES[category]))
    return findings

"""Instantiations and conflict resolution (the "resolve" in match-resolve-act).

OPS5 defines two strategies:

* **LEX** — refraction, then recency of the time tags of *all* matched
  wmes (compared as descending-sorted sequences), then production
  specificity, then an arbitrary choice.
* **MEA** — like LEX but the time tag of the wme matching the *first* CE
  dominates, which is what gives means-ends-analysis programs their goal
  discipline.

Refraction itself (never fire the same instantiation twice) is enforced
by the interpreter, which remembers fired instantiation keys; this module
only orders candidates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from .ast import Production
from .values import Value
from .wme import WME


@dataclass(frozen=True)
class Instantiation:
    """A production together with the wmes satisfying its positive CEs.

    Parameters
    ----------
    production:
        The satisfied production.
    wmes:
        One wme per *positive* CE, in LHS order.  Negated CEs contribute
        no wme (they are satisfied by absence).
    bindings:
        The variable bindings established by the match; used to evaluate
        the RHS.
    """

    production: Production
    wmes: Tuple[WME, ...]
    bindings: Mapping[str, Value]

    def key(self) -> Tuple[str, Tuple[int, ...]]:
        """Identity for refraction: production name + matched wme ids."""
        return (self.production.name, tuple(w.wme_id for w in self.wmes))

    def timestamps_desc(self) -> Tuple[int, ...]:
        """Matched wme time tags, most recent first (the LEX sort key)."""
        return tuple(sorted((w.timestamp for w in self.wmes), reverse=True))

    def wme_for_ce(self, ce_index: int) -> Optional[WME]:
        """The wme matching 1-based positive-CE index *ce_index*.

        Returns None when the index names a negated CE.
        """
        positive_positions = [i for i, (pos, _) in
                              enumerate(self.production.positive_ces())
                              if pos == ce_index]
        if not positive_positions:
            return None
        return self.wmes[positive_positions[0]]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ids = " ".join(str(w.wme_id) for w in self.wmes)
        return f"[{self.production.name}: {ids}]"


class Strategy(enum.Enum):
    """Conflict-resolution strategy selector."""

    LEX = "lex"
    MEA = "mea"


def _lex_sort_key(inst: Instantiation) -> Tuple:
    """Sort key such that max() picks the LEX winner deterministically.

    Later elements break ties: recency sequence, then (sequence length —
    OPS5 prefers the instantiation with *more* time tags when one
    sequence is a prefix of the other), then specificity, then a stable
    arbitrary order (production name / wme ids, inverted so that max()
    still yields a deterministic result).
    """
    stamps = inst.timestamps_desc()
    return (
        stamps,
        len(stamps),
        inst.production.specificity(),
        # Deterministic final tie-break; negate nothing — names sort fine.
        inst.production.name,
        tuple(-w.wme_id for w in inst.wmes),
    )


def _mea_sort_key(inst: Instantiation) -> Tuple:
    """MEA: recency of the first-CE wme dominates, then LEX ordering."""
    first = inst.wmes[0].timestamp if inst.wmes else -1
    return (first,) + _lex_sort_key(inst)


def _padded_compare_key(stamps: Tuple[int, ...]) -> Tuple[int, ...]:
    return stamps


def select(conflict_set, strategy: Strategy = Strategy.LEX,
           fired: Optional[set] = None) -> Optional[Instantiation]:
    """Pick the winning instantiation, honouring refraction.

    Parameters
    ----------
    conflict_set:
        Iterable of :class:`Instantiation`.
    strategy:
        LEX or MEA.
    fired:
        Set of instantiation keys that already fired; these are skipped.

    Returns
    -------
    The chosen instantiation, or None when every candidate has fired
    (i.e. the program has quiesced).
    """
    fired = fired or set()
    candidates = [inst for inst in conflict_set if inst.key() not in fired]
    if not candidates:
        return None
    key = _lex_sort_key if strategy is Strategy.LEX else _mea_sort_key
    return max(candidates, key=key)

"""Value model for OPS5 working-memory attribute values.

OPS5 values are *atoms*: symbols (represented here as Python ``str``) or
numbers (``int`` / ``float``).  The special symbol ``nil`` denotes an
unset attribute; a wme attribute that was never assigned compares equal
to ``nil``, which lets condition elements test for absence of a value.

This module centralises the small amount of value logic the rest of the
system needs: type checks, ordering semantics for the OPS5 relational
predicates, and canonical formatting.
"""

from __future__ import annotations

from typing import Union

#: The OPS5 "no value" symbol.  Attributes not present on a wme read as NIL.
NIL: str = "nil"

#: An attribute value: a symbol (str) or a number (int | float).
Value = Union[str, int, float]


def is_number(value: Value) -> bool:
    """Return True if *value* is numeric (bool is excluded on purpose)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def is_symbol(value: Value) -> bool:
    """Return True if *value* is a symbolic atom."""
    return isinstance(value, str)


def values_equal(a: Value, b: Value) -> bool:
    """OPS5 equality: numbers compare numerically, symbols literally.

    ``1`` and ``1.0`` are equal; the symbol ``"1"`` and the number ``1``
    are not.  This mirrors OPS5, where the lexer fixes each atom's type.
    """
    if is_number(a) and is_number(b):
        return a == b
    if is_symbol(a) and is_symbol(b):
        return a == b
    return False


def values_ordered(a: Value, b: Value) -> bool:
    """Return True if *a* and *b* can be compared with ``<``/``>`` etc.

    OPS5 only defines the relational predicates on pairs of numbers.
    A relational test against a symbol simply fails to match rather than
    raising, which is the behaviour the predicates in :mod:`.ast` follow.
    """
    return is_number(a) and is_number(b)


def format_value(value: Value) -> str:
    """Render *value* in OPS5 source syntax.

    Symbols containing whitespace or syntax characters are quoted with
    vertical bars, matching the OPS5 ``|quoted symbol|`` escape; a
    literal ``|`` inside a quoted symbol is doubled (``||``), a small
    extension over classic OPS5 (which simply could not express it).
    """
    if is_number(value):
        # Integral floats print without the trailing .0 so that round
        # trips through the parser preserve the value's type.
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)
    needs_quote = (any(c.isspace() or c in "()^{}<>|;"
                       for c in value)
                   or value == "")
    if needs_quote:
        return "|" + value.replace("|", "||") + "|"
    return value


def coerce_atom(text: str) -> Value:
    """Convert source text to an atom: number if it parses, else symbol."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text

"""The OPS5 match-resolve-act (MRA) interpreter.

The interpreter owns the working memory and a pluggable matcher.  Each
cycle it queries the matcher's conflict set, applies conflict resolution
(with refraction), executes the winner's RHS, and feeds the resulting WM
deltas back to the matcher.  This is the execution loop of paper
Section 2.1, and the per-cycle delta stream is what the trace recorder
(:mod:`repro.trace.recorder`) taps to produce simulator input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Sequence, TextIO

from .actions import Delta, execute
from .ast import Production, Program
from .conflict import Instantiation, Strategy, select
from .matcher import Matcher, NaiveMatcher
from .values import Value
from .wme import WME, WorkingMemory


@dataclass
class FiringRecord:
    """One MRA cycle's outcome, for logs, tests and traces."""

    cycle: int
    instantiation: Instantiation
    deltas: List[Delta] = field(default_factory=list)
    output: str = ""

    @property
    def production_name(self) -> str:
        return self.instantiation.production.name


@dataclass
class RunResult:
    """Summary of an interpreter run."""

    firings: List[FiringRecord]
    halted: bool
    quiesced: bool
    cycles: int

    @property
    def output(self) -> str:
        """All ``write`` output in firing order."""
        return "".join(f.output for f in self.firings)


class Interpreter:
    """Drives the MRA loop over a working memory and a matcher.

    Parameters
    ----------
    matcher:
        Any :class:`~repro.ops5.matcher.Matcher`; defaults to the naive
        reference matcher.  Pass a
        :class:`~repro.rete.network.ReteNetwork` for the real engine.
    strategy:
        Conflict-resolution strategy (LEX default, as in OPS5).
    out:
        Stream for ``(write ...)`` output; defaults to stdout suppressed
        (captured in records only).
    """

    def __init__(self, matcher: Optional[Matcher] = None,
                 strategy: Strategy = Strategy.LEX,
                 out: Optional[TextIO] = None) -> None:
        self.wm = WorkingMemory()
        self.matcher: Matcher = matcher if matcher is not None \
            else NaiveMatcher()
        self.strategy = strategy
        self.out = out
        self._fired: set = set()
        self._cycle = 0
        self._halted = False
        #: Hook invoked as ``listener(cycle, deltas)`` after each firing's
        #: deltas are pushed to the matcher; the trace recorder uses this.
        self.delta_listeners: List[Callable[[int, Sequence[Delta]], None]] = []
        #: Hook invoked as ``listener(cycle)`` at the start of each firing,
        #: before any WM change of that cycle reaches the matcher.
        self.cycle_listeners: List[Callable[[int], None]] = []

    # -- loading ----------------------------------------------------------

    def load_program(self, program: Program) -> None:
        """Register all productions and create the startup wmes."""
        for production in program.productions:
            self.matcher.add_production(production)
        for cls, pairs in program.initial_wmes:
            self.add_wme(cls, dict(pairs))

    def add_production(self, production: Production) -> None:
        """Register one production with the matcher."""
        self.matcher.add_production(production)

    def add_wme(self, cls: str, attrs: Mapping[str, Value]) -> WME:
        """Add a wme from outside the MRA loop (setup / tests / REPL)."""
        wme = self.wm.add(cls, attrs)
        self.matcher.add_wme(wme)
        self._notify([("+", wme)])
        return wme

    def remove_wme(self, wme_id: int) -> WME:
        """Remove a wme from outside the MRA loop."""
        wme = self.wm.remove(wme_id)
        self.matcher.remove_wme(wme)
        self._notify([("-", wme)])
        return wme

    # -- execution --------------------------------------------------------

    def conflict_set(self) -> Sequence[Instantiation]:
        """Current conflict set as reported by the matcher."""
        return self.matcher.conflict_set()

    def step(self) -> Optional[FiringRecord]:
        """Run one MRA cycle.  Returns None on quiescence or after halt."""
        if self._halted:
            return None
        winner = select(self.matcher.conflict_set(), self.strategy,
                        self._fired)
        if winner is None:
            return None
        self._cycle += 1
        for listener in self.cycle_listeners:
            listener(self._cycle)
        self._fired.add(winner.key())
        result = execute(winner, self.wm, self.out)
        for tag, wme in result.deltas:
            if tag == "+":
                self.matcher.add_wme(wme)
            else:
                self.matcher.remove_wme(wme)
        self._notify(result.deltas)
        if result.halted:
            self._halted = True
        return FiringRecord(cycle=self._cycle, instantiation=winner,
                            deltas=list(result.deltas),
                            output=result.output)

    def run(self, max_cycles: int = 10_000) -> RunResult:
        """Run until halt, quiescence, or *max_cycles* firings."""
        firings: List[FiringRecord] = []
        quiesced = False
        while len(firings) < max_cycles:
            record = self.step()
            if record is None:
                quiesced = not self._halted
                break
            firings.append(record)
        return RunResult(firings=firings, halted=self._halted,
                         quiesced=quiesced, cycles=len(firings))

    # -- internals --------------------------------------------------------

    def _notify(self, deltas: Sequence[Delta]) -> None:
        for listener in self.delta_listeners:
            listener(self._cycle, deltas)


def run_program(program: Program, matcher: Optional[Matcher] = None,
                strategy: Strategy = Strategy.LEX,
                max_cycles: int = 10_000) -> RunResult:
    """Convenience: load *program* into a fresh interpreter and run it."""
    interp = Interpreter(matcher=matcher, strategy=strategy)
    interp.load_program(program)
    return interp.run(max_cycles=max_cycles)

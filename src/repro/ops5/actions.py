"""RHS action evaluation: turning a fired instantiation into WM deltas.

The act phase walks the production's RHS in order, resolving variable
references against the instantiation's bindings (plus any ``bind``-local
variables), and applies each action to the working memory.  It returns
the list of deltas — ``("+", wme)`` / ``("-", wme)`` — that the
interpreter forwards to the matcher, which is exactly the change stream
the Rete network consumes at the top of the next cycle.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TextIO, Tuple

from .ast import (Action, BindAction, ComputeExpr, Constant, HaltAction,
                  MakeAction, ModifyAction, RemoveAction, RHSValue,
                  WriteAction)
from .conflict import Instantiation
from .errors import ExecutionError
from .values import Value, format_value
from .wme import WME, WorkingMemory

#: A working-memory delta: tag is "+" for an add, "-" for a delete.
Delta = Tuple[str, WME]


@dataclass
class ActionResult:
    """Everything a single firing produced.

    Attributes
    ----------
    deltas:
        WM changes in execution order (modify contributes a "-" then "+").
    halted:
        True if the RHS executed ``(halt)``.
    output:
        Text written by ``(write ...)`` actions.
    """

    deltas: List[Delta] = field(default_factory=list)
    halted: bool = False
    output: str = ""


def _resolve(value: RHSValue, bindings: Dict[str, Value]) -> Value:
    operand = value.operand
    if isinstance(operand, Constant):
        return operand.value
    if isinstance(operand, ComputeExpr):
        return _evaluate_compute(operand, bindings)
    if operand.name not in bindings:
        raise ExecutionError(f"unbound RHS variable <{operand.name}>")
    return bindings[operand.name]


def _evaluate_compute(expr: ComputeExpr,
                      bindings: Dict[str, Value]) -> Value:
    """Evaluate ``(compute ...)`` left to right on numeric operands."""
    def term(item) -> Value:
        if isinstance(item, Constant):
            resolved = item.value
        else:
            if item.name not in bindings:
                raise ExecutionError(
                    f"unbound RHS variable <{item.name}> in compute")
            resolved = bindings[item.name]
        if isinstance(resolved, str):
            raise ExecutionError(
                f"compute needs numbers, got symbol {resolved!r}")
        return resolved

    acc = term(expr.items[0])
    for i in range(1, len(expr.items), 2):
        op = expr.items[i]
        rhs = term(expr.items[i + 1])
        if op == "+":
            acc = acc + rhs
        elif op == "-":
            acc = acc - rhs
        elif op == "*":
            acc = acc * rhs
        elif op == "//":
            if rhs == 0:
                raise ExecutionError("compute division by zero")
            acc = acc // rhs
        elif op == "\\\\":
            if rhs == 0:
                raise ExecutionError("compute modulus by zero")
            acc = acc % rhs
        else:  # pragma: no cover - rejected at parse time
            raise ExecutionError(f"unknown compute operator {op!r}")
    return acc


def execute(instantiation: Instantiation, wm: WorkingMemory,
            out: Optional[TextIO] = None) -> ActionResult:
    """Run the RHS of *instantiation* against *wm*.

    Parameters
    ----------
    instantiation:
        The winner of conflict resolution.
    wm:
        The working memory to mutate.
    out:
        Optional stream for ``write`` output; also captured in the result.

    Notes
    -----
    ``remove``/``modify`` act on the wme that matched the named CE.  If an
    earlier action of the same firing already removed that wme (legal in
    OPS5, if unusual), the action is a no-op for ``remove`` and an error
    for ``modify`` — you cannot update something that is gone.
    """
    result = ActionResult()
    bindings: Dict[str, Value] = dict(instantiation.bindings)
    sink = io.StringIO()

    for action in instantiation.production.rhs:
        _execute_one(action, instantiation, wm, bindings, result, sink)
        if result.halted:
            break

    result.output = sink.getvalue()
    if out is not None and result.output:
        out.write(result.output)
    return result


def _execute_one(action: Action, instantiation: Instantiation,
                 wm: WorkingMemory, bindings: Dict[str, Value],
                 result: ActionResult, sink: io.StringIO) -> None:
    if isinstance(action, MakeAction):
        attrs = {attr: _resolve(v, bindings)
                 for attr, v in action.assignments}
        wme = wm.add(action.cls, attrs)
        result.deltas.append(("+", wme))
        return
    if isinstance(action, RemoveAction):
        for ce_index in action.ce_indices:
            target = instantiation.wme_for_ce(ce_index)
            if target is None:
                raise ExecutionError(
                    f"remove {ce_index}: CE is negated, no wme to remove")
            if wm.get(target.wme_id) is None:
                continue  # already removed by an earlier action
            removed = wm.remove(target.wme_id)
            result.deltas.append(("-", removed))
        return
    if isinstance(action, ModifyAction):
        target = instantiation.wme_for_ce(action.ce_index)
        if target is None:
            raise ExecutionError(
                f"modify {action.ce_index}: CE is negated, no wme to modify")
        if wm.get(target.wme_id) is None:
            raise ExecutionError(
                f"modify {action.ce_index}: wme {target.wme_id} was already "
                f"removed by an earlier action of this firing")
        updates = {attr: _resolve(v, bindings)
                   for attr, v in action.assignments}
        old, new = wm.modify(target.wme_id, updates)
        result.deltas.append(("-", old))
        result.deltas.append(("+", new))
        return
    if isinstance(action, WriteAction):
        # Values are space-separated; (crlf) directives became "\n" constants
        # in the parser and are emitted verbatim without padding.
        parts: List[str] = []
        for value in action.values:
            resolved = _resolve(value, bindings)
            if resolved == "\n":
                parts.append("\n")
            else:
                if parts and parts[-1] != "\n":
                    parts.append(" ")
                parts.append(format_value(resolved))
        sink.write("".join(parts))
        return
    if isinstance(action, HaltAction):
        result.halted = True
        return
    if isinstance(action, BindAction):
        bindings[action.variable] = _resolve(action.value, bindings)
        return
    raise ExecutionError(f"unknown action type {type(action).__name__}")

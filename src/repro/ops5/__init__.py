"""OPS5 language subset: values, wmes, AST, parser, conflict resolution,
RHS actions and the MRA interpreter (paper Section 2.1).

Quick tour::

    from repro.ops5 import parse_program, Interpreter

    program = parse_program('''
        (p clear-the-blue-block
            (block ^name <b2> ^color blue)
            (block ^name <b2> ^on <b1>)
            (hand ^state free)
            -->
            (remove 2))
    ''')
    interp = Interpreter()
    interp.load_program(program)
    interp.add_wme("block", {"name": "b1", "color": "blue"})
    ...
    result = interp.run()
"""

from .ast import (Action, AttrTest, BindAction, ComputeExpr,
                  ConditionElement, Constant, Disjunction, HaltAction,
                  MakeAction, ModifyAction, Operand, Predicate, Production,
                  Program, RemoveAction, RHSValue, Variable, WriteAction)
from .conflict import Instantiation, Strategy, select
from .errors import (ExecutionError, LexError, Ops5Error, ParseError,
                     SemanticError)
from .interpreter import FiringRecord, Interpreter, RunResult, run_program
from .matcher import Matcher, NaiveMatcher, find_instantiations, match_ce
from .parser import parse_production, parse_program
from .values import NIL, Value, coerce_atom, format_value
from .wme import WME, WorkingMemory

__all__ = [
    "Action", "AttrTest", "BindAction", "ComputeExpr", "ConditionElement",
    "Constant", "Disjunction", "HaltAction", "MakeAction", "ModifyAction",
    "Operand", "Predicate", "Production", "Program", "RemoveAction",
    "RHSValue", "Variable", "WriteAction",
    "Instantiation", "Strategy", "select",
    "ExecutionError", "LexError", "Ops5Error", "ParseError", "SemanticError",
    "FiringRecord", "Interpreter", "RunResult", "run_program",
    "Matcher", "NaiveMatcher", "find_instantiations", "match_ce",
    "parse_production", "parse_program",
    "NIL", "Value", "coerce_atom", "format_value",
    "WME", "WorkingMemory",
]

"""Tokenizer for the OPS5 source syntax.

The lexer is a straightforward single-pass scanner.  It understands:

* parentheses and braces,
* the arrow ``-->`` separating LHS from RHS,
* CE negation ``-`` (only when it directly precedes ``(``),
* attribute markers ``^attr``,
* variables ``<name>``,
* bar-quoted symbols ``|any text|``,
* comments ``; to end of line``,
* bare atoms, which :func:`repro.ops5.values.coerce_atom` types as
  numbers or symbols.

Positions are tracked so parse errors point at the source.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from .errors import LexError
from .values import Value, coerce_atom


class TokenType(enum.Enum):
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LDISJ = "<<"
    RDISJ = ">>"
    ARROW = "-->"
    NEGATION = "-"
    ATTRIBUTE = "^attr"
    VARIABLE = "<var>"
    ATOM = "atom"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    type: TokenType
    text: str
    value: Value
    line: int
    column: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.type.name}({self.text!r})@{self.line}:{self.column}"


#: Characters that terminate a bare atom.
_DELIMITERS = set(" \t\r\n(){}^;|")

#: Atoms that are operators rather than values when seen in test position.
OPERATOR_ATOMS = {"=", "<>", "<", "<=", ">", ">=", "<=>"}


def tokenize(source: str) -> List[Token]:
    """Tokenize *source*, returning a list ending with an EOF token.

    Raises
    ------
    LexError
        On unterminated bar-quotes or unterminated variables.
    """
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(k: int = 1) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance()
            continue
        if ch == ";":
            while i < n and source[i] != "\n":
                advance()
            continue
        tok_line, tok_col = line, col
        if ch == "(":
            advance()
            yield Token(TokenType.LPAREN, "(", "(", tok_line, tok_col)
            continue
        if ch == ")":
            advance()
            yield Token(TokenType.RPAREN, ")", ")", tok_line, tok_col)
            continue
        if ch == "{":
            advance()
            yield Token(TokenType.LBRACE, "{", "{", tok_line, tok_col)
            continue
        if ch == "}":
            advance()
            yield Token(TokenType.RBRACE, "}", "}", tok_line, tok_col)
            continue
        if source.startswith("-->", i):
            advance(3)
            yield Token(TokenType.ARROW, "-->", "-->", tok_line, tok_col)
            continue
        if ch == "-" and i + 1 < n and source[i + 1] == "(":
            # CE negation; the '(' is produced as its own token next.
            advance()
            yield Token(TokenType.NEGATION, "-", "-", tok_line, tok_col)
            continue
        if ch == "^":
            advance()
            start = i
            while i < n and source[i] not in _DELIMITERS and source[i] != "<":
                advance()
            name = source[start:i]
            if not name:
                raise LexError("empty attribute name after '^'",
                               tok_line, tok_col)
            yield Token(TokenType.ATTRIBUTE, f"^{name}", name,
                        tok_line, tok_col)
            continue
        if source.startswith("<<", i) and not source.startswith("<<=", i):
            advance(2)
            yield Token(TokenType.LDISJ, "<<", "<<", tok_line, tok_col)
            continue
        if source.startswith(">>", i):
            advance(2)
            yield Token(TokenType.RDISJ, ">>", ">>", tok_line, tok_col)
            continue
        if ch == "<":
            # Could be a variable <x>, or one of the operators <, <=, <>, <=>.
            rest = source[i:i + 3]
            if rest.startswith("<=>"):
                advance(3)
                yield Token(TokenType.ATOM, "<=>", "<=>", tok_line, tok_col)
                continue
            if rest.startswith("<=") or rest.startswith("<>"):
                op = rest[:2]
                advance(2)
                yield Token(TokenType.ATOM, op, op, tok_line, tok_col)
                continue
            end = source.find(">", i + 1)
            newline = source.find("\n", i + 1)
            if (end == -1 or (newline != -1 and newline < end)
                    or end == i + 1):
                # A lone '<' operator (e.g. "^size < 5").
                advance()
                yield Token(TokenType.ATOM, "<", "<", tok_line, tok_col)
                continue
            name = source[i + 1:end]
            if any(c in _DELIMITERS for c in name):
                advance()
                yield Token(TokenType.ATOM, "<", "<", tok_line, tok_col)
                continue
            advance(end - i + 1)
            yield Token(TokenType.VARIABLE, f"<{name}>", name,
                        tok_line, tok_col)
            continue
        if ch == "|":
            # Scan to the closing bar; a doubled bar inside is a
            # literal "|" (see values.format_value).
            pieces = []
            j = i + 1
            while True:
                end = source.find("|", j)
                if end == -1:
                    raise LexError("unterminated |quoted symbol|",
                                   tok_line, tok_col)
                pieces.append(source[j:end])
                if end + 1 < n and source[end + 1] == "|":
                    pieces.append("|")
                    j = end + 2
                    continue
                break
            text = "".join(pieces)
            advance(end - i + 1)
            yield Token(TokenType.ATOM, f"|{text}|", text, tok_line,
                        tok_col)
            continue
        # Bare atom.
        start = i
        while i < n and source[i] not in _DELIMITERS and source[i] != "<":
            # Allow '<' inside atoms only for operator atoms handled above,
            # so stop at it here.
            advance()
        text = source[start:i]
        if not text:
            raise LexError(f"unexpected character {ch!r}", tok_line, tok_col)
        yield Token(TokenType.ATOM, text, coerce_atom(text),
                    tok_line, tok_col)

    yield Token(TokenType.EOF, "", "", line, col)

"""Matcher protocol and the naive reference matcher.

The interpreter talks to any object implementing :class:`Matcher`:
``add_production`` at load time, then ``add_wme``/``remove_wme`` as the
working memory changes, and ``conflict_set()`` whenever the resolve phase
needs candidates.

:class:`NaiveMatcher` recomputes every production's instantiations from
scratch against the full working memory on every query.  It is
exponentially slower than Rete but trivially correct, which makes it the
oracle for the Rete engine's property-based tests.

The CE-level matching helpers (:func:`match_ce`,
:func:`find_instantiations`) are shared: the Rete test-suite uses them to
cross-check join behaviour.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

from .ast import ConditionElement, Production, Variable
from .conflict import Instantiation
from .values import Value
from .wme import WME


class Matcher(Protocol):
    """What the MRA interpreter requires of a match engine."""

    def add_production(self, production: Production) -> None:
        """Register *production* before execution starts."""
        ...

    def add_wme(self, wme: WME) -> None:
        """Notify the matcher that *wme* entered working memory."""
        ...

    def remove_wme(self, wme: WME) -> None:
        """Notify the matcher that *wme* left working memory."""
        ...

    def conflict_set(self) -> Sequence[Instantiation]:
        """Return the current instantiations (order unspecified)."""
        ...


def match_ce(ce: ConditionElement, wme: WME,
             bindings: Dict[str, Value]) -> Optional[Dict[str, Value]]:
    """Match one wme against one CE under existing *bindings*.

    Returns the extended bindings on success (the input dict is not
    mutated), or None on failure.  Variables already present in
    *bindings* act as consistency tests; new variables bind on their
    first EQ occurrence.  A non-EQ predicate against an unbound variable
    cannot be evaluated and fails the match — OPS5 requires such
    variables to be bound earlier in the production.
    """
    if wme.cls != ce.cls:
        return None
    local = dict(bindings)
    for test in ce.tests:
        actual = wme.get(test.attr)
        operand = test.operand
        if isinstance(operand, Variable):
            if operand.name in local:
                if not test.predicate.apply(actual, local[operand.name]):
                    return None
            else:
                if test.predicate.value != "=":
                    return None
                local[operand.name] = actual
        else:
            # Constant or << >> disjunction: decidable from the wme.
            if not test.evaluate_constant(actual):
                return None
    return local


def find_instantiations(production: Production,
                        wmes: Iterable[WME]) -> List[Instantiation]:
    """All instantiations of *production* against the wme collection.

    Performs a depth-first join over the positive CEs in LHS order, then
    filters by the negated CEs.  Negated CEs may mention variables bound
    by earlier positive CEs (consistency tests) or fresh variables
    (which act as wildcards inside the negation).
    """
    wme_list = list(wmes)
    results: List[Instantiation] = []

    positive = [ce for ce in production.lhs if not ce.negated]

    def extend(ce_idx: int, matched: Tuple[WME, ...],
               bindings: Dict[str, Value]) -> None:
        if ce_idx == len(production.lhs):
            results.append(Instantiation(production=production,
                                         wmes=matched,
                                         bindings=dict(bindings)))
            return
        ce = production.lhs[ce_idx]
        if ce.negated:
            for wme in wme_list:
                if match_ce(ce, wme, bindings) is not None:
                    return  # negation violated on this branch
            extend(ce_idx + 1, matched, bindings)
            return
        for wme in wme_list:
            new_bindings = match_ce(ce, wme, bindings)
            if new_bindings is not None:
                extend(ce_idx + 1, matched + (wme,), new_bindings)

    extend(0, (), {})
    assert all(len(inst.wmes) == len(positive) for inst in results)
    return results


class NaiveMatcher:
    """Brute-force matcher: full re-match on every conflict-set query."""

    def __init__(self) -> None:
        self._productions: List[Production] = []
        self._wmes: Dict[int, WME] = {}

    def add_production(self, production: Production) -> None:
        self._productions.append(production)

    def add_wme(self, wme: WME) -> None:
        self._wmes[wme.wme_id] = wme

    def remove_wme(self, wme: WME) -> None:
        self._wmes.pop(wme.wme_id, None)

    def conflict_set(self) -> List[Instantiation]:
        out: List[Instantiation] = []
        for production in self._productions:
            out.extend(find_instantiations(production, self._wmes.values()))
        return out

"""Recursive-descent parser producing :mod:`repro.ops5.ast` objects.

Grammar (informally)::

    program     := { production | literalize | startup } EOF
    production  := "(" "p" NAME ce+ "-->" action* ")"
    ce          := ["-"] "(" CLASS ce-item* ")"
    ce-item     := ATTR value-spec
    value-spec  := term | "{" restriction+ "}"
    restriction := [pred] term
    term        := ATOM | VARIABLE
    pred        := "=" | "<>" | "<" | "<=" | ">" | ">=" | "<=>"
    action      := "(" ("make"|"remove"|"modify"|"write"|"halt"|"bind") ... ")"
    literalize  := "(" "literalize" CLASS ATTR* ")"      ; accepted, recorded
    startup     := "(" "startup" make-form* ")"          ; initial WM

``literalize`` declarations are accepted for source compatibility with
classic OPS5 programs; since our wmes are attribute-named maps, the
declarations are validated but impose no layout.  A ``startup`` form
collects ``(make ...)`` actions executed before the first MRA cycle.
"""

from __future__ import annotations

from typing import List, Tuple

from .ast import (COMPUTE_OPS, Action, AttrTest, BindAction, ComputeExpr,
                  ConditionElement, Constant, Disjunction, HaltAction,
                  MakeAction, ModifyAction, Operand, Predicate, Production,
                  Program, RemoveAction, RHSValue, Variable, WriteAction)
from .errors import ParseError
from .lexer import OPERATOR_ATOMS, Token, TokenType, tokenize
from .values import Value

_PREDICATES = {
    "=": Predicate.EQ,
    "<>": Predicate.NE,
    "<": Predicate.LT,
    "<=": Predicate.LE,
    ">": Predicate.GT,
    ">=": Predicate.GE,
    "<=>": Predicate.SAME_TYPE,
}


class _TokenStream:
    """Cursor over the token list with error-reporting helpers."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> Token:
        return self._tokens[self._pos]

    def next(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.type is not TokenType.EOF:
            self._pos += 1
        return tok

    def expect(self, ttype: TokenType, what: str) -> Token:
        tok = self.next()
        if tok.type is not ttype:
            raise ParseError(
                f"expected {what}, found {tok.text!r}", tok.line, tok.column)
        return tok

    def at(self, ttype: TokenType) -> bool:
        return self.peek().type is ttype


def parse_program(source: str) -> Program:
    """Parse a full OPS5 source string into a :class:`Program`."""
    stream = _TokenStream(tokenize(source))
    productions: List[Production] = []
    initial: List[Tuple[str, Tuple[Tuple[str, Value], ...]]] = []
    literalized: Dict[str, Tuple[str, ...]] = {}

    while not stream.at(TokenType.EOF):
        stream.expect(TokenType.LPAREN, "'('")
        head = stream.expect(TokenType.ATOM, "form head")
        if head.value == "p":
            productions.append(_parse_production_body(stream))
        elif head.value == "literalize":
            cls, attrs = _parse_literalize_body(stream)
            literalized[cls] = attrs
        elif head.value == "startup":
            initial.extend(_parse_startup_body(stream))
        else:
            raise ParseError(f"unknown top-level form {head.text!r}",
                             head.line, head.column)

    return Program(productions=tuple(productions),
                   initial_wmes=tuple(initial))


def parse_production(source: str) -> Production:
    """Parse a single ``(p ...)`` form; convenience for tests and examples."""
    program = parse_program(source)
    if len(program.productions) != 1:
        raise ParseError(
            f"expected exactly one production, found "
            f"{len(program.productions)}")
    return program.productions[0]


# ---------------------------------------------------------------------------
# Form bodies (the opening "(" and head atom are already consumed)
# ---------------------------------------------------------------------------

def _parse_production_body(stream: _TokenStream) -> Production:
    name_tok = stream.expect(TokenType.ATOM, "production name")
    name = str(name_tok.value)

    ces: List[ConditionElement] = []
    while not stream.at(TokenType.ARROW):
        negated = False
        if stream.at(TokenType.NEGATION):
            stream.next()
            negated = True
        ces.append(_parse_ce(stream, negated))
        if stream.at(TokenType.EOF):
            raise ParseError(f"production {name}: missing '-->'")
    stream.expect(TokenType.ARROW, "'-->'")

    actions: List[Action] = []
    while not stream.at(TokenType.RPAREN):
        actions.append(_parse_action(stream))
        if stream.at(TokenType.EOF):
            raise ParseError(f"production {name}: unterminated RHS")
    stream.expect(TokenType.RPAREN, "')'")

    return Production(name=name, lhs=tuple(ces), rhs=tuple(actions))


def _parse_ce(stream: _TokenStream, negated: bool) -> ConditionElement:
    stream.expect(TokenType.LPAREN, "'(' starting a condition element")
    cls_tok = stream.expect(TokenType.ATOM, "element class")
    cls = str(cls_tok.value)
    tests: List[AttrTest] = []
    while not stream.at(TokenType.RPAREN):
        attr_tok = stream.expect(TokenType.ATTRIBUTE, "'^attribute'")
        attr = str(attr_tok.value)
        tests.extend(_parse_value_spec(stream, attr))
    stream.expect(TokenType.RPAREN, "')'")
    return ConditionElement(cls=cls, tests=tuple(tests), negated=negated)


def _parse_value_spec(stream: _TokenStream, attr: str) -> List[AttrTest]:
    """Parse the value position after ``^attr``: a term or ``{ ... }``."""
    if stream.at(TokenType.LBRACE):
        stream.next()
        tests: List[AttrTest] = []
        while not stream.at(TokenType.RBRACE):
            tests.append(_parse_restriction(stream, attr))
            if stream.at(TokenType.EOF):
                raise ParseError("unterminated '{' restriction")
        stream.next()
        if not tests:
            raise ParseError("empty '{}' restriction")
        return tests
    return [_parse_restriction(stream, attr)]


def _parse_restriction(stream: _TokenStream, attr: str) -> AttrTest:
    predicate = Predicate.EQ
    tok = stream.peek()
    if tok.type is TokenType.ATOM and tok.value in _PREDICATES:
        stream.next()
        predicate = _PREDICATES[str(tok.value)]
        tok = stream.peek()
    if stream.at(TokenType.LDISJ):
        if predicate is not Predicate.EQ:
            raise ParseError("a << >> disjunction only supports the "
                             "implicit equality test",
                             tok.line, tok.column)
        return AttrTest(attr=attr, predicate=Predicate.EQ,
                        operand=_parse_disjunction(stream))
    operand = _parse_term(stream)
    return AttrTest(attr=attr, predicate=predicate, operand=operand)


def _parse_disjunction(stream: _TokenStream) -> Disjunction:
    opener = stream.expect(TokenType.LDISJ, "'<<'")
    values = []
    while not stream.at(TokenType.RDISJ):
        tok = stream.next()
        if tok.type is not TokenType.ATOM or tok.value in OPERATOR_ATOMS:
            raise ParseError("only constant values may appear inside "
                             f"'<< >>', found {tok.text!r}",
                             tok.line, tok.column)
        values.append(tok.value)
    stream.next()
    if not values:
        raise ParseError("empty '<< >>' disjunction",
                         opener.line, opener.column)
    return Disjunction(tuple(values))


def _parse_rhs_value(stream: _TokenStream) -> RHSValue:
    """A value position on the RHS: a term or ``(compute ...)``."""
    if stream.at(TokenType.LPAREN):
        stream.next()
        head = stream.expect(TokenType.ATOM, "'compute'")
        if head.value != "compute":
            raise ParseError(f"unsupported RHS form ({head.text} ...)",
                             head.line, head.column)
        items: List = []
        expecting_term = True
        while not stream.at(TokenType.RPAREN):
            if expecting_term:
                items.append(_parse_term(stream))
            else:
                tok = stream.expect(TokenType.ATOM, "an operator")
                if tok.value not in COMPUTE_OPS:
                    raise ParseError(
                        f"unknown compute operator {tok.text!r}",
                        tok.line, tok.column)
                items.append(str(tok.value))
            expecting_term = not expecting_term
        stream.next()
        if not items or expecting_term:
            raise ParseError("compute needs terms separated by "
                             "operators", head.line, head.column)
        return RHSValue(ComputeExpr(tuple(items)))
    return RHSValue(_parse_term(stream))


def _parse_term(stream: _TokenStream) -> Operand:
    tok = stream.next()
    if tok.type is TokenType.VARIABLE:
        return Variable(str(tok.value))
    if tok.type is TokenType.ATOM:
        if tok.value in OPERATOR_ATOMS:
            raise ParseError(f"operator {tok.text!r} needs a value after it",
                             tok.line, tok.column)
        return Constant(tok.value)
    raise ParseError(f"expected a value, found {tok.text!r}",
                     tok.line, tok.column)


def _parse_action(stream: _TokenStream) -> Action:
    stream.expect(TokenType.LPAREN, "'(' starting an action")
    head = stream.expect(TokenType.ATOM, "action name")
    kind = str(head.value)
    if kind == "make":
        cls_tok = stream.expect(TokenType.ATOM, "element class")
        assignments = _parse_assignments(stream)
        stream.expect(TokenType.RPAREN, "')'")
        return MakeAction(cls=str(cls_tok.value), assignments=assignments)
    if kind == "remove":
        indices: List[int] = []
        while not stream.at(TokenType.RPAREN):
            tok = stream.expect(TokenType.ATOM, "CE index")
            if not isinstance(tok.value, int):
                raise ParseError(f"remove expects integer CE indices, "
                                 f"found {tok.text!r}", tok.line, tok.column)
            indices.append(tok.value)
        stream.next()
        if not indices:
            raise ParseError("remove needs at least one CE index",
                             head.line, head.column)
        return RemoveAction(ce_indices=tuple(indices))
    if kind == "modify":
        tok = stream.expect(TokenType.ATOM, "CE index")
        if not isinstance(tok.value, int):
            raise ParseError(f"modify expects an integer CE index, "
                             f"found {tok.text!r}", tok.line, tok.column)
        assignments = _parse_assignments(stream)
        stream.expect(TokenType.RPAREN, "')'")
        return ModifyAction(ce_index=tok.value, assignments=assignments)
    if kind == "write":
        values: List[RHSValue] = []
        while not stream.at(TokenType.RPAREN):
            if stream.at(TokenType.LPAREN):
                # (crlf) prints a newline; (compute ...) prints a number.
                if _peek_paren_head(stream) == "crlf":
                    stream.next()
                    stream.next()
                    stream.expect(TokenType.RPAREN, "')'")
                    values.append(RHSValue(Constant("\n")))
                    continue
                values.append(_parse_rhs_value(stream))
                continue
            values.append(RHSValue(_parse_term(stream)))
        stream.next()
        return WriteAction(values=tuple(values))
    if kind == "halt":
        stream.expect(TokenType.RPAREN, "')'")
        return HaltAction()
    if kind == "bind":
        var_tok = stream.expect(TokenType.VARIABLE, "a <variable>")
        value = _parse_rhs_value(stream)
        stream.expect(TokenType.RPAREN, "')'")
        return BindAction(variable=str(var_tok.value), value=value)
    raise ParseError(f"unknown action {head.text!r}", head.line, head.column)


def _peek_paren_head(stream: _TokenStream) -> str:
    """Name of the form after an LPAREN at the cursor (without consuming)."""
    tok = stream._tokens[stream._pos + 1]
    return str(tok.value) if tok.type is TokenType.ATOM else ""


def _parse_assignments(
        stream: _TokenStream) -> Tuple[Tuple[str, RHSValue], ...]:
    assignments: List[Tuple[str, RHSValue]] = []
    while stream.at(TokenType.ATTRIBUTE):
        attr_tok = stream.next()
        value = _parse_rhs_value(stream)
        assignments.append((str(attr_tok.value), value))
    return tuple(assignments)


def _parse_literalize_body(
        stream: _TokenStream) -> Tuple[str, Tuple[str, ...]]:
    cls_tok = stream.expect(TokenType.ATOM, "element class")
    attrs: List[str] = []
    while not stream.at(TokenType.RPAREN):
        tok = stream.expect(TokenType.ATOM, "attribute name")
        attrs.append(str(tok.value))
    stream.next()
    return str(cls_tok.value), tuple(attrs)


def _parse_startup_body(
        stream: _TokenStream
) -> List[Tuple[str, Tuple[Tuple[str, Value], ...]]]:
    wmes: List[Tuple[str, Tuple[Tuple[str, Value], ...]]] = []
    while not stream.at(TokenType.RPAREN):
        stream.expect(TokenType.LPAREN, "'(' starting a make form")
        head = stream.expect(TokenType.ATOM, "'make'")
        if head.value != "make":
            raise ParseError("startup forms must be (make ...) actions",
                             head.line, head.column)
        cls_tok = stream.expect(TokenType.ATOM, "element class")
        pairs: List[Tuple[str, Value]] = []
        while stream.at(TokenType.ATTRIBUTE):
            attr_tok = stream.next()
            val_tok = stream.next()
            if val_tok.type is not TokenType.ATOM:
                raise ParseError("startup values must be constants",
                                 val_tok.line, val_tok.column)
            pairs.append((str(attr_tok.value), val_tok.value))
        stream.expect(TokenType.RPAREN, "')'")
        wmes.append((str(cls_tok.value), tuple(pairs)))
    stream.next()
    return wmes

"""Working-memory elements and the working memory itself.

A working-memory element (wme) is a record with a class name and a set of
attribute/value pairs (paper Section 2.1).  Every wme carries a unique
integer id — the ids are what flow through Rete tokens — and a *timestamp*
(the MRA cycle in which it was created) used by the LEX/MEA conflict
resolution strategies.

Wmes are immutable once created.  OPS5's ``modify`` action is implemented
as a delete of the old wme followed by an add of a new wme with a fresh
id, exactly the semantics that give rise to the paper's
"multiple-modify-effect" (Section 5.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple

from .errors import ExecutionError
from .values import NIL, Value, format_value


@dataclass(frozen=True)
class WME:
    """A single immutable working-memory element.

    Parameters
    ----------
    wme_id:
        Unique id, assigned by :class:`WorkingMemory`.
    cls:
        The element class name, e.g. ``"block"``.
    attrs:
        Mapping from attribute name to value.  Attributes absent from the
        mapping read as :data:`~repro.ops5.values.NIL`.
    timestamp:
        The recency tag used for conflict resolution: wmes created later
        carry larger timestamps.
    """

    wme_id: int
    cls: str
    attrs: Mapping[str, Value] = field(default_factory=dict)
    timestamp: int = 0

    def get(self, attr: str) -> Value:
        """Return the value of *attr*, or NIL when unset."""
        return self.attrs.get(attr, NIL)

    def with_updates(self, updates: Mapping[str, Value],
                     wme_id: int, timestamp: int) -> "WME":
        """Return a new wme: this one's attributes overridden by *updates*.

        Used to implement ``modify``; the result carries the fresh id and
        timestamp supplied by the working memory.
        """
        merged: Dict[str, Value] = dict(self.attrs)
        merged.update(updates)
        return WME(wme_id=wme_id, cls=self.cls, attrs=merged,
                   timestamp=timestamp)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [self.cls]
        for attr in sorted(self.attrs):
            parts.append(f"^{attr} {format_value(self.attrs[attr])}")
        return f"({' '.join(parts)})"


class WorkingMemory:
    """The set of live wmes, with id assignment and recency tracking.

    The working memory is deliberately dumb: it stores wmes and hands out
    ids/timestamps.  Matching is the matcher's job; the interpreter calls
    :meth:`add` / :meth:`remove` and forwards the resulting deltas to the
    matcher so that Rete sees an incremental change stream.
    """

    def __init__(self) -> None:
        self._wmes: Dict[int, WME] = {}
        self._next_id = 1
        self._clock = 0

    def __len__(self) -> int:
        return len(self._wmes)

    def __iter__(self) -> Iterator[WME]:
        return iter(self._wmes.values())

    def __contains__(self, wme_id: int) -> bool:
        return wme_id in self._wmes

    def get(self, wme_id: int) -> Optional[WME]:
        """Return the live wme with *wme_id*, or None if absent/removed."""
        return self._wmes.get(wme_id)

    def advance_clock(self) -> int:
        """Advance the recency clock; the interpreter calls this per action.

        OPS5 gives each *action*, not each cycle, a distinct time tag so
        that two wmes made by the same firing are still ordered.
        """
        self._clock += 1
        return self._clock

    @property
    def clock(self) -> int:
        """Current recency clock value."""
        return self._clock

    def add(self, cls: str, attrs: Mapping[str, Value]) -> WME:
        """Create, store and return a new wme of class *cls*."""
        wme = WME(wme_id=self._next_id, cls=cls, attrs=dict(attrs),
                  timestamp=self.advance_clock())
        self._next_id += 1
        self._wmes[wme.wme_id] = wme
        return wme

    def remove(self, wme_id: int) -> WME:
        """Remove and return the wme with *wme_id*.

        Raises
        ------
        ExecutionError
            If no live wme has that id (e.g. it was already removed by an
            earlier action of the same firing).
        """
        try:
            return self._wmes.pop(wme_id)
        except KeyError:
            raise ExecutionError(f"no live wme with id {wme_id}") from None

    def modify(self, wme_id: int,
               updates: Mapping[str, Value]) -> Tuple[WME, WME]:
        """Delete wme *wme_id* and add an updated copy with a fresh id.

        Returns ``(old, new)``.  This is the delete-then-add semantics the
        paper relies on when describing the multiple-modify effect.
        """
        old = self.remove(wme_id)
        new = WME(wme_id=self._next_id, cls=old.cls,
                  attrs={**old.attrs, **updates},
                  timestamp=self.advance_clock())
        self._next_id += 1
        self._wmes[new.wme_id] = new
        return old, new

    def snapshot(self) -> Tuple[WME, ...]:
        """Return the live wmes as an immutable tuple (test convenience)."""
        return tuple(self._wmes.values())

"""Abstract syntax for OPS5 productions.

The grammar implemented here is the OPS5 subset the paper's programs use:
attribute-named condition elements with constant tests, relational
predicates, variable bindings (including conjunctive ``{ ... }``
restrictions), optional CE negation, and the standard RHS actions.

The AST is deliberately matcher-agnostic: both the naive matcher and the
Rete compiler consume these classes.  Every node is a frozen dataclass so
productions can be hashed, deduplicated and shared safely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

from .errors import SemanticError
from .values import Value, format_value, values_equal, values_ordered


class Predicate(enum.Enum):
    """The OPS5 match predicates usable in attribute tests."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    SAME_TYPE = "<=>"   # both numbers or both symbols

    def apply(self, actual: Value, expected: Value) -> bool:
        """Evaluate ``actual <pred> expected`` with OPS5 semantics.

        Relational predicates only succeed on pairs of numbers; applying
        ``<`` to a symbol is a failed match, never an error.
        """
        if self is Predicate.EQ:
            return values_equal(actual, expected)
        if self is Predicate.NE:
            return not values_equal(actual, expected)
        if self is Predicate.SAME_TYPE:
            return isinstance(actual, str) == isinstance(expected, str)
        if not values_ordered(actual, expected):
            return False
        if self is Predicate.LT:
            return actual < expected
        if self is Predicate.LE:
            return actual <= expected
        if self is Predicate.GT:
            return actual > expected
        if self is Predicate.GE:
            return actual >= expected
        raise AssertionError(f"unhandled predicate {self}")


@dataclass(frozen=True)
class Constant:
    """A literal operand in a test, e.g. the ``blue`` in ``^color blue``."""

    value: Value

    def __str__(self) -> str:
        return format_value(self.value)


@dataclass(frozen=True)
class Variable:
    """A variable operand, e.g. ``<x>``.  Identified by name."""

    name: str

    def __str__(self) -> str:
        return f"<{self.name}>"


@dataclass(frozen=True)
class Disjunction:
    """A value disjunction ``<< red blue >>``: matches any listed value.

    Only constants may appear inside the brackets (OPS5 rule), and a
    disjunction may only be tested with the implicit equality predicate.
    """

    values: Tuple[Value, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise SemanticError("empty << >> disjunction")

    def matches(self, actual: Value) -> bool:
        return any(values_equal(actual, v) for v in self.values)

    def __str__(self) -> str:
        return "<< " + " ".join(format_value(v)
                                for v in self.values) + " >>"


Operand = Union[Constant, Variable, Disjunction]


@dataclass(frozen=True)
class AttrTest:
    """One restriction on one attribute: ``^attr <pred> operand``.

    A bare value position like ``^color blue`` is ``EQ`` against a
    constant; ``^name <x>`` is ``EQ`` against a variable (a binding
    occurrence if ``<x>`` is new in this production, a consistency test
    otherwise).  Conjunctive restrictions ``^size { > 2 < <max> }``
    expand to several AttrTests on the same attribute.
    """

    attr: str
    predicate: Predicate
    operand: Operand

    def is_constant_test(self) -> bool:
        """True when the operand is a literal or a value disjunction
        (both decidable from one wme: alpha-network eligible)."""
        return isinstance(self.operand, (Constant, Disjunction))

    def evaluate_constant(self, actual: Value) -> bool:
        """Evaluate this (constant) test against an attribute value."""
        if isinstance(self.operand, Disjunction):
            return self.operand.matches(actual)
        assert isinstance(self.operand, Constant)
        return self.predicate.apply(actual, self.operand.value)

    def __str__(self) -> str:
        pred = "" if self.predicate is Predicate.EQ else f"{self.predicate.value} "
        return f"^{self.attr} {pred}{self.operand}"


@dataclass(frozen=True)
class ConditionElement:
    """One pattern of a production LHS.

    Parameters
    ----------
    cls:
        Required element class; ``(block ...)`` only matches wmes of class
        ``block``.
    tests:
        The attribute restrictions, in source order.
    negated:
        True for ``-(...)`` CEs, satisfied only when *no* wme matches.
    """

    cls: str
    tests: Tuple[AttrTest, ...] = ()
    negated: bool = False

    def variables(self) -> Tuple[str, ...]:
        """Names of the variables mentioned by this CE, in first-use order."""
        seen: List[str] = []
        for test in self.tests:
            if isinstance(test.operand, Variable) and test.operand.name not in seen:
                seen.append(test.operand.name)
        return tuple(seen)

    def constant_tests(self) -> Tuple[AttrTest, ...]:
        """The subset of tests with literal operands (alpha tests)."""
        return tuple(t for t in self.tests if t.is_constant_test())

    def variable_tests(self) -> Tuple[AttrTest, ...]:
        """The subset of tests whose operand is a variable."""
        return tuple(t for t in self.tests if not t.is_constant_test())

    def __str__(self) -> str:
        inner = " ".join([self.cls] + [str(t) for t in self.tests])
        return f"-({inner})" if self.negated else f"({inner})"


# ---------------------------------------------------------------------------
# RHS actions
# ---------------------------------------------------------------------------

#: Arithmetic operators accepted inside ``(compute ...)``.
COMPUTE_OPS = ("+", "-", "*", "//", "\\\\")


@dataclass(frozen=True)
class ComputeExpr:
    """An RHS arithmetic expression: ``(compute <n> + 1)``.

    ``items`` alternates terms (constants/variables) and operator
    symbols; evaluation is strictly **left to right** with no
    precedence, e.g. ``(compute 2 + 3 * 4)`` is 20.  (Classic OPS5
    evaluates compute right to left; we document the deviation — left
    to right matches how the expression reads and is what every modern
    clone does.)  ``//`` is integer division, ``\\\\`` is modulus, as
    in OPS5.
    """

    items: Tuple[Union[Constant, Variable, str], ...]

    def __post_init__(self) -> None:
        if not self.items or len(self.items) % 2 == 0:
            raise SemanticError(
                "compute needs an odd-length term/op alternation")
        for i, item in enumerate(self.items):
            if i % 2 == 0:
                if not isinstance(item, (Constant, Variable)):
                    raise SemanticError(
                        f"compute term {item!r} must be a constant or "
                        f"variable")
            elif item not in COMPUTE_OPS:
                raise SemanticError(f"unknown compute operator {item!r}")

    def variables(self) -> Tuple[str, ...]:
        return tuple(item.name for item in self.items
                     if isinstance(item, Variable))

    def __str__(self) -> str:
        parts = [str(i) for i in self.items]
        return f"(compute {' '.join(parts)})"


@dataclass(frozen=True)
class RHSValue:
    """A value position on the RHS: constant, variable, or a
    ``(compute ...)`` arithmetic expression."""

    operand: Union[Constant, Variable, ComputeExpr]

    def variables(self) -> Tuple[str, ...]:
        """Variable names this value position reads."""
        if isinstance(self.operand, Variable):
            return (self.operand.name,)
        if isinstance(self.operand, ComputeExpr):
            return self.operand.variables()
        return ()

    def __str__(self) -> str:
        return str(self.operand)


@dataclass(frozen=True)
class MakeAction:
    """``(make cls ^attr val ...)`` — add a wme."""

    cls: str
    assignments: Tuple[Tuple[str, RHSValue], ...] = ()

    def __str__(self) -> str:
        parts = [f"make {self.cls}"]
        parts += [f"^{a} {v}" for a, v in self.assignments]
        return f"({' '.join(parts)})"


@dataclass(frozen=True)
class RemoveAction:
    """``(remove k ...)`` — delete the wme(s) matching CE index k (1-based)."""

    ce_indices: Tuple[int, ...]

    def __str__(self) -> str:
        return f"(remove {' '.join(str(i) for i in self.ce_indices)})"


@dataclass(frozen=True)
class ModifyAction:
    """``(modify k ^attr val ...)`` — delete + re-add the CE-k wme, updated."""

    ce_index: int
    assignments: Tuple[Tuple[str, RHSValue], ...] = ()

    def __str__(self) -> str:
        parts = [f"modify {self.ce_index}"]
        parts += [f"^{a} {v}" for a, v in self.assignments]
        return f"({' '.join(parts)})"


@dataclass(frozen=True)
class WriteAction:
    """``(write ...)`` — emit values to the interpreter's output stream."""

    values: Tuple[RHSValue, ...] = ()

    def __str__(self) -> str:
        return f"(write {' '.join(str(v) for v in self.values)})"


@dataclass(frozen=True)
class HaltAction:
    """``(halt)`` — stop the MRA loop after this firing."""

    def __str__(self) -> str:
        return "(halt)"


@dataclass(frozen=True)
class BindAction:
    """``(bind <var> value)`` — bind an RHS-local variable."""

    variable: str
    value: RHSValue

    def __str__(self) -> str:
        return f"(bind <{self.variable}> {self.value})"


Action = Union[MakeAction, RemoveAction, ModifyAction, WriteAction,
               HaltAction, BindAction]


@dataclass(frozen=True)
class Production:
    """A complete OPS5 production: name, LHS condition elements, RHS actions."""

    name: str
    lhs: Tuple[ConditionElement, ...]
    rhs: Tuple[Action, ...] = ()

    def __post_init__(self) -> None:
        self.validate()

    def positive_ces(self) -> Tuple[Tuple[int, ConditionElement], ...]:
        """The non-negated CEs with their 1-based LHS positions."""
        return tuple((i + 1, ce) for i, ce in enumerate(self.lhs)
                     if not ce.negated)

    def specificity(self) -> int:
        """Number of tests in the LHS; the LEX tie-breaker."""
        return sum(1 + len(ce.tests) for ce in self.lhs)

    def validate(self) -> None:
        """Check the structural rules OPS5 imposes; raise SemanticError.

        * The LHS must contain at least one CE, and the first CE must be
          positive (OPS5 requires it; negation needs a prior positive
          context).
        * ``remove``/``modify`` indices must name positive CEs.
        * RHS variables must be bound on the LHS or by an earlier ``bind``.
        """
        if not self.lhs:
            raise SemanticError(f"production {self.name}: empty LHS")
        if self.lhs[0].negated:
            raise SemanticError(
                f"production {self.name}: first CE may not be negated")

        positive_indices = {i for i, _ in self.positive_ces()}
        bound: set[str] = set()
        for ce in self.lhs:
            if not ce.negated:
                bound.update(ce.variables())

        for action in self.rhs:
            if isinstance(action, (RemoveAction,)):
                for idx in action.ce_indices:
                    if idx not in positive_indices:
                        raise SemanticError(
                            f"production {self.name}: remove references CE "
                            f"{idx}, which is not a positive CE")
            if isinstance(action, ModifyAction):
                if action.ce_index not in positive_indices:
                    raise SemanticError(
                        f"production {self.name}: modify references CE "
                        f"{action.ce_index}, which is not a positive CE")
            for value in _action_values(action):
                for var in value.variables():
                    if var not in bound:
                        raise SemanticError(
                            f"production {self.name}: RHS uses unbound "
                            f"variable <{var}>")
            if isinstance(action, BindAction):
                bound.add(action.variable)

    def __str__(self) -> str:
        lhs = "\n  ".join(str(ce) for ce in self.lhs)
        rhs = "\n  ".join(str(a) for a in self.rhs)
        return f"(p {self.name}\n  {lhs}\n  -->\n  {rhs})"


def _action_values(action: Action) -> Sequence[RHSValue]:
    """All RHSValue positions of *action*, for validation sweeps."""
    if isinstance(action, MakeAction):
        return [v for _, v in action.assignments]
    if isinstance(action, ModifyAction):
        return [v for _, v in action.assignments]
    if isinstance(action, WriteAction):
        return list(action.values)
    if isinstance(action, BindAction):
        return [action.value]
    return []


@dataclass(frozen=True)
class Program:
    """A parsed OPS5 source file: productions plus initial-WM directives."""

    productions: Tuple[Production, ...]
    initial_wmes: Tuple[Tuple[str, Tuple[Tuple[str, Value], ...]], ...] = ()

    def production(self, name: str) -> Production:
        """Look up a production by name (raises KeyError if missing)."""
        for p in self.productions:
            if p.name == name:
                return p
        raise KeyError(name)

"""Exception hierarchy for the OPS5 front end.

All errors raised while lexing, parsing, compiling or executing an OPS5
program derive from :class:`Ops5Error`, so callers can catch one type to
handle "the program is bad" uniformly while still discriminating the
phase that failed.
"""

from __future__ import annotations


class Ops5Error(Exception):
    """Base class for all OPS5 front-end errors."""


class LexError(Ops5Error):
    """Raised when the lexer encounters a malformed token.

    Attributes
    ----------
    line, column:
        1-based source position of the offending character.
    """

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(Ops5Error):
    """Raised when the token stream does not form a valid program."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        if line:
            super().__init__(f"{message} (line {line}, column {column})")
        else:
            super().__init__(message)
        self.line = line
        self.column = column


class SemanticError(Ops5Error):
    """Raised for structurally valid but meaningless programs.

    Examples: a RHS action referencing an unbound variable, ``remove``
    naming a CE index that does not exist, or a negated CE index used in
    ``modify`` (negated CEs match no particular wme, so there is nothing
    to modify).
    """


class ExecutionError(Ops5Error):
    """Raised when the interpreter cannot carry out an RHS action."""

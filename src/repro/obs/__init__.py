"""Observability primitives: a metrics registry and structured logging.

This package is deliberately dependency-free (stdlib only) and imported
by every layer of the harness — the trace cache counts hits and misses,
the parallel sweep engine counts worker crashes and recovered points,
the conformance harness counts its progress (``check.cases``,
``check.failures``, ``check.oracle_runs``, ``check.invariant_runs``,
``check.shrink_evals``), the CLI routes its warnings through one
configurable logger — so a single ``repro cache-stats`` or ``-v`` flag
surfaces what the whole stack did.

* :mod:`~repro.obs.metrics` — process-local counters and histograms
  (with reservoir quantiles), collected in a named registry,
  snapshotted as plain dicts or rendered as Prometheus text.
* :mod:`~repro.obs.logging` — the ``repro.*`` logger hierarchy with a
  verbosity-level configurator (``--quiet`` / ``-v`` / ``-vv``) and a
  ``key=value`` structured-event helper.
* :mod:`~repro.obs.trace` — distributed tracing for the live executor
  backends: per-actor flight recorders, span-context propagation over
  the Section 3.2 message protocol, clock-aligned merge, Chrome-trace
  / JSONL export, measured attribution and post-mortem dumps.
"""

from .logging import (configure_logging, get_logger, log_event,
                      verbosity_level)
from .metrics import (Counter, Histogram, MetricsRegistry, get_registry,
                      prometheus_text, reset_registry)
from .trace import (FlightRecorder, LiveSpan, LiveTimeline,
                    LiveTraceCollector, chrome_trace_live, dump_flight,
                    live_attribution, live_jsonl, reconcile_live,
                    write_chrome_trace_live, write_live_jsonl)

__all__ = [
    "configure_logging", "get_logger", "log_event", "verbosity_level",
    "Counter", "Histogram", "MetricsRegistry", "get_registry",
    "prometheus_text", "reset_registry",
    "FlightRecorder", "LiveSpan", "LiveTimeline", "LiveTraceCollector",
    "chrome_trace_live", "dump_flight", "live_attribution",
    "live_jsonl", "reconcile_live", "write_chrome_trace_live",
    "write_live_jsonl",
]

"""Observability primitives: a metrics registry and structured logging.

This package is deliberately dependency-free (stdlib only) and imported
by every layer of the harness — the trace cache counts hits and misses,
the parallel sweep engine counts worker crashes and recovered points,
the conformance harness counts its progress (``check.cases``,
``check.failures``, ``check.oracle_runs``, ``check.invariant_runs``,
``check.shrink_evals``), the CLI routes its warnings through one
configurable logger — so a single ``repro cache-stats`` or ``-v`` flag
surfaces what the whole stack did.

* :mod:`~repro.obs.metrics` — process-local counters and histograms,
  collected in a named registry and snapshotted as plain dicts.
* :mod:`~repro.obs.logging` — the ``repro.*`` logger hierarchy with a
  verbosity-level configurator (``--quiet`` / ``-v`` / ``-vv``) and a
  ``key=value`` structured-event helper.
"""

from .logging import (configure_logging, get_logger, log_event,
                      verbosity_level)
from .metrics import (Counter, Histogram, MetricsRegistry, get_registry,
                      reset_registry)

__all__ = [
    "configure_logging", "get_logger", "log_event", "verbosity_level",
    "Counter", "Histogram", "MetricsRegistry", "get_registry",
    "reset_registry",
]

"""Distributed tracing for the live executors: flight recorders,
span-context propagation, clock-aligned merge, and live attribution.

The discrete simulator explains itself through
:mod:`repro.mpc.timeline` — typed spans, Chrome-trace export, idle
attribution.  This module gives the *live* actor backends
(:mod:`repro.exec.actors`, :mod:`repro.exec.mp`,
:mod:`repro.exec.supervise`) the same measured view:

* every data message of the Section 3.2 protocol
  (``cycle``/``token``/``fire``) carries a compact **trace context**
  ``(sender, send_perf_ts)`` appended to the tuple, so the receiver can
  measure the real delivery delay of the message that triggered it;
* each actor — asyncio task or worker process — records typed spans
  (:data:`LIVE_MATCH`, :data:`LIVE_SEND`, :data:`LIVE_BARRIER`) into a
  per-process ring-buffer **flight recorder**
  (:class:`FlightRecorder`); the supervisor coordinator records
  :data:`LIVE_CYCLE`, :data:`LIVE_RESTART` and :data:`LIVE_REPLAY`;
* recorders are **drained over the existing control channel** — a
  ``("spans", ...)`` bookkeeping message sent just before each barrier
  ``stats`` reply, so the merge needs no side channel and FIFO order
  guarantees every span of a cycle is on the coordinator before the
  cycle closes;
* the coordinator merges drains with **clock-offset alignment**
  (:meth:`LiveTraceCollector.build`): within one process
  ``perf_counter`` timestamps are directly comparable; across worker
  processes each recorder's paired ``(perf_counter, time.time)`` base
  anchors its monotonic clock to wall time, and all spans land on one
  axis — microseconds since the coordinator recorder was created;
* the merged :class:`LiveTimeline` exports in the **same formats** as
  ``repro profile`` (:func:`chrome_trace_live`, :func:`live_jsonl`) so
  a live run and its simulated twin open side by side in Perfetto, and
  a measured-attribution pass (:func:`live_attribution`) reuses the
  :mod:`repro.mpc.attribution` categories over live spans.

Tracing is strictly opt-in (``RunConfig.live_trace`` /
``--trace-live``) and bit-invisible to match signatures and every
counter when off — the untraced code paths are unchanged and this
module is not imported; the ``live_trace_invisible`` oracle in
:mod:`repro.check` pins that.  When a traced run dies with a typed
:class:`~repro.exec.errors.ExecutorError`, the flight recorder is
dumped automatically (:func:`dump_flight`) for post-mortem analysis —
including spans of failed, uncommitted cycle attempts.

Everything here is stdlib-only at module level;
:mod:`repro.mpc.attribution` is imported lazily inside
:func:`live_attribution` so the flight-recorder hot path stays free of
heavyweight imports.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import IO, Dict, Iterator, List, Optional, Tuple

#: Pseudo-actor id of the control/coordinator row (matches
#: :data:`repro.exec.plan.CONTROL`).
CONTROL = -1

# -- live span categories (the typed vocabulary) ---------------------------
LIVE_CYCLE = "cycle"                    # coordinator: one committed cycle
LIVE_MATCH = "match"                    # actor: processing one delivery
LIVE_SEND = "send"                      # actor: emitting outbox messages
LIVE_BARRIER = "barrier_wait"           # actor: idle until the sync barrier
LIVE_RESTART = "restart"                # coordinator: failure -> respawn
LIVE_REPLAY = "checkpoint_replay"       # coordinator: failed replay attempt

LIVE_CATEGORIES = (LIVE_CYCLE, LIVE_MATCH, LIVE_SEND, LIVE_BARRIER,
                   LIVE_RESTART, LIVE_REPLAY)

#: Categories that measure *waiting*, not work.
LIVE_IDLE_CATEGORIES = frozenset({LIVE_BARRIER, LIVE_RESTART,
                                  LIVE_REPLAY})

#: Tag of the control-channel drain message (bookkeeping, never counted
#: in ``n_messages`` — exactly like ``processed``/``sync``/``stats``).
SPANS = "spans"

#: Environment override for where post-mortem flight dumps land.
ENV_FLIGHT_DIR = "REPRO_FLIGHT_DIR"

#: Ring-buffer capacity per flight recorder (spans, not bytes).  At
#: ~80 bytes per raw span this bounds a recorder at ~20 MB; older spans
#: are overwritten and counted in :attr:`FlightRecorder.dropped`.
DEFAULT_CAPACITY = 1 << 18


class FlightRecorder:
    """A per-actor ring buffer of raw span tuples.

    One recorder per actor per generation (worker restarts get a fresh
    one).  Recording is append-to-deque cheap; the paired
    ``(perf_counter, time.time)`` base captured at construction is what
    lets the coordinator place this recorder's monotonic timestamps on
    a shared axis after the fact.  When the ring wraps, the oldest
    spans are silently overwritten and counted in :attr:`dropped` —
    a flight recorder keeps the *latest* history, like its namesake.
    """

    __slots__ = ("actor_id", "generation", "capacity", "perf_base",
                 "wall_base", "pid", "dropped", "_spans")

    def __init__(self, actor_id: int, generation: int = 0,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        self.actor_id = actor_id
        self.generation = generation
        self.capacity = capacity
        self.perf_base = time.perf_counter()
        self.wall_base = time.time()
        self.pid = os.getpid()
        self.dropped = 0
        self._spans: deque = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._spans)

    def record(self, category: str, cycle: int, start_s: float,
               end_s: float, *, n: int = 1, act_id: int = -1,
               src: Optional[int] = None, sent_s: float = 0.0,
               busy_us: float = 0.0) -> None:
        """Append one raw span (timestamps in this recorder's
        ``perf_counter`` clock, seconds)."""
        if len(self._spans) == self.capacity:
            self.dropped += 1
        self._spans.append((category, cycle, start_s, end_s, n,
                            act_id, src, sent_s, busy_us))

    def drain(self) -> Tuple:
        """Empty the ring into one picklable control-channel message.

        ``("spans", actor_id, generation, perf_base, wall_base, pid,
        raw_spans, dropped)`` — everything the coordinator needs to
        align and attribute the spans, with no shared state.
        """
        spans = list(self._spans)
        self._spans.clear()
        dropped, self.dropped = self.dropped, 0
        return (SPANS, self.actor_id, self.generation, self.perf_base,
                self.wall_base, self.pid, spans, dropped)


@dataclass(frozen=True, slots=True)
class LiveSpan:
    """One merged, clock-aligned span of a live run.

    Times are microseconds since the coordinator's flight recorder was
    created (one absolute axis across all actors and processes).
    ``wait_us`` is the measured delivery delay of the message that
    triggered this span — send timestamp on the *sender's* clock,
    aligned, clamped at zero (clock alignment across processes is
    wall-clock accurate, not perfect).  ``busy_us`` on a match span is
    the actor core's cumulative model-priced busy time at the end of
    the span, so the last match span of a cycle carries exactly the
    ``proc_busy_us`` the barrier stats report.
    """

    category: str
    actor: int
    cycle: int
    start_us: float
    end_us: float
    n: int = 1
    act_id: int = -1
    src: Optional[int] = None
    wait_us: float = 0.0
    busy_us: float = 0.0
    generation: int = 0

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    @property
    def is_busy(self) -> bool:
        return self.category not in LIVE_IDLE_CATEGORIES


@dataclass
class LiveTimeline:
    """The merged flight-recorder view of one live run."""

    trace_name: str
    n_procs: int
    transport: str
    spans: List[LiveSpan] = field(default_factory=list)
    #: Committed cycle index -> the generation whose spans count.
    committed: Dict[int, int] = field(default_factory=dict)
    #: Total ring-buffer overwrites across every drained recorder.
    dropped: int = 0

    def cycle_indices(self) -> List[int]:
        return sorted({s.cycle for s in self.spans if s.cycle >= 0})

    def by_cycle(self) -> Dict[int, List[LiveSpan]]:
        out: Dict[int, List[LiveSpan]] = {}
        for span in self.spans:
            out.setdefault(span.cycle, []).append(span)
        return out

    def spans_for(self, actor: int) -> List[LiveSpan]:
        return [s for s in self.spans if s.actor == actor]

    def duration_us(self) -> float:
        if not self.spans:
            return 0.0
        return (max(s.end_us for s in self.spans)
                - min(s.start_us for s in self.spans))

    def summary(self) -> Dict[str, object]:
        """JSON-ready overview (the CLI's ``--json`` payload slice)."""
        by_category: Dict[str, int] = {}
        wait_us = 0.0
        for span in self.spans:
            by_category[span.category] = \
                by_category.get(span.category, 0) + 1
            wait_us += span.wait_us
        return {
            "trace": self.trace_name,
            "n_procs": self.n_procs,
            "transport": self.transport,
            "n_spans": len(self.spans),
            "n_cycles": len(self.committed),
            "spans_by_category": dict(sorted(by_category.items())),
            "message_wait_us": wait_us,
            "duration_us": self.duration_us(),
            "dropped": self.dropped,
        }


class LiveTraceCollector:
    """Coordinator-side merge point for flight-recorder drains.

    The control loop owns one collector per traced run: it feeds every
    ``("spans", ...)`` control message to :meth:`add_drain`, records
    its own coordinator spans on :attr:`recorder`, marks each cycle's
    surviving generation with :meth:`commit`, and finally calls
    :meth:`build` to get the clock-aligned :class:`LiveTimeline`.
    """

    def __init__(self, trace_name: str, n_procs: int,
                 transport: str) -> None:
        self.trace_name = trace_name
        self.n_procs = n_procs
        self.transport = transport
        #: The coordinator's own flight recorder — its creation instant
        #: is the origin of the merged time axis.
        self.recorder = FlightRecorder(CONTROL)
        self._drains: List[Tuple] = []
        self.committed: Dict[int, int] = {}

    def add_drain(self, message: Tuple) -> None:
        """Accept one ``("spans", ...)`` control-channel message."""
        self._drains.append(message)

    def commit(self, cycle: int, generation: int = 0) -> None:
        """Mark *cycle* as closed by *generation* — only that
        generation's actor spans survive into :meth:`build` (spans of
        failed replay attempts are filtered, keeping reconciliation
        exact under restarts)."""
        self.committed[cycle] = generation

    def now(self) -> float:
        return time.perf_counter()

    def _offset_s(self, perf_base: float, wall_base: float,
                  pid: int) -> float:
        """Seconds to add to a recorder's perf timestamps to land on
        the coordinator axis.  Same process: the perf clocks are the
        same clock, align exactly.  Different process: anchor through
        the paired wall-clock base."""
        own = self.recorder
        if pid == own.pid:
            return -own.perf_base
        return (wall_base - own.wall_base) - perf_base

    def build(self, committed_only: bool = True) -> LiveTimeline:
        """Merge every drain into one clock-aligned timeline.

        Coordinator spans (cycle/restart/replay) are always kept;
        actor spans are kept only for the generation that committed
        their cycle unless *committed_only* is false (post-mortem
        dumps want the failed attempts too).
        """
        self.add_drain(self.recorder.drain())
        offsets: Dict[Tuple[int, int], float] = {}
        any_offset: Dict[int, float] = {}
        for drain in self._drains:
            _, actor, generation, perf_base, wall_base, pid, _, _ = drain
            off = self._offset_s(perf_base, wall_base, pid)
            offsets[(actor, generation)] = off
            any_offset[actor] = off

        timeline = LiveTimeline(trace_name=self.trace_name,
                                n_procs=self.n_procs,
                                transport=self.transport,
                                committed=dict(self.committed))
        coordinator_spans = (LIVE_CYCLE, LIVE_RESTART, LIVE_REPLAY)
        for drain in self._drains:
            _, actor, generation, _, _, _, raw_spans, dropped = drain
            timeline.dropped += dropped
            off = offsets[(actor, generation)]
            for (category, cycle, start_s, end_s, n, act_id, src,
                 sent_s, busy_us) in raw_spans:
                if committed_only and category not in coordinator_spans \
                        and self.committed.get(cycle) != generation:
                    continue
                wait_us = 0.0
                if src is not None:
                    src_off = offsets.get((src, generation),
                                          any_offset.get(src))
                    if src_off is not None:
                        wait_us = max(
                            0.0,
                            ((start_s + off) - (sent_s + src_off)) * 1e6)
                timeline.spans.append(LiveSpan(
                    category=category, actor=actor, cycle=cycle,
                    start_us=(start_s + off) * 1e6,
                    end_us=(end_s + off) * 1e6,
                    n=n, act_id=act_id, src=src, wait_us=wait_us,
                    busy_us=busy_us, generation=generation))
        timeline.spans.sort(key=lambda s: (s.start_us, s.actor))
        return timeline


# ---------------------------------------------------------------------------
# Export: the same formats as the simulator's ``repro profile``
# ---------------------------------------------------------------------------


def _live_thread_ids(n_procs: int) -> Dict[int, int]:
    """Chrome tid per row: control first, then actors — the same
    layout as :func:`repro.mpc.timeline.chrome_trace`, so a live trace
    and its simulated twin line up row for row in Perfetto."""
    tids = {CONTROL: 0}
    for p in range(n_procs):
        tids[p] = p + 1
    return tids


def _live_thread_name(actor: int) -> str:
    return "control" if actor == CONTROL else f"actor {actor}"


def chrome_trace_live(timeline: LiveTimeline) -> Dict[str, object]:
    """The live timeline as a Chrome trace-event JSON object.

    Timestamps are microseconds on the merged coordinator axis; load
    the written file in Perfetto (https://ui.perfetto.dev) next to a
    ``repro profile --format chrome`` export of the same section to
    compare measured against modeled behavior span by span.
    """
    tids = _live_thread_ids(timeline.n_procs)
    events: List[Dict[str, object]] = [
        {"name": "process_name", "ph": "M", "pid": 0,
         "args": {"name": f"repro live {timeline.trace_name} "
                          f"@{timeline.n_procs} actors "
                          f"({timeline.transport})"}},
    ]
    for actor, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append({"name": "thread_name", "ph": "M", "pid": 0,
                       "tid": tid,
                       "args": {"name": _live_thread_name(actor)}})
    for span in timeline.spans:
        args: Dict[str, object] = {"cycle": span.cycle}
        if span.n != 1:
            args["n"] = span.n
        if span.act_id >= 0:
            args["act_id"] = span.act_id
        if span.src is not None:
            args["src"] = _live_thread_name(span.src)
            args["wait_us"] = span.wait_us
        if span.busy_us:
            args["busy_us"] = span.busy_us
        if span.generation:
            args["generation"] = span.generation
        events.append({
            "name": span.category, "cat": span.category, "ph": "X",
            "ts": span.start_us, "dur": span.duration_us,
            "pid": 0, "tid": tids.get(span.actor, span.actor + 1),
            "args": args})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace": timeline.trace_name,
            "n_procs": timeline.n_procs,
            "transport": timeline.transport,
            "dropped": timeline.dropped,
        },
    }


def write_chrome_trace_live(timeline: LiveTimeline,
                            stream: IO[str]) -> int:
    """Write :func:`chrome_trace_live` JSON; returns the event count."""
    payload = chrome_trace_live(timeline)
    json.dump(payload, stream, separators=(",", ":"))
    return len(payload["traceEvents"])  # type: ignore[arg-type]


def live_jsonl(timeline: LiveTimeline) -> Iterator[str]:
    """One JSON line per merged span (the ``repro profile`` JSONL
    shape, with live-only fields added)."""
    for span in timeline.spans:
        record = {
            "trace": timeline.trace_name,
            "cycle": span.cycle,
            "proc": _live_thread_name(span.actor),
            "category": span.category,
            "start_us": span.start_us,
            "end_us": span.end_us,
            "act_id": span.act_id if span.act_id >= 0 else None,
            "busy": span.is_busy,
            "n": span.n,
            "src": (None if span.src is None
                    else _live_thread_name(span.src)),
            "wait_us": span.wait_us,
            "generation": span.generation,
        }
        yield json.dumps(record, separators=(",", ":"))


def write_live_jsonl(timeline: LiveTimeline, stream: IO[str]) -> int:
    n = 0
    for line in live_jsonl(timeline):
        stream.write(line + "\n")
        n += 1
    return n


# ---------------------------------------------------------------------------
# Reconciliation: measured spans vs the run's protocol counters
# ---------------------------------------------------------------------------


def reconcile_live(timeline: LiveTimeline, result) -> None:
    """Assert the merged spans agree with the run's counters.

    For every committed cycle: per actor, the match spans' delivery
    counts sum to ``proc_activations`` and the final cumulative
    ``busy_us`` snapshot equals ``proc_busy_us`` **exactly** (both are
    the same float arithmetic in the same order — no epsilon); and the
    cycle's send spans cover ``n_messages - 1`` emissions (everything
    but the broadcast).  Raises ``ValueError`` on any mismatch or on
    ring-buffer overwrites (*result* is the run's
    :class:`~repro.mpc.metrics.SimResult`).
    """
    if timeline.dropped:
        raise ValueError(
            f"flight recorder dropped {timeline.dropped} span(s); "
            "raise the recorder capacity to reconcile")
    cycles = {c.index: c for c in result.cycles}
    by_cycle = timeline.by_cycle()
    for index, generation in sorted(timeline.committed.items()):
        cycle_result = cycles.get(index)
        if cycle_result is None:
            raise ValueError(f"cycle {index} committed in the trace "
                             "but absent from the result")
        spans = by_cycle.get(index, [])
        sends = 0
        for actor in range(timeline.n_procs):
            matches = [s for s in spans
                       if s.actor == actor and s.category == LIVE_MATCH]
            delivered = sum(s.n for s in matches)
            expected = cycle_result.proc_activations[actor]
            if delivered != expected:
                raise ValueError(
                    f"cycle {index}: actor {actor} match spans cover "
                    f"{delivered} activations, counters say {expected}")
            busy = max((s.busy_us for s in matches), default=0.0)
            expected_busy = cycle_result.proc_busy_us[actor]
            if busy != expected_busy:
                raise ValueError(
                    f"cycle {index}: actor {actor} traced busy "
                    f"{busy!r} us != counter {expected_busy!r} us")
            sends += sum(s.n for s in spans
                         if s.actor == actor and s.category == LIVE_SEND)
        expected_sends = cycle_result.n_messages - 1
        if sends != expected_sends:
            raise ValueError(
                f"cycle {index}: send spans cover {sends} messages, "
                f"n_messages says {expected_sends} (+1 broadcast)")


# ---------------------------------------------------------------------------
# Measured attribution: live spans -> the Section 5 limiter categories
# ---------------------------------------------------------------------------


def live_attribution(timeline: LiveTimeline):
    """Attribute measured live idle time to the paper's categories.

    Returns a :class:`~repro.mpc.attribution.SectionAttribution` (the
    same type ``repro profile`` produces for the simulator) built from
    wall-clock spans: per committed cycle the makespan is the
    coordinator's cycle span, each actor's busy time is its measured
    match+send span time, and the idle remainder is decomposed —

    * ``protocol``     — restart + failed-replay windows x all actors;
    * ``comm_overhead``— measured message delivery delays (``wait_us``);
    * ``imbalance``    — measured end-of-cycle barrier waits;
    * ``chain_wait``   — the uncategorized remainder (mid-cycle gaps);
    * ``broadcast_floor`` — zero: live broadcast time is inside the
      first match span, not separable without simulator envelopes.

    Categories are clamped to the measured idle total in that order,
    so :meth:`~repro.mpc.attribution.CycleAttribution.check_sums`
    holds exactly by construction.  Unlike the simulator's attribution
    this is a *measurement*, not a model — treat shares as indicative.
    """
    from ..mpc.attribution import (CycleAttribution, IDLE_CATEGORIES,
                                   SectionAttribution)
    section = SectionAttribution(trace_name=timeline.trace_name,
                                 n_procs=timeline.n_procs)
    by_cycle = timeline.by_cycle()
    n_procs = timeline.n_procs
    for index in sorted(timeline.committed):
        spans = by_cycle.get(index, [])
        cycle_spans = [s for s in spans if s.category == LIVE_CYCLE]
        if cycle_spans:
            makespan_us = max(s.duration_us for s in cycle_spans)
        elif spans:
            makespan_us = (max(s.end_us for s in spans)
                           - min(s.start_us for s in spans))
        else:
            makespan_us = 0.0
        busy_by_category: Dict[str, float] = {}
        per_proc_idle: List[float] = []
        wait_total = 0.0
        barrier_total = 0.0
        for actor in range(n_procs):
            busy = 0.0
            for span in spans:
                if span.actor != actor:
                    continue
                if span.category in (LIVE_MATCH, LIVE_SEND):
                    busy += span.duration_us
                    busy_by_category[span.category] = \
                        busy_by_category.get(span.category, 0.0) \
                        + span.duration_us
                    wait_total += span.wait_us
                elif span.category == LIVE_BARRIER:
                    barrier_total += span.duration_us
            per_proc_idle.append(max(0.0, makespan_us - busy))
        protocol_raw = sum(
            s.duration_us for s in spans
            if s.category in (LIVE_RESTART, LIVE_REPLAY)) * n_procs
        remaining = sum(per_proc_idle)
        idle_by_category = {category: 0.0
                            for category in IDLE_CATEGORIES}
        for category, raw in (("protocol", protocol_raw),
                              ("comm_overhead", wait_total),
                              ("imbalance", barrier_total)):
            charged = min(raw, remaining)
            idle_by_category[category] = charged
            remaining -= charged
        idle_by_category["chain_wait"] = remaining
        idle_us = sum(idle_by_category.values())
        attribution = CycleAttribution(
            index=index, makespan_us=makespan_us, n_procs=n_procs,
            idle_us=idle_us, idle_by_category=idle_by_category,
            busy_us=sum(busy_by_category.values()),
            busy_by_category=busy_by_category,
            per_proc_idle_us=per_proc_idle, critical_path=[])
        attribution.check_sums()
        section.cycles.append(attribution)
    return section


# ---------------------------------------------------------------------------
# Post-mortem flight dumps
# ---------------------------------------------------------------------------


def flight_dump_path(trace_name: str, reason: str,
                     directory: Optional[str] = None) -> str:
    """Where a post-mortem dump lands: ``$REPRO_FLIGHT_DIR`` (or
    *directory*, or the working directory), pid-tagged."""
    directory = directory or os.environ.get(ENV_FLIGHT_DIR) or "."
    safe = "".join(ch if ch.isalnum() or ch in "-_." else "-"
                   for ch in f"{trace_name}-{reason}")
    return os.path.join(directory,
                        f"flight-{safe}-{os.getpid()}.jsonl")


def dump_flight(collector: LiveTraceCollector, reason: str,
                directory: Optional[str] = None) -> str:
    """Dump every recorded span — committed or not — for post-mortems.

    Called automatically by the traced executors when a run dies with
    a typed :class:`~repro.exec.errors.ExecutorError`; the first line
    is a header object (trace, reason, committed map, drop counts),
    each following line one span in the :func:`live_jsonl` shape.
    Returns the written path.
    """
    timeline = collector.build(committed_only=False)
    path = flight_dump_path(collector.trace_name, reason, directory)
    with open(path, "w", encoding="utf-8") as stream:
        header = {
            "flight_recorder": collector.trace_name,
            "reason": reason,
            "transport": collector.transport,
            "n_procs": collector.n_procs,
            "committed": {str(k): v
                          for k, v in sorted(collector.committed.items())},
            "n_spans": len(timeline.spans),
            "dropped": timeline.dropped,
        }
        stream.write(json.dumps(header, separators=(",", ":")) + "\n")
        write_live_jsonl(timeline, stream)
    from . import get_registry
    get_registry().counter("trace_live.dumps").inc()
    return path

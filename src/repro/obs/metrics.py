"""Process-local metrics: named counters and histograms in a registry.

The harness is a batch tool, not a server, so this is intentionally the
smallest thing that works: plain Python objects, no locks (CPython's
GIL makes ``+=`` on an int effectively atomic for our purposes, and
worker processes each carry their own registry), and a
:meth:`MetricsRegistry.snapshot` that returns JSON-ready dicts for the
CLI's machine-readable outputs.

Typical use::

    from repro.obs import get_registry

    get_registry().counter("trace_cache.disk_hits").inc()
    get_registry().histogram("parallel.point_s").observe(elapsed)
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional

#: Reservoir size per histogram: enough for stable p99 estimates on
#: tens of thousands of observations without unbounded memory.
RESERVOIR_SIZE = 512


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self._value += n

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class Histogram:
    """Summary statistics, power-of-two buckets, and quantiles.

    Buckets are keyed by ``ceil(log2(value))`` (with a dedicated bucket
    for zero), which is plenty to tell "microseconds" from "seconds" in
    a report without storing every sample.  Quantiles come from a
    bounded **reservoir sample** (Vitter's algorithm R, at most
    :data:`RESERVOIR_SIZE` kept values): exact until the reservoir
    fills, an unbiased uniform sample after.  The reservoir's RNG is
    seeded from the histogram name, so a deterministic workload yields
    deterministic quantile estimates run over run.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets",
                 "_reservoir", "_rng")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}
        self._reservoir: List[float] = []
        self._rng = random.Random(name)

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError("histogram values must be >= 0")
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        bucket = -1 if value == 0 else math.ceil(math.log2(value)) \
            if value > 1 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        if len(self._reservoir) < RESERVOIR_SIZE:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < RESERVOIR_SIZE:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """The *q*-quantile (``0 <= q <= 1``) of the sampled values,
        by linear interpolation; ``None`` before any observation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if not self._reservoir:
            return None
        ordered = sorted(self._reservoir)
        if len(ordered) == 1:
            return ordered[0]
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def summary(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    def __repr__(self) -> str:
        return (f"Histogram({self.name}: n={self.count}, "
                f"mean={self.mean:g})")


class MetricsRegistry:
    """A flat namespace of counters and histograms.

    Names are dotted strings (``"trace_cache.misses"``); asking for an
    existing name returns the existing instrument, so call sites never
    need to coordinate creation.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            if name in self._histograms:
                raise ValueError(f"{name!r} is already a histogram")
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            if name in self._counters:
                raise ValueError(f"{name!r} is already a counter")
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    def counters(self, prefix: str = "") -> List[Counter]:
        return [c for name, c in sorted(self._counters.items())
                if name.startswith(prefix)]

    def snapshot(self, prefix: str = "") -> Dict[str, object]:
        """JSON-ready view: counter values and histogram summaries."""
        out: Dict[str, object] = {}
        for name, counter in sorted(self._counters.items()):
            if name.startswith(prefix):
                out[name] = counter.value
        for name, histogram in sorted(self._histograms.items()):
            if name.startswith(prefix):
                out[name] = histogram.summary()
        return out

    def reset(self) -> None:
        self._counters.clear()
        self._histograms.clear()


def _prom_name(name: str) -> str:
    """Sanitize a dotted instrument name to the Prometheus charset."""
    out = "".join(ch if ch.isalnum() or ch == "_" else "_"
                  for ch in name)
    return "repro_" + out


def prometheus_text(registry: "MetricsRegistry") -> str:
    """Render *registry* in the Prometheus text exposition format.

    Counters become ``repro_<name>_total`` counters; histograms become
    summaries (``_count`` / ``_sum`` plus ``quantile``-labeled sample
    lines from the reservoir).  Stdlib-only — the served stats endpoint
    (:meth:`repro.exec.served.SessionServer.serve_metrics`) serves
    this string so any Prometheus scraper can watch a live server.
    """
    lines: List[str] = []
    for name, counter in sorted(registry._counters.items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom}_total counter")
        lines.append(f"{prom}_total {counter.value}")
    for name, histogram in sorted(registry._histograms.items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} summary")
        for q in (0.5, 0.9, 0.95, 0.99):
            value = histogram.quantile(q)
            if value is not None:
                lines.append(f"{prom}{{quantile=\"{q:g}\"}} {value:g}")
        lines.append(f"{prom}_sum {histogram.total:g}")
        lines.append(f"{prom}_count {histogram.count}")
    return "\n".join(lines) + "\n"


#: The process-wide default registry (worker processes get their own).
_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _registry


def reset_registry() -> None:
    """Clear the default registry (test isolation)."""
    _registry.reset()

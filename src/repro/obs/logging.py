"""Structured logging for the harness: one hierarchy, one knob.

Every module already logs under ``repro.*`` via
``logging.getLogger(__name__)``; this module adds the piece the CLI
needs — a configurator mapping ``--quiet`` / ``-v`` / ``-vv`` onto the
``repro`` logger — and a tiny helper for ``event key=value`` structured
messages, so warnings (cache quarantines, broken worker pools,
non-monotone degradation curves) come out of one formatter instead of
scattered ``print(..., file=sys.stderr)`` calls.

Without :func:`configure_logging` nothing changes: the stdlib's
last-resort handler still prints WARNING+ messages to stderr, so
library users see problems but no chatter.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional

#: Marker attribute identifying the handler we installed (so repeated
#: configuration reconfigures instead of stacking handlers).
_HANDLER_FLAG = "_repro_obs_handler"

_FORMAT = "%(levelname)s %(name)s: %(message)s"


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``get_logger("mpc.parallel")`` and ``get_logger("repro.mpc.parallel")``
    return the same logger; modules inside the package keep using
    ``logging.getLogger(__name__)``, which is equivalent.
    """
    if not name.startswith("repro"):
        name = f"repro.{name}" if name else "repro"
    return logging.getLogger(name)


def verbosity_level(verbose: int = 0, quiet: bool = False) -> int:
    """Map the CLI's ``-v`` count / ``--quiet`` flag onto a log level."""
    if quiet:
        return logging.ERROR
    if verbose <= 0:
        return logging.WARNING
    if verbose == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(verbose: int = 0, quiet: bool = False,
                      stream: Optional[IO[str]] = None) -> int:
    """Install (or retune) the ``repro`` stderr handler; returns level.

    Idempotent: calling again adjusts the existing handler's level and
    stream rather than adding a second one, so tests and repeated CLI
    invocations in one process stay clean.
    """
    level = verbosity_level(verbose, quiet)
    root = logging.getLogger("repro")
    root.setLevel(level)
    handler = next((h for h in root.handlers
                    if getattr(h, _HANDLER_FLAG, False)), None)
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        setattr(handler, _HANDLER_FLAG, True)
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
    elif stream is not None:
        try:
            handler.setStream(stream)
        except ValueError:
            # setStream flushes the old stream first; if the host
            # (e.g. a test harness) already closed it, just swap.
            handler.stream = stream
    handler.setLevel(level)
    return level


def log_event(logger: logging.Logger, event: str, *,
              level: int = logging.INFO, **fields) -> None:
    """Log ``event key=value ...`` with lazy formatting.

    Floats are compacted with ``%g``; strings containing spaces are
    repr-quoted so lines stay grep- and machine-friendly.
    """
    if not logger.isEnabledFor(level):
        return
    parts = [event]
    for key, value in fields.items():
        if isinstance(value, float):
            text = f"{value:g}"
        elif isinstance(value, str) and (" " in value or not value):
            text = repr(value)
        else:
            text = str(value)
        parts.append(f"{key}={text}")
    logger.log(level, "%s", " ".join(parts))

"""The oracle matrix: every equivalence pair the codebase claims.

Each oracle takes one generated case and checks a pair of execution
paths that are documented to produce *identical* results.  The pairs:

``opt_vs_reference``
    The optimized event loop (:func:`repro.mpc.simulate`) against the
    preserved original loop (:mod:`repro.mpc._reference`), field for
    field on every cycle.
``compressed_vs_exact``
    ``RunConfig(compress_rounds=True)`` — the O(active-work) loop with
    analytic idle-round compression — expanded back to per-cycle form
    against the reference loop: every counter bitwise identical, every
    makespan bit-identical (far inside the documented 1e-12 budget).
``compressed_vs_exact_faults``
    The compressed loop with a per-case drawn :class:`FaultModel`
    (loss, duplicates, jitter, stall windows, fail-stops) against the
    exact faulty loop: fault draws are keyed to absolute cycle
    indices, so idle-round compression may not move a single fault.
``fault_null_dispatch``
    ``RunConfig(faults=<null FaultModel>)`` must dispatch onto the exact
    fault-free path: bit-identical results, fault counters included.
``protocol_zero_fault``
    The raw fault/protocol loop run with a null fault model prices acks
    (they are part of the reliable-delivery protocol, not of a fault),
    so at :data:`~repro.mpc.ZERO_OVERHEADS` — where acks are free — its
    timing fields must equal the fault-free loop's exactly.  Message
    and ack counters are excluded by design.
``recorder_invisible``
    Passing a :class:`~repro.mpc.timeline.TimelineRecorder` must not
    change any result field (the recorded loop is a mirror of the fast
    one).
``actors_vs_sim``
    The live actor backend (:mod:`repro.exec.actors`) against the
    discrete simulator: identical match signatures — per-processor
    activation counts, message counts, conflict-set deliveries — for
    the same ``(trace, config)``.  Timing fields are wall time on the
    live run and model time on the simulated one, so they are reported
    but never compared.  Declares ``every=5`` (an event loop per case
    is not free).
``live_trace_invisible``
    ``RunConfig(live_trace=True)`` — flight recorders on every actor,
    span contexts on every data message — must be bit-invisible to
    the actors backend: identical match signature and identical
    per-cycle counters (wall-measured makespans excluded), and the
    merged timeline must reconcile exactly against the run's own
    counters.  Declares ``every=5``.
``live_recovery``
    Supervised actors under a per-case drawn
    :class:`~repro.exec.chaos.ChaosPolicy` (kills, message drops,
    duplicates, delays, stalls): the run must either recover to a
    match signature bit-identical to the simulator's or raise a typed
    :class:`~repro.exec.errors.ExecutorError` — never wedge, never
    return silently-wrong counters.  The zero-chaos supervised run
    must equal the unsupervised one.  Declares ``every=10``.
``parallel_vs_serial``
    :func:`repro.mpc.parallel.run_grid` with worker processes returns
    the same results as the serial path.  Worker pools are expensive,
    so this oracle declares ``every=25`` and the runner samples it.
``cache_round_trip``
    A trace stored through the content-addressed cache and reloaded
    from disk (memory entry evicted) serializes identically to the
    original.
``rete_vs_naive``
    Incremental Rete match against the from-scratch naive matcher:
    identical conflict sets after every working-memory change.
``rete_fast_vs_reference``
    The flattened match kernel (:mod:`repro.rete.kernel`) against the
    preserved object-dispatch engine
    (:class:`~repro.rete._reference.ReferenceReteNetwork`): identical
    conflict sets after every change (with and without the vectorized
    alpha path), a bit-identical activation-event stream on the traced
    path, and equal memory totals at the end.  Together with
    ``rete_vs_naive`` this pins naive → reference Rete → fast Rete.

Each oracle returns ``None`` on success or a one-line failure detail.
All the per-oracle parameter draws (processor counts, overhead rows)
come from a CRC-keyed per-case stream, so a failure reproduces from
``(seed, index)`` alone.
"""

from __future__ import annotations

import dataclasses
import os
import random
import tempfile
import zlib
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..mpc import (DEFAULT_COSTS, TABLE_5_1, ZERO_OVERHEADS, FaultModel,
                   RunConfig, SupervisePolicy, simulate,
                   simulate_config)
from ..mpc._reference import simulate_reference
from ..mpc.faults import (DEFAULT_PROTOCOL, FailStop, StallWindow,
                          simulate_cycle_with_faults)
from ..mpc.mapping import RoundRobinMapping
from ..mpc.parallel import ENV_FORCE_POOL, GridPoint, run_grid
from ..mpc.simulator import compute_search_costs
from ..mpc.timeline import TimelineRecorder
from ..obs import get_registry
from ..ops5 import NaiveMatcher, parse_production
from ..ops5.wme import WME
from ..rete import ReferenceReteNetwork, ReteNetwork
from ..trace import cache as trace_cache
from ..trace.cache import cached_trace, trace_key
from ..trace.events import SectionTrace
from ..trace.format import dumps_trace
from .generate import CheckCase, ProgramCase, TraceCase

#: Timing fields compared by ``protocol_zero_fault`` (counter fields —
#: n_messages, acks — legitimately differ: the protocol loop counts its
#: ack traffic even when acks cost nothing).
_TIMING_FIELDS = ("index", "makespan_us", "proc_busy_us",
                  "proc_activations", "proc_left_activations",
                  "control_busy_us", "network_busy_us")

_PROC_CHOICES = (1, 2, 3, 4, 8, 16, 32)


@dataclass(frozen=True)
class Oracle:
    """One equivalence pair: a named check over one case kind."""

    name: str
    kind: str  # "trace" or "program"
    fn: Callable[[CheckCase], Optional[str]]
    #: Run on every n-th eligible case (1 = always); lets expensive
    #: oracles (worker pools) stay in the matrix without dominating it.
    every: int = 1


def _draws(case: CheckCase, oracle: str) -> random.Random:
    # CRC rather than hash(): the builtin is salted per process and
    # would make the parameter draws unreproducible.
    key = (case.seed << 24) ^ (case.index << 4) ^ zlib.crc32(
        oracle.encode())
    return random.Random(key)


def _pick_config(case: CheckCase, oracle: str):
    rng = _draws(case, oracle)
    n_procs = rng.choice(_PROC_CHOICES)
    overheads = rng.choice((ZERO_OVERHEADS,) + TABLE_5_1)
    return n_procs, overheads


def _diff_results(a, b, fields: Optional[Tuple[str, ...]] = None
                  ) -> Optional[str]:
    """First differing cycle/field between two SimResults, or None."""
    if len(a.cycles) != len(b.cycles):
        return f"cycle counts differ: {len(a.cycles)} vs {len(b.cycles)}"
    for ca, cb in zip(a.cycles, b.cycles):
        da, db = dataclasses.asdict(ca), dataclasses.asdict(cb)
        names = fields if fields is not None else tuple(da)
        for name in names:
            if da[name] != db[name]:
                return (f"cycle {ca.index}: {name} "
                        f"{da[name]!r} != {db[name]!r}")
    return None


# ---------------------------------------------------------------------------
# Trace oracles
# ---------------------------------------------------------------------------

def opt_vs_reference(case: TraceCase) -> Optional[str]:
    n_procs, overheads = _pick_config(case, "opt_vs_reference")
    opt = simulate(case.trace, n_procs, overheads=overheads)
    ref = simulate_reference(case.trace, n_procs, overheads=overheads)
    diff = _diff_results(opt, ref)
    if diff:
        return f"optimized != reference at P={n_procs}, " \
               f"overheads={overheads.label()}: {diff}"
    return None


def compressed_vs_exact(case: TraceCase) -> Optional[str]:
    n_procs, overheads = _pick_config(case, "compressed_vs_exact")
    exact = simulate_reference(case.trace, n_procs, overheads=overheads)
    compressed = simulate_config(case.trace, RunConfig(
        n_procs=n_procs, overheads=overheads, compress_rounds=True))
    diff = _diff_results(compressed.expanded(), exact)
    if diff:
        return f"compressed != reference at P={n_procs}, " \
               f"overheads={overheads.label()}: {diff}"
    if compressed.total_us != exact.total_us:
        return (f"compressed total_us {compressed.total_us!r} != "
                f"reference {exact.total_us!r} at P={n_procs}")
    if compressed.n_messages != exact.n_messages:
        return (f"compressed n_messages {compressed.n_messages} != "
                f"reference {exact.n_messages} at P={n_procs}")
    return None


def compressed_vs_exact_faults(case: TraceCase) -> Optional[str]:
    """Round compression composes with fault injection bitwise.

    Fault draws are keyed to absolute cycle indices, so collapsing a
    fully-idle stretch analytically must not shift any fault onto a
    different cycle: the compressed faulty run, expanded back to
    per-cycle form, is bit-identical to the exact faulty loop.
    """
    rng = _draws(case, "compressed_vs_exact_faults")
    n_procs = rng.choice(_PROC_CHOICES)
    overheads = rng.choice((ZERO_OVERHEADS,) + TABLE_5_1)
    indices = [c.index for c in case.trace.cycles]
    stalls: Tuple = ()
    failures: Tuple = ()
    if indices and rng.random() < 0.5:
        start = rng.uniform(0.0, 50.0)
        stalls = (StallWindow(
            proc=rng.randrange(n_procs), start_us=start,
            end_us=start + rng.uniform(0.0, 200.0),
            cycle=rng.choice(indices + [None])),)
    if indices and rng.random() < 0.3:
        failures = (FailStop(proc=rng.randrange(n_procs),
                             cycle=rng.choice(indices),
                             recovery_us=rng.uniform(100.0, 5000.0)),)
    model = FaultModel(seed=case.seed ^ case.index,
                       loss_prob=rng.choice((0.0, 0.01, 0.05)),
                       dup_prob=rng.choice((0.0, 0.01, 0.05)),
                       jitter_us=rng.choice((0.0, 25.0, 100.0)),
                       stalls=stalls, failures=failures)
    exact = simulate_config(case.trace, RunConfig(
        n_procs=n_procs, overheads=overheads, faults=model))
    compressed = simulate_config(case.trace, RunConfig(
        n_procs=n_procs, overheads=overheads, faults=model,
        compress_rounds=True))
    diff = _diff_results(compressed.expanded(), exact)
    if diff:
        return f"compressed faulty run != exact at P={n_procs}, " \
               f"overheads={overheads.label()}: {diff}"
    if compressed.total_us != exact.total_us:
        return (f"compressed faulty total_us {compressed.total_us!r} "
                f"!= exact {exact.total_us!r} at P={n_procs}")
    if compressed.n_messages != exact.n_messages:
        return (f"compressed faulty n_messages "
                f"{compressed.n_messages} != exact "
                f"{exact.n_messages} at P={n_procs}")
    return None


def fault_null_dispatch(case: TraceCase) -> Optional[str]:
    n_procs, overheads = _pick_config(case, "fault_null_dispatch")
    null = FaultModel(seed=case.seed)
    assert null.is_null
    plain = simulate(case.trace, n_procs, overheads=overheads)
    dispatched = simulate_config(case.trace, RunConfig(
        n_procs=n_procs, overheads=overheads, faults=null))
    diff = _diff_results(plain, dispatched)
    if diff:
        return f"null FaultModel changed the run at P={n_procs}, " \
               f"overheads={overheads.label()}: {diff}"
    return None


def protocol_zero_fault(case: TraceCase) -> Optional[str]:
    rng = _draws(case, "protocol_zero_fault")
    n_procs = rng.choice(_PROC_CHOICES)
    null = FaultModel(seed=case.seed)
    mapping = RoundRobinMapping(n_procs)
    search = compute_search_costs(case.trace, DEFAULT_COSTS)
    plain = simulate(case.trace, n_procs, overheads=ZERO_OVERHEADS)
    for cycle, expect in zip(case.trace, plain.cycles):
        got = simulate_cycle_with_faults(
            cycle, n_procs, DEFAULT_COSTS, ZERO_OVERHEADS, mapping,
            null, DEFAULT_PROTOCOL, search_costs=search)
        de, dg = dataclasses.asdict(expect), dataclasses.asdict(got)
        for name in _TIMING_FIELDS:
            if de[name] != dg[name]:
                return (f"zero-fault protocol loop != fault-free at "
                        f"P={n_procs}, cycle {cycle.index}: {name} "
                        f"{de[name]!r} != {dg[name]!r}")
    return None


def recorder_invisible(case: TraceCase) -> Optional[str]:
    n_procs, overheads = _pick_config(case, "recorder_invisible")
    plain = simulate(case.trace, n_procs, overheads=overheads)
    recorder = TimelineRecorder()
    recorded = simulate_config(case.trace, RunConfig(
        n_procs=n_procs, overheads=overheads, recorder=recorder))
    diff = _diff_results(plain, recorded)
    if diff:
        return f"recorder changed the run at P={n_procs}, " \
               f"overheads={overheads.label()}: {diff}"
    return None


def parallel_vs_serial(case: TraceCase) -> Optional[str]:
    rng = _draws(case, "parallel_vs_serial")
    points = [GridPoint(n_procs=rng.choice(_PROC_CHOICES),
                        overheads=rng.choice((ZERO_OVERHEADS,)
                                             + TABLE_5_1))
              for _ in range(4)]
    serial = run_grid(case.trace, points, workers=1)
    # Force past the pool-benefit gate: the oracle exists to exercise
    # the pool machinery, whatever the host's CPU count.
    saved = os.environ.get(ENV_FORCE_POOL)
    os.environ[ENV_FORCE_POOL] = "1"
    try:
        pooled = run_grid(case.trace, points, workers=2)
    finally:
        if saved is None:
            del os.environ[ENV_FORCE_POOL]
        else:
            os.environ[ENV_FORCE_POOL] = saved
    for i, (a, b) in enumerate(zip(serial, pooled)):
        diff = _diff_results(a, b)
        if diff:
            return f"worker pool diverged on grid point {i}: {diff}"
    return None


def actors_vs_sim(case: TraceCase) -> Optional[str]:
    from ..exec import match_signature, run
    n_procs, overheads = _pick_config(case, "actors_vs_sim")
    config = RunConfig(n_procs=n_procs, overheads=overheads)
    sim = run(case.trace, config, backend="sim")
    live = run(case.trace, config, backend="actors")
    sim_sig, live_sig = match_signature(sim), match_signature(live)
    if sim_sig != live_sig:
        for i, (a, b) in enumerate(zip(sim_sig, live_sig)):
            if a != b:
                return (f"actor run diverged from simulator at "
                        f"P={n_procs}, overheads={overheads.label()}, "
                        f"cycle {i}: {a!r} != {b!r}")
        return (f"actor run diverged from simulator at P={n_procs}: "
                f"cycle counts {len(sim_sig)} vs {len(live_sig)}")
    return None


def live_trace_invisible(case: TraceCase) -> Optional[str]:
    """Live tracing must not change what the actors backend computes.

    Runs the asyncio actors backend twice — untraced, then with
    ``live_trace=True`` — and requires the match signatures and every
    per-cycle result field to be identical, except ``makespan_us``
    (measured wall time on a live run, legitimately different run to
    run).  The traced run must return a merged timeline that passes
    :func:`repro.obs.trace.reconcile_live` — span counts summing
    exactly to the protocol's own activation and message counters.
    """
    from ..exec import match_signature, run
    from ..obs.trace import reconcile_live
    n_procs, overheads = _pick_config(case, "live_trace_invisible")
    config = RunConfig(n_procs=n_procs, overheads=overheads)
    plain = run(case.trace, config, backend="actors")
    traced = run(case.trace, config.replace(live_trace=True),
                 backend="actors")
    if match_signature(plain) != match_signature(traced):
        return (f"live tracing changed the match signature at "
                f"P={n_procs}, overheads={overheads.label()}")
    if plain.result.cycles:
        fields = tuple(
            name for name
            in dataclasses.asdict(plain.result.cycles[0])
            if name != "makespan_us")
        diff = _diff_results(plain.result, traced.result,
                             fields=fields)
        if diff:
            return (f"live tracing changed results at P={n_procs}, "
                    f"overheads={overheads.label()}: {diff}")
    if traced.live is None:
        return "traced run returned no merged timeline"
    try:
        reconcile_live(traced.live, traced.result)
    except ValueError as err:
        return (f"live trace failed reconciliation at P={n_procs}, "
                f"overheads={overheads.label()}: {err}")
    return None


def live_recovery(case: TraceCase) -> Optional[str]:
    """Supervised actors under seeded chaos: recover or fail loudly.

    Draws a chaos policy per case (kill / drop / duplicate / delay /
    stall, or a mix), runs the asyncio actors under supervision, and
    requires one of exactly two outcomes: a match signature
    bit-identical to the simulator's, or a typed
    :class:`~repro.exec.errors.ExecutorError`.  A hang is converted to
    :class:`~repro.exec.errors.ExecutorWedged` by the per-cycle
    deadline, so every failure mode is observable.  Also proves the
    zero-chaos supervised run is signature-identical to the
    unsupervised one (supervision must be invisible when nothing
    fails).
    """
    from ..exec import (ChaosPolicy, ExecutorError, match_signature,
                        run)
    rng = _draws(case, "live_recovery")
    n_procs = rng.choice((2, 3, 4, 8))
    overheads = rng.choice((ZERO_OVERHEADS,) + TABLE_5_1)
    policy = SupervisePolicy(heartbeat_s=0.02, cycle_timeout_s=5.0,
                             max_restarts=3, restart_delay_s=0.0)
    config = RunConfig(n_procs=n_procs, overheads=overheads,
                       supervise=policy)
    sim_sig = match_signature(run(case.trace, config, backend="sim"))

    quiet = run(case.trace, config, backend="actors")
    if match_signature(quiet) != sim_sig:
        return (f"zero-chaos supervised run diverged from the "
                f"simulator at P={n_procs}, "
                f"overheads={overheads.label()}")

    indices = [c.index for c in case.trace.cycles]
    kills = ()
    if indices and rng.random() < 0.5:
        kills = ((rng.choice(indices), rng.randrange(n_procs)),)
    kind = rng.choice(("drop", "dup", "delay", "stall", "mix"))
    prob = rng.choice((0.005, 0.01, 0.02))
    chaos = ChaosPolicy(
        seed=(case.seed << 16) ^ case.index,
        kills=kills,
        drop_prob=prob if kind in ("drop", "mix") else 0.0,
        dup_prob=prob if kind in ("dup", "mix") else 0.0,
        delay_prob=prob if kind in ("delay", "mix") else 0.0,
        delay_s=0.002,
        stall_prob=prob if kind in ("stall", "mix") else 0.0,
        stall_s=0.01)
    try:
        chaotic = run(case.trace, config, backend="actors",
                      chaos=chaos)
    except ExecutorError:
        return None  # typed and actionable — the conforming failure
    if match_signature(chaotic) != sim_sig:
        return (f"SILENT DIVERGENCE under chaos ({kind}, p={prob}, "
                f"kills={kills}) at P={n_procs}, "
                f"overheads={overheads.label()}: run succeeded with "
                f"wrong counters")
    return None


def cache_round_trip(case: TraceCase) -> Optional[str]:
    if not trace_cache.cache_enabled():
        return None  # nothing to check when the cache is off
    key = trace_key("check", source="check.oracles",
                    seed=case.seed, index=case.index)
    want = dumps_trace(case.trace)
    with tempfile.TemporaryDirectory(prefix="repro-check-") as tmp:
        saved = os.environ.get("REPRO_TRACE_CACHE_DIR")
        os.environ["REPRO_TRACE_CACHE_DIR"] = tmp
        try:
            cached_trace(key, lambda: case.trace)
            # Drop the memory entry so the second lookup must come
            # from disk; the build callback proves it never fires.
            trace_cache._memory.pop(key, None)
            reloaded = cached_trace(
                key, lambda: (_ for _ in ()).throw(
                    AssertionError("cache missed its own entry")))
        except AssertionError as err:
            return str(err)
        finally:
            if saved is None:
                del os.environ["REPRO_TRACE_CACHE_DIR"]
            else:
                os.environ["REPRO_TRACE_CACHE_DIR"] = saved
            trace_cache._memory.pop(key, None)
    got = dumps_trace(reloaded)
    if want != got:
        return "trace cache round-trip changed the serialized trace"
    return None


# ---------------------------------------------------------------------------
# Program oracle
# ---------------------------------------------------------------------------

def _conflict_signature(matcher):
    return sorted((inst.production.name,
                   tuple(w.wme_id for w in inst.wmes))
                  for inst in matcher.conflict_set())


def rete_vs_naive(case: ProgramCase) -> Optional[str]:
    rete, naive = ReteNetwork(), NaiveMatcher()
    for source in case.rules:
        production = parse_production(source)
        rete.add_production(production)
        naive.add_production(production)
    wmes = {}
    timestamp = 0
    for step, op in enumerate(case.script):
        if op[0] == "add":
            _, wid, cls, payload = op
            timestamp += 1
            wme = WME(wid, cls, dict(payload), timestamp=timestamp)
            wmes[wid] = wme
            rete.add_wme(wme)
            naive.add_wme(wme)
        else:
            wme = wmes.pop(op[1])
            rete.remove_wme(wme)
            naive.remove_wme(wme)
        if _conflict_signature(rete) != _conflict_signature(naive):
            return (f"conflict sets diverged after step {step} "
                    f"({op[0]} wme {op[1]})")
    return None


def _event_tuple(event):
    return (event.act_id, event.parent_id, event.node_id,
            event.node_label, event.node_kind, event.side, event.tag,
            event.key, event.n_successors)


def rete_fast_vs_reference(case: ProgramCase) -> Optional[str]:
    """Pin the flattened kernel to the preserved object-dispatch engine.

    Three engines run the same churn script: the reference network and
    the kernel with an observer attached (exercising the traced stack
    machine, which must reproduce the reference's activation-event
    stream *bit for bit* — ids, parents, keys, successor counts), and
    an unobserved kernel with the vectorized alpha path disabled
    (exercising the untraced fast walk and the pure-Python fallback).
    Conflict sets are compared after every delta; memory totals and the
    event streams are compared at the end.
    """
    reference = ReferenceReteNetwork()
    fast = ReteNetwork()
    plain = ReteNetwork(use_numpy=False)
    ref_events: List = []
    fast_events: List = []
    reference.observers.append(ref_events.append)
    fast.observers.append(fast_events.append)
    engines = (reference, fast, plain)
    for source in case.rules:
        production = parse_production(source)
        for engine in engines:
            engine.add_production(production)
    wmes = {}
    timestamp = 0
    for step, op in enumerate(case.script):
        if op[0] == "add":
            _, wid, cls, payload = op
            timestamp += 1
            wme = WME(wid, cls, dict(payload), timestamp=timestamp)
            wmes[wid] = wme
            for engine in engines:
                engine.add_wme(wme)
        else:
            wme = wmes.pop(op[1])
            for engine in engines:
                engine.remove_wme(wme)
        want = _conflict_signature(reference)
        if _conflict_signature(fast) != want:
            return (f"fast kernel conflict set diverged after step "
                    f"{step} ({op[0]} wme {op[1]})")
        if _conflict_signature(plain) != want:
            return (f"no-numpy kernel conflict set diverged after step "
                    f"{step} ({op[0]} wme {op[1]})")
    if len(ref_events) != len(fast_events):
        return (f"event stream lengths diverged: reference "
                f"{len(ref_events)}, fast {len(fast_events)}")
    for i, (ref_ev, fast_ev) in enumerate(zip(ref_events, fast_events)):
        if _event_tuple(ref_ev) != _event_tuple(fast_ev):
            return (f"activation event {i} diverged: reference "
                    f"{_event_tuple(ref_ev)}, fast {_event_tuple(fast_ev)}")
    ref_counts = reference.memories.counts()
    for name, engine in (("fast", fast), ("no-numpy", plain)):
        if engine.memories.counts() != ref_counts:
            return (f"{name} memory totals {engine.memories.counts()} "
                    f"!= reference {ref_counts}")
    return None


#: The full matrix, in execution order.
ORACLES: Tuple[Oracle, ...] = (
    Oracle("opt_vs_reference", "trace", opt_vs_reference),
    Oracle("compressed_vs_exact", "trace", compressed_vs_exact),
    Oracle("compressed_vs_exact_faults", "trace",
           compressed_vs_exact_faults),
    Oracle("fault_null_dispatch", "trace", fault_null_dispatch),
    Oracle("protocol_zero_fault", "trace", protocol_zero_fault),
    Oracle("recorder_invisible", "trace", recorder_invisible),
    Oracle("actors_vs_sim", "trace", actors_vs_sim, every=5),
    Oracle("live_trace_invisible", "trace", live_trace_invisible,
           every=5),
    Oracle("live_recovery", "trace", live_recovery, every=10),
    Oracle("cache_round_trip", "trace", cache_round_trip),
    Oracle("parallel_vs_serial", "trace", parallel_vs_serial, every=25),
    Oracle("rete_vs_naive", "program", rete_vs_naive),
    Oracle("rete_fast_vs_reference", "program", rete_fast_vs_reference),
)


def run_oracles(case: CheckCase, *, sample: bool = True,
                only: Optional[Tuple[str, ...]] = None
                ) -> List[Tuple[str, str]]:
    """All oracle failures for *case* as ``(oracle_name, detail)``.

    With ``sample=False`` the ``every`` throttles are ignored — the
    shrinker uses that to re-check a sampled oracle on every candidate.
    *only* restricts the run to the named oracles; an explicitly named
    oracle runs on every eligible case, ``every`` notwithstanding.
    """
    kind = "program" if isinstance(case, ProgramCase) else "trace"
    failures: List[Tuple[str, str]] = []
    registry = get_registry()
    for oracle in ORACLES:
        if oracle.kind != kind:
            continue
        if only is not None:
            if oracle.name not in only:
                continue
        elif sample and oracle.every > 1 \
                and case.index % oracle.every != 0:
            continue
        registry.counter("check.oracle_runs").inc()
        detail = oracle.fn(case)
        if detail is not None:
            failures.append((oracle.name, detail))
    return failures

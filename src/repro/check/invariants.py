"""Metamorphic invariants: cross-run properties of the simulator.

Where an oracle (:mod:`repro.check.oracles`) compares two code paths
that claim *identity*, an invariant states a property any correct
pricing of the Section 3.2 mapping must satisfy, whatever the input:

``work_conservation``
    Activation counts are a property of the trace, and at
    :data:`~repro.mpc.ZERO_OVERHEADS` the total processor busy time is
    the constant-test replication plus the activation work — neither
    can depend on *where* buckets land, so round-robin, random and
    per-cycle greedy mappings must agree exactly.
``speedup_bound``
    Speedup over the one-processor base can never exceed P: constant
    tests are replicated on every processor and activation work is
    conserved, so the makespan is at least ``base / P``.
``overhead_monotone``
    Walking up the Table 5-1 rows (and starting from the zero-latency
    base) can only slow a run down: every row adds per-message cost and
    none removes work.
``attribution_partition``
    The idle-time attribution categories partition the measured idle
    time of every cycle, to the bit
    (:meth:`~repro.mpc.attribution.CycleAttribution.check_sums`).
``transform_instantiations``
    The Section-S3 restructuring transforms — unsharing, dummy-node
    insertion, copy-and-constraint — reshape *match* work but must not
    invent or lose conflict-set deliveries: per-cycle terminal counts
    are preserved, and the transformed trace still validates.
``serialization_round_trip``
    ``loads(dumps(trace))`` is a fixed point: the reload serializes to
    the same bytes and reports the same Table 5-2 stats.

Each invariant returns ``None`` or a one-line failure detail; the
runner attaches the falsifying ``(seed, index)``.  All were probed over
hundreds of generated cases before being pinned exact — in particular
``overhead_monotone`` holds with no tolerance because every Table 5-1
row dominates the previous one component-wise.
"""

from __future__ import annotations

import collections
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..mpc import (TABLE_5_1, ZERO_OVERHEADS, RunConfig, simulate,
                   simulate_base, simulate_config)
from ..mpc.attribution import attribute_timeline
from ..mpc.mapping import RandomMapping
from ..mpc.simulator import GreedyMappingFactory
from ..mpc.timeline import TimelineRecorder
from ..obs import get_registry
from ..trace.events import KIND_TERMINAL, SectionTrace
from ..trace.format import dumps_trace, loads_trace
from ..trace.transform import (copy_and_constraint_trace,
                               insert_dummy_nodes, unshare_trace)
from ..trace.validate import validate_trace
from .generate import TraceCase

_PROC_CHOICES = (1, 2, 3, 4, 8, 16, 32)


@dataclass(frozen=True)
class Invariant:
    """One named metamorphic property over a generated trace case."""

    name: str
    fn: Callable[[TraceCase], Optional[str]]


def _rng(case: TraceCase, name: str) -> random.Random:
    import zlib
    return random.Random((case.seed << 24) ^ (case.index << 4)
                         ^ zlib.crc32(name.encode()))


def _busy(result) -> float:
    return sum(sum(c.proc_busy_us) for c in result.cycles)


def _activations(result) -> Tuple[int, int]:
    return (sum(sum(c.proc_activations) for c in result.cycles),
            sum(sum(c.proc_left_activations) for c in result.cycles))


def work_conservation(case: TraceCase) -> Optional[str]:
    rng = _rng(case, "work_conservation")
    n_procs = rng.choice(_PROC_CHOICES)
    runs = {
        "round_robin": simulate(case.trace, n_procs,
                                overheads=ZERO_OVERHEADS),
        "random": simulate_config(case.trace, RunConfig(
            n_procs=n_procs, overheads=ZERO_OVERHEADS,
            mapping=RandomMapping(n_procs, seed=case.index))),
        "greedy": simulate_config(case.trace, RunConfig(
            n_procs=n_procs, overheads=ZERO_OVERHEADS,
            mapping_factory=GreedyMappingFactory(n_procs))),
    }
    base_name, base = next(iter(runs.items()))
    for name, run in runs.items():
        if _activations(run) != _activations(base):
            return (f"activation counts differ between {base_name} and "
                    f"{name} mappings at P={n_procs}")
        if _busy(run) != _busy(base):
            return (f"total busy time differs between {base_name} and "
                    f"{name} mappings at P={n_procs}: "
                    f"{_busy(base)!r} vs {_busy(run)!r}")
    return None


def speedup_bound(case: TraceCase) -> Optional[str]:
    base = simulate_base(case.trace)
    for n_procs in (1, 2, 8, 32):
        run = simulate(case.trace, n_procs, overheads=ZERO_OVERHEADS)
        s = base.total_us / run.total_us
        if s > n_procs + 1e-9:
            return f"speedup {s:.6f} exceeds P={n_procs}"
    return None


def overhead_monotone(case: TraceCase) -> Optional[str]:
    rng = _rng(case, "overhead_monotone")
    n_procs = rng.choice(_PROC_CHOICES)
    ladder = (ZERO_OVERHEADS,) + TABLE_5_1
    prev_label, prev = None, None
    for overheads in ladder:
        total = simulate(case.trace, n_procs, overheads=overheads).total_us
        if prev is not None and total < prev:
            return (f"raising overheads {prev_label} -> "
                    f"{overheads.label()} sped the run up at "
                    f"P={n_procs}: {prev!r} -> {total!r}")
        prev_label, prev = overheads.label(), total
    return None


def attribution_partition(case: TraceCase) -> Optional[str]:
    rng = _rng(case, "attribution_partition")
    n_procs = rng.choice(_PROC_CHOICES)
    overheads = rng.choice((ZERO_OVERHEADS,) + TABLE_5_1)
    recorder = TimelineRecorder()
    simulate_config(case.trace, RunConfig(
        n_procs=n_procs, overheads=overheads, recorder=recorder))
    attribution = attribute_timeline(recorder.timeline)
    try:
        for cycle in attribution.cycles:
            cycle.check_sums(exact=True)
    except ValueError as err:
        return (f"idle categories do not partition idle time at "
                f"P={n_procs}, overheads={overheads.label()}: {err}")
    return None


def _terminals_per_cycle(trace: SectionTrace) -> List[int]:
    return [sum(1 for act in cycle if act.kind == KIND_TERMINAL)
            for cycle in trace]


def transform_instantiations(case: TraceCase) -> Optional[str]:
    rng = _rng(case, "transform_instantiations")
    want = _terminals_per_cycle(case.trace)
    # A busy non-terminal node to restructure (transforms of untouched
    # nodes are no-ops, which would make the invariant vacuous).
    counts = collections.Counter(
        act.node_id for cycle in case.trace for act in cycle
        if act.kind != KIND_TERMINAL)
    node = counts.most_common(1)[0][0] if counts else None
    variants = [("unshare", unshare_trace(case.trace))]
    if node is not None:
        variants.append(
            ("insert_dummy_nodes",
             insert_dummy_nodes(case.trace, node,
                                parts=rng.choice((2, 3)))))
        variants.append(
            ("copy_and_constraint",
             copy_and_constraint_trace(case.trace, node,
                                       k=rng.choice((2, 4)))))
    for name, variant in variants:
        problems = validate_trace(variant, raise_on_error=False)
        if problems:
            return f"{name} produced an invalid trace: {problems[0]}"
        got = _terminals_per_cycle(variant)
        if got != want:
            return (f"{name} changed per-cycle instantiation counts: "
                    f"{want} -> {got}")
    return None


def serialization_round_trip(case: TraceCase) -> Optional[str]:
    blob = dumps_trace(case.trace)
    reloaded = loads_trace(blob)
    if dumps_trace(reloaded) != blob:
        return "dumps(loads(dumps(trace))) != dumps(trace)"
    if reloaded.stats() != case.trace.stats():
        return "reloaded trace reports different activation stats"
    return None


#: The registry, in execution order.  To add an invariant, write a
#: ``fn(case) -> Optional[str]`` above and list it here; the runner,
#: the CLI and the nightly job pick it up automatically.
INVARIANTS: Tuple[Invariant, ...] = (
    Invariant("work_conservation", work_conservation),
    Invariant("speedup_bound", speedup_bound),
    Invariant("overhead_monotone", overhead_monotone),
    Invariant("attribution_partition", attribution_partition),
    Invariant("transform_instantiations", transform_instantiations),
    Invariant("serialization_round_trip", serialization_round_trip),
)


def run_invariants(case: TraceCase) -> List[Tuple[str, str]]:
    """All invariant failures for *case* as ``(name, detail)``."""
    failures: List[Tuple[str, str]] = []
    registry = get_registry()
    for invariant in INVARIANTS:
        registry.counter("check.invariant_runs").inc()
        detail = invariant.fn(case)
        if detail is not None:
            failures.append((invariant.name, detail))
    return failures

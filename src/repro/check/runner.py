"""Drive the conformance harness: generate, check, shrink, report.

:func:`run_check` is what ``repro check`` calls: it walks the seeded
case stream, runs every applicable oracle and invariant on each case,
and for each failing case shrinks the input to a minimal repro and
writes it as a JSON file.  The repro records everything needed to
reproduce by hand:

* the case descriptor (``seed``/``index``/``family``) —
  :func:`repro.check.generate.build_case` rebuilds the original input
  from it alone;
* the failing check names and their one-line details;
* the shrunk input itself (a serialized trace, or rules + script).

Progress is counted in the :mod:`repro.obs` registry under
``check.cases``, ``check.failures``, ``check.oracle_runs``,
``check.invariant_runs`` and ``check.shrink_evals``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs import get_registry
from ..trace.events import SectionTrace
from ..trace.format import dumps_trace
from .generate import (CheckCase, ProgramCase, TraceCase, build_case,
                       generate_cases)
from .invariants import INVARIANTS, run_invariants
from .oracles import ORACLES, run_oracles
from .shrink import shrink_program, shrink_trace

DEFAULT_BUDGET = 200


@dataclass
class CheckFailure:
    """One falsified case, with its shrunk repro."""

    case: Dict[str, object]
    checks: List[Tuple[str, str]]
    repro: Dict[str, object]
    repro_path: Optional[str] = None

    def describe(self) -> str:
        names = ", ".join(name for name, _ in self.checks)
        return (f"case {self.case['index']} (seed {self.case['seed']}, "
                f"{self.case['family']}): {names}")


@dataclass
class CheckReport:
    """The outcome of one ``repro check`` run."""

    seed: int
    budget: int
    cases_run: int = 0
    elapsed_s: float = 0.0
    failures: List[CheckFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "cases_run": self.cases_run,
            "elapsed_s": round(self.elapsed_s, 3),
            "ok": self.ok,
            "failures": [
                {"case": f.case,
                 "checks": [{"name": n, "detail": d} for n, d in f.checks],
                 "repro_path": f.repro_path}
                for f in self.failures
            ],
        }


def _check_case(case: CheckCase,
                only: Optional[Tuple[str, ...]] = None
                ) -> List[Tuple[str, str]]:
    failures = list(run_oracles(case, only=only))
    if isinstance(case, TraceCase):
        if only is None:
            failures.extend(run_invariants(case))
        else:
            failures.extend(
                (name, detail)
                for name, detail in run_invariants(case)
                if name in only)
    return failures


def _recheck_names(case: CheckCase,
                   names: List[str]) -> List[Tuple[str, str]]:
    """Re-run only the named checks (used on shrink candidates)."""
    failures: List[Tuple[str, str]] = []
    for oracle in ORACLES:
        if oracle.name in names:
            detail = oracle.fn(case)
            if detail is not None:
                failures.append((oracle.name, detail))
    if isinstance(case, TraceCase):
        for invariant in INVARIANTS:
            if invariant.name in names:
                detail = invariant.fn(case)
                if detail is not None:
                    failures.append((invariant.name, detail))
    return failures


def _shrink_case(case: CheckCase,
                 checks: List[Tuple[str, str]],
                 max_evals: int) -> Dict[str, object]:
    """Minimal repro payload for a failing case."""
    names = [name for name, _ in checks]
    if isinstance(case, ProgramCase):
        def fails(rules, script) -> bool:
            candidate = ProgramCase(seed=case.seed, index=case.index,
                                    rules=rules, script=script)
            try:
                return bool(_recheck_names(candidate, names))
            except Exception:
                return False  # an erroring candidate is not a repro
        rules, script = shrink_program(case.rules, case.script, fails,
                                       max_evals=max_evals)
        return {"rules": list(rules),
                "script": [list(op) for op in script]}

    def fails(trace: SectionTrace) -> bool:
        candidate = TraceCase(seed=case.seed, index=case.index,
                              family=case.family, trace=trace)
        try:
            return bool(_recheck_names(candidate, names))
        except Exception:
            return False
    shrunk = shrink_trace(case.trace, fails, max_evals=max_evals)
    # The native text format (repro.trace.format), embedded as lines so
    # the repro JSON stays one self-contained reviewable file.
    return {"trace": dumps_trace(shrunk).splitlines(),
            "n_cycles": len(shrunk.cycles),
            "n_activations": sum(len(c.activations)
                                 for c in shrunk.cycles)}


def _write_repro(failure: CheckFailure, out_dir: str) -> str:
    os.makedirs(out_dir, exist_ok=True)
    name = f"repro-seed{failure.case['seed']}-" \
           f"case{failure.case['index']}.json"
    path = os.path.join(out_dir, name)
    payload = {"case": failure.case,
               "checks": [{"name": n, "detail": d}
                          for n, d in failure.checks],
               "repro": failure.repro}
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")
    return path


def run_check(seed: int = 0, budget: int = DEFAULT_BUDGET, *,
              out_dir: Optional[str] = None,
              shrink_evals: int = 400,
              only: Optional[Tuple[str, ...]] = None,
              progress=None) -> CheckReport:
    """Run the whole matrix over *budget* cases from *seed*.

    *progress*, when given, is called as ``progress(case, failures)``
    after each case (the CLI uses it for verbose logging).  Failing
    cases are shrunk and, when *out_dir* is set, written there as JSON.
    *only* restricts the run to the named oracles/invariants (the CI
    chaos leg uses ``only=("live_recovery",)``); unknown names raise
    ``ValueError`` so a typo cannot silently check nothing.
    """
    if only is not None:
        known = ({o.name for o in ORACLES}
                 | {i.name for i in INVARIANTS})
        unknown = sorted(set(only) - known)
        if unknown:
            raise ValueError(
                f"unknown check name(s) {', '.join(unknown)}; "
                f"choose from {', '.join(sorted(known))}")
    registry = get_registry()
    report = CheckReport(seed=seed, budget=budget)
    started = time.perf_counter()
    for case in generate_cases(seed, budget):
        registry.counter("check.cases").inc()
        report.cases_run += 1
        checks = _check_case(case, only)
        if progress is not None:
            progress(case, checks)
        if not checks:
            continue
        registry.counter("check.failures").inc()
        failure = CheckFailure(case=dict(case.descriptor()),
                               checks=checks,
                               repro=_shrink_case(case, checks,
                                                  shrink_evals))
        if out_dir is not None:
            failure.repro_path = _write_repro(failure, out_dir)
        report.failures.append(failure)
    report.elapsed_s = time.perf_counter() - started
    return report


def rebuild_failure_case(seed: int, index: int) -> CheckCase:
    """The original (unshrunk) input of a repro, from its descriptor."""
    return build_case(seed, index)

"""Greedy minimization of failing inputs to minimal repros.

A fuzz failure on a 2000-activation trace is unreadable; the shrinker
reduces it while preserving the failure, in the spirit of delta
debugging: repeat greedy passes until a fixpoint (or an evaluation
budget) is reached.  For traces the passes are, in order:

1. **drop cycles** — remove whole cycles, largest first;
2. **drop root subtrees** — remove a root activation and every
   descendant;
3. **drop leaf activations** — remove childless activations (terminals
   included) one at a time;
4. **shrink key values** — replace hash-key value tuples with ``()``.

Every candidate must still be a valid trace
(:func:`repro.trace.validate_trace`) and must still fail the caller's
predicate, so the result is always a true repro.  Program cases get the
analogous treatment: drop rules, then drop script operations (removing
an ``add`` also removes the matching ``remove`` so the script stays
well-formed).

The predicate is called at most *max_evals* times — shrinking is a
debugging aid, not a search, and oracle evaluations dominate its cost.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Set, Tuple

from ..obs import get_registry
from ..rete.hashing import BucketKey
from ..trace.events import CycleTrace, SectionTrace, TraceActivation
from ..trace.transform import _renumber_cycle
from ..trace.validate import validate_trace

TracePredicate = Callable[[SectionTrace], bool]
ScriptPredicate = Callable[[Tuple[str, ...], Tuple[Tuple, ...]], bool]

DEFAULT_MAX_EVALS = 400


class _Budget:
    def __init__(self, max_evals: int) -> None:
        self.left = max_evals
        self.used = 0

    def spend(self) -> bool:
        if self.left <= 0:
            return False
        self.left -= 1
        self.used += 1
        get_registry().counter("check.shrink_evals").inc()
        return True


def _copy_act(act: TraceActivation, *,
              successors: Optional[Tuple[int, ...]] = None,
              key: Optional[BucketKey] = None) -> TraceActivation:
    return TraceActivation(
        act_id=act.act_id, parent_id=act.parent_id, node_id=act.node_id,
        kind=act.kind, side=act.side, tag=act.tag,
        key=key if key is not None else act.key,
        successors=(successors if successors is not None
                    else act.successors))


def _without_acts(cycle: CycleTrace, doomed: Set[int]) -> CycleTrace:
    """The cycle minus *doomed* and everything they generate."""
    # Close over descendants (children of dropped activations must go).
    changed = True
    while changed:
        changed = False
        for act in cycle:
            if act.parent_id in doomed and act.act_id not in doomed:
                doomed.add(act.act_id)
                changed = True
    out = CycleTrace(index=cycle.index)
    for act in cycle:
        if act.act_id in doomed:
            continue
        out.add(_copy_act(act, successors=tuple(
            s for s in act.successors if s not in doomed)))
    return _renumber_cycle(out)


def _replace_cycle(trace: SectionTrace, position: int,
                   cycle: Optional[CycleTrace]) -> SectionTrace:
    cycles = [c for i, c in enumerate(trace.cycles)
              if i != position or cycle is not None]
    if cycle is not None:
        cycles = list(trace.cycles)
        cycles[position] = cycle
    return SectionTrace(name=trace.name, cycles=cycles)


def _is_valid(trace: SectionTrace) -> bool:
    if not trace.cycles:
        return False
    return not validate_trace(trace, raise_on_error=False)


def _try(candidate: SectionTrace, fails: TracePredicate,
         budget: _Budget) -> bool:
    return (_is_valid(candidate) and budget.spend()
            and fails(candidate))


def _pass_drop_cycles(trace: SectionTrace, fails: TracePredicate,
                      budget: _Budget) -> Tuple[SectionTrace, bool]:
    any_progress = False
    progressed = True
    while progressed and len(trace.cycles) > 1 and budget.left > 0:
        progressed = False
        # Largest first: dropping a big cycle simplifies the most.
        order = sorted(range(len(trace.cycles)),
                       key=lambda i: -len(trace.cycles[i].activations))
        for position in order:
            candidate = SectionTrace(
                name=trace.name,
                cycles=[c for i, c in enumerate(trace.cycles)
                        if i != position])
            if _try(candidate, fails, budget):
                trace = candidate
                progressed = any_progress = True
                break
    return trace, any_progress


def _pass_drop_subtrees(trace: SectionTrace, fails: TracePredicate,
                        budget: _Budget) -> Tuple[SectionTrace, bool]:
    progressed = True
    any_progress = False
    while progressed and budget.left > 0:
        progressed = False
        for position, cycle in enumerate(trace.cycles):
            roots = [a.act_id for a in cycle if a.parent_id is None]
            if len(roots) <= 1:
                continue
            for root in roots:
                shrunk = _without_acts(cycle, {root})
                candidate = _replace_cycle(trace, position, shrunk)
                if _try(candidate, fails, budget):
                    trace = candidate
                    progressed = any_progress = True
                    break
            if progressed:
                break
    return trace, any_progress


def _pass_drop_leaves(trace: SectionTrace, fails: TracePredicate,
                      budget: _Budget) -> Tuple[SectionTrace, bool]:
    progressed = True
    any_progress = False
    while progressed and budget.left > 0:
        progressed = False
        for position, cycle in enumerate(trace.cycles):
            leaves = [a.act_id for a in cycle if not a.successors]
            if len(cycle.activations) <= 1:
                continue
            for leaf in leaves:
                shrunk = _without_acts(cycle, {leaf})
                if not shrunk.activations:
                    continue
                candidate = _replace_cycle(trace, position, shrunk)
                if _try(candidate, fails, budget):
                    trace = candidate
                    progressed = any_progress = True
                    break
            if progressed:
                break
    return trace, any_progress


def _pass_shrink_values(trace: SectionTrace, fails: TracePredicate,
                        budget: _Budget) -> Tuple[SectionTrace, bool]:
    any_progress = False
    for position, cycle in enumerate(trace.cycles):
        for act in list(cycle):
            if not act.key.values:
                continue
            out = CycleTrace(index=cycle.index)
            for other in cycle:
                if other.act_id == act.act_id:
                    out.add(_copy_act(
                        other, key=BucketKey(other.key.node_id, ())))
                else:
                    out.add(_copy_act(other))
            candidate = _replace_cycle(trace, position, out)
            if _try(candidate, fails, budget):
                trace = candidate
                cycle = trace.cycles[position]
                any_progress = True
    return trace, any_progress


_TRACE_PASSES = (_pass_drop_cycles, _pass_drop_subtrees,
                 _pass_drop_leaves, _pass_shrink_values)


def shrink_trace(trace: SectionTrace, fails: TracePredicate,
                 max_evals: int = DEFAULT_MAX_EVALS) -> SectionTrace:
    """Smallest trace the passes can reach that still satisfies *fails*.

    *fails* must be true for *trace* itself (the caller observed the
    failure); if it is not, the input comes back unchanged.
    """
    budget = _Budget(max_evals)
    current = trace
    progressed = True
    while progressed and budget.left > 0:
        progressed = False
        for shrink_pass in _TRACE_PASSES:
            current, moved = shrink_pass(current, fails, budget)
            progressed = progressed or moved
    return current


# ---------------------------------------------------------------------------
# Program cases
# ---------------------------------------------------------------------------

def _drop_op(script: Sequence[Tuple], position: int) -> Tuple[Tuple, ...]:
    """Drop one op; dropping an add drops its remove too."""
    op = script[position]
    out = [o for i, o in enumerate(script) if i != position]
    if op[0] == "add":
        wid = op[1]
        out = [o for o in out if not (o[0] == "remove" and o[1] == wid)]
    return tuple(out)


def shrink_program(rules: Tuple[str, ...], script: Tuple[Tuple, ...],
                   fails: ScriptPredicate,
                   max_evals: int = DEFAULT_MAX_EVALS
                   ) -> Tuple[Tuple[str, ...], Tuple[Tuple, ...]]:
    """Minimal (rules, script) still satisfying *fails*."""
    budget = _Budget(max_evals)
    progressed = True
    while progressed and budget.left > 0:
        progressed = False
        for i in range(len(rules) - 1, -1, -1):
            if len(rules) <= 1:
                break
            candidate = rules[:i] + rules[i + 1:]
            if budget.spend() and fails(candidate, script):
                rules, progressed = candidate, True
        for i in range(len(script) - 1, -1, -1):
            if len(script) <= 1 or i >= len(script):
                continue
            candidate = _drop_op(script, i)
            if candidate and budget.spend() and fails(rules, candidate):
                script, progressed = candidate, True
    return rules, script

"""Seeded adversarial input generation for the conformance harness.

The oracle matrix (:mod:`repro.check.oracles`) and the invariant
registry (:mod:`repro.check.invariants`) are only as strong as the
inputs they see, so this module generates random-but-deterministic
inputs biased toward the paper's hard cases:

* **cross products with non-discriminating hashes** — every left token
  of a cycle lands in one bucket (the Tourney pathology of Section
  5.2.2 / footnote 9);
* **small cycles** — many cycles of one to three activations, where the
  broadcast + constant-test floor dominates (Section 5.2.1);
* **multiple-modify bursts** — alternating +/- activations on one
  bucket within a cycle (Section 5.2.3), which also exercises the
  footnote-6 deletion-search pricing;
* **negated condition elements** — :data:`~repro.trace.events
  .KIND_NEGATIVE` activations mixed into the stream;
* **empty cycles** — cycles with no activations at all (a quiescent
  recognize-act iteration), plus terminal-only cycles;
* **deep chains** — fanout-1 generation chains that serialize a cycle;
* **random sections** — unconstrained :class:`~repro.workloads
  .SectionSpec` samples covering the generator's whole parameter box.

Everything is derived from ``random.Random(seed)`` streams keyed by the
case index, so ``generate_cases(seed, budget)`` is reproducible — the
repro JSON written by the shrinker records ``(seed, index, family)`` and
:func:`build_case` rebuilds the exact failing input from them.

OPS5 **program cases** drive the Rete-vs-naive-matcher oracle: a random
subset of a catalogue of structurally diverse productions (joins,
constants, negation, relational tests, cross products) plus a random
add/remove churn script over a small value alphabet, the regime where
join hits and negation interplay are likely.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..trace.events import SectionTrace
from ..trace.validate import validate_trace
from ..workloads.generator import SectionSpec, generate_section
from ..workloads.synthetic import TraceBuilder

#: Structurally diverse production shapes for the matcher oracle.
PRODUCTION_CATALOGUE: Tuple[str, ...] = (
    "(p join2 (a ^p <x>) (b ^p <x>) --> (remove 1))",
    "(p join2q (a ^q <x>) (b ^q <x>) --> (remove 1))",
    "(p const (a ^p 1) --> (remove 1))",
    "(p cross (a) (b) --> (remove 1))",
    "(p chain3 (a ^p <x>) (b ^p <x> ^q <y>) (c ^q <y>) --> (remove 1))",
    "(p neg (a) -(c) --> (remove 1))",
    "(p negjoin (a ^p <x>) -(b ^p <x>) --> (remove 1))",
    "(p negmid (a ^p <x>) -(c ^p <x>) (b) --> (remove 1))",
    "(p rel (a ^p <x>) (b ^p > <x>) --> (remove 1))",
    "(p intra (a ^p <x> ^q <x>) --> (remove 1))",
    "(p selfjoin (a ^p <x>) (a ^q <x>) --> (remove 1))",
    "(p disj (a ^p << 1 x >>) --> (remove 1))",
)

_CLASSES = ("a", "b", "c")
_VALUES = (1, 2, "x")

#: The trace-case families, in generation rotation order.
TRACE_FAMILIES: Tuple[str, ...] = (
    "spec", "cross_product", "small_cycles", "modify_burst",
    "negated", "empty_cycles", "deep_chain",
)

#: One program case is dealt after this many trace cases.
PROGRAM_EVERY = 4


@dataclass(frozen=True)
class TraceCase:
    """One generated section trace plus the recipe that rebuilds it."""

    seed: int
    index: int
    family: str
    trace: SectionTrace = field(compare=False)

    def descriptor(self) -> Dict[str, object]:
        return {"kind": "trace", "seed": self.seed, "index": self.index,
                "family": self.family}


@dataclass(frozen=True)
class ProgramCase:
    """A rule subset plus an add/remove churn script for the matchers."""

    seed: int
    index: int
    rules: Tuple[str, ...]
    script: Tuple[Tuple, ...]

    @property
    def family(self) -> str:
        return "program"

    def descriptor(self) -> Dict[str, object]:
        return {"kind": "program", "seed": self.seed, "index": self.index,
                "rules": list(self.rules),
                "script": [list(op) for op in self.script]}


CheckCase = Union[TraceCase, ProgramCase]


def _case_rng(seed: int, index: int) -> random.Random:
    # One independent stream per case: a shrunk repro needs only
    # (seed, index) to regenerate its input, whatever the budget was.
    return random.Random((seed << 20) ^ index)


# ---------------------------------------------------------------------------
# Trace families
# ---------------------------------------------------------------------------

def _random_spec(rng: random.Random) -> SectionSpec:
    right = rng.randrange(0, 120)
    left = rng.randrange(0, 120)
    if right + left == 0:
        left = 1 + rng.randrange(40)
    return SectionSpec(
        name="fuzz-spec",
        cycles=1 + rng.randrange(5),
        right_activations=right,
        left_activations=left,
        left_roots_fraction=0.05 + 0.95 * rng.random(),
        fanout=1 + rng.randrange(6),
        active_left_buckets=1 + rng.randrange(16),
        left_skew=2.0 * rng.random(),
        left_nodes=1 + rng.randrange(4),
        right_value_space=1 + rng.randrange(50),
        right_nodes=1 + rng.randrange(8),
        terminals_per_cycle=rng.randrange(5),
        neg_fraction=rng.choice((0.0, 0.0, 0.3)),
        left_burst_pairs=rng.choice((0, 0, 2)),
        seed=rng.randrange(1 << 30),
    )


def _spec_trace(rng: random.Random) -> SectionTrace:
    return generate_section(_random_spec(rng))


def _cross_product_trace(rng: random.Random) -> SectionTrace:
    """All left tokens share one bucket; each generates a token burst."""
    builder = TraceBuilder("fuzz-cross")
    for _ in range(1 + rng.randrange(3)):
        builder.new_cycle()
        for _ in range(rng.randrange(8)):
            builder.root(1 + rng.randrange(3), side="right",
                         values=(rng.randrange(4),))
        n_hot = 2 + rng.randrange(10)
        fanout = 1 + rng.randrange(6)
        for _ in range(n_hot):
            # The non-discriminating hash: node 50, no key values, so
            # every token collides on one bucket.
            parent = builder.root(50, side="left", values=())
            for _ in range(fanout):
                child = builder.child(parent, 51,
                                      values=(rng.randrange(3),))
                if rng.random() < 0.3:
                    builder.terminal(child, node=900)
    return builder.build()


def _small_cycles_trace(rng: random.Random) -> SectionTrace:
    builder = TraceBuilder("fuzz-small")
    for _ in range(4 + rng.randrange(10)):
        builder.new_cycle()
        for _ in range(1 + rng.randrange(3)):
            side = rng.choice(("left", "right"))
            root = builder.root(1 + rng.randrange(5), side=side,
                                values=(rng.randrange(6),))
            if rng.random() < 0.4:
                builder.terminal(root, node=901)
    return builder.build()


def _modify_burst_trace(rng: random.Random) -> SectionTrace:
    """Alternating +/- on the same keys (delete-search worst case)."""
    builder = TraceBuilder("fuzz-burst")
    for _ in range(1 + rng.randrange(3)):
        builder.new_cycle()
        n_keys = 1 + rng.randrange(3)
        for _ in range(2 + rng.randrange(8)):
            key = rng.randrange(n_keys)
            tag = rng.choice(("+", "-"))
            builder.root(10 + key, side="left", tag=tag, values=(key,))
        for _ in range(rng.randrange(6)):
            builder.root(30, side="right",
                         tag=rng.choice(("+", "-")),
                         values=(rng.randrange(4),))
    return builder.build()


def _negated_trace(rng: random.Random) -> SectionTrace:
    spec = _random_spec(rng)
    spec = SectionSpec(**{**spec.__dict__, "name": "fuzz-neg",
                          "neg_fraction": 0.25 + 0.5 * rng.random(),
                          "left_activations":
                              max(10, spec.left_activations)})
    return generate_section(spec)


def _empty_cycles_trace(rng: random.Random) -> SectionTrace:
    """Empty and terminal-only cycles interleaved with tiny real ones."""
    builder = TraceBuilder("fuzz-empty")
    for _ in range(2 + rng.randrange(5)):
        builder.new_cycle()  # a completely empty cycle
        builder.new_cycle()
        root = builder.root(1, side="right", values=(rng.randrange(3),))
        if rng.random() < 0.5:
            builder.terminal(root, node=902)
    return builder.build()


def _deep_chain_trace(rng: random.Random) -> SectionTrace:
    builder = TraceBuilder("fuzz-chain")
    for _ in range(1 + rng.randrange(2)):
        builder.new_cycle()
        node = builder.root(1 + rng.randrange(2), side="left",
                            values=(rng.randrange(3),))
        for depth in range(5 + rng.randrange(25)):
            node = builder.child(node, 10 + depth % 7,
                                 values=(rng.randrange(4),))
        builder.terminal(node, node=903)
    return builder.build()


_TRACE_BUILDERS = {
    "spec": _spec_trace,
    "cross_product": _cross_product_trace,
    "small_cycles": _small_cycles_trace,
    "modify_burst": _modify_burst_trace,
    "negated": _negated_trace,
    "empty_cycles": _empty_cycles_trace,
    "deep_chain": _deep_chain_trace,
}


# ---------------------------------------------------------------------------
# Program cases
# ---------------------------------------------------------------------------

def _random_script(rng: random.Random) -> Tuple[Tuple, ...]:
    """An add/remove churn script over a shared wme pool."""
    script: List[Tuple] = []
    live: List[int] = []
    next_wid = 1
    for _ in range(4 + rng.randrange(24)):
        if live and rng.random() < 0.35:
            wid = live.pop(rng.randrange(len(live)))
            script.append(("remove", wid))
        else:
            payload = {"p": rng.choice(_VALUES), "q": rng.choice(_VALUES)}
            script.append(("add", next_wid, rng.choice(_CLASSES),
                           payload))
            live.append(next_wid)
            next_wid += 1
    return tuple(script)


def _program_case(seed: int, index: int) -> ProgramCase:
    rng = _case_rng(seed, index)
    n_rules = 1 + rng.randrange(5)
    rules = tuple(sorted(rng.sample(PRODUCTION_CATALOGUE, n_rules)))
    return ProgramCase(seed=seed, index=index, rules=rules,
                       script=_random_script(rng))


# ---------------------------------------------------------------------------
# The case stream
# ---------------------------------------------------------------------------

def build_case(seed: int, index: int,
               family: Optional[str] = None) -> CheckCase:
    """Rebuild the case at (*seed*, *index*) — what a repro JSON names.

    *family* defaults to the rotation position, so a descriptor without
    it still reproduces; passing it asserts the rotation did not drift.
    """
    expected = _family_for_index(index)
    if family is not None and family != expected:
        raise ValueError(
            f"case {index} of seed {seed} is family {expected!r}, "
            f"not {family!r} — was the repro made by another version?")
    if expected == "program":
        return _program_case(seed, index)
    rng = _case_rng(seed, index)
    trace = _TRACE_BUILDERS[expected](rng)
    assert validate_trace(trace) == []
    return TraceCase(seed=seed, index=index, family=expected, trace=trace)


def _family_for_index(index: int) -> str:
    if index % (PROGRAM_EVERY + 1) == PROGRAM_EVERY:
        return "program"
    slot = index - index // (PROGRAM_EVERY + 1)
    return TRACE_FAMILIES[slot % len(TRACE_FAMILIES)]


def generate_cases(seed: int, budget: int) -> Iterator[CheckCase]:
    """Yield *budget* deterministic cases, rotating over every family."""
    if budget < 0:
        raise ValueError("budget cannot be negative")
    for index in range(budget):
        yield build_case(seed, index)

"""Differential-testing and metamorphic-invariant harness.

The simulator's credibility rests on identities that are easy to state
and easy to silently break: the optimized event loop must equal the
preserved reference loop, the fault path at zero faults must equal the
fault-free path, recording a timeline must change nothing, a worker
pool must change nothing, and so on.  This package checks all of them
mechanically over seeded adversarial inputs:

* :mod:`repro.check.generate` — deterministic case generation biased
  toward the paper's hard cases;
* :mod:`repro.check.oracles` — the equivalence-pair matrix;
* :mod:`repro.check.invariants` — metamorphic cross-run properties;
* :mod:`repro.check.shrink` — greedy minimization of failures;
* :mod:`repro.check.runner` — the ``repro check`` driver.

Quick use::

    from repro.check import run_check
    report = run_check(seed=0, budget=200)
    assert report.ok, report.failures[0].describe()

:func:`mutated_right_token_cost` exists so tests can prove the harness
has teeth: it mis-prices right tokens in the optimized loop only, which
the oracle matrix must catch.
"""

from contextlib import contextmanager

from .generate import (PROGRAM_EVERY, TRACE_FAMILIES, CheckCase,
                       ProgramCase, TraceCase, build_case, generate_cases)
from .invariants import INVARIANTS, Invariant, run_invariants
from .oracles import ORACLES, Oracle, run_oracles
from .runner import (DEFAULT_BUDGET, CheckFailure, CheckReport,
                     rebuild_failure_case, run_check)
from .shrink import shrink_program, shrink_trace


@contextmanager
def mutated_right_token_cost(extra_us: float):
    """Test-only: mis-price right tokens in the optimized loop.

    Inside the block every right token costs ``extra_us`` more in
    :func:`repro.mpc.simulate`'s fast path — and nowhere else — so a
    working oracle matrix must flag every trace with right activations.
    """
    from ..mpc import simulator
    saved = simulator._TEST_MUTATE_RIGHT_TOKEN_US
    simulator._TEST_MUTATE_RIGHT_TOKEN_US = extra_us
    try:
        yield
    finally:
        simulator._TEST_MUTATE_RIGHT_TOKEN_US = saved


__all__ = [
    "PROGRAM_EVERY", "TRACE_FAMILIES", "CheckCase", "ProgramCase",
    "TraceCase", "build_case", "generate_cases",
    "INVARIANTS", "Invariant", "run_invariants",
    "ORACLES", "Oracle", "run_oracles",
    "DEFAULT_BUDGET", "CheckFailure", "CheckReport",
    "rebuild_failure_case", "run_check",
    "shrink_program", "shrink_trace",
    "mutated_right_token_cost",
]

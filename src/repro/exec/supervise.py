"""Supervision for the live actor backends: heartbeats, deadlines,
checkpoint-replay restarts.

The unsupervised engines in :mod:`repro.exec.actors` and
:mod:`repro.exec.mp` trust their workers: a dead or wedged partition
actor stalls the control loop until a single coarse timeout fires, and
then the run is simply lost.  This module wraps the same
:class:`~repro.exec.plan.MatchActorCore` protocol in a supervisor with
three defenses, configured by
:class:`~repro.mpc.config.SupervisePolicy` on the
:class:`~repro.mpc.config.RunConfig`:

heartbeats
    Every wait on the control queue is chopped into
    ``heartbeat_s``-sized slices; between slices the supervisor checks
    worker liveness, so a killed worker is noticed within one
    heartbeat instead of one full deadline.
per-cycle deadlines
    A recognize-act cycle that fails to quiesce within
    ``cycle_timeout_s`` (default: :func:`~repro.exec.errors
    .exec_timeout_s`) raises :class:`~repro.exec.errors.ExecutorWedged`
    instead of hanging — a dropped message can starve quiescence
    forever, and counting is the only way to notice.
checkpoint-replay restart
    The cycle-index barrier *is* the checkpoint: match-actor cores
    carry no state across cycles (the sync barrier resets them), and
    every :class:`~repro.exec.plan.CyclePlan` is precomputed.  On a
    wedge, crash or protocol violation the supervisor tears down every
    worker and queue, respawns fresh ones after an exponential-backoff
    pause, and re-broadcasts the failed cycle's plan — a bit-identical
    replay.  Completed cycles are never re-run; after
    ``max_restarts`` failed replays of one cycle the run raises
    :class:`~repro.exec.errors.RestartsExhausted` carrying the last
    typed failure.

Failures are *detected by counting*, never guessed: a dropped data
message starves the processed/fires targets (wedge), a duplicated one
breaks the plan's exact-count validation
(:class:`~repro.exec.errors.ProtocolViolation`), a late one hits a
cleared actor table and surfaces as an ``actor_error``
(:class:`~repro.exec.errors.ExecutorCrashed`).  The supervised
contract — relied on by the ``live_recovery`` oracle in
:mod:`repro.check` — is therefore: the sim-identical result, or a
typed :class:`~repro.exec.errors.ExecutorError`; never a silent wrong
answer, never an unbounded hang.

Chaos (:class:`~repro.exec.chaos.ChaosPolicy`) plugs in at two seams:
the supervisor kills workers at cycle starts, and the workers
themselves drop/duplicate/delay their outgoing data messages and stall
their event loops, all with counter-based deterministic draws.
"""

from __future__ import annotations

import asyncio
import queue as queue_mod
import time
from typing import List, Optional, Tuple

from ..mpc.config import RunConfig, SupervisePolicy
from ..mpc.metrics import SimResult
from ..obs import get_logger, get_registry, log_event
from ..trace.events import SectionTrace
from .base import FireSet
from .chaos import MSG_FIRE, MSG_TOKEN, ChaosPolicy
from .errors import (ExecutorCrashed, ExecutorWedged, ProtocolViolation,
                     RestartsExhausted, exec_timeout_s)
from .plan import (CONTROL, CycleAccumulator, CyclePlan, MatchActorCore,
                   build_plans)

_LOG = get_logger("repro.exec.supervise")

#: The failures a restart can plausibly cure — anything else (a
#: ValueError from a malformed config, say) propagates immediately.
RETRYABLE = (ExecutorWedged, ExecutorCrashed, ProtocolViolation)

_FAILURE_COUNTERS = {
    ExecutorWedged: "supervise.wedges",
    ExecutorCrashed: "supervise.crashes",
    ProtocolViolation: "supervise.violations",
}


def _effective(config: RunConfig,
               chaos: Optional[ChaosPolicy]
               ) -> Tuple[SupervisePolicy, Optional[ChaosPolicy], float]:
    """Resolve ``(policy, chaos-or-None, per-cycle deadline seconds)``."""
    policy = config.supervise or SupervisePolicy()
    if chaos is not None and chaos.is_null:
        chaos = None
    deadline_s = (policy.cycle_timeout_s
                  if policy.cycle_timeout_s is not None
                  else exec_timeout_s())
    return policy, chaos, deadline_s


def _count_failure(err: Exception) -> None:
    name = _FAILURE_COUNTERS.get(type(err))
    if name:
        get_registry().counter(name).inc()


def _give_up(plan: CyclePlan, attempt: int,
             err: Exception) -> RestartsExhausted:
    get_registry().counter("supervise.giveups").inc()
    log_event(_LOG, "supervise.giveup", cycle=plan.index,
              attempts=attempt + 1, cause=type(err).__name__)
    return RestartsExhausted(
        f"cycle {plan.index}: gave up after {attempt + 1} attempt(s); "
        f"last failure: {err}",
        cycle=plan.index, attempts=attempt + 1,
        last=err if isinstance(err, RETRYABLE) else None)


def _log_restart(plan: CyclePlan, attempt: int, generation: int,
                 err: Exception) -> None:
    get_registry().counter("supervise.restarts").inc()
    log_event(_LOG, "supervise.restart", cycle=plan.index,
              attempt=attempt, generation=generation,
              cause=type(err).__name__)


# ---------------------------------------------------------------------------
# asyncio transport
# ---------------------------------------------------------------------------


class _AsyncEngine:
    """One generation of asyncio match actors plus their queues.

    A restart discards the whole engine — tasks, inboxes, control
    queue — so stale messages from a failed attempt (late chaos
    deliveries, half-processed cycles) can never leak into the replay.
    """

    def __init__(self, config: RunConfig,
                 chaos: Optional[ChaosPolicy], generation: int,
                 collector=None) -> None:
        self.config = config
        self.chaos = chaos
        self.generation = generation
        self.collector = collector
        self.n_procs = config.n_procs
        self.inboxes: List[asyncio.Queue] = []
        self.control_q: asyncio.Queue = asyncio.Queue()
        self.tasks: List[asyncio.Task] = []
        self._getter: Optional[asyncio.Task] = None

    def start(self) -> None:
        self.inboxes = [asyncio.Queue() for _ in range(self.n_procs)]
        self.control_q = asyncio.Queue()
        self.tasks = [asyncio.create_task(self._actor_main(i))
                      for i in range(self.n_procs)]

    async def stop(self) -> None:
        if self._getter is not None:
            self._getter.cancel()
            self._getter = None
        for task in self.tasks:
            task.cancel()
        if self.tasks:
            await asyncio.gather(*self.tasks, return_exceptions=True)
        self.tasks = []
        if self.collector is not None:
            # Salvage flight-recorder drains the dying generation
            # flushed on cancellation — filtered from the committed
            # timeline, but gold for post-mortem dumps.
            while not self.control_q.empty():
                message = self.control_q.get_nowait()
                if message[0] == "spans":
                    self.collector.add_drain(message)

    def kill(self, actor_id: int) -> None:
        self.tasks[actor_id].cancel()

    def dead_actor(self) -> Optional[int]:
        for i, task in enumerate(self.tasks):
            if task.done():
                return i
        return None

    def _deliver(self, cycle: int, dst: int, msg: Tuple) -> None:
        target = self.control_q if dst == CONTROL else self.inboxes[dst]
        chaos = self.chaos
        if chaos is not None and msg[0] in ("token", "fire"):
            kind = MSG_FIRE if msg[0] == "fire" else MSG_TOKEN
            act_id = msg[1]
            if chaos.should_drop(cycle, kind, act_id, self.generation):
                get_registry().counter("chaos.drops").inc()
                return
            copies = 1
            if chaos.should_duplicate(cycle, kind, act_id,
                                      self.generation):
                get_registry().counter("chaos.dups").inc()
                copies = 2
            delay = chaos.delay_for(cycle, kind, act_id, self.generation)
            if delay > 0.0:
                get_registry().counter("chaos.delays").inc()
                loop = asyncio.get_running_loop()
                for _ in range(copies):
                    loop.call_later(delay, target.put_nowait, msg)
                return
            for _ in range(copies):
                target.put_nowait(msg)
            return
        target.put_nowait(msg)

    async def _actor_main(self, actor_id: int) -> None:
        traced = self.collector is not None
        if traced:
            from ..obs.trace import (LIVE_BARRIER, LIVE_MATCH,
                                     LIVE_SEND, FlightRecorder)
            recorder = FlightRecorder(actor_id, self.generation)
            last_done = recorder.perf_base
        core = MatchActorCore(actor_id, self.config)
        inbox = self.inboxes[actor_id]
        cycle = 0
        try:
            while True:
                message = await inbox.get()
                kind = message[0]
                now = time.perf_counter()
                if kind == "shutdown":
                    if traced:
                        self.control_q.put_nowait(recorder.drain())
                    return
                if kind == "sync":
                    if traced:
                        recorder.record(LIVE_BARRIER, cycle,
                                        last_done, now)
                        self.control_q.put_nowait(recorder.drain())
                    self.control_q.put_nowait(("stats", actor_id,
                                               core.on_sync()))
                    continue
                if kind == "cycle":
                    cycle = message[2]
                    if self.chaos is not None:
                        stall = self.chaos.stall_for(cycle, actor_id,
                                                     self.generation)
                        if stall > 0.0:
                            get_registry().counter("chaos.stalls").inc()
                            await asyncio.sleep(stall)
                            now = time.perf_counter()
                    out, processed = core.on_cycle(message[1])
                else:  # "token"
                    out, processed = core.on_token(message[1])
                if traced:
                    ctx = message[3] if kind == "cycle" else message[2]
                    done = time.perf_counter()
                    recorder.record(
                        LIVE_MATCH, cycle, now, done, n=processed,
                        act_id=(message[1] if kind == "token" else -1),
                        src=ctx[0], sent_s=ctx[1],
                        busy_us=core.busy_us)
                    if out:
                        for dst, msg in out:
                            self._deliver(
                                cycle, dst,
                                msg + ((actor_id,
                                        time.perf_counter()),))
                        recorder.record(LIVE_SEND, cycle, done,
                                        time.perf_counter(),
                                        n=len(out))
                    last_done = time.perf_counter()
                else:
                    for dst, msg in out:
                        self._deliver(cycle, dst, msg)
                if processed:
                    self.control_q.put_nowait(("processed", processed))
        except asyncio.CancelledError:
            if traced:
                self.control_q.put_nowait(recorder.drain())
            raise
        except Exception as err:  # surface instead of hanging control
            if traced:
                self.control_q.put_nowait(recorder.drain())
            self.control_q.put_nowait(("actor_error", actor_id,
                                       repr(err)))

    async def _get_control(self, cycle: int, cycle_start: float,
                           deadline_s: float, heartbeat_s: float):
        """Next control message, or a typed failure: heartbeat-sliced
        wait with dead-worker checks and the per-cycle deadline."""
        if self._getter is None:
            self._getter = asyncio.ensure_future(self.control_q.get())
        while True:
            waited = time.perf_counter() - cycle_start
            if waited >= deadline_s:
                raise ExecutorWedged(
                    f"cycle {cycle}: no quiescence progress for "
                    f"{waited:.3f}s", cycle=cycle, waited_s=waited)
            timeout = min(heartbeat_s, deadline_s - waited)
            done, _ = await asyncio.wait({self._getter},
                                         timeout=timeout)
            if self._getter in done:
                message = self._getter.result()
                self._getter = asyncio.ensure_future(
                    self.control_q.get())
                return message
            dead = self.dead_actor()
            if dead is not None:
                raise ExecutorCrashed(
                    f"match actor {dead} died during cycle {cycle}",
                    actor=dead, cycle=cycle)

    async def run_cycle(self, plan: CyclePlan, attempt: int,
                        deadline_s: float, heartbeat_s: float):
        """One attempt at *plan*; ``(CycleResult, fired)`` or a typed
        :class:`~repro.exec.errors.ExecutorError`."""
        cycle_start = time.perf_counter()
        accumulator = CycleAccumulator(plan, self.config)
        if self.chaos is not None:
            for i in range(self.n_procs):
                if self.chaos.should_kill(plan.index, i, attempt):
                    get_registry().counter("chaos.kills").inc()
                    log_event(_LOG, "chaos.kill", cycle=plan.index,
                              actor=i, attempt=attempt)
                    self.kill(i)
        traced = self.collector is not None
        for i in range(self.n_procs):
            if traced:
                self.inboxes[i].put_nowait(
                    ("cycle", plan.per_actor[i], plan.index,
                     (CONTROL, time.perf_counter())))
            else:
                self.inboxes[i].put_nowait(
                    ("cycle", plan.per_actor[i], plan.index))
        while not accumulator.done:
            message = await self._get_control(
                plan.index, cycle_start, deadline_s, heartbeat_s)
            if message[0] == "actor_error":
                raise ExecutorCrashed(
                    f"match actor {message[1]} failed: {message[2]}",
                    actor=message[1], cycle=plan.index)
            if traced and message[0] == "spans":
                self.collector.add_drain(message)
                continue
            accumulator.note(message)
        for i in range(self.n_procs):
            self.inboxes[i].put_nowait(("sync",))
        stats: List = [None] * self.n_procs
        remaining = self.n_procs
        while remaining:
            message = await self._get_control(
                plan.index, cycle_start, deadline_s, heartbeat_s)
            if message[0] == "stats":
                stats[message[1]] = message[2]
                remaining -= 1
            elif message[0] == "actor_error":
                raise ExecutorCrashed(
                    f"match actor {message[1]} failed: {message[2]}",
                    actor=message[1], cycle=plan.index)
            elif traced and message[0] == "spans":
                self.collector.add_drain(message)
            else:
                accumulator.note(message)
        wall_s = time.perf_counter() - cycle_start
        return accumulator.finish(stats, wall_s)


async def run_supervised_async(trace: SectionTrace, config: RunConfig,
                               chaos: Optional[ChaosPolicy] = None,
                               collector=None
                               ) -> Tuple[SimResult, List[FireSet],
                                          float]:
    """Run *trace* on supervised asyncio actors.

    Same counters and fire sets as
    :func:`repro.exec.actors.run_section_async` (bit-identical with no
    chaos and no failures), plus heartbeat monitoring, per-cycle
    deadlines and checkpoint-replay restarts per
    ``config.supervise``.  A
    :class:`~repro.obs.trace.LiveTraceCollector` additionally records
    the committed cycle spans plus ``restart`` (failure → respawned
    engine) and ``checkpoint_replay`` (failed replay attempt) spans on
    the coordinator row, and commits each cycle under the generation
    that closed it, so actor spans of failed attempts are filtered
    from the merged timeline.
    """
    plans = build_plans(trace, config)
    policy, chaos, deadline_s = _effective(config, chaos)
    traced = collector is not None
    if traced:
        from ..obs.trace import LIVE_CYCLE, LIVE_REPLAY, LIVE_RESTART
    generation = 0
    engine = _AsyncEngine(config, chaos, generation, collector)
    engine.start()
    result = SimResult(trace_name=trace.name, n_procs=config.n_procs)
    fires: List[FireSet] = []
    section_start = time.perf_counter()
    try:
        for plan in plans:
            attempt = 0
            while True:
                attempt_start = time.perf_counter()
                try:
                    cycle_result, fired = await engine.run_cycle(
                        plan, attempt, deadline_s, policy.heartbeat_s)
                    if traced:
                        collector.recorder.record(
                            LIVE_CYCLE, plan.index, attempt_start,
                            time.perf_counter(),
                            n=cycle_result.n_messages)
                        collector.commit(plan.index, generation)
                    break
                except RETRYABLE as err:
                    _count_failure(err)
                    failed_at = time.perf_counter()
                    if traced and attempt:
                        collector.recorder.record(
                            LIVE_REPLAY, plan.index, attempt_start,
                            failed_at, n=attempt)
                    if attempt >= policy.max_restarts:
                        raise _give_up(plan, attempt, err) from err
                    await engine.stop()
                    delay = policy.delay_s(attempt)
                    if delay > 0.0:
                        await asyncio.sleep(delay)
                    attempt += 1
                    generation += 1
                    _log_restart(plan, attempt, generation, err)
                    engine = _AsyncEngine(config, chaos, generation,
                                          collector)
                    engine.start()
                    if traced:
                        collector.recorder.record(
                            LIVE_RESTART, plan.index, failed_at,
                            time.perf_counter(), n=attempt)
            result.cycles.append(cycle_result)
            fires.append(fired)
    finally:
        await engine.stop()
    return result, fires, time.perf_counter() - section_start


# ---------------------------------------------------------------------------
# multiprocessing transport
# ---------------------------------------------------------------------------


def _supervised_actor_process(actor_id: int, config: RunConfig,
                              chaos: Optional[ChaosPolicy],
                              generation: int, inboxes,
                              control_q, traced: bool = False) -> None:
    """Child-process main loop with chaos applied to outgoing data."""
    if traced:
        from ..obs.trace import (LIVE_BARRIER, LIVE_MATCH, LIVE_SEND,
                                 FlightRecorder)
        recorder = FlightRecorder(actor_id, generation)
        last_done = recorder.perf_base
    core = MatchActorCore(actor_id, config)
    inbox = inboxes[actor_id]

    def deliver(cycle: int, dst: int, msg: Tuple) -> None:
        target = control_q if dst == CONTROL else inboxes[dst]
        if chaos is not None and msg[0] in ("token", "fire"):
            kind = MSG_FIRE if msg[0] == "fire" else MSG_TOKEN
            act_id = msg[1]
            if chaos.should_drop(cycle, kind, act_id, generation):
                return
            delay = chaos.delay_for(cycle, kind, act_id, generation)
            if delay > 0.0:
                time.sleep(delay)
            target.put(msg)
            if chaos.should_duplicate(cycle, kind, act_id, generation):
                target.put(msg)
            return
        target.put(msg)

    cycle = 0
    try:
        while True:
            message = inbox.get()
            kind = message[0]
            now = time.perf_counter()
            if kind == "shutdown":
                if traced:
                    control_q.put(recorder.drain())
                return
            if kind == "sync":
                if traced:
                    recorder.record(LIVE_BARRIER, cycle, last_done,
                                    now)
                    control_q.put(recorder.drain())
                control_q.put(("stats", actor_id, core.on_sync()))
                continue
            if kind == "cycle":
                cycle = message[2]
                if chaos is not None:
                    stall = chaos.stall_for(cycle, actor_id, generation)
                    if stall > 0.0:
                        time.sleep(stall)
                        now = time.perf_counter()
                out, processed = core.on_cycle(message[1])
            else:  # "token"
                out, processed = core.on_token(message[1])
            if traced:
                ctx = message[3] if kind == "cycle" else message[2]
                done = time.perf_counter()
                recorder.record(
                    LIVE_MATCH, cycle, now, done, n=processed,
                    act_id=(message[1] if kind == "token" else -1),
                    src=ctx[0], sent_s=ctx[1], busy_us=core.busy_us)
                if out:
                    for dst, msg in out:
                        deliver(cycle, dst,
                                msg + ((actor_id,
                                        time.perf_counter()),))
                    recorder.record(LIVE_SEND, cycle, done,
                                    time.perf_counter(), n=len(out))
                last_done = time.perf_counter()
            else:
                for dst, msg in out:
                    deliver(cycle, dst, msg)
            if processed:
                control_q.put(("processed", processed))
    except Exception as err:  # surface instead of wedging control
        if traced:
            control_q.put(recorder.drain())
        control_q.put(("actor_error", actor_id, repr(err)))


class _MpEngine:
    """One generation of worker processes plus their queues."""

    def __init__(self, config: RunConfig,
                 chaos: Optional[ChaosPolicy], generation: int,
                 collector=None) -> None:
        from .mp import _mp_context
        self.config = config
        self.chaos = chaos
        self.generation = generation
        self.collector = collector
        self.n_procs = config.n_procs
        self._ctx = _mp_context()
        self.inboxes: list = []
        self.control_q = None
        self.workers: list = []

    def start(self) -> None:
        ctx = self._ctx
        self.inboxes = [ctx.Queue() for _ in range(self.n_procs)]
        self.control_q = ctx.Queue()
        self.workers = [
            ctx.Process(target=_supervised_actor_process,
                        args=(i, self.config, self.chaos,
                              self.generation, self.inboxes,
                              self.control_q,
                              self.collector is not None),
                        daemon=True)
            for i in range(self.n_procs)
        ]
        for worker in self.workers:
            worker.start()

    def stop(self) -> None:
        for worker in self.workers:
            if worker.is_alive():
                worker.terminate()
        for worker in self.workers:
            worker.join(timeout=5.0)
            if worker.is_alive():
                worker.kill()
                worker.join(timeout=5.0)
        self.workers = []
        for q in self.inboxes + ([self.control_q]
                                 if self.control_q is not None else []):
            q.close()
            q.cancel_join_thread()
        self.inboxes = []
        self.control_q = None

    def kill(self, actor_id: int) -> None:
        self.workers[actor_id].kill()

    def dead_actor(self) -> Optional[int]:
        for i, worker in enumerate(self.workers):
            if not worker.is_alive():
                return i
        return None

    def _get_control(self, cycle: int, cycle_start: float,
                     deadline_s: float, heartbeat_s: float):
        while True:
            waited = time.perf_counter() - cycle_start
            if waited >= deadline_s:
                raise ExecutorWedged(
                    f"cycle {cycle}: no quiescence progress for "
                    f"{waited:.3f}s", cycle=cycle, waited_s=waited)
            timeout = min(heartbeat_s, deadline_s - waited)
            try:
                return self.control_q.get(timeout=timeout)
            except queue_mod.Empty:
                pass
            except (EOFError, OSError) as err:
                # A SIGKILLed worker can tear the queue's pipe
                # mid-write; the whole queue set is discarded on
                # restart, so surface it as a crash.
                raise ExecutorCrashed(
                    f"control queue broken during cycle {cycle}: "
                    f"{err!r}", cycle=cycle) from err
            dead = self.dead_actor()
            if dead is not None:
                raise ExecutorCrashed(
                    f"match actor {dead} died during cycle {cycle}",
                    actor=dead, cycle=cycle)

    def run_cycle(self, plan: CyclePlan, attempt: int,
                  deadline_s: float, heartbeat_s: float):
        cycle_start = time.perf_counter()
        accumulator = CycleAccumulator(plan, self.config)
        if self.chaos is not None:
            for i in range(self.n_procs):
                if self.chaos.should_kill(plan.index, i, attempt):
                    get_registry().counter("chaos.kills").inc()
                    log_event(_LOG, "chaos.kill", cycle=plan.index,
                              actor=i, attempt=attempt)
                    self.kill(i)
        traced = self.collector is not None
        for i in range(self.n_procs):
            if traced:
                self.inboxes[i].put(
                    ("cycle", plan.per_actor[i], plan.index,
                     (CONTROL, time.perf_counter())))
            else:
                self.inboxes[i].put(("cycle", plan.per_actor[i],
                                     plan.index))
        while not accumulator.done:
            message = self._get_control(plan.index, cycle_start,
                                        deadline_s, heartbeat_s)
            if message[0] == "actor_error":
                raise ExecutorCrashed(
                    f"match actor {message[1]} failed: {message[2]}",
                    actor=message[1], cycle=plan.index)
            if traced and message[0] == "spans":
                self.collector.add_drain(message)
                continue
            accumulator.note(message)
        for i in range(self.n_procs):
            self.inboxes[i].put(("sync",))
        stats: List = [None] * self.n_procs
        remaining = self.n_procs
        while remaining:
            message = self._get_control(plan.index, cycle_start,
                                        deadline_s, heartbeat_s)
            if message[0] == "stats":
                stats[message[1]] = message[2]
                remaining -= 1
            elif message[0] == "actor_error":
                raise ExecutorCrashed(
                    f"match actor {message[1]} failed: {message[2]}",
                    actor=message[1], cycle=plan.index)
            elif traced and message[0] == "spans":
                self.collector.add_drain(message)
            else:
                accumulator.note(message)
        wall_s = time.perf_counter() - cycle_start
        return accumulator.finish(stats, wall_s)


def run_supervised_mp(trace: SectionTrace, config: RunConfig,
                      chaos: Optional[ChaosPolicy] = None,
                      collector=None
                      ) -> Tuple[SimResult, List[FireSet], float]:
    """Run *trace* on supervised worker processes.

    The process-transport twin of :func:`run_supervised_async`: same
    protocol, same counters, with real OS processes killed and
    respawned on failure.  See there for the traced
    (:class:`~repro.obs.trace.LiveTraceCollector`) behavior.
    """
    plans = build_plans(trace, config)
    policy, chaos, deadline_s = _effective(config, chaos)
    traced = collector is not None
    if traced:
        from ..obs.trace import LIVE_CYCLE, LIVE_REPLAY, LIVE_RESTART
    generation = 0
    engine = _MpEngine(config, chaos, generation, collector)
    engine.start()
    result = SimResult(trace_name=trace.name, n_procs=config.n_procs)
    fires: List[FireSet] = []
    section_start = time.perf_counter()
    try:
        for plan in plans:
            attempt = 0
            while True:
                attempt_start = time.perf_counter()
                try:
                    cycle_result, fired = engine.run_cycle(
                        plan, attempt, deadline_s, policy.heartbeat_s)
                    if traced:
                        collector.recorder.record(
                            LIVE_CYCLE, plan.index, attempt_start,
                            time.perf_counter(),
                            n=cycle_result.n_messages)
                        collector.commit(plan.index, generation)
                    break
                except RETRYABLE as err:
                    _count_failure(err)
                    failed_at = time.perf_counter()
                    if traced and attempt:
                        collector.recorder.record(
                            LIVE_REPLAY, plan.index, attempt_start,
                            failed_at, n=attempt)
                    if attempt >= policy.max_restarts:
                        raise _give_up(plan, attempt, err) from err
                    engine.stop()
                    delay = policy.delay_s(attempt)
                    if delay > 0.0:
                        time.sleep(delay)
                    attempt += 1
                    generation += 1
                    _log_restart(plan, attempt, generation, err)
                    engine = _MpEngine(config, chaos, generation,
                                       collector)
                    engine.start()
                    if traced:
                        collector.recorder.record(
                            LIVE_RESTART, plan.index, failed_at,
                            time.perf_counter(), n=attempt)
            result.cycles.append(cycle_result)
            fires.append(fired)
    finally:
        engine.stop()
    return result, fires, time.perf_counter() - section_start

"""The executor protocol: one ``run()`` API over interchangeable backends.

An :class:`Executor` turns ``(trace, RunConfig)`` into a
:class:`RunResult` through a :class:`RunHandle`::

    from repro.exec import get_executor
    from repro.mpc import RunConfig

    executor = get_executor("actors")
    handle = executor.submit(trace, RunConfig(n_procs=8))
    result = handle.result()
    result.result.total_us     # the same SimResult counters as simulate
    result.fires               # per-cycle conflict-set deliveries
    result.wall_s              # measured wall time of the run

The three backends (registered in :mod:`repro.exec`):

``sim``
    :class:`~repro.exec.sim.SimExecutor` — the discrete-event
    simulator.  Bit-identical to :func:`repro.mpc.simulate_config`.
``actors``
    :class:`~repro.exec.actors.ActorExecutor` — a *live* run: each
    bucket partition is an actor (asyncio task or worker process)
    exchanging real token messages per the Section 3.2 protocol.
    Counters match the simulator's exactly; ``makespan_us`` is
    measured wall time.
``served``
    :class:`~repro.exec.served.ServedExecutor` — an asyncio server
    hosting many concurrent sessions of the actor engine, each with
    its own sharded working memory.

All backends agree on the *match* outcome — activation counts, message
counts, conflict-set deliveries (:func:`match_signature` extracts the
comparable part) — which is what the ``actors_vs_sim`` oracle in
:mod:`repro.check` cross-checks.  Timing fields are model time on
``sim`` and wall time on the live backends: comparable in shape, never
asserted equal.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Protocol, \
    Tuple, runtime_checkable

from ..mpc.config import RunConfig
from ..mpc.metrics import SimResult
from ..trace.events import SectionTrace

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..obs.trace import LiveTimeline

#: One cycle's conflict-set deliveries: sorted activation ids.
FireSet = Tuple[int, ...]


@dataclass
class RunResult:
    """What every backend returns: counters, fires and wall time."""

    #: Registry name of the backend that produced this result.
    backend: str
    #: The per-cycle counters, in the simulator's result type — so
    #: every metric helper (speedup, idle fractions, message totals)
    #: works on live-run output unchanged.
    result: SimResult
    #: Per-cycle conflict-set deliveries (sorted activation ids) — the
    #: ground truth the backends must agree on.
    fires: List[FireSet]
    #: Measured wall-clock seconds for the whole run.
    wall_s: float
    #: Merged flight-recorder timeline
    #: (:class:`~repro.obs.trace.LiveTimeline`) when the run was traced
    #: (``RunConfig.live_trace`` on the ``actors`` backend); ``None``
    #: otherwise.
    live: Optional["LiveTimeline"] = None

    @property
    def total_us(self) -> float:
        return self.result.total_us


def match_signature(result: RunResult) -> List[Tuple]:
    """The backend-independent part of a run, one tuple per cycle.

    Two correct backends produce equal signatures for the same
    ``(trace, config)``: per-processor activation counts, message
    counts and the delivered conflict set.  Timing fields are excluded
    — they are model time on ``sim`` and wall time on ``actors``.
    """
    return [
        (tuple(cycle.proc_activations),
         tuple(cycle.proc_left_activations),
         cycle.n_messages,
         fires)
        for cycle, fires in zip(result.result.cycles, result.fires)
    ]


class RunHandle:
    """A submitted run: ``result()`` joins it, lazily or eagerly.

    Backends construct handles either around a thunk (computed on the
    first ``result()`` call, in the caller's thread) or around an
    already-running future via :meth:`from_future`.
    """

    def __init__(self, thunk: Callable[[], RunResult]) -> None:
        self._thunk = thunk
        self._lock = threading.Lock()
        self._result: Optional[RunResult] = None
        self._error: Optional[BaseException] = None

    @classmethod
    def from_future(cls, future, backend_wrap=None) -> "RunHandle":
        """Wrap a :class:`concurrent.futures.Future` already running."""
        def thunk() -> RunResult:
            value = future.result()
            return backend_wrap(value) if backend_wrap else value
        handle = cls(thunk)
        handle._future = future
        return handle

    def result(self) -> RunResult:
        """The run's result; computes/joins and caches on first call."""
        with self._lock:
            if self._error is not None:
                raise self._error
            if self._result is None:
                try:
                    self._result = self._thunk()
                except BaseException as err:
                    self._error = err
                    raise
            return self._result

    @property
    def done(self) -> bool:
        """Whether ``result()`` would return without blocking."""
        future = getattr(self, "_future", None)
        if future is not None and not future.done():
            return False
        return self._result is not None or self._error is not None \
            or future is not None


@runtime_checkable
class Executor(Protocol):
    """What a backend must provide to sit behind ``run()``."""

    #: Registry name (``sim`` / ``actors`` / ``served``).
    name: str

    def submit(self, trace: SectionTrace,
               config: RunConfig) -> RunHandle: ...

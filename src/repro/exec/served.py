"""Backend ``served``: one asyncio server, many concurrent sessions.

The paper simulates one production system at a time; a served
deployment multiplexes many.  :class:`SessionServer` owns a background
thread running a persistent asyncio event loop and hosts each
submitted run as one *session* — a full actor engine
(:func:`repro.exec.actors.run_section_async`) with its own queues,
actor cores and plan stream.  Working memory stays sharded per
session: no queue, core or bucket partition is shared between
sessions, so concurrent sessions are isolated by construction and
their results equal a solo run's.  WME changes are batched exactly as
in the single-session backends — one plan broadcast per recognize-act
cycle.

A session limit (:data:`DEFAULT_MAX_SESSIONS`) bounds concurrency;
excess submissions queue on the loop's semaphore.  An optional TCP
front-end (:meth:`SessionServer.serve_tcp`) accepts JSON-line requests
(``{"section": "rubik", "procs": 8, "overhead": 8, "seed": 0}``) and
answers with one JSON line of result counters — enough to drive a
served deployment from anything that can speak newline-delimited JSON.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import threading
from typing import Callable, Optional

from ..mpc.config import OVERHEADS, RunConfig
from ..trace.events import SectionTrace
from .actors import _check_supported, run_section_async
from .base import RunHandle, RunResult

#: Sessions allowed to run concurrently before new ones queue.
DEFAULT_MAX_SESSIONS = 32


def _default_trace_loader(section: str, seed: int = 0) -> SectionTrace:
    from ..workloads import (rubik_section, tourney_section,
                             weaver_section)
    sections = {"rubik": rubik_section, "tourney": tourney_section,
                "weaver": weaver_section}
    if section not in sections:
        raise ValueError(f"unknown section {section!r}; "
                         f"choose from {sorted(sections)}")
    return sections[section](seed)


class SessionServer:
    """A background asyncio loop hosting concurrent match sessions."""

    def __init__(self, max_sessions: int = DEFAULT_MAX_SESSIONS) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.max_sessions = max_sessions
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._tcp_server = None
        self._lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "SessionServer":
        with self._lock:
            if self._thread is not None:
                return self
            started = threading.Event()

            def loop_main() -> None:
                loop = asyncio.new_event_loop()
                asyncio.set_event_loop(loop)
                self._loop = loop
                self._semaphore = asyncio.Semaphore(self.max_sessions)
                started.set()
                try:
                    loop.run_forever()
                finally:
                    loop.close()

            self._thread = threading.Thread(target=loop_main,
                                            name="repro-session-server",
                                            daemon=True)
            self._thread.start()
            started.wait()
        return self

    def stop(self) -> None:
        with self._lock:
            thread, loop = self._thread, self._loop
            self._thread = self._loop = self._semaphore = None
        if loop is None or thread is None:
            return
        server = self._tcp_server
        self._tcp_server = None
        asyncio.run_coroutine_threadsafe(
            _drain_loop(server), loop).result(timeout=10.0)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10.0)

    def __enter__(self) -> "SessionServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._thread is not None

    # -- sessions -----------------------------------------------------------

    def submit(self, trace: SectionTrace,
               config: RunConfig) -> concurrent.futures.Future:
        """Open a session for ``(trace, config)``; future of the raw
        ``(SimResult, fires, wall_s)`` triple."""
        _check_supported(config)
        self.start()
        return asyncio.run_coroutine_threadsafe(
            self._session(trace, config), self._loop)

    async def _session(self, trace: SectionTrace, config: RunConfig):
        async with self._semaphore:
            return await run_section_async(trace, config)

    # -- TCP front-end ------------------------------------------------------

    def serve_tcp(self, host: str = "127.0.0.1", port: int = 0,
                  trace_loader: Optional[Callable[..., SectionTrace]]
                  = None) -> int:
        """Accept JSON-line session requests on *host*; returns the
        bound port (``port=0`` picks a free one)."""
        self.start()
        loader = trace_loader or _default_trace_loader

        async def handle(reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
            try:
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    reply = await self._handle_request(line, loader)
                    writer.write(json.dumps(reply).encode() + b"\n")
                    await writer.drain()
            except asyncio.CancelledError:
                pass  # server shutting down with the connection open
            finally:
                writer.close()

        async def start_server():
            server = await asyncio.start_server(handle, host, port)
            self._tcp_server = server
            return server.sockets[0].getsockname()[1]

        return asyncio.run_coroutine_threadsafe(
            start_server(), self._loop).result(timeout=10.0)

    async def _handle_request(self, line: bytes, loader) -> dict:
        try:
            request = json.loads(line)
            trace = loader(request["section"],
                           int(request.get("seed", 0)))
            overhead = int(request.get("overhead", 0))
            overheads = OVERHEADS.get(overhead)
            if overhead and overheads is None:
                raise ValueError(f"overhead must be one of "
                                 f"{sorted(OVERHEADS)} or 0")
            config = RunConfig(n_procs=int(request.get("procs", 1)),
                               **({"overheads": overheads}
                                  if overheads else {}))
            async with self._semaphore:
                result, fires, wall_s = await run_section_async(
                    trace, config)
        except Exception as err:
            return {"ok": False, "error": str(err)}
        return {
            "ok": True,
            "section": trace.name,
            "procs": config.n_procs,
            "cycles": len(result.cycles),
            "total_us": result.total_us,
            "n_messages": result.n_messages,
            "fires": [list(f) for f in fires],
            "wall_s": wall_s,
        }


async def _drain_loop(server) -> None:
    """Close the TCP listener (if any) and cancel leftover tasks —
    open client handlers, queued sessions — so the loop stops clean."""
    if server is not None:
        server.close()
        await server.wait_closed()
    current = asyncio.current_task()
    leftovers = [task for task in asyncio.all_tasks()
                 if task is not current]
    for task in leftovers:
        task.cancel()
    await asyncio.gather(*leftovers, return_exceptions=True)


class ServedExecutor:
    """Backend ``served``: sessions on a shared :class:`SessionServer`.

    Submissions from any thread multiplex onto one background loop;
    each returns immediately with a joinable handle, so N overlapping
    ``submit`` calls are N concurrent sessions.
    """

    name = "served"

    def __init__(self, max_sessions: int = DEFAULT_MAX_SESSIONS,
                 server: Optional[SessionServer] = None) -> None:
        self._server = server or SessionServer(max_sessions)

    @property
    def server(self) -> SessionServer:
        return self._server

    def submit(self, trace: SectionTrace,
               config: RunConfig) -> RunHandle:
        future = self._server.submit(trace, config)

        def wrap(value) -> RunResult:
            result, fires, wall_s = value
            return RunResult(backend=self.name, result=result,
                             fires=fires, wall_s=wall_s)
        return RunHandle.from_future(future, wrap)

    def close(self) -> None:
        self._server.stop()

    def __enter__(self) -> "ServedExecutor":
        self._server.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

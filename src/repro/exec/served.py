"""Backend ``served``: one asyncio server, many concurrent sessions.

The paper simulates one production system at a time; a served
deployment multiplexes many.  :class:`SessionServer` owns a background
thread running a persistent asyncio event loop and hosts each
submitted run as one *session* — a full actor engine
(:func:`repro.exec.actors.run_section_async`) with its own queues,
actor cores and plan stream.  Working memory stays sharded per
session: no queue, core or bucket partition is shared between
sessions, so concurrent sessions are isolated by construction and
their results equal a solo run's.  WME changes are batched exactly as
in the single-session backends — one plan broadcast per recognize-act
cycle.

A session limit (:data:`DEFAULT_MAX_SESSIONS`) bounds concurrency;
excess submissions queue on the loop's semaphore — but only up to a
configurable high-water mark (*max_pending*).  Past it the server
*sheds load*: the session fails fast with a typed
:class:`~repro.exec.errors.SessionOverloaded` instead of queueing
unboundedly, and the TCP front-end answers with a structured JSON
error (``{"ok": false, "code": "overloaded", ...}``) instead of
hanging the client.  An optional TCP front-end
(:meth:`SessionServer.serve_tcp`) accepts JSON-line requests
(``{"section": "rubik", "procs": 8, "overhead": 8, "seed": 0}``) and
answers with one JSON line of result counters — enough to drive a
served deployment from anything that can speak newline-delimited JSON.
The front-end also serves health probes (``{"op": "health"}`` /
``{"op": "ready"}``) reporting uptime, active/pending load,
session/shed totals and drain state, plus an ``{"op": "stats"}``
probe returning the full process metrics snapshot; a companion
:meth:`SessionServer.serve_metrics` HTTP endpoint exposes the same
registry in Prometheus text format for scrapers (stdlib
``http.server``, no dependencies).  Completed sessions feed a
``served.session_latency_s`` histogram, so latency quantiles (p50/
p95/p99) are always one probe away — ``repro loadtest`` builds its
report from exactly these instruments.  :meth:`SessionServer.stop`
performs a *draining* shutdown by default: stop accepting, finish
in-flight cycles (deadline-bounded, ``REPRO_EXEC_TIMEOUT_S``-
overridable), then tear the loop down.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import threading
import time
from typing import Callable, Optional

from ..mpc.config import OVERHEADS, RunConfig, SupervisePolicy
from ..obs import get_logger, get_registry, log_event, prometheus_text
from ..trace.events import SectionTrace
from .actors import _check_supported, run_section_async
from .base import RunHandle, RunResult
from .errors import SessionOverloaded, exec_timeout_s
from .supervise import run_supervised_async

_LOG = get_logger("repro.exec.served")

#: Sessions allowed to run concurrently before new ones queue.
DEFAULT_MAX_SESSIONS = 32

#: Default high-water mark: queued-but-not-running sessions allowed
#: per ``max_sessions`` before the server sheds instead of queueing.
PENDING_PER_SESSION = 4


def _default_trace_loader(section: str, seed: int = 0) -> SectionTrace:
    from ..workloads import (rubik_section, tourney_section,
                             weaver_section)
    sections = {"rubik": rubik_section, "tourney": tourney_section,
                "weaver": weaver_section}
    if section not in sections:
        raise ValueError(f"unknown section {section!r}; "
                         f"choose from {sorted(sections)}")
    return sections[section](seed)


class SessionServer:
    """A background asyncio loop hosting concurrent match sessions."""

    def __init__(self, max_sessions: int = DEFAULT_MAX_SESSIONS,
                 max_pending: Optional[int] = None) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if max_pending is None:
            max_pending = PENDING_PER_SESSION * max_sessions
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.max_sessions = max_sessions
        self.max_pending = max_pending
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._tcp_server = None
        self._metrics_server = None
        self._lock = threading.Lock()
        self._started_at: Optional[float] = None
        # Load bookkeeping, mutated only on the loop thread.
        self._active = 0
        self._pending = 0
        self._draining = False
        self._sessions_started = 0
        self._sessions_completed = 0
        self._sessions_failed = 0
        self._shed_overloaded = 0
        self._shed_draining = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "SessionServer":
        with self._lock:
            if self._thread is not None:
                return self
            started = threading.Event()

            def loop_main() -> None:
                loop = asyncio.new_event_loop()
                asyncio.set_event_loop(loop)
                self._loop = loop
                self._semaphore = asyncio.Semaphore(self.max_sessions)
                self._active = self._pending = 0
                self._draining = False
                self._sessions_started = 0
                self._sessions_completed = 0
                self._sessions_failed = 0
                self._shed_overloaded = self._shed_draining = 0
                self._started_at = time.monotonic()
                started.set()
                try:
                    loop.run_forever()
                finally:
                    loop.close()

            self._thread = threading.Thread(target=loop_main,
                                            name="repro-session-server",
                                            daemon=True)
            self._thread.start()
            started.wait()
        return self

    def stop(self, drain: bool = True,
             timeout: Optional[float] = None) -> None:
        """Shut the server down.

        With *drain* (the default) the listener closes first, new
        sessions are shed with code ``"draining"``, and in-flight
        sessions get up to *timeout* seconds (default
        :func:`~repro.exec.errors.exec_timeout_s` capped at 10 s) to
        finish before anything is cancelled.  ``drain=False`` cancels
        everything immediately.
        """
        base = exec_timeout_s(10.0) if timeout is None else timeout
        with self._lock:
            thread, loop = self._thread, self._loop
            # The semaphore stays alive until the drain completes:
            # sessions submitted before stop() may not have entered it
            # yet, and must drain normally rather than crash.
            self._thread = self._loop = None
        metrics = self._metrics_server
        self._metrics_server = None
        if metrics is not None:
            metrics.shutdown()
            metrics.server_close()
        if loop is None or thread is None:
            return
        server = self._tcp_server
        self._tcp_server = None
        drain_s = base if drain else 0.0
        asyncio.run_coroutine_threadsafe(
            self._drain_loop(server, drain_s),
            loop).result(timeout=drain_s + base)
        self._semaphore = None
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=base)

    def __enter__(self) -> "SessionServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._thread is not None

    # -- sessions -----------------------------------------------------------

    def submit(self, trace: SectionTrace,
               config: RunConfig) -> concurrent.futures.Future:
        """Open a session for ``(trace, config)``; future of the raw
        ``(SimResult, fires, wall_s)`` triple."""
        _check_supported(config)
        if config.live_trace:
            raise ValueError(
                "the served backend does not support live tracing; "
                "use backend 'actors' with --trace-live")
        self.start()
        return asyncio.run_coroutine_threadsafe(
            self._session(trace, config), self._loop)

    async def _session(self, trace: SectionTrace, config: RunConfig):
        self._shed_check()
        self._pending += 1
        acquired = False
        queued_at = time.perf_counter()
        try:
            async with self._semaphore:
                self._pending -= 1
                acquired = True
                self._active += 1
                self._sessions_started += 1
                get_registry().counter("served.sessions").inc()
                try:
                    if config.supervise is not None:
                        value = await run_supervised_async(trace, config)
                    else:
                        value = await run_section_async(trace, config)
                except BaseException:
                    self._sessions_failed += 1
                    get_registry().counter("served.failed").inc()
                    raise
                finally:
                    self._active -= 1
                self._sessions_completed += 1
                get_registry().counter("served.completed").inc()
                # Queue wait included: this is the latency a client sees.
                get_registry().histogram(
                    "served.session_latency_s").observe(
                        time.perf_counter() - queued_at)
                return value
        finally:
            if not acquired:
                self._pending -= 1

    def _shed_check(self) -> None:
        """Raise :class:`SessionOverloaded` when this session must be
        shed (draining shutdown, or queue past the high-water mark)."""
        if self._draining:
            self._shed_draining += 1
            get_registry().counter("served.shed").inc()
            get_registry().counter("served.shed.draining").inc()
            log_event(_LOG, "served.shed", reason="draining")
            raise SessionOverloaded(
                "server is draining; no new sessions accepted",
                code="draining")
        if self._pending >= self.max_pending:
            self._shed_overloaded += 1
            get_registry().counter("served.shed").inc()
            get_registry().counter("served.shed.overloaded").inc()
            log_event(_LOG, "served.shed", reason="overloaded",
                      pending=self._pending, active=self._active)
            raise SessionOverloaded(
                f"server overloaded: {self._pending} sessions queued "
                f"(high-water mark {self.max_pending}); retry later",
                code="overloaded")

    @property
    def load(self) -> dict:
        """A point-in-time load snapshot (health-probe payload)."""
        uptime = (time.monotonic() - self._started_at
                  if self._started_at is not None else 0.0)
        return {
            "active": self._active,
            "pending": self._pending,
            "max_sessions": self.max_sessions,
            "max_pending": self.max_pending,
            "draining": self._draining,
            "uptime_s": round(uptime, 3),
            "sessions": {
                "started": self._sessions_started,
                "completed": self._sessions_completed,
                "failed": self._sessions_failed,
            },
            "shed": {
                "total": self._shed_overloaded + self._shed_draining,
                "overloaded": self._shed_overloaded,
                "draining": self._shed_draining,
            },
        }

    # -- TCP front-end ------------------------------------------------------

    def serve_tcp(self, host: str = "127.0.0.1", port: int = 0,
                  trace_loader: Optional[Callable[..., SectionTrace]]
                  = None) -> int:
        """Accept JSON-line session requests on *host*; returns the
        bound port (``port=0`` picks a free one)."""
        self.start()
        loader = trace_loader or _default_trace_loader

        async def handle(reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
            try:
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    reply = await self._handle_request(line, loader)
                    writer.write(json.dumps(reply).encode() + b"\n")
                    await writer.drain()
            except asyncio.CancelledError:
                pass  # server shutting down with the connection open
            finally:
                writer.close()

        async def start_server():
            server = await asyncio.start_server(handle, host, port)
            self._tcp_server = server
            return server.sockets[0].getsockname()[1]

        return asyncio.run_coroutine_threadsafe(
            start_server(), self._loop).result(
                timeout=exec_timeout_s(10.0))

    async def _handle_request(self, line: bytes, loader) -> dict:
        """One JSON-line request → one structured JSON reply.

        Error replies always carry a machine-readable ``code``:
        ``"overloaded"`` / ``"draining"`` for shed load,
        ``"bad_request"`` for malformed input, ``"error"`` otherwise
        (including typed executor failures, whose class name rides in
        ``"error_type"``).
        """
        try:
            request = json.loads(line)
            op = request.get("op")
            if op in ("health", "ready"):
                return self._probe_reply(op)
            if op == "stats":
                return {"ok": True, "op": "stats", "load": self.load,
                        "obs": get_registry().snapshot()}
            trace = loader(request["section"],
                           int(request.get("seed", 0)))
            overhead = int(request.get("overhead", 0))
            overheads = OVERHEADS.get(overhead)
            if overhead and overheads is None:
                raise ValueError(f"overhead must be one of "
                                 f"{sorted(OVERHEADS)} or 0")
            config = RunConfig(n_procs=int(request.get("procs", 1)),
                               supervise=(SupervisePolicy()
                                          if request.get("supervise")
                                          else None),
                               **({"overheads": overheads}
                                  if overheads else {}))
            result, fires, wall_s = await self._session(trace, config)
        except SessionOverloaded as err:
            return {"ok": False, "error": str(err), "code": err.code}
        except (KeyError, ValueError, TypeError,
                json.JSONDecodeError) as err:
            return {"ok": False, "error": str(err),
                    "code": "bad_request"}
        except Exception as err:
            return {"ok": False, "error": str(err), "code": "error",
                    "error_type": type(err).__name__}
        return {
            "ok": True,
            "section": trace.name,
            "procs": config.n_procs,
            "cycles": len(result.cycles),
            "total_us": result.total_us,
            "n_messages": result.n_messages,
            "fires": [list(f) for f in fires],
            "wall_s": wall_s,
        }

    def _probe_reply(self, op: str) -> dict:
        load = self.load
        if op == "health":
            return {"ok": True, "op": "health",
                    "status": "draining" if load["draining"] else "up",
                    **load}
        ready = (not load["draining"]
                 and load["pending"] < load["max_pending"])
        return {"ok": True, "op": "ready", "ready": ready, **load}

    # -- metrics scrape endpoint --------------------------------------------

    def serve_metrics(self, host: str = "127.0.0.1",
                      port: int = 0) -> int:
        """Expose the metrics registry over HTTP; returns the bound
        port (``port=0`` picks a free one).

        ``GET /metrics`` answers in the Prometheus text exposition
        format (:func:`~repro.obs.metrics.prometheus_text`); ``GET
        /health`` and ``GET /ready`` answer the same JSON payloads as
        the TCP probes.  Runs on a stdlib :class:`http.server
        .ThreadingHTTPServer` in a daemon thread — no dependencies,
        torn down by :meth:`stop`.
        """
        from http.server import (BaseHTTPRequestHandler,
                                 ThreadingHTTPServer)
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:
                if self.path.rstrip("/") in ("", "/metrics"):
                    body = prometheus_text(get_registry()).encode()
                    ctype = ("text/plain; version=0.0.4; "
                             "charset=utf-8")
                elif self.path.rstrip("/") in ("/health", "/ready"):
                    reply = server._probe_reply(
                        self.path.strip("/"))
                    body = json.dumps(reply).encode() + b"\n"
                    ctype = "application/json"
                else:
                    self.send_error(404)
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:
                pass  # routed through repro logging, not stderr

        self.start()
        httpd = ThreadingHTTPServer((host, port), Handler)
        self._metrics_server = httpd
        threading.Thread(target=httpd.serve_forever,
                         name="repro-metrics-server",
                         daemon=True).start()
        port = httpd.server_address[1]
        log_event(_LOG, "served.metrics", host=host, port=port)
        return port

    # -- shutdown -----------------------------------------------------------

    async def _drain_loop(self, server, drain_s: float) -> None:
        """Draining shutdown on the loop thread: close the listener,
        shed new sessions, give in-flight ones *drain_s* seconds to
        finish, then cancel whatever is left (idle client handlers,
        overdue sessions) so the loop stops clean."""
        self._draining = True
        if server is not None:
            server.close()
            await server.wait_closed()
        if drain_s > 0.0:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + drain_s
            while ((self._active or self._pending)
                   and loop.time() < deadline):
                await asyncio.sleep(0.01)
            # Grace tick: let handlers flush replies for sessions that
            # just finished before their tasks are cancelled.
            await asyncio.sleep(0.05)
        current = asyncio.current_task()
        leftovers = [task for task in asyncio.all_tasks()
                     if task is not current]
        if leftovers:
            log_event(_LOG, "served.drain",
                      cancelled=len(leftovers),
                      active=self._active, pending=self._pending)
        for task in leftovers:
            task.cancel()
        await asyncio.gather(*leftovers, return_exceptions=True)


class ServedExecutor:
    """Backend ``served``: sessions on a shared :class:`SessionServer`.

    Submissions from any thread multiplex onto one background loop;
    each returns immediately with a joinable handle, so N overlapping
    ``submit`` calls are N concurrent sessions.
    """

    name = "served"

    def __init__(self, max_sessions: int = DEFAULT_MAX_SESSIONS,
                 max_pending: Optional[int] = None,
                 server: Optional[SessionServer] = None) -> None:
        self._server = server or SessionServer(max_sessions,
                                               max_pending=max_pending)

    @property
    def server(self) -> SessionServer:
        return self._server

    def submit(self, trace: SectionTrace,
               config: RunConfig) -> RunHandle:
        future = self._server.submit(trace, config)

        def wrap(value) -> RunResult:
            result, fires, wall_s = value
            return RunResult(backend=self.name, result=result,
                             fires=fires, wall_s=wall_s)
        return RunHandle.from_future(future, wrap)

    def close(self) -> None:
        self._server.stop()

    def __enter__(self) -> "ServedExecutor":
        self._server.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""The multiprocessing transport for the ``actors`` backend.

Same protocol, same :class:`~repro.exec.plan.MatchActorCore` state
machines as the asyncio transport — but each match actor is an OS
process with a :class:`multiprocessing.Queue` inbox, so activations in
different bucket partitions really execute in parallel.  The control
actor runs synchronously in the parent process (the paper's control
processor is serialized by the barrier anyway).

Everything crossing a process boundary is a plain picklable tuple; the
``fork`` start method is preferred when available (no module re-import
per actor), with the platform default as fallback.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..mpc.config import RunConfig
from ..mpc.metrics import SimResult
from ..trace.events import SectionTrace
from .base import FireSet
from .errors import (DEFAULT_TIMEOUT_S, ExecutorCrashed, ExecutorWedged,
                     exec_timeout_s)
from .plan import CONTROL, CycleAccumulator, MatchActorCore, build_plans

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..obs.trace import LiveTraceCollector

#: Default seconds the control process waits for any actor message
#: before declaring the run wedged (an actor died without reporting).
#: Resolved through :func:`repro.exec.errors.exec_timeout_s` at call
#: time, so ``REPRO_EXEC_TIMEOUT_S`` overrides it.
CONTROL_TIMEOUT_S = DEFAULT_TIMEOUT_S


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


def _actor_process(actor_id: int, config: RunConfig,
                   inboxes, control_q, traced: bool = False) -> None:
    """Child-process main loop: one match actor until shutdown."""
    if traced:
        _traced_actor_process(actor_id, config, inboxes, control_q)
        return
    core = MatchActorCore(actor_id, config)
    inbox = inboxes[actor_id]
    try:
        while True:
            message = inbox.get()
            kind = message[0]
            if kind == "shutdown":
                return
            if kind == "sync":
                control_q.put(("stats", actor_id, core.on_sync()))
                continue
            if kind == "cycle":
                out, processed = core.on_cycle(message[1])
            else:  # "token"
                out, processed = core.on_token(message[1])
            for dst, msg in out:
                if dst == CONTROL:
                    control_q.put(msg)
                else:
                    inboxes[dst].put(msg)
            if processed:
                control_q.put(("processed", processed))
    except Exception as err:  # surface instead of wedging control
        control_q.put(("actor_error", actor_id, repr(err)))


def _traced_actor_process(actor_id: int, config: RunConfig,
                          inboxes, control_q,
                          generation: int = 0) -> None:
    """The flight-recorded twin of :func:`_actor_process`.

    Same protocol and counters; additionally records match/send/
    barrier spans into a per-process :class:`~repro.obs.trace
    .FlightRecorder` drained over the control queue before every
    barrier ``stats`` reply (FIFO order guarantees the coordinator has
    a cycle's spans before it closes the cycle), stamps every outgoing
    data message with a ``(sender, send_ts)`` context, and expects one
    on everything it receives.
    """
    from ..obs.trace import (LIVE_BARRIER, LIVE_MATCH, LIVE_SEND,
                             FlightRecorder)
    core = MatchActorCore(actor_id, config)
    recorder = FlightRecorder(actor_id, generation)
    inbox = inboxes[actor_id]
    cycle = 0
    last_done = recorder.perf_base
    try:
        while True:
            message = inbox.get()
            kind = message[0]
            now = time.perf_counter()
            if kind == "shutdown":
                control_q.put(recorder.drain())
                return
            if kind == "sync":
                recorder.record(LIVE_BARRIER, cycle, last_done, now)
                control_q.put(recorder.drain())
                control_q.put(("stats", actor_id, core.on_sync()))
                continue
            if kind == "cycle":
                cycle = message[2]
                ctx = message[3]
                out, processed = core.on_cycle(message[1])
            else:  # "token"
                ctx = message[2]
                out, processed = core.on_token(message[1])
            done = time.perf_counter()
            recorder.record(
                LIVE_MATCH, cycle, now, done, n=processed,
                act_id=(message[1] if kind == "token" else -1),
                src=ctx[0], sent_s=ctx[1], busy_us=core.busy_us)
            if out:
                for dst, msg in out:
                    stamped = msg + ((actor_id, time.perf_counter()),)
                    if dst == CONTROL:
                        control_q.put(stamped)
                    else:
                        inboxes[dst].put(stamped)
                recorder.record(LIVE_SEND, cycle, done,
                                time.perf_counter(), n=len(out))
            last_done = time.perf_counter()
            if processed:
                control_q.put(("processed", processed))
    except Exception as err:  # surface instead of wedging control
        try:
            control_q.put(recorder.drain())
        finally:
            control_q.put(("actor_error", actor_id, repr(err)))


def _get_control(control_q):
    timeout_s = exec_timeout_s(CONTROL_TIMEOUT_S)
    try:
        return control_q.get(timeout=timeout_s)
    except queue_mod.Empty:
        raise ExecutorWedged(
            "actor run wedged: no control message for "
            f"{timeout_s:g}s", waited_s=timeout_s) from None


def run_section_mp(trace: SectionTrace, config: RunConfig,
                   collector: Optional["LiveTraceCollector"] = None,
                   ) -> Tuple[SimResult, List[FireSet], float]:
    """Run *trace* on one worker process per match actor.

    With a :class:`~repro.obs.trace.LiveTraceCollector` the workers
    run flight-recorded (:func:`_traced_actor_process`) and the
    control loop merges their drains; with ``collector=None`` the
    untraced loop runs unchanged.
    """
    plans = build_plans(trace, config)
    n_procs = config.n_procs
    ctx = _mp_context()
    inboxes = [ctx.Queue() for _ in range(n_procs)]
    control_q = ctx.Queue()
    traced = collector is not None
    if traced:
        from ..obs.trace import LIVE_CYCLE
    workers = [
        ctx.Process(target=_actor_process,
                    args=(i, config, inboxes, control_q, traced),
                    daemon=True)
        for i in range(n_procs)
    ]
    for worker in workers:
        worker.start()

    result = SimResult(trace_name=trace.name, n_procs=n_procs)
    fires: List[FireSet] = []
    section_start = time.perf_counter()
    try:
        for plan in plans:
            cycle_start = time.perf_counter()
            accumulator = CycleAccumulator(plan, config)
            for i in range(n_procs):
                if traced:
                    inboxes[i].put(
                        ("cycle", plan.per_actor[i], plan.index,
                         (CONTROL, time.perf_counter())))
                else:
                    inboxes[i].put(("cycle", plan.per_actor[i]))
            while not accumulator.done:
                message = _get_control(control_q)
                if message[0] == "actor_error":
                    raise ExecutorCrashed(
                        f"match actor {message[1]} failed: {message[2]}",
                        actor=message[1], cycle=plan.index)
                if traced and message[0] == "spans":
                    collector.add_drain(message)
                    continue
                accumulator.note(message)
            for i in range(n_procs):
                inboxes[i].put(("sync",))
            stats: List = [None] * n_procs
            remaining = n_procs
            while remaining:
                message = _get_control(control_q)
                if message[0] == "stats":
                    stats[message[1]] = message[2]
                    remaining -= 1
                elif message[0] == "actor_error":
                    raise ExecutorCrashed(
                        f"match actor {message[1]} failed: {message[2]}",
                        actor=message[1], cycle=plan.index)
                elif traced and message[0] == "spans":
                    collector.add_drain(message)
                else:
                    accumulator.note(message)
            wall_s = time.perf_counter() - cycle_start
            cycle_result, fired = accumulator.finish(stats, wall_s)
            if traced:
                collector.recorder.record(
                    LIVE_CYCLE, plan.index, cycle_start,
                    time.perf_counter(), n=cycle_result.n_messages)
                collector.commit(plan.index, 0)
            result.cycles.append(cycle_result)
            fires.append(fired)
    finally:
        for i in range(n_procs):
            inboxes[i].put(("shutdown",))
        for worker in workers:
            worker.join(timeout=10.0)
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=10.0)
        if traced:
            # The workers flush a final (usually empty) drain on
            # shutdown; collect what arrives promptly so dropped
            # counters are complete, without risking a hang.
            try:
                while True:
                    message = control_q.get(timeout=0.2)
                    if message[0] == "spans":
                        collector.add_drain(message)
            except (queue_mod.Empty, EOFError, OSError):
                pass
        for q in inboxes + [control_q]:
            q.close()
    return result, fires, time.perf_counter() - section_start

"""The multiprocessing transport for the ``actors`` backend.

Same protocol, same :class:`~repro.exec.plan.MatchActorCore` state
machines as the asyncio transport — but each match actor is an OS
process with a :class:`multiprocessing.Queue` inbox, so activations in
different bucket partitions really execute in parallel.  The control
actor runs synchronously in the parent process (the paper's control
processor is serialized by the barrier anyway).

Everything crossing a process boundary is a plain picklable tuple; the
``fork`` start method is preferred when available (no module re-import
per actor), with the platform default as fallback.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time
from typing import List, Tuple

from ..mpc.config import RunConfig
from ..mpc.metrics import SimResult
from ..trace.events import SectionTrace
from .base import FireSet
from .errors import (DEFAULT_TIMEOUT_S, ExecutorCrashed, ExecutorWedged,
                     exec_timeout_s)
from .plan import CONTROL, CycleAccumulator, MatchActorCore, build_plans

#: Default seconds the control process waits for any actor message
#: before declaring the run wedged (an actor died without reporting).
#: Resolved through :func:`repro.exec.errors.exec_timeout_s` at call
#: time, so ``REPRO_EXEC_TIMEOUT_S`` overrides it.
CONTROL_TIMEOUT_S = DEFAULT_TIMEOUT_S


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


def _actor_process(actor_id: int, config: RunConfig,
                   inboxes, control_q) -> None:
    """Child-process main loop: one match actor until shutdown."""
    core = MatchActorCore(actor_id, config)
    inbox = inboxes[actor_id]
    try:
        while True:
            message = inbox.get()
            kind = message[0]
            if kind == "shutdown":
                return
            if kind == "sync":
                control_q.put(("stats", actor_id, core.on_sync()))
                continue
            if kind == "cycle":
                out, processed = core.on_cycle(message[1])
            else:  # "token"
                out, processed = core.on_token(message[1])
            for dst, msg in out:
                if dst == CONTROL:
                    control_q.put(msg)
                else:
                    inboxes[dst].put(msg)
            if processed:
                control_q.put(("processed", processed))
    except Exception as err:  # surface instead of wedging control
        control_q.put(("actor_error", actor_id, repr(err)))


def _get_control(control_q):
    timeout_s = exec_timeout_s(CONTROL_TIMEOUT_S)
    try:
        return control_q.get(timeout=timeout_s)
    except queue_mod.Empty:
        raise ExecutorWedged(
            "actor run wedged: no control message for "
            f"{timeout_s:g}s", waited_s=timeout_s) from None


def run_section_mp(trace: SectionTrace, config: RunConfig
                   ) -> Tuple[SimResult, List[FireSet], float]:
    """Run *trace* on one worker process per match actor."""
    plans = build_plans(trace, config)
    n_procs = config.n_procs
    ctx = _mp_context()
    inboxes = [ctx.Queue() for _ in range(n_procs)]
    control_q = ctx.Queue()
    workers = [
        ctx.Process(target=_actor_process,
                    args=(i, config, inboxes, control_q),
                    daemon=True)
        for i in range(n_procs)
    ]
    for worker in workers:
        worker.start()

    result = SimResult(trace_name=trace.name, n_procs=n_procs)
    fires: List[FireSet] = []
    section_start = time.perf_counter()
    try:
        for plan in plans:
            cycle_start = time.perf_counter()
            accumulator = CycleAccumulator(plan, config)
            for i in range(n_procs):
                inboxes[i].put(("cycle", plan.per_actor[i]))
            while not accumulator.done:
                message = _get_control(control_q)
                if message[0] == "actor_error":
                    raise ExecutorCrashed(
                        f"match actor {message[1]} failed: {message[2]}",
                        actor=message[1], cycle=plan.index)
                accumulator.note(message)
            for i in range(n_procs):
                inboxes[i].put(("sync",))
            stats: List = [None] * n_procs
            remaining = n_procs
            while remaining:
                message = _get_control(control_q)
                if message[0] == "stats":
                    stats[message[1]] = message[2]
                    remaining -= 1
                elif message[0] == "actor_error":
                    raise ExecutorCrashed(
                        f"match actor {message[1]} failed: {message[2]}",
                        actor=message[1], cycle=plan.index)
                else:
                    accumulator.note(message)
            wall_s = time.perf_counter() - cycle_start
            cycle_result, fired = accumulator.finish(stats, wall_s)
            result.cycles.append(cycle_result)
            fires.append(fired)
    finally:
        for i in range(n_procs):
            inboxes[i].put(("shutdown",))
        for worker in workers:
            worker.join(timeout=10.0)
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=10.0)
        for q in inboxes + [control_q]:
            q.close()
    return result, fires, time.perf_counter() - section_start

"""Deterministic chaos injection for the live executor backends.

Where :mod:`repro.mpc.faults` *prices* network and processor faults
inside the discrete simulator, this module *inflicts* them on the live
actor stack so the supervision layer (:mod:`repro.exec.supervise`) can
be tested against real failure modes: a partition worker killed at
cycle *k*, a token or instantiation message dropped, duplicated or
delayed in flight, an event loop stalled mid-cycle.

Determinism follows the same counter-based splitmix64 discipline as
:func:`repro.mpc.faults.counter_u01`: every draw hashes ``(seed,
stream, cycle, identity, generation)``, so a message's fate depends
only on what it is — never on scheduling order.  The *generation*
counter increments on every supervised restart, which is what makes
recovery possible: a replayed cycle rolls fresh draws, so a
probabilistic kill or drop does not recur deterministically on every
attempt.  Use :attr:`ChaosPolicy.kills` for a one-shot deterministic
kill (the cycle's first attempt only — the replay succeeds) and
:attr:`ChaosPolicy.persistent_kills` for a kill that survives every
restart (drives :class:`~repro.exec.errors.RestartsExhausted`).

Mirroring the simulator's fault model, chaos applies only to *data*
messages — cross-partition tokens and instantiation (fire) deliveries.
The cycle broadcast, the bookkeeping traffic and the sync barrier stay
reliable, so every injected fault is *detectable* by counting: a drop
starves quiescence (wedge), a duplicate breaks the cycle's
processed/fires validation (protocol violation), a late delayed
message hits a cleared actor table (crash report).  Detected is the
point — the supervised contract is "bit-identical result or typed
error, never silently wrong".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..mpc.faults import counter_u01

#: Independent draw streams (disjoint from the simulator's fault
#: streams only by convention — the seeds live in different models).
_STREAM_KILL = 11
_STREAM_DROP = 12
_STREAM_DUP = 13
_STREAM_DELAY = 14
_STREAM_STALL = 15

#: Message-kind codes folded into data-message draw counters.
MSG_TOKEN = 0
MSG_FIRE = 1


@dataclass(frozen=True)
class ChaosPolicy:
    """A seeded, fully deterministic schedule of live-run faults.

    All probabilities are per-draw in ``[0, 1]``; a policy with every
    knob at zero (``is_null``) injects nothing.  Instances are plain
    frozen data and picklable, so the multiprocessing transport ships
    the policy to its worker processes.
    """

    seed: int = 0
    #: Probability a worker is killed at a cycle start, per
    #: ``(cycle, actor, attempt)``.
    kill_prob: float = 0.0
    #: Per-data-message probabilities and delay magnitude.
    drop_prob: float = 0.0
    dup_prob: float = 0.0
    delay_prob: float = 0.0
    delay_s: float = 0.01
    #: Probability an actor's event loop stalls for ``stall_s`` on
    #: receiving a cycle broadcast.
    stall_prob: float = 0.0
    stall_s: float = 0.05
    #: Deterministic one-shot kills: ``(cycle, actor)`` pairs applied
    #: on that cycle's first attempt only — the supervised replay then
    #: succeeds.
    kills: Tuple[Tuple[int, int], ...] = ()
    #: Kills applied on *every* attempt — the cycle can never complete
    #: and supervision must give up with ``RestartsExhausted``.
    persistent_kills: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        for name in ("kill_prob", "drop_prob", "dup_prob", "delay_prob",
                     "stall_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], "
                                 f"got {value!r}")
        if self.delay_s < 0.0:
            raise ValueError("delay_s must be >= 0")
        if self.stall_s < 0.0:
            raise ValueError("stall_s must be >= 0")

    @property
    def is_null(self) -> bool:
        """Whether this policy can never inject anything."""
        return (self.kill_prob == 0.0 and self.drop_prob == 0.0
                and self.dup_prob == 0.0 and self.delay_prob == 0.0
                and self.stall_prob == 0.0 and not self.kills
                and not self.persistent_kills)

    # -- draws (all counter-based: order-independent) -----------------------

    def should_kill(self, cycle: int, actor: int,
                    attempt: int) -> bool:
        """Kill *actor* at the start of *cycle*'s replay *attempt*
        (0-based per cycle)?"""
        if (cycle, actor) in self.persistent_kills:
            return True
        if attempt == 0 and (cycle, actor) in self.kills:
            return True
        return (self.kill_prob > 0.0
                and counter_u01(self.seed, _STREAM_KILL, cycle, actor,
                                attempt) < self.kill_prob)

    def should_drop(self, cycle: int, kind: int, act_id: int,
                    generation: int) -> bool:
        """Drop this data message in flight?"""
        return (self.drop_prob > 0.0
                and counter_u01(self.seed, _STREAM_DROP, cycle, kind,
                                act_id, generation) < self.drop_prob)

    def should_duplicate(self, cycle: int, kind: int, act_id: int,
                         generation: int) -> bool:
        """Deliver this data message twice?"""
        return (self.dup_prob > 0.0
                and counter_u01(self.seed, _STREAM_DUP, cycle, kind,
                                act_id, generation) < self.dup_prob)

    def delay_for(self, cycle: int, kind: int, act_id: int,
                  generation: int) -> float:
        """Seconds to hold this data message (0.0 = deliver now)."""
        if self.delay_prob <= 0.0 or self.delay_s <= 0.0:
            return 0.0
        if counter_u01(self.seed, _STREAM_DELAY, cycle, kind, act_id,
                       generation) < self.delay_prob:
            return self.delay_s
        return 0.0

    def stall_for(self, cycle: int, actor: int,
                  generation: int) -> float:
        """Seconds *actor*'s event loop stalls on this cycle's
        broadcast (0.0 = no stall)."""
        if self.stall_prob <= 0.0 or self.stall_s <= 0.0:
            return 0.0
        if counter_u01(self.seed, _STREAM_STALL, cycle, actor,
                       generation) < self.stall_prob:
            return self.stall_s
        return 0.0


#: A null policy for call sites that want "no chaos" as a value.
NULL_CHAOS = ChaosPolicy()

"""The Section 3.2 message protocol as transport-agnostic state machines.

The live executors (:mod:`repro.exec.actors`, :mod:`repro.exec.mp`,
:mod:`repro.exec.served`) all speak the same per-cycle protocol the
paper's mapping describes and the discrete simulator prices:

1. the control actor *broadcasts* the cycle's wme changes — here, each
   match actor's share of the cycle plan (its bucket partition's root
   activations and activation specs);
2. match actors evaluate constant tests, process the activations whose
   hash bucket they own, exchange cross-partition successor tokens as
   point-to-point messages, and ship instantiations (terminal
   activations) back to the control actor as *changes to the conflict
   set*;
3. the control actor detects quiescence by counting (every reachable
   nonterminal is processed exactly once, every reachable terminal
   fires exactly once) and closes the cycle with a *sync barrier*
   before opening the next — one barrier per recognize-act cycle.

This module holds everything transport-independent: plan construction
(which activations live where, priced with the same
:func:`~repro.mpc.simulator.compute_search_costs` surcharges as the
simulator) and the pure per-actor state machine
(:class:`MatchActorCore`).  Transports only move the emitted messages;
because the cores never look at a clock or a scheduler, the *counters*
(activations per processor, message counts, fires) are deterministic
and equal to the discrete simulator's for any interleaving — only wall
time varies.  Bookkeeping traffic (processed-counts, sync, stats) is
not counted in ``n_messages``: termination detection is idealized and
free, exactly as in the paper and the simulator.

Messages (plain tuples, picklable for the multiprocessing transport):

====================  =============================  ==============
message               direction                      counted?
====================  =============================  ==============
``("cycle", plan)``   control → every match actor    1 per cycle
``("token", act)``    match actor → match actor      yes
``("fire", act)``     match actor → control          yes
``("processed", k)``  match actor → control          no (bookkeeping)
``("sync",)``         control → every match actor    no (barrier)
``("stats", i, s)``   match actor → control          no (barrier)
``("shutdown",)``     control → every match actor    no
====================  =============================  ==============

When a run is live-traced (``RunConfig(live_trace=True)``, see
:mod:`repro.obs.trace`), every *data* message additionally carries a
span context ``(sender_id, send_perf_ts)`` appended as one trailing
element: the cycle broadcast becomes ``("cycle", plan, index, ctx)``
and token/fire messages become ``("token", act, ctx)`` / ``("fire",
act, ctx)``.  One extra message flows per actor per barrier: a
``("spans", ...)`` flight-recorder drain, sent *before* the ``stats``
reply so FIFO ordering guarantees the coordinator holds a cycle's
spans before it closes the cycle.  None of this changes what is
counted: contexts ride on already-counted messages, ``spans`` is
bookkeeping like ``stats``, and the cores never see either
(:meth:`CycleAccumulator.note` tolerates the trailing context on
``fire``; control loops intercept ``spans`` before calling it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..mpc.config import RunConfig
from ..mpc.mapping import RoundRobinMapping
from ..mpc.metrics import CycleResult
from ..mpc.simulator import compute_search_costs
from ..rete.hashing import BucketKey
from ..trace.events import KIND_TERMINAL, LEFT, SectionTrace
from .errors import ProtocolViolation

#: Destination id of the control actor in emitted ``(dst, msg)`` pairs.
CONTROL = -1

#: Activation spec inside an actor's plan:
#: ``(is_left, extra_us, ((succ_id, dest, is_terminal), ...))``.
ActSpec = Tuple[bool, float, Tuple[Tuple[int, int, bool], ...]]


@dataclass(frozen=True)
class ActorCyclePlan:
    """One match actor's share of a cycle broadcast."""

    #: Specs of the nonterminal activations this actor will process.
    acts: Dict[int, ActSpec]
    #: Root activations owned by this actor, in causal order.
    roots: Tuple[int, ...]
    #: Root *terminal* activations owned by this actor — single-CE
    #: instantiations it ships straight to control.
    root_fires: Tuple[int, ...]


@dataclass(frozen=True)
class CyclePlan:
    """A full cycle: every actor's share plus the control's expectations."""

    index: int
    per_actor: Tuple[ActorCyclePlan, ...]
    #: Total reachable nonterminal activations (the processed-count
    #: target for termination detection).
    expected_processed: int
    #: Every terminal activation that will be delivered to control,
    #: sorted — the cycle's canonical fire set.
    expected_fires: Tuple[int, ...]


def build_plans(trace: SectionTrace, config: RunConfig) -> List[CyclePlan]:
    """Partition *trace* into per-cycle, per-actor plans under *config*.

    Uses the same bucket-to-processor resolution as the simulator
    (shared hash per distinct bucket key, optional per-cycle mapping
    factory) and the same footnote-6 deletion-search surcharges, so an
    actor run prices activations identically to a simulated one.
    """
    n_procs = config.n_procs
    mapping = config.mapping or RoundRobinMapping(n_procs)
    search_costs = compute_search_costs(trace, config.costs)
    plans: List[CyclePlan] = []
    for cycle in trace:
        cycle_mapping = (config.mapping_factory(cycle)
                         if config.mapping_factory else mapping)
        if cycle_mapping.n_procs != n_procs:
            raise ValueError("mapping_factory produced a mapping for "
                             f"{cycle_mapping.n_procs} processors")
        processor_for = cycle_mapping.processor_for
        key_proc: Dict[BucketKey, int] = {}
        dest_of: Dict[int, int] = {}
        for act in cycle.ordered():
            key = act.key
            proc = key_proc.get(key)
            if proc is None:
                proc = key_proc[key] = processor_for(key)
            dest_of[act.act_id] = proc

        get_extra = search_costs.get(cycle.index, {}).get
        acts = cycle.activations
        per_actor_acts: List[Dict[int, ActSpec]] = \
            [{} for _ in range(n_procs)]
        per_actor_roots: List[List[int]] = [[] for _ in range(n_procs)]
        per_actor_fires: List[List[int]] = [[] for _ in range(n_procs)]
        fires: List[int] = []
        processed = 0

        # Walk exactly the activations the simulator delivers: roots,
        # then successors of processed nonterminals (successors of
        # terminals are never generated).
        frontier: List[int] = []
        for root in cycle.roots():
            owner = dest_of[root.act_id]
            if root.kind == KIND_TERMINAL:
                per_actor_fires[owner].append(root.act_id)
                fires.append(root.act_id)
            else:
                per_actor_roots[owner].append(root.act_id)
                frontier.append(root.act_id)
        while frontier:
            act_id = frontier.pop()
            act = acts[act_id]
            owner = dest_of[act_id]
            successors = []
            for succ_id in act.successors:
                succ = acts[succ_id]
                if succ.kind == KIND_TERMINAL:
                    successors.append((succ_id, CONTROL, True))
                    fires.append(succ_id)
                else:
                    successors.append((succ_id, dest_of[succ_id], False))
                    frontier.append(succ_id)
            per_actor_acts[owner][act_id] = (
                act.side == LEFT, get_extra(act_id, 0.0),
                tuple(successors))
            processed += 1

        plans.append(CyclePlan(
            index=cycle.index,
            per_actor=tuple(
                ActorCyclePlan(acts=per_actor_acts[p],
                               roots=tuple(per_actor_roots[p]),
                               root_fires=tuple(per_actor_fires[p]))
                for p in range(n_procs)),
            expected_processed=processed,
            expected_fires=tuple(sorted(fires))))
    return plans


def expected_fires(trace: SectionTrace,
                   config: RunConfig) -> List[Tuple[int, ...]]:
    """Per-cycle canonical fire sets of *trace* (sorted act ids)."""
    return [plan.expected_fires for plan in build_plans(trace, config)]


class CycleAccumulator:
    """Control-actor bookkeeping for one cycle, shared by transports.

    Tracks delivered instantiations and processed-counts until the
    cycle quiesces, then assembles a
    :class:`~repro.mpc.metrics.CycleResult` from the barrier stats.
    The counter fields are computed with the simulator's formulas
    (``n_messages`` = broadcast + cross-partition tokens + conflict-set
    deliveries; network busy = latency per counted message; control
    busy = the broadcast send plus one receive per instantiation), so a
    live run and a simulated run of the same cycle agree on every
    counter.  ``makespan_us`` is the *measured* wall time of the cycle
    — the one field where the live backends report reality instead of
    the model.
    """

    def __init__(self, plan: CyclePlan, config: RunConfig) -> None:
        self._plan = plan
        self._send_us = config.overheads.send_us
        self._recv_us = config.overheads.recv_us
        self._latency_us = config.overheads.latency_us
        self.fires: List[int] = []
        self.processed = 0

    def note(self, message: Tuple) -> None:
        """Feed one control-bound message (``fire`` or ``processed``)."""
        if message[0] == "fire":
            self.fires.append(message[1])
        elif message[0] == "processed":
            self.processed += message[1]
        else:
            raise ValueError(f"unexpected control message {message!r}")

    @property
    def done(self) -> bool:
        return (self.processed >= self._plan.expected_processed
                and len(self.fires) >= len(self._plan.expected_fires))

    def finish(self,
               stats: List[Tuple[float, int, int, int, int, int, int]],
               wall_s: float):
        """Close the cycle: ``(CycleResult, sorted fire tuple)``.

        Validates the delivered fires and processed counts against the
        plan — globally *and* per actor, with an act-id checksum — and
        raises :class:`~repro.exec.errors.ProtocolViolation` on any
        mismatch, so a corrupted cycle is always detected rather than
        silently folded into the result.
        """
        plan = self._plan
        fired = tuple(sorted(self.fires))
        if fired != plan.expected_fires:
            raise ProtocolViolation(
                f"cycle {plan.index}: delivered instantiations "
                f"{fired} != expected {plan.expected_fires}",
                cycle=plan.index)
        if self.processed != plan.expected_processed:
            raise ProtocolViolation(
                f"cycle {plan.index}: processed {self.processed} "
                f"activations, expected {plan.expected_processed}",
                cycle=plan.index)
        for i, s in enumerate(stats):
            acts = plan.per_actor[i].acts
            expect_left = sum(1 for spec in acts.values() if spec[0])
            expect_xor = 0
            for act_id in acts:
                expect_xor ^= act_id
            if (s[1], s[2], s[5], s[6]) != (len(acts), expect_left,
                                            sum(acts), expect_xor):
                raise ProtocolViolation(
                    f"cycle {plan.index}: actor {i} processed "
                    f"{s[1]} activations (checksum {s[5]}/{s[6]}), "
                    f"plan expects {len(acts)} "
                    f"(checksum {sum(acts)}/{expect_xor})",
                    cycle=plan.index)
        token_sends = sum(s[3] for s in stats)
        control_sends = sum(s[4] for s in stats)
        n_messages = 1 + token_sends + control_sends
        return CycleResult(
            index=plan.index,
            makespan_us=wall_s * 1e6,
            proc_busy_us=[s[0] for s in stats],
            proc_activations=[s[1] for s in stats],
            proc_left_activations=[s[2] for s in stats],
            n_messages=n_messages,
            network_busy_us=self._latency_us * n_messages,
            control_busy_us=self._send_us
            + self._recv_us * control_sends), fired


class MatchActorCore:
    """Pure state machine of one match actor (one bucket partition).

    Consumes protocol messages, returns ``(outbox, processed)`` where
    *outbox* is a list of ``(dst, message)`` pairs (``dst`` is an actor
    index or :data:`CONTROL`) and *processed* is the number of
    nonterminal activations handled.  Busy time is charged with the
    simulator's per-activation arithmetic (receive overhead for tokens
    that arrived as messages, token add/delete cost, deletion-search
    surcharge, per-successor cost, send overhead per emitted message),
    so at any overhead setting the accumulated ``busy_us`` equals the
    simulator's ``proc_busy_us`` for the same partition.
    """

    def __init__(self, actor_id: int, config: RunConfig) -> None:
        self.actor_id = actor_id
        costs = config.costs
        self._constant_tests_us = costs.constant_tests_us
        self._left_us = costs.left_token_us
        self._right_us = costs.right_token_us
        self._successor_us = costs.successor_us
        self._send_us = config.overheads.send_us
        self._recv_us = config.overheads.recv_us
        self._acts: Dict[int, ActSpec] = {}
        self._reset_counters()

    def _reset_counters(self) -> None:
        self.busy_us = 0.0
        self.activations = 0
        self.left_activations = 0
        self.token_sends = 0
        self.control_sends = 0
        self.acts_sum = 0
        self.acts_xor = 0

    def on_cycle(self, plan: ActorCyclePlan):
        """Handle the cycle broadcast: constant tests, owned roots."""
        self._acts = plan.acts
        self.busy_us += self._recv_us + self._constant_tests_us
        out: List[Tuple[int, Tuple]] = []
        for act_id in plan.root_fires:
            self.busy_us += self._send_us
            self.control_sends += 1
            out.append((CONTROL, ("fire", act_id)))
        processed = 0
        for act_id in plan.roots:
            processed += self._process(act_id, False, out)
        return out, processed

    def on_token(self, act_id: int):
        """Handle a cross-partition successor token message."""
        out: List[Tuple[int, Tuple]] = []
        processed = self._process(act_id, True, out)
        return out, processed

    def on_sync(self) -> Tuple[float, int, int, int, int, int, int]:
        """Barrier: report and reset this cycle's counters.

        The trailing ``(acts_sum, acts_xor)`` pair is a checksum over
        the act ids this actor actually processed;
        :meth:`CycleAccumulator.finish` compares it against the plan,
        so a duplicated delivery cannot silently compensate for a
        dropped one (totals would match, the checksum cannot).
        """
        stats = (self.busy_us, self.activations, self.left_activations,
                 self.token_sends, self.control_sends,
                 self.acts_sum, self.acts_xor)
        self._acts = {}
        self._reset_counters()
        return stats

    def _process(self, act_id: int, via_message: bool,
                 out: List[Tuple[int, Tuple]]) -> int:
        """Process *act_id* and, iteratively, its local successors."""
        processed = 0
        pending = [act_id]
        first_via_message = via_message
        while pending:
            current = pending.pop()
            is_left, extra_us, successors = self._acts[current]
            busy = self._recv_us if first_via_message else 0.0
            first_via_message = False
            busy += (self._left_us if is_left else self._right_us) \
                + extra_us
            self.activations += 1
            self.acts_sum += current
            self.acts_xor ^= current
            if is_left:
                self.left_activations += 1
            for succ_id, dest, is_terminal in successors:
                busy += self._successor_us
                if is_terminal:
                    busy += self._send_us
                    self.control_sends += 1
                    out.append((CONTROL, ("fire", succ_id)))
                elif dest == self.actor_id:
                    pending.append(succ_id)
                else:
                    busy += self._send_us
                    self.token_sends += 1
                    out.append((dest, ("token", succ_id)))
            self.busy_us += busy
            processed += 1
        return processed

"""The simulator backend: ``run()`` over the discrete-event engine.

:class:`SimExecutor` is the reference backend — it calls
:func:`repro.mpc.simulate_config` unchanged, so its counters and
timings are bit-identical to a direct ``simulate_config`` call (the
executor layer adds nothing to the model).  The per-cycle fire sets
are derived from the trace by the shared plan builder, which walks
exactly the activations the simulator delivers.
"""

from __future__ import annotations

import time

from ..mpc.config import RunConfig
from ..mpc.simulator import simulate_config
from ..trace.events import SectionTrace
from .base import RunHandle, RunResult
from .plan import expected_fires


class SimExecutor:
    """Backend ``sim``: the discrete-event simulator behind ``run()``."""

    name = "sim"

    def submit(self, trace: SectionTrace,
               config: RunConfig) -> RunHandle:
        if config.live_trace:
            raise ValueError(
                "the sim backend has no live execution to trace; use "
                "backend 'actors' with --trace-live (or 'repro "
                "profile' for modeled timelines)")

        def thunk() -> RunResult:
            start = time.perf_counter()
            result = simulate_config(trace, config)
            wall_s = time.perf_counter() - start
            return RunResult(backend=self.name, result=result,
                             fires=expected_fires(trace, config),
                             wall_s=wall_s)
        return RunHandle(thunk)

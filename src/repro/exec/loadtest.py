"""An open-loop load-test harness for the ``served`` backend.

A closed-loop driver (submit, wait, submit again) can never overload a
server: the moment the server slows down, the driver slows with it and
the measured latency flatters the system (*coordinated omission*).
This harness is **open-loop**: session arrival times are drawn up
front from an exponential inter-arrival process at the offered rate
``sessions / duration_s``, and the driver submits on schedule whether
or not earlier sessions have finished.  When the offered rate exceeds
the server's capacity the pending queue grows past the high-water
mark and the server sheds — exactly the behaviour the bench exists to
measure.

The arrival schedule is seeded (:class:`random.Random`), so a bench
invocation is reproducible in *what it offers*; what the server
*achieves* (throughput, latency quantiles, shed counts) is measured
wall-clock truth.  Latency quantiles are computed exactly from the
client-observed per-session latencies (submit → result), and the
server's own ``served.session_latency_s`` reservoir histogram rides
along in the payload for cross-checking.

``repro loadtest`` drives this and writes the payload to
``BENCH_served.json``.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional

from ..mpc.config import RunConfig
from ..obs import get_logger, get_registry, log_event
from ..trace.events import SectionTrace
from .errors import SessionOverloaded, exec_timeout_s
from .served import DEFAULT_MAX_SESSIONS, SessionServer

_LOG = get_logger("repro.exec.loadtest")

#: Default bench file written by ``repro loadtest``.
BENCH_PATH = "BENCH_served.json"


def _loadtest_trace(seed: int) -> SectionTrace:
    """A small deterministic section: big enough to exercise the full
    cycle protocol, small enough that one session is a few ms."""
    from ..workloads.generator import SectionSpec, generate_section
    return generate_section(SectionSpec(
        name=f"loadtest-{seed}", cycles=3,
        right_activations=150, left_activations=150))


def _exact_quantile(ordered: List[float], q: float) -> Optional[float]:
    """Linear-interpolated quantile of an already-sorted sample."""
    if not ordered:
        return None
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def arrival_offsets(sessions: int, duration_s: float,
                    seed: int) -> List[float]:
    """Seconds-from-start arrival times: *sessions* draws from an
    exponential inter-arrival process at rate ``sessions /
    duration_s`` (open-loop Poisson arrivals), deterministic in
    *seed*."""
    if sessions < 1:
        raise ValueError("sessions must be >= 1")
    if duration_s <= 0:
        raise ValueError("duration_s must be > 0")
    rng = random.Random(seed)
    rate = sessions / duration_s
    offsets: List[float] = []
    clock = 0.0
    for _ in range(sessions):
        clock += rng.expovariate(rate)
        offsets.append(clock)
    return offsets


def run_loadtest(sessions: int = 64, duration_s: float = 5.0,
                 seed: int = 0, procs: int = 2,
                 max_sessions: int = DEFAULT_MAX_SESSIONS,
                 max_pending: Optional[int] = None,
                 trace: Optional[SectionTrace] = None,
                 server: Optional[SessionServer] = None) -> Dict:
    """Offer *sessions* over *duration_s* seconds; measure the truth.

    Returns a JSON-ready payload: offered/achieved rates, exact
    client-observed latency quantiles, shed counts split by reason,
    the server's closing load snapshot and its ``served.*``
    instrument snapshot.  Pass an existing *server* to bench it in
    place (it is not stopped afterwards); otherwise a private one is
    started and torn down.
    """
    trace = trace if trace is not None else _loadtest_trace(seed)
    config = RunConfig(n_procs=procs)
    offsets = arrival_offsets(sessions, duration_s, seed)
    owned = server is None
    if owned:
        server = SessionServer(max_sessions, max_pending=max_pending)
        server.start()
    log_event(_LOG, "loadtest.start", sessions=sessions,
              duration_s=duration_s, seed=seed, procs=procs,
              rate_per_s=sessions / duration_s)
    futures = []
    shed = {"overloaded": 0, "draining": 0}
    errors: Dict[str, int] = {}
    start = time.perf_counter()
    try:
        for offset in offsets:
            delay = start + offset - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            try:
                futures.append((time.perf_counter(),
                                server.submit(trace, config)))
            except SessionOverloaded as err:
                shed[err.code] = shed.get(err.code, 0) + 1
        latencies: List[float] = []
        deadline = exec_timeout_s(60.0)
        for submitted, future in futures:
            try:
                future.result(timeout=deadline)
                latencies.append(time.perf_counter() - submitted)
            except SessionOverloaded as err:
                shed[err.code] = shed.get(err.code, 0) + 1
            except Exception as err:
                name = type(err).__name__
                errors[name] = errors.get(name, 0) + 1
        wall_s = time.perf_counter() - start
        load = server.load
    finally:
        if owned:
            server.stop()
    latencies.sort()
    completed = len(latencies)
    payload = {
        "bench": "served_loadtest",
        "sessions": sessions,
        "duration_s": duration_s,
        "seed": seed,
        "procs": procs,
        "max_sessions": server.max_sessions,
        "max_pending": server.max_pending,
        "offered_rate_per_s": sessions / duration_s,
        "wall_s": wall_s,
        "completed": completed,
        "throughput_per_s": completed / wall_s if wall_s else 0.0,
        "shed": {"total": sum(shed.values()), **shed},
        "errors": errors,
        "latency_s": {
            "count": completed,
            "mean": (sum(latencies) / completed) if completed else None,
            "min": latencies[0] if latencies else None,
            "max": latencies[-1] if latencies else None,
            "p50": _exact_quantile(latencies, 0.5),
            "p90": _exact_quantile(latencies, 0.9),
            "p95": _exact_quantile(latencies, 0.95),
            "p99": _exact_quantile(latencies, 0.99),
        },
        "server_load": load,
        "obs": get_registry().snapshot("served."),
    }
    log_event(_LOG, "loadtest.done", completed=completed,
              shed=payload["shed"]["total"],
              throughput_per_s=round(payload["throughput_per_s"], 1))
    return payload

"""Typed failures of the live executor stack, and the timeout knob.

The live backends (:mod:`repro.exec.actors`, :mod:`repro.exec.mp`,
:mod:`repro.exec.served`) promise a hard contract to their callers and
to the ``live_recovery`` oracle in :mod:`repro.check`: a run either
produces the simulator-identical result or raises one of the typed
errors below — it never wedges silently and never returns
silently-wrong counters.  Every error subclasses :class:`ExecutorError`
(itself a ``RuntimeError``, so pre-existing ``except RuntimeError``
call sites keep working) and carries enough context to act on.

Timeouts are configurable rather than hard-coded: every wedge deadline
in the stack resolves through :func:`exec_timeout_s`, which honors the
``REPRO_EXEC_TIMEOUT_S`` environment variable — tests exercise wedge
paths in milliseconds by setting it, production deployments raise it.
"""

from __future__ import annotations

import os
from typing import Optional

#: Environment override for every live-executor deadline, in seconds.
ENV_TIMEOUT = "REPRO_EXEC_TIMEOUT_S"

#: Default control-side wedge deadline (seconds) when neither the
#: environment nor a :class:`~repro.mpc.config.SupervisePolicy` says
#: otherwise.  Generous on purpose: an unsupervised run should only
#: give up when something is genuinely stuck.
DEFAULT_TIMEOUT_S = 300.0


def exec_timeout_s(default: float = DEFAULT_TIMEOUT_S) -> float:
    """The live-executor deadline: ``$REPRO_EXEC_TIMEOUT_S`` or *default*.

    An unparsable or non-positive override is ignored (fail open to the
    default rather than wedging forever or spinning).
    """
    raw = os.environ.get(ENV_TIMEOUT)
    if raw:
        try:
            value = float(raw)
        except ValueError:
            return default
        if value > 0.0:
            return value
    return default


class ExecutorError(RuntimeError):
    """Base of every typed live-executor failure."""


class ExecutorWedged(ExecutorError):
    """No control-bound progress within the deadline.

    Raised when every worker still looks alive but the cycle's
    quiescence counters stopped advancing — a lost message, a stalled
    event loop, or a deadlocked worker.  ``cycle`` is the recognize-act
    cycle that stalled (``None`` when unknown).
    """

    def __init__(self, detail: str, *, cycle: Optional[int] = None,
                 waited_s: Optional[float] = None) -> None:
        super().__init__(detail)
        self.cycle = cycle
        self.waited_s = waited_s


class ExecutorCrashed(ExecutorError):
    """A partition worker died or reported an internal error.

    ``actor`` is the match-actor index when known; ``cycle`` the cycle
    in flight when the crash surfaced.
    """

    def __init__(self, detail: str, *, actor: Optional[int] = None,
                 cycle: Optional[int] = None) -> None:
        super().__init__(detail)
        self.actor = actor
        self.cycle = cycle


class ProtocolViolation(ExecutorError):
    """The cycle closed with counters that contradict its plan.

    Delivered instantiations or processed-counts disagreed with the
    :class:`~repro.exec.plan.CyclePlan` — a duplicated or misrouted
    message.  The supervisor treats this as a detected (never silent)
    divergence and replays the cycle from its checkpoint.
    """

    def __init__(self, detail: str, *, cycle: Optional[int] = None) -> None:
        super().__init__(detail)
        self.cycle = cycle


class RestartsExhausted(ExecutorError):
    """Supervision gave up: the same cycle failed on every attempt.

    ``last`` is the failure of the final attempt — always itself a
    typed :class:`ExecutorError`.
    """

    def __init__(self, detail: str, *, cycle: Optional[int] = None,
                 attempts: int = 0,
                 last: Optional[ExecutorError] = None) -> None:
        super().__init__(detail)
        self.cycle = cycle
        self.attempts = attempts
        self.last = last


class SessionOverloaded(ExecutorError):
    """The session server shed this request (load past the high-water
    mark, or a draining shutdown in progress).  ``code`` is the
    machine-readable reason used in TCP replies: ``"overloaded"`` or
    ``"draining"``."""

    def __init__(self, detail: str, *, code: str = "overloaded") -> None:
        super().__init__(detail)
        self.code = code

"""Pluggable executor backends behind one ``run()`` API.

The paper's experiments run the Section 3.2 match protocol three ways
in this codebase, all behind the same :class:`~repro.exec.base.Executor`
protocol:

>>> from repro.exec import run
>>> from repro.mpc import RunConfig
>>> outcome = run(trace, RunConfig(n_procs=8), backend="actors")
>>> outcome.result.n_messages == run(trace, RunConfig(n_procs=8)).result.n_messages
True

See :mod:`repro.exec.base` for the protocol, and the backend modules
(:mod:`repro.exec.sim`, :mod:`repro.exec.actors`,
:mod:`repro.exec.served`) for what each one executes.
"""

from __future__ import annotations

from typing import Optional

from ..mpc.config import RunConfig, SupervisePolicy
from ..trace.events import SectionTrace
from .actors import ActorExecutor, run_section_async
from .base import (Executor, RunHandle, RunResult, match_signature)
from .chaos import NULL_CHAOS, ChaosPolicy
from .errors import (ENV_TIMEOUT, ExecutorCrashed, ExecutorError,
                     ExecutorWedged, ProtocolViolation,
                     RestartsExhausted, SessionOverloaded,
                     exec_timeout_s)
from .loadtest import arrival_offsets, run_loadtest
from .plan import (CONTROL, ActorCyclePlan, CyclePlan, MatchActorCore,
                   build_plans, expected_fires)
from .served import SessionServer, ServedExecutor
from .sim import SimExecutor
from .supervise import run_supervised_async, run_supervised_mp

#: Backend registry: name -> executor class.  ``get_executor`` builds a
#: fresh instance per call; backend-specific options (``transport`` for
#: actors, ``max_sessions`` for served) pass through as keywords.
BACKENDS = {
    SimExecutor.name: SimExecutor,
    ActorExecutor.name: ActorExecutor,
    ServedExecutor.name: ServedExecutor,
}


def get_executor(backend: str = "sim", **options) -> Executor:
    """Instantiate a backend by registry name."""
    cls = BACKENDS.get(backend)
    if cls is None:
        raise ValueError(f"unknown backend {backend!r}; "
                         f"choose from {sorted(BACKENDS)}")
    return cls(**options)


def run(trace: SectionTrace, config: Optional[RunConfig] = None,
        backend: str = "sim", **options) -> RunResult:
    """Run *trace* under *config* on a backend, synchronously.

    The one front door: ``submit`` + ``result`` on a fresh executor.
    ``options`` go to the backend constructor (for example
    ``transport="process"`` with ``backend="actors"``).
    """
    executor = get_executor(backend, **options)
    try:
        return executor.submit(trace, config or RunConfig()).result()
    finally:
        close = getattr(executor, "close", None)
        if close is not None:
            close()


__all__ = [
    "ActorExecutor",
    "ActorCyclePlan",
    "BACKENDS",
    "CONTROL",
    "ChaosPolicy",
    "CyclePlan",
    "ENV_TIMEOUT",
    "Executor",
    "ExecutorCrashed",
    "ExecutorError",
    "ExecutorWedged",
    "MatchActorCore",
    "NULL_CHAOS",
    "ProtocolViolation",
    "RestartsExhausted",
    "RunConfig",
    "RunHandle",
    "RunResult",
    "ServedExecutor",
    "SessionOverloaded",
    "SessionServer",
    "SimExecutor",
    "SupervisePolicy",
    "arrival_offsets",
    "build_plans",
    "exec_timeout_s",
    "expected_fires",
    "get_executor",
    "match_signature",
    "run",
    "run_loadtest",
    "run_section_async",
    "run_supervised_async",
    "run_supervised_mp",
]

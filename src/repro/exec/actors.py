"""Backend ``actors``: a live actor run of the Section 3.2 protocol.

Where the simulator *prices* the paper's message protocol under a cost
model, this backend *executes* it: each bucket partition is an actor
with an inbox, the control actor broadcasts each cycle's plan, token
messages really travel between partitions, instantiations really
arrive at control, and a sync barrier really closes every
recognize-act cycle.

Two transports move the messages:

``asyncio`` (default)
    One :mod:`asyncio` task and queue per match actor, all in one
    process.  Cheap, deterministic to start, runs anywhere.
``process``
    One OS process per match actor with :mod:`multiprocessing` queues
    (:mod:`repro.exec.mp`) — actual parallel execution.

Either way the counters come out of the same
:class:`~repro.exec.plan.MatchActorCore` state machines, so activation
counts, message counts and fire sets are equal to the simulator's for
the same ``(trace, config)`` — the ``actors_vs_sim`` oracle in
:mod:`repro.check` holds exactly.  Timing fields are measured wall
time, reported for comparison against the model, never asserted.
"""

from __future__ import annotations

import asyncio
import time
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..mpc.config import RunConfig, SupervisePolicy
from ..mpc.metrics import SimResult
from ..trace.events import SectionTrace
from .base import FireSet, RunHandle, RunResult
from .chaos import ChaosPolicy
from .errors import ExecutorCrashed, ExecutorError
from .plan import (CONTROL, CycleAccumulator, MatchActorCore,
                   build_plans)

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..obs.trace import LiveTraceCollector

#: Transports accepted by :class:`ActorExecutor`.
TRANSPORTS = ("asyncio", "process")


async def run_section_async(trace: SectionTrace, config: RunConfig,
                            collector: Optional[
                                "LiveTraceCollector"] = None,
                            ) -> Tuple[SimResult, List[FireSet], float]:
    """Run *trace* on asyncio actors; ``(result, fires, wall_s)``.

    Usable directly from an existing event loop — the served backend
    runs many of these concurrently on one loop, each with its own
    queues and actor cores (per-session sharded working memory).

    With a :class:`~repro.obs.trace.LiveTraceCollector` the run is
    traced: data messages carry a ``(sender, send_ts)`` context, each
    actor records match/send/barrier spans into a flight recorder
    drained over the control queue before every barrier reply, and the
    control loop records one cycle span per committed cycle.  With
    ``collector=None`` (the default) this function is byte-for-byte
    the untraced protocol — no context on messages, no recorders.
    """
    plans = build_plans(trace, config)
    n_procs = config.n_procs
    inboxes = [asyncio.Queue() for _ in range(n_procs)]
    control_q: asyncio.Queue = asyncio.Queue()
    traced = collector is not None
    if traced:
        from ..obs.trace import (LIVE_BARRIER, LIVE_CYCLE, LIVE_MATCH,
                                 LIVE_SEND, FlightRecorder)

    async def actor_main(actor_id: int) -> None:
        core = MatchActorCore(actor_id, config)
        inbox = inboxes[actor_id]
        try:
            while True:
                message = await inbox.get()
                kind = message[0]
                if kind == "shutdown":
                    return
                if kind == "sync":
                    control_q.put_nowait(("stats", actor_id,
                                          core.on_sync()))
                    continue
                if kind == "cycle":
                    out, processed = core.on_cycle(message[1])
                else:  # "token"
                    out, processed = core.on_token(message[1])
                for dst, msg in out:
                    if dst == CONTROL:
                        control_q.put_nowait(msg)
                    else:
                        inboxes[dst].put_nowait(msg)
                if processed:
                    control_q.put_nowait(("processed", processed))
        except Exception as err:  # surface instead of hanging control
            control_q.put_nowait(("actor_error", actor_id, repr(err)))

    async def actor_main_traced(actor_id: int) -> None:
        core = MatchActorCore(actor_id, config)
        recorder = FlightRecorder(actor_id)
        inbox = inboxes[actor_id]
        cycle = 0
        last_done = recorder.perf_base
        try:
            while True:
                message = await inbox.get()
                kind = message[0]
                now = time.perf_counter()
                if kind == "shutdown":
                    control_q.put_nowait(recorder.drain())
                    return
                if kind == "sync":
                    recorder.record(LIVE_BARRIER, cycle, last_done, now)
                    control_q.put_nowait(recorder.drain())
                    control_q.put_nowait(("stats", actor_id,
                                          core.on_sync()))
                    continue
                if kind == "cycle":
                    cycle = message[2]
                    ctx = message[3]
                    out, processed = core.on_cycle(message[1])
                else:  # "token"
                    ctx = message[2]
                    out, processed = core.on_token(message[1])
                done = time.perf_counter()
                recorder.record(
                    LIVE_MATCH, cycle, now, done, n=processed,
                    act_id=(message[1] if kind == "token" else -1),
                    src=ctx[0], sent_s=ctx[1], busy_us=core.busy_us)
                if out:
                    for dst, msg in out:
                        stamped = msg + ((actor_id,
                                          time.perf_counter()),)
                        if dst == CONTROL:
                            control_q.put_nowait(stamped)
                        else:
                            inboxes[dst].put_nowait(stamped)
                    recorder.record(LIVE_SEND, cycle, done,
                                    time.perf_counter(), n=len(out))
                last_done = time.perf_counter()
                if processed:
                    control_q.put_nowait(("processed", processed))
        except Exception as err:  # surface instead of hanging control
            control_q.put_nowait(recorder.drain())
            control_q.put_nowait(("actor_error", actor_id, repr(err)))

    main = actor_main_traced if traced else actor_main
    tasks = [asyncio.create_task(main(i)) for i in range(n_procs)]
    result = SimResult(trace_name=trace.name, n_procs=n_procs)
    fires: List[FireSet] = []
    section_start = time.perf_counter()
    try:
        for plan in plans:
            cycle_start = time.perf_counter()
            accumulator = CycleAccumulator(plan, config)
            for i in range(n_procs):
                if traced:
                    inboxes[i].put_nowait(
                        ("cycle", plan.per_actor[i], plan.index,
                         (CONTROL, time.perf_counter())))
                else:
                    inboxes[i].put_nowait(("cycle", plan.per_actor[i]))
            while not accumulator.done:
                message = await control_q.get()
                if message[0] == "actor_error":
                    raise ExecutorCrashed(
                        f"match actor {message[1]} failed: {message[2]}",
                        actor=message[1], cycle=plan.index)
                if traced and message[0] == "spans":
                    collector.add_drain(message)
                    continue
                accumulator.note(message)
            for i in range(n_procs):
                inboxes[i].put_nowait(("sync",))
            stats: List = [None] * n_procs
            remaining = n_procs
            while remaining:
                message = await control_q.get()
                if message[0] == "stats":
                    stats[message[1]] = message[2]
                    remaining -= 1
                elif message[0] == "actor_error":
                    raise ExecutorCrashed(
                        f"match actor {message[1]} failed: {message[2]}",
                        actor=message[1], cycle=plan.index)
                elif traced and message[0] == "spans":
                    collector.add_drain(message)
                else:
                    accumulator.note(message)
            wall_s = time.perf_counter() - cycle_start
            cycle_result, fired = accumulator.finish(stats, wall_s)
            if traced:
                collector.recorder.record(
                    LIVE_CYCLE, plan.index, cycle_start,
                    time.perf_counter(), n=cycle_result.n_messages)
                collector.commit(plan.index, 0)
            result.cycles.append(cycle_result)
            fires.append(fired)
    finally:
        for i in range(n_procs):
            inboxes[i].put_nowait(("shutdown",))
        await asyncio.gather(*tasks, return_exceptions=True)
        if traced:
            while not control_q.empty():
                message = control_q.get_nowait()
                if message[0] == "spans":
                    collector.add_drain(message)
    return result, fires, time.perf_counter() - section_start


def _check_supported(config: RunConfig) -> None:
    if config.faulty:
        raise ValueError("the actors backend does not support fault "
                         "injection; use backend 'sim'")
    if config.recorder is not None:
        raise ValueError("the actors backend does not support timeline "
                         "recording; use backend 'sim'")


class ActorExecutor:
    """Backend ``actors``: live bucket-partition actors.

    *transport* selects how messages move: ``"asyncio"`` (tasks in
    this process) or ``"process"`` (one OS process per actor, see
    :mod:`repro.exec.mp`).

    When the config carries a
    :class:`~repro.mpc.config.SupervisePolicy` (``config.supervise``),
    or a non-null :class:`~repro.exec.chaos.ChaosPolicy` is given, the
    run goes through the supervised engines in
    :mod:`repro.exec.supervise` — heartbeat liveness checks, per-cycle
    deadlines, checkpoint-replay restarts.  A chaos policy without an
    explicit supervision policy turns on default supervision: chaos
    without recovery would just be a hang.
    """

    name = "actors"

    def __init__(self, transport: str = "asyncio",
                 chaos: Optional[ChaosPolicy] = None) -> None:
        if transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {transport!r}; "
                             f"choose from {TRANSPORTS}")
        self.transport = transport
        self.chaos = chaos

    def submit(self, trace: SectionTrace,
               config: RunConfig) -> RunHandle:
        _check_supported(config)
        chaos = self.chaos
        if chaos is not None and chaos.is_null:
            chaos = None
        if chaos is not None and config.supervise is None:
            config = config.replace(supervise=SupervisePolicy())
        supervised = config.supervise is not None

        def thunk() -> RunResult:
            collector = None
            if config.live_trace:
                from ..obs.trace import LiveTraceCollector
                collector = LiveTraceCollector(
                    trace.name, config.n_procs, self.transport)
            try:
                if supervised:
                    from .supervise import (run_supervised_async,
                                            run_supervised_mp)
                    if self.transport == "process":
                        result, fires, wall_s = run_supervised_mp(
                            trace, config, chaos, collector=collector)
                    else:
                        result, fires, wall_s = asyncio.run(
                            run_supervised_async(trace, config, chaos,
                                                 collector=collector))
                elif self.transport == "process":
                    from .mp import run_section_mp
                    result, fires, wall_s = run_section_mp(
                        trace, config, collector=collector)
                else:
                    result, fires, wall_s = asyncio.run(
                        run_section_async(trace, config,
                                          collector=collector))
            except ExecutorError as err:
                if collector is not None:
                    from ..obs.trace import dump_flight
                    from ..obs import get_logger, log_event
                    path = dump_flight(collector,
                                       reason=type(err).__name__)
                    log_event(get_logger("repro.exec.actors"),
                              "trace_live.dump", path=path,
                              reason=type(err).__name__)
                raise
            live = collector.build() if collector is not None else None
            return RunResult(backend=self.name, result=result,
                             fires=fires, wall_s=wall_s, live=live)
        return RunHandle(thunk)

"""Bucket-to-processor distribution strategies (paper Sections 5.1/5.2.2).

The range of hash indices is partitioned among the match processors;
both the left and right bucket with a given index live on the same
processor (Section 3.1).  The paper evaluates:

* **round robin** over bucket indices (the default of Section 5.1),
* **random** distribution (tried, "failed to provide a significant
  improvement"),
* an offline **greedy** distribution fed the per-bucket activity of each
  cycle (an upper bound: ≈1.4× over round robin).

All strategies implement :class:`BucketMapping`:
``processor_for(key) -> int`` in ``range(n_procs)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Protocol

from ..rete.hashing import BucketKey, stable_hash

#: Size of the global hash-index range that is partitioned across
#: processors.  Large enough that distinct keys rarely collide on an
#: index, small enough to keep the paper's "buckets per processor"
#: granularity meaningful.
DEFAULT_N_BUCKETS = 1024


class BucketMapping(Protocol):
    """Strategy assigning hash buckets to match processors."""

    n_procs: int

    def processor_for(self, key: BucketKey) -> int:
        """The match processor (0-based) owning *key*'s bucket."""
        ...


@dataclass
class RoundRobinMapping:
    """Bucket index *i* goes to processor ``i % n_procs`` (paper default)."""

    n_procs: int
    n_buckets: int = DEFAULT_N_BUCKETS

    def processor_for(self, key: BucketKey) -> int:
        return (stable_hash(key) % self.n_buckets) % self.n_procs


@dataclass
class RandomMapping:
    """Each bucket index is assigned to a uniformly random processor.

    The assignment is a fixed function of (seed, n_buckets): the same
    bucket always lands on the same processor, as in a static
    distribution decided before the run.
    """

    n_procs: int
    seed: int = 0
    n_buckets: int = DEFAULT_N_BUCKETS
    _table: List[int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        rng = random.Random(self.seed)
        self._table = [rng.randrange(self.n_procs)
                       for _ in range(self.n_buckets)]

    def processor_for(self, key: BucketKey) -> int:
        return self._table[stable_hash(key) % self.n_buckets]


@dataclass
class ExplicitMapping:
    """A hand- or algorithm-built assignment of specific keys.

    Keys not present fall back to round robin, so a partial greedy
    assignment still covers the long tail of cold buckets.
    """

    n_procs: int
    assignment: Mapping[BucketKey, int] = field(default_factory=dict)
    n_buckets: int = DEFAULT_N_BUCKETS

    def processor_for(self, key: BucketKey) -> int:
        proc = self.assignment.get(key)
        if proc is not None:
            if not 0 <= proc < self.n_procs:
                raise ValueError(
                    f"assignment maps {key} to processor {proc}, outside "
                    f"range({self.n_procs})")
            return proc
        return (stable_hash(key) % self.n_buckets) % self.n_procs


def greedy_assignment(bucket_work: Mapping[BucketKey, float],
                      n_procs: int) -> Dict[BucketKey, int]:
    """Offline LPT greedy: heaviest bucket to the least-loaded processor.

    *bucket_work* is the measured activity (µs of processing) per bucket
    — information "not available to the actual distribution algorithm",
    as the paper notes; the result is an upper bound on what a static
    distribution could achieve.  Determining the optimum is
    multiprocessor scheduling (NP-complete), and LPT's low variance makes
    it "close to the optimal distribution".
    """
    loads = [0.0] * n_procs
    assignment: Dict[BucketKey, int] = {}
    # Sort heaviest first; ties broken by key for determinism.
    for key, work in sorted(bucket_work.items(),
                            key=lambda kv: (-kv[1], kv[0])):
        target = min(range(n_procs), key=lambda p: loads[p])
        assignment[key] = target
        loads[target] += work
    return assignment


def greedy_mapping(bucket_work: Mapping[BucketKey, float],
                   n_procs: int,
                   n_buckets: int = DEFAULT_N_BUCKETS) -> ExplicitMapping:
    """Convenience wrapper: LPT assignment as an :class:`ExplicitMapping`."""
    return ExplicitMapping(n_procs=n_procs,
                           assignment=greedy_assignment(bucket_work,
                                                        n_procs),
                           n_buckets=n_buckets)

"""The shared-bus (shared-memory) baseline the paper compares against.

Section 5.2's reference point — "These speedups are comparable to those
achieved in these sections on our shared-bus implementation [21]" — is
the authors' parallel OPS5 on the Encore Multimax (Gupta et al.,
ICPP'88).  Its mapping differs from the MPC one in exactly the ways the
paper's closing discussion lists:

* **centralized task queues** in shared memory: any processor can pick
  up any node activation, so there is no static bucket→processor
  imbalance — but the queue itself is "a potential bottleneck" (every
  pop is a serialized shared-memory transaction);
* the **hash table is not partitioned**: no messages, no routing — but
  "to process a token, the entire hash-bucket needs to be accessed
  exclusively", so activations on one bucket still serialize (the
  Tourney cross-product hurts shared memory just as much).

:func:`simulate_shared_bus` prices both effects on the same Section 4
cost model so the MPC and shared-bus mappings can be compared trace for
trace (``benchmarks/bench_shared_bus.py``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..rete.hashing import BucketKey
from ..trace.events import (KIND_TERMINAL, LEFT, CycleTrace, SectionTrace,
                            TraceActivation)
from .costmodel import DEFAULT_COSTS, CostModel
from .metrics import CycleResult, SimResult
from .simulator import compute_search_costs

#: Default cost of one task-queue transaction (pop or push of an
#: activation record under the queue lock).  The Encore implementation
#: measured its scheduling overhead in single-digit microseconds; 2 us
#: keeps the queue sub-dominant until dozens of processors, matching
#: the paper's "potential bottleneck" phrasing.
DEFAULT_QUEUE_ACCESS_US = 2.0


@dataclass
class _Task:
    arrival: float
    seq: int
    act: TraceActivation

    def __lt__(self, other: "_Task") -> bool:
        return (self.arrival, self.seq) < (other.arrival, other.seq)


def simulate_shared_bus(trace: SectionTrace, n_procs: int,
                        costs: CostModel = DEFAULT_COSTS,
                        queue_access_us: float = DEFAULT_QUEUE_ACCESS_US,
                        n_queues: Optional[int] = None) -> SimResult:
    """Simulate *trace* on a shared-memory multiprocessor.

    Parameters
    ----------
    trace, n_procs, costs:
        As for :func:`repro.mpc.simulate`.
    queue_access_us:
        Serialized cost of one task-queue transaction.
    n_queues:
        Number of centralized task queues ("some centralized
        task-queues", plural — PSM-E spread scheduling over several to
        soften the bottleneck).  Defaults to ``min(n_procs, 8)``; pass
        1 to model a single queue and expose the bottleneck.

    Notes
    -----
    There is no interconnection network: ``n_messages`` counts queue
    transactions instead, and ``network_busy_us`` the total time queue
    locks are held — the shared-memory analogue of contention.
    """
    if n_procs < 1:
        raise ValueError("need at least one processor")
    if queue_access_us < 0:
        raise ValueError("queue access cost cannot be negative")
    if n_queues is None:
        n_queues = min(n_procs, 8)
    if n_queues < 1:
        raise ValueError("need at least one task queue")
    search_costs = compute_search_costs(trace, costs)
    result = SimResult(trace_name=trace.name, n_procs=n_procs)
    for cycle in trace:
        result.cycles.append(
            _simulate_cycle(cycle, n_procs, costs, queue_access_us,
                            n_queues,
                            search_costs.get(cycle.index, {})))
    return result


def _simulate_cycle(cycle: CycleTrace, n_procs: int, costs: CostModel,
                    queue_access_us: float, n_queues: int,
                    search_costs: Dict[int, float]) -> CycleResult:
    start = costs.constant_tests_us
    ready = [start] * n_procs
    busy = [float(costs.constant_tests_us)] * n_procs
    activations = [0] * n_procs
    left_activations = [0] * n_procs
    queue_free = [0.0] * n_queues
    queue_busy = 0.0
    n_transactions = 0
    conflict_set_done: List[float] = []

    def queue_transaction(at: float) -> float:
        """Acquire the least-contended queue; returns the grant time."""
        nonlocal queue_busy, n_transactions
        q = min(range(n_queues),
                key=lambda i: (max(queue_free[i], at), i))
        grant = max(queue_free[q], at) + queue_access_us
        queue_free[q] = grant
        queue_busy += queue_access_us
        n_transactions += 1
        return grant

    pending: List[_Task] = []
    seq = 0
    for root in cycle.roots():
        seq += 1
        heapq.heappush(pending, _Task(arrival=start, seq=seq, act=root))

    bucket_free: Dict[BucketKey, float] = {}

    while pending:
        task = heapq.heappop(pending)
        act = task.act
        if act.kind == KIND_TERMINAL:
            # Conflict-set insertion: one queue transaction.
            conflict_set_done.append(queue_transaction(task.arrival))
            continue
        # A task whose bucket is still locked is left in the queue; the
        # processor takes other work instead of spinning (otherwise one
        # hot bucket would stall the whole machine).
        locked_until = bucket_free.get(act.key, 0.0)
        if locked_until > task.arrival:
            seq += 1
            heapq.heappush(pending, _Task(arrival=locked_until, seq=seq,
                                          act=act))
            continue
        # Dynamic load balancing: the processor that can start first.
        p = min(range(n_procs),
                key=lambda q: (max(ready[q], task.arrival), q))
        t = max(ready[p], task.arrival)
        # Pop from a centralized queue (serialized per queue).
        t = queue_transaction(t)
        # Exclusive access to the hash bucket for the whole activation.
        t = max(t, bucket_free.get(act.key, 0.0))
        work_start = t
        t += costs.store_cost(act.side)
        t += search_costs.get(act.act_id, 0.0)
        for succ_id in act.successors:
            t += costs.successor_us
            succ = cycle.activations[succ_id]
            seq += 1
            heapq.heappush(pending,
                           _Task(arrival=t, seq=seq, act=succ))
        bucket_free[act.key] = t
        # Busy = the queue transaction + the activation work; waiting
        # for the queue lock or a bucket lock is idle (spin) time.
        busy[p] += queue_access_us + (t - work_start)
        ready[p] = t
        activations[p] += 1
        if act.side == LEFT:
            left_activations[p] += 1

    makespan = max(ready + conflict_set_done + [start])
    return CycleResult(index=cycle.index, makespan_us=makespan,
                       proc_busy_us=busy,
                       proc_activations=activations,
                       proc_left_activations=left_activations,
                       n_messages=n_transactions,
                       network_busy_us=queue_busy,
                       control_busy_us=0.0)

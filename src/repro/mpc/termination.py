"""Termination-detection cost models (paper Section 4, future work).

The paper's simulator "does not simulate termination detection" and
defers choosing a scheme to future work, citing Mattern's survey.  The
control processor must nevertheless learn, every MRA cycle, that all
match processors have gone idle and no token messages are in flight
before it can run resolve/act.  This module prices the classic schemes
on top of a finished cycle simulation, so their relative impact can be
compared (``benchmarks/bench_termination.py``):

* **ideal** — free and instantaneous (what the paper simulates).
* **barrier** — every match processor reports idle to the control
  processor directly: one message per processor, received serially at
  control.  Simple, O(P) control hot spot.
* **ring** — Dijkstra-style token ring: a probe circulates the P match
  processors; in the benign case (no reactivation) detection completes
  after one clean round started once the slowest processor finishes,
  plus a final report to control.  O(P) latency, no hot spot.
* **tree** — a binary combining tree: idle reports merge pairwise;
  ceil(log2 P) message hops plus the root's report to control.

All schemes only *add time after the cycle's real work*; they never
change the match result, so they compose with any simulator in this
package via :func:`apply_termination`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace
from typing import List

from .costmodel import OverheadModel
from .metrics import CycleResult, SimResult


class TerminationScheme(enum.Enum):
    """Supported termination-detection schemes."""

    IDEAL = "ideal"
    BARRIER = "barrier"
    RING = "ring"
    TREE = "tree"


def detection_delay(scheme: TerminationScheme, n_procs: int,
                    overheads: OverheadModel) -> float:
    """Extra microseconds from cycle quiescence to control's knowledge.

    Per-message cost is ``send + latency + recv``; the barrier
    additionally serializes the receives at the control processor.
    """
    if n_procs < 1:
        raise ValueError("need at least one processor")
    hop = overheads.send_us + overheads.latency_us + overheads.recv_us
    if scheme is TerminationScheme.IDEAL:
        return 0.0
    if scheme is TerminationScheme.BARRIER:
        # All reports can be in flight concurrently, but the control
        # processor consumes them one at a time.
        if hop == 0.0:
            return 0.0
        return (overheads.send_us + overheads.latency_us
                + n_procs * overheads.recv_us)
    if scheme is TerminationScheme.RING:
        # One clean round of the ring plus the report to control.
        return (n_procs + 1) * hop
    if scheme is TerminationScheme.TREE:
        levels = math.ceil(math.log2(n_procs)) if n_procs > 1 else 0
        return (levels + 1) * hop
    raise ValueError(f"unknown scheme {scheme!r}")


def apply_termination(result: SimResult, scheme: TerminationScheme,
                      overheads: OverheadModel) -> SimResult:
    """Return a copy of *result* with detection delay added per cycle.

    The delay lands after each cycle's makespan (the control barrier is
    the last event of a cycle), so the section total grows by
    ``len(cycles) * detection_delay``.
    """
    delay = detection_delay(scheme, result.n_procs, overheads)
    cycles: List[CycleResult] = [
        replace(c, makespan_us=c.makespan_us + delay)
        for c in result.cycles
    ]
    return SimResult(trace_name=result.trace_name,
                     n_procs=result.n_procs, cycles=cycles)


def termination_overhead_fraction(result: SimResult,
                                  scheme: TerminationScheme,
                                  overheads: OverheadModel) -> float:
    """Fraction of section time spent detecting termination."""
    with_detection = apply_termination(result, scheme, overheads)
    if with_detection.total_us == 0:
        return 0.0
    return 1.0 - result.total_us / with_detection.total_us

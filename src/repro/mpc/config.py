"""One frozen configuration object for every way of running a section.

Historically :func:`repro.mpc.simulator.simulate` grew a keyword for
each subsystem (mapping, per-cycle mapping factories, fault injection,
the reliable-delivery protocol, the timeline recorder) until the
signature sprawled to nine parameters that every caller — the CLI, the
sweep engines, the oracles — had to thread through separately.

:class:`RunConfig` replaces the sprawl: it is the single value that
names a complete machine configuration, shared by the discrete
simulator (:func:`repro.mpc.simulator.simulate_config`) and by every
executor backend in :mod:`repro.exec`.  ``simulate(trace, n_procs,
**kw)`` survives as a thin shim that warns (``DeprecationWarning``)
when the sprawl keywords are used.

``RunConfig.from_args`` absorbs the CLI's flag validation (overhead
row lookup, fault-model and protocol construction), raising
``ValueError`` with the same one-line messages the CLI prints.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional

from ..trace.events import CycleTrace
from .costmodel import (DEFAULT_COSTS, TABLE_5_1, ZERO_OVERHEADS, CostModel,
                        OverheadModel)
from .faults import FaultModel, ProtocolModel
from .mapping import BucketMapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (timeline
    from .timeline import TimelineRecorder  # imports costmodel/mapping)

#: Signature for per-cycle mapping construction (used by the idealized
#: greedy distribution, which the paper recomputed every cycle).
MappingFactory = Callable[[CycleTrace], BucketMapping]

#: The Table 5-1 overhead rows keyed by total per-message cost in µs —
#: what the CLI's ``--overhead`` flag selects from.
OVERHEADS: Dict[int, OverheadModel] = {int(m.total_us): m
                                       for m in TABLE_5_1}


@dataclass(frozen=True)
class SupervisePolicy:
    """Supervision knobs for the live executor backends.

    Plain numbers with no behavior of their own (the machinery lives in
    :mod:`repro.exec.supervise`); defined here so :class:`RunConfig`
    can carry them without an import cycle.

    Attributes
    ----------
    heartbeat_s:
        How often the control actor checks worker liveness while
        waiting for cycle progress.  Every wait on the control queue is
        chopped into heartbeats, so a dead worker is noticed within one
        interval instead of one full deadline.
    cycle_timeout_s:
        Per-phase deadline: the longest one recognize-act cycle may go
        without quiescing before the attempt is declared wedged.
        ``None`` resolves through :func:`repro.exec.errors
        .exec_timeout_s` (the ``REPRO_EXEC_TIMEOUT_S`` environment
        override, default 300 s).
    max_restarts:
        Worker-restart budget per cycle.  A crashed or wedged attempt
        respawns every partition worker and replays the cycle from its
        :class:`~repro.exec.plan.CyclePlan` checkpoint; after this many
        failed replays the run raises
        :class:`~repro.exec.errors.RestartsExhausted`.
    backoff / restart_delay_s:
        Exponential-backoff pause before each replay: attempt *k* waits
        ``restart_delay_s * backoff**k`` seconds (bounded by
        ``max_delay_s``), giving a transiently-sick host room to
        recover without stalling tests.
    """

    heartbeat_s: float = 0.05
    cycle_timeout_s: Optional[float] = None
    max_restarts: int = 3
    backoff: float = 2.0
    restart_delay_s: float = 0.01
    max_delay_s: float = 1.0

    def __post_init__(self) -> None:
        if self.heartbeat_s <= 0.0:
            raise ValueError("heartbeat_s must be > 0")
        if self.cycle_timeout_s is not None and self.cycle_timeout_s <= 0:
            raise ValueError("cycle_timeout_s must be > 0")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.restart_delay_s < 0.0:
            raise ValueError("restart_delay_s must be >= 0")
        if self.max_delay_s < 0.0:
            raise ValueError("max_delay_s must be >= 0")

    def delay_s(self, attempt: int) -> float:
        """Backoff pause before replay *attempt* (0-based)."""
        return min(self.restart_delay_s * self.backoff ** attempt,
                   self.max_delay_s)


@dataclass(frozen=True)
class RunConfig:
    """A complete machine/run configuration for one section execution.

    The same object drives the discrete simulator
    (:func:`~repro.mpc.simulator.simulate_config`) and the live
    executor backends (:mod:`repro.exec`); backends ignore the fields
    they cannot honor (documented per backend).
    """

    n_procs: int = 1
    costs: CostModel = DEFAULT_COSTS
    overheads: OverheadModel = ZERO_OVERHEADS
    #: Bucket distribution; ``None`` means the paper's round robin.
    mapping: Optional[BucketMapping] = None
    #: When given, overrides *mapping* with a fresh mapping per cycle.
    mapping_factory: Optional[MappingFactory] = None
    #: Deterministic fault injection; ``None`` (or a null model) keeps
    #: the exact fault-free code path.
    faults: Optional[FaultModel] = None
    #: Reliable-delivery parameters; ignored unless *faults* is active.
    protocol: Optional[ProtocolModel] = None
    #: Optional timeline recorder (simulator backend only).
    recorder: Optional["TimelineRecorder"] = None
    #: Select the O(active-work) event loop and collapse runs of
    #: fully-idle cycles analytically (bit-identical results, run-length
    #: encoded; see :mod:`repro.mpc.simulator`).  Off by default so
    #: existing comparisons see byte-for-byte identical result shapes.
    #: Composes with fault injection: every fault draw is keyed to the
    #: absolute cycle index, so draws survive collapsed idle stretches,
    #: and idle cycles touched by a stall window or fail-stop are
    #: simulated exactly instead of collapsed.
    compress_rounds: bool = False
    #: Supervision policy for the live executor backends (heartbeats,
    #: per-cycle deadlines, checkpoint-replay restarts; see
    #: :mod:`repro.exec.supervise`).  ``None`` runs unsupervised.  The
    #: discrete simulator ignores it.
    supervise: Optional[SupervisePolicy] = None
    #: Record distributed spans on the live ``actors`` backend into
    #: per-actor flight recorders, merged into a
    #: :class:`~repro.obs.trace.LiveTimeline` on
    #: :attr:`~repro.exec.base.RunResult.live` (see
    #: :mod:`repro.obs.trace`).  Off by default; when off the untraced
    #: code paths run unchanged, so match signatures and every counter
    #: are bit-identical — pinned by the ``live_trace_invisible``
    #: oracle.  The discrete simulator and the served backend refuse
    #: it.
    live_trace: bool = False

    def __post_init__(self) -> None:
        if self.n_procs < 1:
            raise ValueError("need at least one match processor")
        if self.mapping is not None \
                and self.mapping.n_procs != self.n_procs:
            raise ValueError(
                f"mapping built for {self.mapping.n_procs} processors, "
                f"simulating {self.n_procs}")

    @property
    def faulty(self) -> bool:
        """Whether the run takes the fault/protocol code path."""
        return self.faults is not None and not self.faults.is_null

    def replace(self, **changes) -> "RunConfig":
        """A copy with *changes* applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def from_args(cls, args, *, n_procs: Optional[int] = None,
                  loss: Optional[float] = None,
                  recorder: Optional["TimelineRecorder"] = None
                  ) -> "RunConfig":
        """Build a config from CLI-style argparse flags.

        Reads ``overhead``, ``loss``, ``dup``, ``jitter``,
        ``fault_seed``, ``timeout``, ``retries`` and
        ``compress_rounds`` off *args* (each
        optional — missing attributes take the flag defaults), raising
        ``ValueError`` with the CLI's one-line messages on bad values.
        *n_procs* defaults to ``args.procs`` when that is a single
        integer; *loss* overrides ``args.loss`` (used by sweeps that
        build one config per loss rate).
        """
        overhead = getattr(args, "overhead", 0)
        overheads = OVERHEADS.get(overhead)
        if overheads is None:
            raise ValueError(
                f"--overhead must be one of {sorted(OVERHEADS)}")
        rate = getattr(args, "loss", 0.0) if loss is None else loss
        if not isinstance(rate, (int, float)):
            raise ValueError(
                f"--loss must be a single rate here, got {rate!r}")
        dup = getattr(args, "dup", 0.0)
        jitter = getattr(args, "jitter", 0.0)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"--loss must be in [0, 1], got {rate:g}")
        if not 0.0 <= dup <= 1.0:
            raise ValueError(f"--dup must be in [0, 1], got {dup:g}")
        if jitter < 0.0:
            raise ValueError(f"--jitter must be >= 0, got {jitter:g}")
        faults = FaultModel(seed=getattr(args, "fault_seed", 0),
                            loss_prob=rate, dup_prob=dup,
                            jitter_us=jitter)
        timeout = getattr(args, "timeout", 500.0)
        retries = getattr(args, "retries", 8)
        if timeout <= 0.0:
            raise ValueError(f"--timeout must be > 0, got {timeout:g}")
        if retries < 0:
            raise ValueError(f"--retries must be >= 0, got {retries}")
        if n_procs is None:
            procs = getattr(args, "procs", 1)
            n_procs = procs if isinstance(procs, int) else 1
        if n_procs < 1:
            raise ValueError(f"--procs must be >= 1, got {n_procs}")
        return cls(n_procs=n_procs, overheads=overheads,
                   faults=None if faults.is_null else faults,
                   protocol=ProtocolModel(timeout_us=timeout,
                                          max_retries=retries),
                   recorder=recorder,
                   compress_rounds=getattr(args, "compress_rounds",
                                           False),
                   supervise=(SupervisePolicy()
                              if getattr(args, "supervise", False)
                              else None),
                   live_trace=getattr(args, "trace_live", False))

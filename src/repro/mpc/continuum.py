"""The mapping continuum of paper Section 6 (future work).

The paper places its distributed hash table "near the center of a
continuum of mappings":

* at one extreme, the hash tables are **replicated** on every processor
  — any processor can match any token (perfect load balance), but every
  add/delete must be applied to every copy, so the store traffic is
  multiplied by the machine size;
* at the other, a **single master copy** serves all processors — no
  replication cost, but every store and every bucket lookup contends
  for the owner.

The authors leave exploring the continuum to future work; these two
simulators realize the extremes with the same Section 4 cost model so
the distributed mapping can be compared against both
(``benchmarks/bench_continuum.py``).

Both models keep the paper's cycle structure (broadcast, constant
tests, causal token forest) and idealize what each extreme is best at:
the replicated mapping dispatches every activation to the least-loaded
processor (no ownership constraints), and the master-copy mapping lets
workers generate successors in parallel while only the store/lookup
serializes on the owner.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional

from ..trace.events import (KIND_TERMINAL, LEFT, CycleTrace, SectionTrace,
                            TraceActivation)
from .costmodel import DEFAULT_COSTS, ZERO_OVERHEADS, CostModel, \
    OverheadModel
from .metrics import CycleResult, SimResult


@dataclass
class _Arrival:
    time: float
    seq: int
    act: TraceActivation

    def __lt__(self, other: "_Arrival") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


def simulate_replicated(trace: SectionTrace, n_procs: int,
                        costs: CostModel = DEFAULT_COSTS,
                        overheads: OverheadModel = ZERO_OVERHEADS
                        ) -> SimResult:
    """Fully replicated hash tables: free placement, replicated stores.

    Every activation is executed by the processor that will finish it
    earliest; its hash-table update is then applied by *all* processors
    (each paying the store cost, plus a receive overhead when the update
    arrives as a message).
    """
    if n_procs < 1:
        raise ValueError("need at least one processor")
    result = SimResult(trace_name=trace.name, n_procs=n_procs)
    for cycle in trace:
        result.cycles.append(
            _replicated_cycle(cycle, n_procs, costs, overheads))
    return result


def _replicated_cycle(cycle: CycleTrace, n_procs: int, costs: CostModel,
                      overheads: OverheadModel) -> CycleResult:
    start = (overheads.send_us + overheads.latency_us
             + overheads.recv_us + costs.constant_tests_us)
    ready = [start] * n_procs
    busy = [overheads.recv_us + costs.constant_tests_us] * n_procs
    activations = [0] * n_procs
    left_activations = [0] * n_procs
    control_busy = overheads.send_us
    control_ready = control_busy
    control_arrivals: List[float] = []
    n_messages = 1
    network_busy = overheads.latency_us

    queue: List[_Arrival] = []
    seq = 0
    for root in cycle.roots():
        seq += 1
        heapq.heappush(queue, _Arrival(time=start, seq=seq, act=root))

    def send_to_control(depart: float) -> None:
        nonlocal control_ready, control_busy, n_messages, network_busy
        n_messages += 1
        network_busy += overheads.latency_us
        arrive = depart + overheads.latency_us
        control_ready = max(control_ready, arrive) + overheads.recv_us
        control_busy += overheads.recv_us
        control_arrivals.append(control_ready)

    while queue:
        arrival = heapq.heappop(queue)
        act = arrival.act
        if act.kind == KIND_TERMINAL:
            send_to_control(arrival.time + overheads.send_us)
            continue
        # Free placement: the processor that can finish first.
        p = min(range(n_procs),
                key=lambda q: (max(ready[q], arrival.time), q))
        t = max(ready[p], arrival.time)
        task_start = t
        store = costs.store_cost(act.side)
        t += store
        for succ_id in act.successors:
            t += costs.successor_us
            succ = cycle.activations[succ_id]
            if succ.kind == KIND_TERMINAL:
                t += overheads.send_us
                send_to_control(t)
                continue
            seq += 1
            heapq.heappush(queue, _Arrival(time=t, seq=seq, act=succ))
        # Replicate the update to every other copy (the continuum's
        # "continuous updates among the various copies").
        t += overheads.send_us  # one broadcast of the update
        n_messages += max(0, n_procs - 1)
        network_busy += overheads.latency_us * max(0, n_procs - 1)
        update_arrive = t + overheads.latency_us
        for q in range(n_procs):
            if q == p:
                continue
            apply_start = max(ready[q], update_arrive)
            ready[q] = apply_start + overheads.recv_us + store
            busy[q] += overheads.recv_us + store
        busy[p] += t - task_start
        ready[p] = t
        activations[p] += 1
        if act.side == LEFT:
            left_activations[p] += 1

    makespan = max(ready + control_arrivals + [start])
    return CycleResult(index=cycle.index, makespan_us=makespan,
                       proc_busy_us=busy, proc_activations=activations,
                       proc_left_activations=left_activations,
                       n_messages=n_messages,
                       network_busy_us=network_busy,
                       control_busy_us=control_busy)


def simulate_master_copy(trace: SectionTrace, n_procs: int,
                         costs: CostModel = DEFAULT_COSTS,
                         overheads: OverheadModel = ZERO_OVERHEADS
                         ) -> SimResult:
    """Single master copy: processor 0 owns both hash tables.

    Workers (processors 1..n-1) field token arrivals and generate
    successors, but every store and bucket lookup is a serial
    transaction on the master — "generating contention for the
    processor owning the hash-table".  With ``n_procs == 1`` the single
    processor is both master and worker (the degenerate case).
    """
    if n_procs < 1:
        raise ValueError("need at least one processor")
    result = SimResult(trace_name=trace.name, n_procs=n_procs)
    for cycle in trace:
        result.cycles.append(
            _master_cycle(cycle, n_procs, costs, overheads))
    return result


def _master_cycle(cycle: CycleTrace, n_procs: int, costs: CostModel,
                  overheads: OverheadModel) -> CycleResult:
    start = (overheads.send_us + overheads.latency_us
             + overheads.recv_us + costs.constant_tests_us)
    ready = [start] * n_procs
    busy = [overheads.recv_us + costs.constant_tests_us] * n_procs
    activations = [0] * n_procs
    left_activations = [0] * n_procs
    control_busy = overheads.send_us
    control_ready = control_busy
    control_arrivals: List[float] = []
    n_messages = 1
    network_busy = overheads.latency_us

    workers = list(range(1, n_procs)) or [0]
    master = 0

    queue: List[_Arrival] = []
    seq = 0
    for root in cycle.roots():
        seq += 1
        heapq.heappush(queue, _Arrival(time=start, seq=seq, act=root))

    def send_to_control(depart: float) -> None:
        nonlocal control_ready, control_busy, n_messages, network_busy
        n_messages += 1
        network_busy += overheads.latency_us
        arrive = depart + overheads.latency_us
        control_ready = max(control_ready, arrive) + overheads.recv_us
        control_busy += overheads.recv_us
        control_arrivals.append(control_ready)

    while queue:
        arrival = heapq.heappop(queue)
        act = arrival.act
        if act.kind == KIND_TERMINAL:
            send_to_control(arrival.time + overheads.send_us)
            continue
        w = min(workers, key=lambda q: (max(ready[q], arrival.time), q))
        t = max(ready[w], arrival.time)
        # Round trip to the master: request, exclusive store+lookup,
        # reply with the opposite bucket contents.
        if w != master:
            t += overheads.send_us
            n_messages += 1
            network_busy += overheads.latency_us
            request_arrive = t + overheads.latency_us
        else:
            request_arrive = t
        m_start = max(ready[master], request_arrive)
        m_busy_start = m_start
        m_t = m_start + (overheads.recv_us if w != master else 0.0)
        m_t += costs.store_cost(act.side)
        if w != master:
            m_t += overheads.send_us
            n_messages += 1
            network_busy += overheads.latency_us
        ready[master] = m_t
        busy[master] += m_t - m_busy_start
        activations[master] += 1
        if act.side == LEFT:
            left_activations[master] += 1

        # Worker resumes when the bucket contents arrive, generates the
        # successors locally.  (Waiting for the master is idle time, so
        # busy is accumulated from explicit costs, not elapsed time.)
        t = max(t, m_t + (overheads.latency_us if w != master else 0.0))
        worker_busy = 0.0
        if w != master:
            t += overheads.recv_us
            worker_busy += overheads.send_us + overheads.recv_us
        gen_start = t
        for succ_id in act.successors:
            t += costs.successor_us
            succ = cycle.activations[succ_id]
            if succ.kind == KIND_TERMINAL:
                t += overheads.send_us
                send_to_control(t)
                continue
            seq += 1
            heapq.heappush(queue, _Arrival(time=t, seq=seq, act=succ))
        busy[w] += worker_busy + (t - gen_start)
        ready[w] = t

    makespan = max(ready + control_arrivals + [start])
    return CycleResult(index=cycle.index, makespan_us=makespan,
                       proc_busy_us=busy, proc_activations=activations,
                       proc_left_activations=left_activations,
                       n_messages=n_messages,
                       network_busy_us=network_busy,
                       control_busy_us=control_busy)

"""Section 3.2 variation 2: dedicated constant-test processors.

The base mapping has the control processor broadcast wmes to "some
designated constant-node processors"; the paper warns that "these
processors could become bottlenecks, if the communication overheads are
comparatively high", and the simulated variant therefore broadcasts to
*all* processors instead (every match processor duplicates the constant
tests but no root token ever travels).

This module implements the dedicated variant so the trade-off can be
measured: ``n_const_procs`` processors split the constant-test work
(the Rete constant nodes are partitioned among them) and then *route
every root token as a message* to the match processor owning its
bucket.  Compare with :func:`repro.mpc.simulate` (the broadcast
variant) in ``benchmarks/bench_continuum.py``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..trace.events import (KIND_TERMINAL, LEFT, CycleTrace, SectionTrace,
                            TraceActivation)
from .costmodel import DEFAULT_COSTS, ZERO_OVERHEADS, CostModel, \
    OverheadModel
from .mapping import BucketMapping, RoundRobinMapping
from .metrics import CycleResult, SimResult
from .simulator import compute_search_costs


@dataclass
class _Task:
    arrival: float
    seq: int
    proc: int
    act: TraceActivation

    def __lt__(self, other: "_Task") -> bool:
        return (self.arrival, self.seq) < (other.arrival, other.seq)


def simulate_dedicated_alpha(trace: SectionTrace, n_procs: int,
                             n_const_procs: int = 2,
                             costs: CostModel = DEFAULT_COSTS,
                             overheads: OverheadModel = ZERO_OVERHEADS,
                             mapping: Optional[BucketMapping] = None
                             ) -> SimResult:
    """Simulate with *n_const_procs* dedicated constant-test processors.

    The machine has ``n_procs`` match processors plus the dedicated
    constant-test processors (reported at indices ``n_procs..``) plus
    the control processor.
    """
    if n_procs < 1:
        raise ValueError("need at least one match processor")
    if n_const_procs < 1:
        raise ValueError("need at least one constant-test processor")
    if mapping is None:
        mapping = RoundRobinMapping(n_procs)
    if mapping.n_procs != n_procs:
        raise ValueError(
            f"mapping built for {mapping.n_procs} processors, "
            f"simulating {n_procs}")
    search_costs = compute_search_costs(trace, costs)
    result = SimResult(trace_name=trace.name,
                       n_procs=n_procs + n_const_procs)
    for cycle in trace:
        result.cycles.append(_simulate_cycle(
            cycle, n_procs, n_const_procs, costs, overheads, mapping,
            search_costs.get(cycle.index, {})))
    return result


def _simulate_cycle(cycle: CycleTrace, n_procs: int, n_const: int,
                    costs: CostModel, overheads: OverheadModel,
                    mapping: BucketMapping,
                    search_costs: Dict[int, float]) -> CycleResult:
    control_busy = overheads.send_us
    const_start = (overheads.send_us + overheads.latency_us
                   + overheads.recv_us)
    # The constant nodes are partitioned among the dedicated processors.
    const_work = costs.constant_tests_us / n_const
    total = n_procs + n_const
    ready = [0.0] * n_procs + [const_start + const_work] * n_const
    busy = [0.0] * n_procs + \
        [overheads.recv_us + const_work] * n_const
    activations = [0] * total
    left_activations = [0] * total
    n_messages = 1
    network_busy = overheads.latency_us
    control_ready = control_busy
    control_arrivals: List[float] = []

    queue: List[_Task] = []
    seq = 0

    def send_to_control(depart: float) -> None:
        nonlocal control_ready, control_busy, n_messages, network_busy
        n_messages += 1
        network_busy += overheads.latency_us
        arrive = depart + overheads.latency_us
        control_ready = max(control_ready, arrive) + overheads.recv_us
        control_busy += overheads.recv_us
        control_arrivals.append(control_ready)

    # Roots are produced on the dedicated processors (round robin over
    # them, in trace order) and shipped to their bucket owners.
    for index, root in enumerate(cycle.roots()):
        cp = n_procs + index % n_const
        depart = ready[cp] + overheads.send_us
        busy[cp] += overheads.send_us
        ready[cp] = depart
        n_messages += 1
        network_busy += overheads.latency_us
        if root.kind == KIND_TERMINAL:
            send_to_control(depart)
            continue
        owner = mapping.processor_for(root.key)
        seq += 1
        heapq.heappush(queue, _Task(
            arrival=depart + overheads.latency_us, seq=seq, proc=owner,
            act=root))

    while queue:
        task = heapq.heappop(queue)
        p = task.proc
        act = task.act
        start = max(ready[p], task.arrival)
        t = start + overheads.recv_us
        t += costs.store_cost(act.side)
        t += search_costs.get(act.act_id, 0.0)
        activations[p] += 1
        if act.side == LEFT:
            left_activations[p] += 1
        for succ_id in act.successors:
            succ = cycle.activations[succ_id]
            t += costs.successor_us
            if succ.kind == KIND_TERMINAL:
                t += overheads.send_us
                send_to_control(t)
                continue
            dest = mapping.processor_for(succ.key)
            seq += 1
            if dest == p:
                heapq.heappush(queue, _Task(arrival=t, seq=seq, proc=p,
                                            act=succ))
            else:
                t += overheads.send_us
                n_messages += 1
                network_busy += overheads.latency_us
                heapq.heappush(queue, _Task(
                    arrival=t + overheads.latency_us, seq=seq,
                    proc=dest, act=succ))
        busy[p] += t - start
        ready[p] = t

    makespan = max(ready + control_arrivals
                   + [const_start + const_work])
    return CycleResult(index=cycle.index, makespan_us=makespan,
                       proc_busy_us=busy,
                       proc_activations=activations,
                       proc_left_activations=left_activations,
                       n_messages=n_messages,
                       network_busy_us=network_busy,
                       control_busy_us=control_busy)

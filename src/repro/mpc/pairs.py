"""The processor-pair base mapping (paper Section 3.1, Figure 3-2).

The paper's *base* mapping assigns each hash-index partition to a
processor **pair**: the left buckets to the left processor, the right
buckets to the right processor, with all communication restricted to
the left processor (allowing both would create duplicate tokens).  A
node activation is split into two *micro-tasks* executed in parallel:

* the arrival-side processor copies the token into its hash bucket
  (32 µs left / 16 µs right), while
* the opposite-side processor compares the token against its bucket and
  generates the successor tokens (16 µs each), hashing and shipping each
  one to the pair owning its destination bucket.

The simulated variant of Section 3.2 merges each pair onto one
processor ("if the number of processors is small and processor
utilization is important"); this module implements the unmerged base
mapping so the two can be compared — the utilization/latency trade-off
the paper describes under "Variations of the Base Mapping".
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional

from ..trace.events import (KIND_TERMINAL, LEFT, CycleTrace, SectionTrace,
                            TraceActivation)
from .costmodel import DEFAULT_COSTS, ZERO_OVERHEADS, CostModel, \
    OverheadModel
from .mapping import BucketMapping, RoundRobinMapping
from .metrics import CycleResult, SimResult


def simulate_pairs(trace: SectionTrace,
                   n_pairs: int,
                   costs: CostModel = DEFAULT_COSTS,
                   overheads: OverheadModel = ZERO_OVERHEADS,
                   mapping: Optional[BucketMapping] = None) -> SimResult:
    """Simulate *trace* on ``n_pairs`` processor pairs (2x the CPUs).

    Returns a :class:`SimResult` whose per-processor lists hold the left
    processors at indices ``0..n_pairs-1`` and the right processors at
    ``n_pairs..2*n_pairs-1``.
    """
    if n_pairs < 1:
        raise ValueError("need at least one processor pair")
    if mapping is None:
        mapping = RoundRobinMapping(n_pairs)
    if mapping.n_procs != n_pairs:
        raise ValueError(
            f"mapping built for {mapping.n_procs} pairs, "
            f"simulating {n_pairs}")

    result = SimResult(trace_name=trace.name, n_procs=2 * n_pairs)
    for cycle in trace:
        result.cycles.append(
            _simulate_cycle(cycle, n_pairs, costs, overheads, mapping))
    return result


@dataclass
class _Arrival:
    time: float
    seq: int
    pair: int
    act: TraceActivation
    via_message: bool

    def __lt__(self, other: "_Arrival") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


def _simulate_cycle(cycle: CycleTrace, n_pairs: int, costs: CostModel,
                    overheads: OverheadModel,
                    mapping: BucketMapping) -> CycleResult:
    # Broadcast to the left processors (the pair's communication port);
    # each left processor relays the packet to its right sibling so both
    # can run the constant tests.
    control_busy = overheads.send_us
    relay = overheads.send_us + overheads.latency_us + overheads.recv_us
    left_start = (overheads.send_us + overheads.latency_us
                  + overheads.recv_us)
    right_start = left_start + relay

    # ready[0..n_pairs-1] = left procs, [n_pairs..] = right procs.
    ready = ([left_start + overheads.send_us + costs.constant_tests_us]
             * n_pairs +
             [right_start + costs.constant_tests_us] * n_pairs)
    busy = ([overheads.recv_us + overheads.send_us
             + costs.constant_tests_us] * n_pairs +
            [overheads.recv_us + costs.constant_tests_us] * n_pairs)
    activations = [0] * (2 * n_pairs)
    left_activations = [0] * (2 * n_pairs)

    n_messages = 1 + n_pairs  # broadcast + relays
    network_busy = overheads.latency_us * (1 + n_pairs)
    control_ready = control_busy
    control_arrivals: List[float] = []

    queue: List[_Arrival] = []
    seq = 0

    def send_to_control(depart: float) -> None:
        nonlocal control_ready, control_busy, n_messages, network_busy
        n_messages += 1
        network_busy += overheads.latency_us
        arrive = depart + overheads.latency_us
        control_ready = max(control_ready, arrive) + overheads.recv_us
        control_busy += overheads.recv_us
        control_arrivals.append(control_ready)

    for root in cycle.roots():
        pair = mapping.processor_for(root.key)
        if root.kind == KIND_TERMINAL:
            depart = ready[pair] + overheads.send_us
            busy[pair] += overheads.send_us
            ready[pair] = depart
            send_to_control(depart)
            continue
        seq += 1
        # Roots materialize on the left processor after its constant
        # tests (every processor computed them; the owner keeps its own).
        heapq.heappush(queue, _Arrival(time=ready[pair], seq=seq,
                                       pair=pair, act=root,
                                       via_message=False))

    while queue:
        arrival = heapq.heappop(queue)
        pair = arrival.pair
        act = arrival.act
        left_p, right_p = pair, n_pairs + pair

        # The left processor fields the arrival and relays the token to
        # its sibling; store and match+generate then run in parallel.
        t_left = max(ready[left_p], arrival.time)
        start_left = t_left
        if arrival.via_message:
            t_left += overheads.recv_us
        t_left += overheads.send_us  # intra-pair forward
        forward_arrive = t_left + overheads.latency_us
        n_messages += 1
        network_busy += overheads.latency_us

        store_cost = costs.store_cost(act.side)
        if act.side == LEFT:
            # Store on the left processor; match/generate on the right.
            store_p, gen_p = left_p, right_p
        else:
            # Store on the right processor; match/generate on the left.
            store_p, gen_p = right_p, left_p

        # Right-processor work begins when the forwarded token lands.
        t_right = max(ready[right_p], forward_arrive)
        start_right = t_right
        t_right += overheads.recv_us

        if store_p == left_p:
            t_left += store_cost
        else:
            t_right += store_cost

        # Generation runs on gen_p; track its own clock.
        if gen_p == left_p:
            t_gen_start = t_left
        else:
            t_gen_start = t_right
        t_gen = t_gen_start
        for succ_id in act.successors:
            succ = cycle.activations[succ_id]
            t_gen += costs.successor_us
            if succ.kind == KIND_TERMINAL:
                t_gen += overheads.send_us
                send_to_control(t_gen)
                continue
            dest = mapping.processor_for(succ.key)
            seq += 1
            t_gen += overheads.send_us
            n_messages += 1
            network_busy += overheads.latency_us
            heapq.heappush(queue, _Arrival(
                time=t_gen + overheads.latency_us, seq=seq, pair=dest,
                act=succ, via_message=True))

        if gen_p == left_p:
            t_left = t_gen
        else:
            t_right = t_gen

        busy[left_p] += t_left - start_left
        busy[right_p] += max(0.0, t_right - start_right)
        ready[left_p] = t_left
        ready[right_p] = t_right
        activations[left_p] += 1
        if act.side == LEFT:
            left_activations[left_p] += 1

    makespan = max(ready + control_arrivals + [right_start
                                               + costs.constant_tests_us])
    return CycleResult(index=cycle.index, makespan_us=makespan,
                       proc_busy_us=busy,
                       proc_activations=activations,
                       proc_left_activations=left_activations,
                       n_messages=n_messages,
                       network_busy_us=network_busy,
                       control_busy_us=control_busy)

"""Per-event simulation timelines: typed spans, recorded on demand.

The paper's contribution is the *analysis* of why speedups saturate, not
the speedup numbers themselves — yet a :class:`~repro.mpc.metrics
.SimResult` only carries end-of-run aggregates.  This module records,
when explicitly asked to, everything the event loop does as **typed
spans** on a per-cycle timeline: the broadcast, the constant tests,
every token add/delete, every successor generation, every message send
/ transit / receive, and (on the fault path) every ack, retransmission,
timeout wait and stall.  The result is exportable three ways —

* :func:`chrome_trace` — Chrome trace-event JSON, loadable in Perfetto
  or ``chrome://tracing``;
* :func:`timeline_jsonl` — one JSON object per span, for ad-hoc
  analysis;
* :func:`gantt` — an ASCII per-cycle Gantt chart for the terminal —

and, through :mod:`repro.mpc.attribution`, decomposable into the
paper's Section 5 idle-time limiter categories.

Strictly opt-in, by construction
--------------------------------
Recording is enabled by passing a :class:`TimelineRecorder` to
:func:`repro.mpc.simulator.simulate`.  When no recorder is passed the
simulator runs its existing tuple-based fast loop *untouched* — this
module is not even imported — so the disabled cost is exactly zero;
``benchmarks/bench_harness_perf.py`` pins that.  The recorded loop
below (:func:`_simulate_cycle_recorded`) replays the fast loop's
arithmetic operation for operation, in the same order, so a recorded
run returns a bit-identical :class:`~repro.mpc.metrics.SimResult` — and
the spans double as a cross-check of the simulator itself: per-processor
span durations sum exactly to ``CycleResult.proc_busy_us`` and the
latest busy span ends exactly at ``CycleResult.makespan_us``
(see :meth:`CycleTimeline.reconcile`).  With the paper's cost models
every time constant is a multiple of 0.5 µs, so all of this arithmetic
is exact in floating point and "exactly" means ``==``, not "within
epsilon".
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass, field
from typing import IO, Dict, Iterator, List, Optional, Sequence

from ..trace.events import KIND_TERMINAL, LEFT, CycleTrace
from .costmodel import CostModel, OverheadModel
from .mapping import BucketMapping
from .metrics import CycleResult

#: Pseudo-processor rows for spans not on a match processor.
CONTROL = -1
NETWORK = -2

# -- span categories (the typed vocabulary) -------------------------------
CAT_BROADCAST = "broadcast"          # control sends the cycle's wme packet
CAT_CONSTANT_TESTS = "constant_tests"
CAT_RECV = "recv"                    # message receive overhead
CAT_TOKEN_ADD = "token_add"          # hash-bucket insert (+ search extra)
CAT_TOKEN_DELETE = "token_delete"    # hash-bucket delete (+ search extra)
CAT_SUCCESSOR = "successor"          # successor generation, one per token
CAT_SEND = "send"                    # message send overhead
CAT_TRANSIT = "transit"              # in-flight on the network
CAT_ACK = "ack"                      # ack handling (fault path)
CAT_RETRANSMIT = "retransmit"        # lost-copy resend (fault path)
CAT_TIMEOUT_WAIT = "timeout_wait"    # sender's retransmit timeout (idle)
CAT_STALL = "stall"                  # processor unavailable (idle)

#: Categories that are *not* busy work: they explain idleness instead.
IDLE_CATEGORIES = frozenset({CAT_TIMEOUT_WAIT, CAT_STALL})

CATEGORIES = (CAT_BROADCAST, CAT_CONSTANT_TESTS, CAT_RECV, CAT_TOKEN_ADD,
              CAT_TOKEN_DELETE, CAT_SUCCESSOR, CAT_SEND, CAT_TRANSIT,
              CAT_ACK, CAT_RETRANSMIT, CAT_TIMEOUT_WAIT, CAT_STALL)


@dataclass(slots=True, frozen=True)
class Span:
    """One typed interval on one row of a cycle timeline.

    ``proc`` is a match-processor index, or :data:`CONTROL` /
    :data:`NETWORK`.  ``act_id`` ties the span to the trace activation
    it processes or carries (-1 when not applicable).
    """

    category: str
    proc: int
    start_us: float
    end_us: float
    act_id: int = -1

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    @property
    def is_busy(self) -> bool:
        return self.category not in IDLE_CATEGORIES


@dataclass(slots=True, frozen=True)
class Envelope:
    """One activation's full processing interval on its processor.

    The fine-grained spans inside it (recv, token, successors, sends)
    are for display; the envelope is the unit the attribution pass and
    the critical-path walk reason about.  ``wait_comm_us`` /
    ``wait_protocol_us`` record how much of the *delivery delay* of the
    message that triggered this envelope was pure communication
    (send overhead + latency + jitter) vs protocol waiting (retransmit
    timeouts); both are zero for locally generated tokens.
    """

    act_id: int
    parent_id: Optional[int]
    proc: int
    start_us: float
    end_us: float
    via_message: bool
    wait_comm_us: float = 0.0
    wait_protocol_us: float = 0.0

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


@dataclass(slots=True)
class CycleTimeline:
    """Every span and envelope of one simulated cycle.

    With round compression a run of consecutive identical fully-idle
    cycles is recorded once with ``repeat`` set to the run length: the
    spans describe the first cycle of the stretch (``index``), and the
    section-level accountings (:attr:`Timeline.total_us`,
    :meth:`Timeline.cycle_offsets_us`) scale by ``repeat`` — exact,
    since every makespan is a multiple of 0.5 µs.
    """

    index: int
    n_procs: int
    makespan_us: float
    proc_busy_us: List[float]
    spans: List[Span]
    envelopes: List[Envelope]
    #: How many consecutive identical cycles this entry stands for.
    repeat: int = 1

    def spans_for(self, proc: int) -> List[Span]:
        return [s for s in self.spans if s.proc == proc]

    def busy_from_spans(self) -> List[float]:
        """Per-processor busy time recomputed from the spans alone."""
        totals = [0.0] * self.n_procs
        for span in self.spans:
            if span.proc >= 0 and span.is_busy:
                totals[span.proc] += span.end_us - span.start_us
        return totals

    def control_busy_from_spans(self) -> float:
        return sum(s.end_us - s.start_us for s in self.spans
                   if s.proc == CONTROL and s.is_busy)

    def network_busy_from_spans(self) -> float:
        return sum(s.end_us - s.start_us for s in self.spans
                   if s.proc == NETWORK and s.is_busy)

    def max_busy_end_us(self) -> float:
        """Latest end of any busy span on a processor or control."""
        return max((s.end_us for s in self.spans
                    if s.proc >= CONTROL and s.is_busy), default=0.0)

    def reconcile(self, result: CycleResult, *,
                  exact: bool = True, rel_tol: float = 1e-9) -> None:
        """Assert this timeline accounts for *result*'s timing.

        Checks that per-processor span durations sum to
        ``proc_busy_us``, control spans to ``control_busy_us``, network
        transits to ``network_busy_us``, and that the latest busy span
        ends at ``makespan_us``.  With *exact* (the default) equality
        must be bit-for-bit — valid for any cost model whose constants
        are multiples of 0.5 µs, i.e. every model in the paper; pass
        ``exact=False`` for arbitrary float costs.  Raises
        :class:`ValueError` on any discrepancy.
        """
        def close(a: float, b: float) -> bool:
            if exact:
                return a == b
            return abs(a - b) <= rel_tol * max(1.0, abs(a), abs(b))

        busy = self.busy_from_spans()
        for p, (got, want) in enumerate(zip(busy, result.proc_busy_us)):
            if not close(got, want):
                raise ValueError(
                    f"cycle {self.index}: proc {p} span total {got!r} "
                    f"!= proc_busy_us {want!r}")
        if not close(self.control_busy_from_spans(),
                     result.control_busy_us):
            raise ValueError(
                f"cycle {self.index}: control span total "
                f"{self.control_busy_from_spans()!r} != "
                f"control_busy_us {result.control_busy_us!r}")
        if not close(self.network_busy_from_spans(),
                     result.network_busy_us):
            raise ValueError(
                f"cycle {self.index}: network span total "
                f"{self.network_busy_from_spans()!r} != "
                f"network_busy_us {result.network_busy_us!r}")
        if not close(self.max_busy_end_us(), result.makespan_us):
            raise ValueError(
                f"cycle {self.index}: latest busy span ends at "
                f"{self.max_busy_end_us()!r}, makespan is "
                f"{result.makespan_us!r}")


@dataclass(slots=True)
class Timeline:
    """A whole recorded section: config echo plus one entry per cycle."""

    trace_name: str
    n_procs: int
    costs: CostModel
    overheads: OverheadModel
    faulty: bool = False
    cycles: List[CycleTimeline] = field(default_factory=list)

    def __iter__(self) -> Iterator[CycleTimeline]:
        return iter(self.cycles)

    def __len__(self) -> int:
        return len(self.cycles)

    @property
    def total_us(self) -> float:
        # ``m * 1 == m`` bit-for-bit, so this matches the pre-repeat
        # accounting exactly on uncompressed timelines.
        return sum(c.makespan_us * c.repeat for c in self.cycles)

    def n_cycles(self) -> int:
        """Number of simulated cycles (compressed runs counted in full)."""
        return sum(c.repeat for c in self.cycles)

    def cycle_offsets_us(self) -> List[float]:
        """Absolute start time of each recorded entry (cycles are
        serialized; a compressed entry advances by ``repeat`` cycles)."""
        offsets = []
        t = 0.0
        for cycle in self.cycles:
            offsets.append(t)
            t += cycle.makespan_us * cycle.repeat
        return offsets

    def longest_cycle(self) -> CycleTimeline:
        if not self.cycles:
            raise ValueError("empty timeline")
        return max(self.cycles, key=lambda c: c.makespan_us)


class TimelineRecorder:
    """Opt-in span collector: set ``RunConfig(recorder=...)``.

    After the run, :attr:`timeline` holds the recorded
    :class:`Timeline`.  A recorder can be reused; each
    ``simulate_config`` call replaces the previous timeline.
    """

    def __init__(self) -> None:
        self.timeline: Optional[Timeline] = None

    def begin_section(self, trace_name: str, n_procs: int,
                      costs: CostModel, overheads: OverheadModel,
                      faulty: bool) -> None:
        self.timeline = Timeline(trace_name=trace_name, n_procs=n_procs,
                                 costs=costs, overheads=overheads,
                                 faulty=faulty)

    def add_cycle(self, cycle: CycleTimeline) -> None:
        assert self.timeline is not None, \
            "add_cycle before begin_section"
        self.timeline.cycles.append(cycle)


# ---------------------------------------------------------------------------
# The recorded event loop: the fast loop's arithmetic, span by span.
# ---------------------------------------------------------------------------

def _simulate_cycle_recorded(cycle: CycleTrace, n_procs: int,
                             costs: CostModel, overheads: OverheadModel,
                             mapping: BucketMapping,
                             search_costs: Optional[Dict[int, float]],
                             recorder: TimelineRecorder) -> CycleResult:
    """Fault-free cycle simulation with span recording.

    Mirror of :func:`repro.mpc.simulator._simulate_cycle`: every
    floating-point operation on the timing state happens in the same
    order with the same operands, so the returned :class:`CycleResult`
    is bit-identical to the fast loop's — the only additions are span
    and envelope appends.  ``tests/test_mpc_timeline.py`` holds the two
    loops together.
    """
    send_us = overheads.send_us
    recv_us = overheads.recv_us
    latency_us = overheads.latency_us
    left_us = costs.left_token_us
    right_us = costs.right_token_us
    successor_us = costs.successor_us
    acts = cycle.activations
    get_extra = (search_costs or {}).get

    spans: List[Span] = []
    envelopes: List[Envelope] = []
    add_span = spans.append
    add_envelope = envelopes.append
    #: delivery delay of an inter-processor token (generation -> arrival)
    message_wait_us = send_us + latency_us

    processor_for = mapping.processor_for
    key_proc: Dict = {}
    dest_of: Dict[int, int] = {}
    for act in cycle.ordered():
        key = act.key
        proc = key_proc.get(key)
        if proc is None:
            proc = key_proc[key] = processor_for(key)
        dest_of[act.act_id] = proc

    # --- step 1: broadcast -------------------------------------------------
    control_busy = send_us
    match_start = send_us + latency_us + recv_us
    network_busy = latency_us if n_procs > 0 else 0.0
    n_messages = 1
    add_span(Span(CAT_BROADCAST, CONTROL, 0.0, send_us))
    if n_procs > 0:
        add_span(Span(CAT_TRANSIT, NETWORK, send_us, send_us + latency_us))

    # --- step 2: constant tests on every processor -------------------------
    for p in range(n_procs):
        add_span(Span(CAT_RECV, p, send_us + latency_us, match_start))
        add_span(Span(CAT_CONSTANT_TESTS, p, match_start,
                      match_start + costs.constant_tests_us))
    ready = [match_start + costs.constant_tests_us] * n_procs
    busy = [recv_us + costs.constant_tests_us] * n_procs
    activations = [0] * n_procs
    left_activations = [0] * n_procs

    seq = 0
    queue: list = []
    heappush = heapq.heappush
    heappop = heapq.heappop
    control_arrivals: List[float] = []
    control_ready = control_busy

    def send_to_control(depart: float, msg_id: int) -> None:
        nonlocal control_busy, control_ready, network_busy, n_messages
        n_messages += 1
        network_busy += latency_us
        arrive = depart + latency_us
        add_span(Span(CAT_TRANSIT, NETWORK, depart, arrive, msg_id))
        begin = max(control_ready, arrive)
        control_ready = begin + recv_us
        add_span(Span(CAT_RECV, CONTROL, begin, control_ready, msg_id))
        control_busy += recv_us
        control_arrivals.append(control_ready)

    for root in cycle.roots():
        owner = dest_of[root.act_id]
        if root.kind == KIND_TERMINAL:
            start = ready[owner]
            depart = start + send_us
            add_span(Span(CAT_SEND, owner, start, depart, root.act_id))
            add_envelope(Envelope(root.act_id, None, owner, start,
                                  depart, False))
            busy[owner] += send_us
            ready[owner] = depart
            send_to_control(depart, root.act_id)
            continue
        seq += 1
        heappush(queue, (ready[owner], seq, owner, False, root))

    # --- steps 3-4: event loop ---------------------------------------------
    while queue:
        arrival, _, p, via_message, act = heappop(queue)
        proc_ready = ready[p]
        start = proc_ready if proc_ready > arrival else arrival
        t = start
        if via_message:
            t += recv_us
            add_span(Span(CAT_RECV, p, start, t, act.act_id))
        token_start = t
        t += left_us if act.side == LEFT else right_us
        extra = get_extra(act.act_id)
        if extra is not None:
            t += extra
        add_span(Span(CAT_TOKEN_ADD if act.tag == "+" else
                      CAT_TOKEN_DELETE, p, token_start, t, act.act_id))
        activations[p] += 1
        if act.side == LEFT:
            left_activations[p] += 1

        for succ_id in act.successors:
            succ = acts[succ_id]
            gen_start = t
            t += successor_us
            add_span(Span(CAT_SUCCESSOR, p, gen_start, t, succ_id))
            if succ.kind == KIND_TERMINAL:
                send_start = t
                t += send_us
                add_span(Span(CAT_SEND, p, send_start, t, succ_id))
                send_to_control(t, succ_id)
                continue
            dest = dest_of[succ_id]
            seq += 1
            if dest == p:
                heappush(queue, (t, seq, p, False, succ))
            else:
                send_start = t
                t += send_us
                add_span(Span(CAT_SEND, p, send_start, t, succ_id))
                add_span(Span(CAT_TRANSIT, NETWORK, t, t + latency_us,
                              succ_id))
                heappush(queue, (t + latency_us, seq, dest, True, succ))

        add_envelope(Envelope(
            act.act_id, act.parent_id, p, start, t, via_message,
            wait_comm_us=message_wait_us if via_message else 0.0))
        busy[p] += t - start
        ready[p] = t

    # Tally inter-processor token messages (as in the fast loop).
    token_messages = 0
    for act in cycle.ordered():
        parent_id = act.parent_id
        if act.kind == KIND_TERMINAL or parent_id is None:
            continue
        if acts[parent_id].kind == KIND_TERMINAL:
            continue
        if dest_of[parent_id] != dest_of[act.act_id]:
            token_messages += 1
    n_messages += token_messages
    network_busy += token_messages * latency_us

    makespan = max([match_start + costs.constant_tests_us]
                   + ready + control_arrivals)
    recorder.add_cycle(CycleTimeline(
        index=cycle.index, n_procs=n_procs, makespan_us=makespan,
        proc_busy_us=list(busy), spans=spans, envelopes=envelopes))
    return CycleResult(index=cycle.index, makespan_us=makespan,
                       proc_busy_us=busy,
                       proc_activations=activations,
                       proc_left_activations=left_activations,
                       n_messages=n_messages,
                       network_busy_us=network_busy,
                       control_busy_us=control_busy)


def _record_idle_stretch(recorder: TimelineRecorder, start_index: int,
                         count: int, n_procs: int, costs: CostModel,
                         overheads: OverheadModel) -> None:
    """Record *count* consecutive fully-idle cycles as one entry.

    The spans are exactly what :func:`_simulate_cycle_recorded` emits
    for one empty cycle — broadcast, transit, per-processor receive and
    constant tests — stored once with ``repeat=count``, so a
    million-cycle idle stretch costs one :class:`CycleTimeline`.
    :meth:`CycleTimeline.reconcile` against the compressed run's
    template result holds bit-exactly.
    """
    send_us = overheads.send_us
    recv_us = overheads.recv_us
    latency_us = overheads.latency_us
    match_start = send_us + latency_us + recv_us
    makespan = match_start + costs.constant_tests_us
    spans: List[Span] = [Span(CAT_BROADCAST, CONTROL, 0.0, send_us)]
    if n_procs > 0:
        spans.append(Span(CAT_TRANSIT, NETWORK, send_us,
                          send_us + latency_us))
    for p in range(n_procs):
        spans.append(Span(CAT_RECV, p, send_us + latency_us, match_start))
        spans.append(Span(CAT_CONSTANT_TESTS, p, match_start, makespan))
    recorder.add_cycle(CycleTimeline(
        index=start_index, n_procs=n_procs, makespan_us=makespan,
        proc_busy_us=[recv_us + costs.constant_tests_us] * n_procs,
        spans=spans, envelopes=[], repeat=count))


# ---------------------------------------------------------------------------
# Exports: Chrome trace-event JSON, JSONL spans, ASCII Gantt.
# ---------------------------------------------------------------------------

def _thread_ids(n_procs: int) -> Dict[int, int]:
    """Chrome tid per row: control first, then procs, network last."""
    tids = {CONTROL: 0, NETWORK: n_procs + 1}
    for p in range(n_procs):
        tids[p] = p + 1
    return tids


def _thread_name(proc: int) -> str:
    if proc == CONTROL:
        return "control"
    if proc == NETWORK:
        return "network"
    return f"proc {proc}"


def chrome_trace(timeline: Timeline) -> Dict[str, object]:
    """The timeline as a Chrome trace-event JSON object.

    Cycles are laid end to end on one absolute time axis (they are
    serialized by the control barrier), timestamps are microseconds
    (Chrome's native unit), and each row becomes a named thread.  Load
    the written file in Perfetto (https://ui.perfetto.dev) or
    ``chrome://tracing``.
    """
    tids = _thread_ids(timeline.n_procs)
    events: List[Dict[str, object]] = [
        {"name": "process_name", "ph": "M", "pid": 0,
         "args": {"name": f"repro {timeline.trace_name} "
                          f"@{timeline.n_procs} procs"}},
    ]
    for proc, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append({"name": "thread_name", "ph": "M", "pid": 0,
                       "tid": tid, "args": {"name": _thread_name(proc)}})
    for offset, cycle in zip(timeline.cycle_offsets_us(),
                             timeline.cycles):
        if cycle.repeat == 1:
            name = f"cycle {cycle.index}"
        else:
            name = (f"cycles {cycle.index}-"
                    f"{cycle.index + cycle.repeat - 1} (idle x"
                    f"{cycle.repeat})")
        cycle_args: Dict[str, object] = {"cycle": cycle.index,
                                         "makespan_us": cycle.makespan_us}
        if cycle.repeat != 1:
            cycle_args["repeat"] = cycle.repeat
        events.append({
            "name": name, "cat": "cycle", "ph": "X",
            "ts": offset, "dur": cycle.makespan_us * cycle.repeat,
            "pid": 0, "tid": tids[CONTROL], "args": cycle_args})
        for span in cycle.spans:
            args: Dict[str, object] = {"cycle": cycle.index}
            if span.act_id >= 0:
                args["act_id"] = span.act_id
            events.append({
                "name": span.category, "cat": span.category, "ph": "X",
                "ts": offset + span.start_us, "dur": span.duration_us,
                "pid": 0, "tid": tids[span.proc], "args": args})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace": timeline.trace_name,
            "n_procs": timeline.n_procs,
            "overheads_us": timeline.overheads.total_us,
            "faulty": timeline.faulty,
        },
    }


def write_chrome_trace(timeline: Timeline, path) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(chrome_trace(timeline), stream)
        stream.write("\n")


def timeline_jsonl(timeline: Timeline) -> Iterator[str]:
    """One JSON line per span, with absolute (section-level) times."""
    for offset, cycle in zip(timeline.cycle_offsets_us(),
                             timeline.cycles):
        for span in cycle.spans:
            record = {
                "trace": timeline.trace_name,
                "cycle": cycle.index,
                "proc": _thread_name(span.proc),
                "category": span.category,
                "start_us": offset + span.start_us,
                "end_us": offset + span.end_us,
                "act_id": span.act_id if span.act_id >= 0 else None,
                "busy": span.is_busy,
            }
            if cycle.repeat != 1:
                record["repeat"] = cycle.repeat
            yield json.dumps(record, separators=(",", ":"))


def write_timeline_jsonl(timeline: Timeline, stream: IO[str]) -> int:
    n = 0
    for line in timeline_jsonl(timeline):
        stream.write(line + "\n")
        n += 1
    return n


#: Gantt glyph per category (later spans overwrite earlier ones, so the
#: fine-grained work inside an envelope wins over its container).
_GANTT_GLYPHS = {
    CAT_BROADCAST: "B",
    CAT_CONSTANT_TESTS: "c",
    CAT_RECV: "<",
    CAT_TOKEN_ADD: "#",
    CAT_TOKEN_DELETE: "=",
    CAT_SUCCESSOR: "+",
    CAT_SEND: ">",
    CAT_TRANSIT: "~",
    CAT_ACK: "a",
    CAT_RETRANSMIT: "r",
    CAT_TIMEOUT_WAIT: "t",
    CAT_STALL: "X",
}

GANTT_LEGEND = ("B broadcast  c const-tests  < recv  # token+  = token-  "
                "+ successor  > send  ~ transit  a ack  r retransmit  "
                "t timeout  X stall  . idle")


def gantt(cycle: CycleTimeline, width: int = 64,
          include_network: bool = True) -> str:
    """ASCII Gantt of one cycle: one row per processor, time across.

    Each column covers ``makespan / width`` microseconds; a cell shows
    the glyph of the last span overlapping its midpoint (see
    :data:`GANTT_LEGEND`), ``.`` when the row is idle there.
    """
    if width < 8:
        raise ValueError("width must be >= 8")
    makespan = cycle.makespan_us
    rows = [CONTROL] + list(range(cycle.n_procs))
    if include_network:
        rows.append(NETWORK)
    grids = {proc: ["."] * width for proc in rows}
    if makespan > 0:
        scale = width / makespan
        for span in cycle.spans:
            grid = grids.get(span.proc)
            if grid is None:
                continue
            first = int(span.start_us * scale)
            last = int(span.end_us * scale)
            if last == first:  # sub-column span: still show one cell
                last = first + 1
            glyph = _GANTT_GLYPHS.get(span.category, "?")
            for i in range(max(0, first), min(width, last)):
                grid[i] = glyph
    label_w = max(len(_thread_name(p)) for p in rows)
    stretch = "" if cycle.repeat == 1 else \
        f" (x{cycle.repeat} idle cycles)"
    lines = [f"cycle {cycle.index}{stretch}: makespan "
             f"{makespan / 1000:.3f} ms, {width} cols of "
             f"{makespan / width:.1f} us"]
    for proc in rows:
        lines.append(f"{_thread_name(proc).rjust(label_w)} "
                     f"|{''.join(grids[proc])}|")
    lines.append(GANTT_LEGEND)
    return "\n".join(lines)


def gantt_section(timeline: Timeline, width: int = 64,
                  cycles: Optional[Sequence[int]] = None) -> str:
    """Gantt charts for several cycles (default: the longest one)."""
    if cycles is None:
        chosen = [timeline.longest_cycle()]
    else:
        by_index = {c.index: c for c in timeline.cycles}
        try:
            chosen = [by_index[i] for i in cycles]
        except KeyError as err:
            raise ValueError(f"no cycle {err.args[0]} in timeline "
                             f"(have {sorted(by_index)})") from None
    return "\n\n".join(gantt(c, width=width) for c in chosen)

"""Parallel sweep engine: evaluate sweep grids across worker processes.

The figure experiments evaluate a grid of independent simulation points
— (trace, processor count, overhead setting, mapping) — and every point
is pure and deterministic.  This module fans the grid out over a
:class:`~concurrent.futures.ProcessPoolExecutor` and reassembles the
results *in submission order*, so a parallel sweep is **bit-identical**
to the serial one: the same :func:`~repro.mpc.simulator.simulate` runs
on the same inputs, only on another CPU, and no result depends on
completion order.

Worker count resolution (the ``workers`` knob everywhere in the
harness):

* ``workers=N`` (N >= 2) — use a pool of N processes.
* ``workers=1`` — exact old behavior: everything in-process, no pool.
* ``workers=None`` — the default: ``REPRO_SWEEP_WORKERS`` from the
  environment if set, else :func:`set_default_workers`'s value if set,
  else ``os.cpu_count()``.

Even with ``workers >= 2`` resolved, a pool is only actually spawned
when it is expected to win: :func:`pool_worth_it` requires at least two
real CPUs and enough total work (activations × points) to amortize the
fork/pickle startup, so a sweep never loses to the serial path on a
small grid or a single-CPU machine.  ``REPRO_SWEEP_FORCE_POOL=1``
bypasses the gate (tests and the conformance oracle exercise the pool
machinery regardless of the host), ``=0`` forces serial.  Gating never
changes results — only where they are computed.

Grids whose inputs cannot be pickled (e.g. a closure-based per-cycle
mapping factory) quietly fall back to the serial path — correctness
first, parallelism when possible.

Worker crashes do not kill a sweep: when the pool breaks
(``BrokenProcessPool`` — a worker segfaulted, was OOM-killed, or died
unpickling its payload), the unfinished points are retried once in a
fresh pool, and if that pool breaks too they are evaluated serially
in-process.  Recovered points are logged via the ``repro.mpc.parallel``
logger; because every point is pure, the recovered results are
identical to what the healthy pool (or the serial path) would have
produced.
"""

from __future__ import annotations

import logging
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..obs import get_registry, log_event
from ..trace.events import SectionTrace
from .config import RunConfig
from .costmodel import (DEFAULT_COSTS, TABLE_5_1, ZERO_OVERHEADS, CostModel,
                        OverheadModel)
from .faults import FaultModel, ProtocolModel
from .mapping import BucketMapping
from .metrics import SimResult, speedup
from .simulator import MappingFactory, simulate_config
from .sweep import (DEFAULT_PROC_COUNTS, SpeedupCurve, _serial_overhead_sweep,
                    _serial_speedup_curve)

logger = logging.getLogger(__name__)

#: Environment override for the default worker count.
ENV_WORKERS = "REPRO_SWEEP_WORKERS"

#: Environment override for the pool-benefit gate: ``"1"`` forces the
#: pool path whenever ``workers >= 2`` (used by tests and the
#: conformance oracle on single-CPU machines), ``"0"`` forces serial.
ENV_FORCE_POOL = "REPRO_SWEEP_FORCE_POOL"

#: Estimated total activation-evaluations below which a worker pool
#: costs more than it saves (fork + pickle + IPC ≈ a few hundred ms;
#: one activation simulates in ~1-2 µs, so ~200k activations ≈ the
#: break-even sweep size with headroom).
MIN_POOL_ACTIVATIONS = 200_000

_default_workers: Optional[int] = None


def set_default_workers(workers: Optional[int]) -> None:
    """Set the process-wide default worker count (``None`` resets)."""
    global _default_workers
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    _default_workers = workers


def resolve_workers(workers: Optional[int] = None) -> int:
    """Concrete worker count for a ``workers`` argument."""
    if workers is not None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        return workers
    env = os.environ.get(ENV_WORKERS)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    if _default_workers is not None:
        return _default_workers
    return os.cpu_count() or 1


@dataclass(frozen=True)
class GridPoint:
    """One sweep point: a full argument set for one ``simulate`` call."""

    n_procs: int
    overheads: OverheadModel = ZERO_OVERHEADS
    mapping: Optional[BucketMapping] = None
    mapping_factory: Optional[MappingFactory] = None
    faults: Optional[FaultModel] = None
    protocol: Optional[ProtocolModel] = None
    #: Run this point through the O(active-work) loop with run-length
    #: encoded idle stretches (numerically identical; the RLE result is
    #: also far cheaper to pickle back from a worker at large P).
    compress_rounds: bool = False


def _eval_point(trace: SectionTrace, costs: CostModel,
                point: GridPoint) -> SimResult:
    return simulate_config(trace, RunConfig(
        n_procs=point.n_procs, costs=costs, overheads=point.overheads,
        mapping=point.mapping, mapping_factory=point.mapping_factory,
        faults=point.faults, protocol=point.protocol,
        compress_rounds=point.compress_rounds))


def pool_worth_it(trace: SectionTrace, n_points: int) -> bool:
    """Whether a worker pool is expected to beat serial evaluation.

    The benefit heuristic behind ``--workers`` (ROADMAP: the parallel
    sweep must never lose to serial on a 1-CPU box): a pool only pays
    off with at least two real CPUs *and* enough total work to amortize
    fork/pickle/IPC startup.  ``REPRO_SWEEP_FORCE_POOL=1`` overrides to
    always-pool (tests, the conformance oracle); ``=0`` to never-pool.
    """
    force = os.environ.get(ENV_FORCE_POOL)
    if force:
        return force != "0"
    if (os.cpu_count() or 1) < 2:
        return False
    return trace.total_activations() * n_points >= MIN_POOL_ACTIVATIONS


def _picklable(payload) -> bool:
    try:
        pickle.dumps(payload)
        return True
    except Exception:
        return False


def _run_pool(trace: SectionTrace, costs: CostModel,
              points: Sequence[GridPoint], indices: Sequence[int],
              results: List[Optional[SimResult]],
              n_workers: int) -> List[int]:
    """Evaluate ``points[i]`` for each *i* in *indices* in one pool.

    Fills *results* in place and returns the indices left unfinished
    because the pool broke (always empty on a healthy pool).
    """
    remaining: List[int] = []
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        futures = []
        pending = list(indices)
        while pending:
            i = pending[0]
            try:
                futures.append((i, pool.submit(_eval_point, trace, costs,
                                               points[i])))
            except BrokenProcessPool:
                break
            pending.pop(0)
        broken = False
        for i, future in futures:
            if broken:
                remaining.append(i)
                continue
            try:
                results[i] = future.result()
            except BrokenProcessPool:
                broken = True
                remaining.append(i)
        remaining.extend(pending)
    return remaining


def run_grid(trace: SectionTrace, points: Sequence[GridPoint],
             costs: CostModel = DEFAULT_COSTS,
             workers: Optional[int] = None) -> List[SimResult]:
    """Evaluate every *point* of the grid; results in *points* order.

    The serial path (``workers=1``, a single point, unpicklable
    inputs, or a grid the benefit heuristic judges too small to
    amortize pool startup — see :func:`pool_worth_it`) computes
    in-process; otherwise points are dispatched to a process pool.
    Either way the returned list is deterministic and identical
    between the two paths.

    Worker crashes are survived: points stranded by a broken pool are
    retried once in a fresh pool and, failing that, evaluated serially
    in-process (see the module docstring).
    """
    points = list(points)
    registry = get_registry()
    registry.counter("parallel.points").inc(len(points))
    n_workers = min(resolve_workers(workers), len(points))
    if n_workers > 1 and not pool_worth_it(trace, len(points)):
        registry.counter("parallel.gated_points").inc(len(points))
        n_workers = 1
    if n_workers <= 1 or not _picklable((trace, costs, points)):
        registry.counter("parallel.serial_points").inc(len(points))
        log_event(logger, "grid_serial", trace=trace.name,
                  points=len(points))
        return [_eval_point(trace, costs, point) for point in points]
    log_event(logger, "grid_start", trace=trace.name, points=len(points),
              workers=n_workers)
    results: List[Optional[SimResult]] = [None] * len(points)
    remaining = _run_pool(trace, costs, points, range(len(points)),
                          results, n_workers)
    if remaining:
        registry.counter("parallel.pool_broken").inc()
        registry.counter("parallel.pool_breaks").inc()
        registry.counter("parallel.retried_points").inc(len(remaining))
        log_event(logger, "pool_broken", level=logging.WARNING,
                  trace=trace.name, unfinished=len(remaining),
                  points=len(points), action="retry_fresh_pool")
        remaining = _run_pool(trace, costs, points, remaining, results,
                              min(n_workers, len(remaining)))
    if remaining:
        registry.counter("parallel.pool_broken").inc()
        registry.counter("parallel.pool_breaks").inc()
        registry.counter("parallel.serial_points").inc(len(remaining))
        log_event(logger, "pool_broken", level=logging.WARNING,
                  trace=trace.name, unfinished=len(remaining),
                  points=len(points), action="serial_fallback")
        for i in remaining:
            results[i] = _eval_point(trace, costs, points[i])
        logger.info("recovered grid point(s) %s via serial fallback",
                    remaining)
    log_event(logger, "grid_done", trace=trace.name, points=len(points))
    return results  # type: ignore[return-value]


def parallel_speedup_curve(
        trace: SectionTrace,
        proc_counts: Sequence[int] = DEFAULT_PROC_COUNTS,
        overheads: OverheadModel = ZERO_OVERHEADS,
        costs: CostModel = DEFAULT_COSTS,
        mapping_for: Optional[Callable[[int], BucketMapping]] = None,
        mapping_factory_for: Optional[
            Callable[[int], MappingFactory]] = None,
        label: Optional[str] = None,
        workers: Optional[int] = None,
        compress_rounds: bool = False) -> SpeedupCurve:
    """Parallel counterpart of :func:`repro.mpc.sweep.speedup_curve`.

    Numerically identical to the serial version for any worker count:
    the base run (1 processor, zero overheads) and every sweep point are
    independent grid points, reassembled in order.
    """
    if resolve_workers(workers) <= 1:
        return _serial_speedup_curve(
            trace, proc_counts, overheads=overheads, costs=costs,
            mapping_for=mapping_for,
            mapping_factory_for=mapping_factory_for, label=label,
            compress_rounds=compress_rounds)
    # Mapping callables run in the parent so only their (picklable
    # dataclass) products travel; factories must pickle whole.
    points = [GridPoint(n_procs=1, compress_rounds=compress_rounds)]
    for n_procs in proc_counts:
        mapping = None
        factory = None
        if mapping_factory_for is not None:
            factory = mapping_factory_for(n_procs)
        elif mapping_for is not None:
            mapping = mapping_for(n_procs)
        points.append(GridPoint(n_procs=n_procs, overheads=overheads,
                                mapping=mapping, mapping_factory=factory,
                                compress_rounds=compress_rounds))
    results = run_grid(trace, points, costs=costs, workers=workers)
    base, rest = results[0], results[1:]
    return SpeedupCurve(
        label=label or f"{trace.name}@{overheads.label()}",
        proc_counts=list(proc_counts),
        speedups=[speedup(base, result) for result in rest],
        results=rest)


def parallel_overhead_sweep(
        trace: SectionTrace,
        proc_counts: Sequence[int] = DEFAULT_PROC_COUNTS,
        overhead_settings: Sequence[OverheadModel] = TABLE_5_1,
        costs: CostModel = DEFAULT_COSTS,
        workers: Optional[int] = None,
        compress_rounds: bool = False) -> List[SpeedupCurve]:
    """Parallel counterpart of :func:`repro.mpc.sweep.overhead_sweep`.

    The whole (overhead setting x processor count) grid is one flat
    fan-out — a sweep over four Table 5-1 rows keeps every worker busy
    instead of parallelizing one curve at a time.
    """
    if resolve_workers(workers) <= 1:
        return _serial_overhead_sweep(trace, proc_counts,
                                      overhead_settings, costs,
                                      compress_rounds=compress_rounds)
    proc_counts = list(proc_counts)
    points = [GridPoint(n_procs=1, compress_rounds=compress_rounds)]
    for overheads in overhead_settings:
        points.extend(GridPoint(n_procs=n, overheads=overheads,
                                compress_rounds=compress_rounds)
                      for n in proc_counts)
    results = run_grid(trace, points, costs=costs, workers=workers)
    base = results[0]
    curves: List[SpeedupCurve] = []
    offset = 1
    for overheads in overhead_settings:
        chunk = results[offset:offset + len(proc_counts)]
        offset += len(proc_counts)
        curves.append(SpeedupCurve(
            label=f"{trace.name}@{overheads.label()}",
            proc_counts=list(proc_counts),
            speedups=[speedup(base, result) for result in chunk],
            results=chunk))
    return curves

"""Discrete-event simulation of the Section 3.2 mapping.

The simulator replays a hash-table activity trace against a machine of
``n_procs`` match processors plus one control processor, following the
paper's match procedure:

1. The control processor broadcasts the cycle's wme packet to all match
   processors (one send overhead at control; latency; one receive
   overhead at each match processor).
2. Every match processor evaluates all constant tests (30 µs) and keeps
   exactly the root activations whose hash bucket it owns — the coarse
   granularity: these never travel as messages.
3. Processing an activation = add/delete the token in its bucket
   (32 µs left / 16 µs right) then generate successors (16 µs each).
   Each successor headed for a bucket on another processor is sent as a
   message (send overhead at the producer, latency in the network,
   receive overhead at the consumer) — the fine granularity.
4. Instantiations (terminal activations) are sent to the control
   processor.
5. The cycle ends when all activations are processed and all messages
   delivered; cycles are serialized by the control barrier.  Termination
   detection is idealized and free, as in the paper.

Everything is deterministic: the event queue breaks ties on a sequence
counter and processors serve tasks FIFO by arrival time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..rete.hashing import BucketKey
from ..trace.events import (KIND_TERMINAL, LEFT, CycleTrace, SectionTrace,
                            TraceActivation)
from .costmodel import DEFAULT_COSTS, ZERO_OVERHEADS, CostModel, \
    OverheadModel
from .mapping import BucketMapping, RoundRobinMapping
from .metrics import CycleResult, SimResult

#: Signature for per-cycle mapping construction (used by the idealized
#: greedy distribution, which the paper recomputed every cycle).
MappingFactory = Callable[[CycleTrace], BucketMapping]


def bucket_work(cycle: CycleTrace,
                costs: CostModel = DEFAULT_COSTS) -> Dict[BucketKey, float]:
    """Per-bucket processing time in *cycle* (greedy-distribution input).

    This is the "detailed trace of the activity in each bucket" the paper
    feeds its offline greedy algorithm.
    """
    work: Dict[BucketKey, float] = {}
    for act in cycle:
        if act.kind == KIND_TERMINAL:
            continue
        cost = costs.store_cost(act.side) + \
            costs.successor_us * act.n_successors
        work[act.key] = work.get(act.key, 0.0) + cost
    return work


def compute_search_costs(trace: SectionTrace,
                         costs: CostModel) -> Dict[int, Dict[int, float]]:
    """Per-activation deletion-search surcharges (footnote 6 model).

    Bucket occupancy is tracked in causal (serial trace) order across
    the whole section — Rete memory persists between cycles — and every
    "-" activation is charged ``delete_search_us`` per entry it must
    scan past.  Returns ``{cycle_index: {act_id: extra_us}}``; empty
    when the cost model keeps the paper's constant-time assumption.
    """
    if costs.delete_search_us <= 0.0:
        return {}
    depth: Dict[BucketKey, int] = {}
    extra: Dict[int, Dict[int, float]] = {}
    for cycle in trace:
        per_cycle: Dict[int, float] = {}
        for act in cycle:
            if act.kind == KIND_TERMINAL:
                continue
            if act.tag == "+":
                depth[act.key] = depth.get(act.key, 0) + 1
            else:
                before = depth.get(act.key, 0)
                if before > 0:
                    per_cycle[act.act_id] = \
                        costs.delete_search_us * before
                    depth[act.key] = before - 1
        if per_cycle:
            extra[cycle.index] = per_cycle
    return extra


def simulate(trace: SectionTrace,
             n_procs: int,
             costs: CostModel = DEFAULT_COSTS,
             overheads: OverheadModel = ZERO_OVERHEADS,
             mapping: Optional[BucketMapping] = None,
             mapping_factory: Optional[MappingFactory] = None) -> SimResult:
    """Simulate *trace* on *n_procs* match processors.

    Parameters
    ----------
    trace:
        The section to replay (validated traces only; see
        :func:`repro.trace.validate_trace`).
    n_procs:
        Number of match processors (the control processor is extra).
    costs / overheads:
        Section 4 cost model and Table 5-1 overhead setting.
    mapping:
        Bucket distribution; defaults to the paper's round robin.
    mapping_factory:
        When given, overrides *mapping* with a fresh mapping per cycle —
        the paper's idealized per-cycle greedy redistribution.

    Returns
    -------
    SimResult with one :class:`CycleResult` per cycle.
    """
    if n_procs < 1:
        raise ValueError("need at least one match processor")
    if mapping is None:
        mapping = RoundRobinMapping(n_procs)
    if mapping.n_procs != n_procs:
        raise ValueError(
            f"mapping built for {mapping.n_procs} processors, "
            f"simulating {n_procs}")

    search_costs = compute_search_costs(trace, costs)
    result = SimResult(trace_name=trace.name, n_procs=n_procs)
    for cycle in trace:
        cycle_mapping = (mapping_factory(cycle) if mapping_factory
                         else mapping)
        if cycle_mapping.n_procs != n_procs:
            raise ValueError("mapping_factory produced a mapping for "
                             f"{cycle_mapping.n_procs} processors")
        result.cycles.append(
            _simulate_cycle(cycle, n_procs, costs, overheads,
                            cycle_mapping,
                            search_costs.get(cycle.index, {})))
    return result


@dataclass
class _Task:
    """A pending activation delivery to a match processor."""

    arrival: float
    seq: int
    proc: int
    act: TraceActivation
    via_message: bool

    def __lt__(self, other: "_Task") -> bool:
        return (self.arrival, self.seq) < (other.arrival, other.seq)


def _simulate_cycle(cycle: CycleTrace, n_procs: int, costs: CostModel,
                    overheads: OverheadModel,
                    mapping: BucketMapping,
                    search_costs: Optional[Dict[int, float]] = None
                    ) -> CycleResult:
    search_costs = search_costs or {}
    # --- step 1: broadcast -------------------------------------------------
    control_busy = overheads.send_us
    match_start = (overheads.send_us + overheads.latency_us
                   + overheads.recv_us)
    network_busy = overheads.latency_us if n_procs > 0 else 0.0
    n_messages = 1  # the broadcast packet

    # --- step 2: constant tests on every processor -------------------------
    ready = [match_start + costs.constant_tests_us] * n_procs
    busy = [overheads.recv_us + costs.constant_tests_us] * n_procs
    activations = [0] * n_procs
    left_activations = [0] * n_procs

    seq = 0
    queue: List[_Task] = []
    #: completion times of instantiation deliveries at the control proc
    control_arrivals: List[float] = []
    control_ready = control_busy  # control is busy until broadcast sent

    def send_to_control(depart: float) -> None:
        nonlocal control_busy, control_ready, network_busy, n_messages
        n_messages += 1
        network_busy += overheads.latency_us
        arrive = depart + overheads.latency_us
        # Control handles instantiation receipts FIFO as they arrive.
        control_ready = max(control_ready, arrive) + overheads.recv_us
        control_busy += overheads.recv_us
        control_arrivals.append(control_ready)

    for root in cycle.roots():
        owner = mapping.processor_for(root.key)
        if root.kind == KIND_TERMINAL:
            # A single-CE instantiation: produced by the constant tests;
            # the bucket owner ships it to the control processor.
            depart = ready[owner] + overheads.send_us
            busy[owner] += overheads.send_us
            ready[owner] = depart
            send_to_control(depart)
            continue
        seq += 1
        heapq.heappush(queue, _Task(arrival=ready[owner], seq=seq,
                                    proc=owner, act=root,
                                    via_message=False))

    # --- steps 3-4: event loop ------------------------------------------------
    while queue:
        task = heapq.heappop(queue)
        p = task.proc
        act = task.act
        start = max(ready[p], task.arrival)
        t = start
        if task.via_message:
            t += overheads.recv_us
        t += costs.store_cost(act.side)
        t += search_costs.get(act.act_id, 0.0)
        activations[p] += 1
        if act.side == LEFT:
            left_activations[p] += 1

        for succ_id in act.successors:
            succ = cycle.activations[succ_id]
            t += costs.successor_us
            if succ.kind == KIND_TERMINAL:
                t += overheads.send_us
                send_to_control(t)
                continue
            dest = mapping.processor_for(succ.key)
            seq += 1
            if dest == p:
                heapq.heappush(queue, _Task(arrival=t, seq=seq, proc=p,
                                            act=succ, via_message=False))
            else:
                t += overheads.send_us
                heapq.heappush(queue, _Task(
                    arrival=t + overheads.latency_us, seq=seq, proc=dest,
                    act=succ, via_message=True))

        busy[p] += t - start
        ready[p] = t

    # Tally inter-processor token messages by walking the causal links
    # against the mapping (equivalent to counting via_message pushes).
    token_messages = 0
    for act in cycle:
        if act.kind == KIND_TERMINAL or act.parent_id is None:
            continue
        parent = cycle.activations[act.parent_id]
        if parent.kind == KIND_TERMINAL:
            continue
        if mapping.processor_for(parent.key) != \
                mapping.processor_for(act.key):
            token_messages += 1
    n_messages += token_messages
    network_busy += token_messages * overheads.latency_us

    makespan = max([match_start + costs.constant_tests_us]
                   + ready + control_arrivals)
    return CycleResult(index=cycle.index, makespan_us=makespan,
                       proc_busy_us=busy,
                       proc_activations=activations,
                       proc_left_activations=left_activations,
                       n_messages=n_messages,
                       network_busy_us=network_busy,
                       control_busy_us=control_busy)


def simulate_base(trace: SectionTrace,
                  costs: CostModel = DEFAULT_COSTS) -> SimResult:
    """The paper's base case: one match processor, zero overheads."""
    return simulate(trace, n_procs=1, costs=costs,
                    overheads=ZERO_OVERHEADS)

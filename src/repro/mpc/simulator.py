"""Discrete-event simulation of the Section 3.2 mapping.

The simulator replays a hash-table activity trace against a machine of
``n_procs`` match processors plus one control processor, following the
paper's match procedure:

1. The control processor broadcasts the cycle's wme packet to all match
   processors (one send overhead at control; latency; one receive
   overhead at each match processor).
2. Every match processor evaluates all constant tests (30 µs) and keeps
   exactly the root activations whose hash bucket it owns — the coarse
   granularity: these never travel as messages.
3. Processing an activation = add/delete the token in its bucket
   (32 µs left / 16 µs right) then generate successors (16 µs each).
   Each successor headed for a bucket on another processor is sent as a
   message (send overhead at the producer, latency in the network,
   receive overhead at the consumer) — the fine granularity.
4. Instantiations (terminal activations) are sent to the control
   processor.
5. The cycle ends when all activations are processed and all messages
   delivered; cycles are serialized by the control barrier.  Termination
   detection is idealized and free, as in the paper.

Everything is deterministic: the event queue breaks ties on a sequence
counter and processors serve tasks FIFO by arrival time.

The inner event loop is the harness's hottest code — every sweep point
of every figure goes through it — so it is written for speed: heap
entries are plain ``(arrival, seq, proc, via_message, activation)``
tuples (the unique ``seq`` guarantees comparison never reaches the
activation), each activation's destination processor is resolved exactly
once per cycle, and per-event attribute/method lookups are hoisted into
locals.  :mod:`repro.mpc._reference` preserves the original
object-based loop; ``tests/test_mpc_parallel.py`` asserts both produce
bit-identical results.
"""

from __future__ import annotations

import heapq
import warnings
from collections import defaultdict
from typing import Dict, List, Optional

from ..rete.hashing import BucketKey
from ..trace.events import (KIND_TERMINAL, LEFT, CycleTrace, SectionTrace)
from .config import MappingFactory, RunConfig
from .costmodel import DEFAULT_COSTS, ZERO_OVERHEADS, CostModel, \
    OverheadModel
from .mapping import BucketMapping, RoundRobinMapping, greedy_mapping
from .metrics import CycleResult, SimResult

#: Test-only mis-pricing hook for the conformance harness
#: (:mod:`repro.check`).  When nonzero, the optimized event loop — and
#: only it; the reference loop, the fault/protocol loop and the recorded
#: mirror all ignore it — charges right tokens this many extra
#: microseconds.  The harness's mutation smoke test sets it (via
#: :func:`repro.check.mutate_cost`) to prove the oracle matrix catches a
#: mis-priced cost constant.  Never set it outside tests.
_TEST_MUTATE_RIGHT_TOKEN_US = 0.0


def bucket_work(cycle: CycleTrace,
                costs: CostModel = DEFAULT_COSTS) -> Dict[BucketKey, float]:
    """Per-bucket processing time in *cycle* (greedy-distribution input).

    This is the "detailed trace of the activity in each bucket" the paper
    feeds its offline greedy algorithm.
    """
    work: Dict[BucketKey, float] = defaultdict(float)
    left_us = costs.left_token_us
    right_us = costs.right_token_us
    successor_us = costs.successor_us
    for act in cycle.ordered():
        if act.kind == KIND_TERMINAL:
            continue
        work[act.key] += (left_us if act.side == LEFT else right_us) \
            + successor_us * len(act.successors)
    return dict(work)


class BucketWorkCache:
    """Memoized :func:`bucket_work`, shared across sweep points.

    The greedy-distribution experiments rebuild a mapping per (cycle,
    processor count) pair; the per-bucket activity depends only on the
    cycle, so one cache serves every processor count of a sweep.  Cycles
    are identified by object identity (a strong reference is kept, so an
    id is never recycled while cached).
    """

    def __init__(self, costs: CostModel = DEFAULT_COSTS) -> None:
        self.costs = costs
        self._cache: Dict[int, tuple] = {}

    def __call__(self, cycle: CycleTrace) -> Dict[BucketKey, float]:
        entry = self._cache.get(id(cycle))
        if entry is None or entry[0] is not cycle:
            entry = (cycle, bucket_work(cycle, self.costs))
            self._cache[id(cycle)] = entry
        return entry[1]

    def __getstate__(self):
        # The cache keys are process-local object ids: never ship them
        # to a worker process (the parallel sweep engine pickles
        # factories); start empty there instead.
        return {"costs": self.costs}

    def __setstate__(self, state):
        self.costs = state["costs"]
        self._cache = {}


class GreedyMappingFactory:
    """Per-cycle idealized greedy (LPT) distribution, ready to share.

    A picklable :data:`MappingFactory`: pass
    ``mapping_factory=GreedyMappingFactory(n_procs)`` to
    :func:`simulate`, or build one per processor count around a shared
    :class:`BucketWorkCache` so a whole sweep prices each cycle's bucket
    activity once.
    """

    def __init__(self, n_procs: int,
                 costs: CostModel = DEFAULT_COSTS,
                 work_cache: Optional[BucketWorkCache] = None) -> None:
        self.n_procs = n_procs
        self.work_cache = work_cache if work_cache is not None \
            else BucketWorkCache(costs)

    def __call__(self, cycle: CycleTrace) -> BucketMapping:
        return greedy_mapping(self.work_cache(cycle), self.n_procs)


def compute_search_costs(trace: SectionTrace,
                         costs: CostModel) -> Dict[int, Dict[int, float]]:
    """Per-activation deletion-search surcharges (footnote 6 model).

    Bucket occupancy is tracked in causal (serial trace) order across
    the whole section — Rete memory persists between cycles — and every
    "-" activation is charged ``delete_search_us`` per entry it must
    scan past.  Returns ``{cycle_index: {act_id: extra_us}}``; empty
    when the cost model keeps the paper's constant-time assumption.
    """
    if costs.delete_search_us <= 0.0:
        return {}
    depth: Dict[BucketKey, int] = {}
    extra: Dict[int, Dict[int, float]] = {}
    for cycle in trace:
        per_cycle: Dict[int, float] = {}
        for act in cycle:
            if act.kind == KIND_TERMINAL:
                continue
            if act.tag == "+":
                depth[act.key] = depth.get(act.key, 0) + 1
            else:
                before = depth.get(act.key, 0)
                if before > 0:
                    per_cycle[act.act_id] = \
                        costs.delete_search_us * before
                    depth[act.key] = before - 1
        if per_cycle:
            extra[cycle.index] = per_cycle
    return extra


def simulate_config(trace: SectionTrace, config: RunConfig) -> SimResult:
    """Simulate *trace* under one :class:`~repro.mpc.config.RunConfig`.

    This is the engine entry point every executor backend and sweep
    shares; :func:`simulate` is a thin compatibility wrapper around it.

    Parameters
    ----------
    trace:
        The section to replay (validated traces only; see
        :func:`repro.trace.validate_trace`).
    config:
        The full machine configuration.  ``config.mapping`` defaults to
        the paper's round robin; ``config.mapping_factory`` overrides
        it with a fresh mapping per cycle (the paper's idealized greedy
        redistribution).  A ``None`` or null ``config.faults`` keeps
        the exact fault-free code path — results are bit-identical to a
        fault-free config; ``config.protocol`` defaults to
        :data:`~repro.mpc.faults.DEFAULT_PROTOCOL` when faults are
        active and is ignored otherwise.  ``config.recorder`` routes
        every cycle through the span-recording mirror of the event loop
        (:mod:`repro.mpc.timeline`) without changing any result bit.

    Returns
    -------
    SimResult with one :class:`CycleResult` per cycle.
    """
    n_procs = config.n_procs
    costs = config.costs
    overheads = config.overheads
    mapping = config.mapping
    mapping_factory = config.mapping_factory
    faults = config.faults
    protocol = config.protocol
    recorder = config.recorder
    if mapping is None:
        mapping = RoundRobinMapping(n_procs)

    faulty = config.faulty
    if faulty:
        from .faults import DEFAULT_PROTOCOL, simulate_cycle_with_faults
        if protocol is None:
            protocol = DEFAULT_PROTOCOL
    if recorder is not None:
        from .timeline import _simulate_cycle_recorded
        recorder.begin_section(trace.name, n_procs, costs, overheads,
                               faulty)

    search_costs = compute_search_costs(trace, costs)
    result = SimResult(trace_name=trace.name, n_procs=n_procs)
    for cycle in trace:
        cycle_mapping = (mapping_factory(cycle) if mapping_factory
                         else mapping)
        if cycle_mapping.n_procs != n_procs:
            raise ValueError("mapping_factory produced a mapping for "
                             f"{cycle_mapping.n_procs} processors")
        if faulty:
            cycle_result = simulate_cycle_with_faults(
                cycle, n_procs, costs, overheads, cycle_mapping,
                faults, protocol, search_costs.get(cycle.index, {}),
                recorder=recorder)
        elif recorder is not None:
            cycle_result = _simulate_cycle_recorded(
                cycle, n_procs, costs, overheads, cycle_mapping,
                search_costs.get(cycle.index, {}), recorder)
        else:
            cycle_result = _simulate_cycle(
                cycle, n_procs, costs, overheads, cycle_mapping,
                search_costs.get(cycle.index, {}))
        result.cycles.append(cycle_result)
    return result


def simulate(trace: SectionTrace,
             n_procs: int,
             costs: CostModel = DEFAULT_COSTS,
             overheads: OverheadModel = ZERO_OVERHEADS,
             mapping: Optional[BucketMapping] = None,
             mapping_factory: Optional[MappingFactory] = None,
             faults: Optional["FaultModel"] = None,
             protocol: Optional["ProtocolModel"] = None,
             recorder: Optional["TimelineRecorder"] = None) -> SimResult:
    """Simulate *trace* on *n_procs* match processors.

    Compatibility wrapper over :func:`simulate_config`.  The short form
    — ``simulate(trace, n_procs, costs=..., overheads=...)`` — remains
    the supported convenience spelling.  The remaining keywords
    (*mapping*, *mapping_factory*, *faults*, *protocol*, *recorder*)
    are **deprecated** here: build a
    :class:`~repro.mpc.config.RunConfig` and call
    :func:`simulate_config` instead.  Passing any of them emits a
    ``DeprecationWarning`` (results are unchanged).
    """
    if (mapping is not None or mapping_factory is not None
            or faults is not None or protocol is not None
            or recorder is not None):
        warnings.warn(
            "passing mapping/mapping_factory/faults/protocol/recorder "
            "to simulate() is deprecated; build a RunConfig and call "
            "simulate_config(trace, config)",
            DeprecationWarning, stacklevel=2)
    return simulate_config(trace, RunConfig(
        n_procs=n_procs, costs=costs, overheads=overheads,
        mapping=mapping, mapping_factory=mapping_factory,
        faults=faults, protocol=protocol, recorder=recorder))


def _simulate_cycle(cycle: CycleTrace, n_procs: int, costs: CostModel,
                    overheads: OverheadModel,
                    mapping: BucketMapping,
                    search_costs: Optional[Dict[int, float]] = None
                    ) -> CycleResult:
    send_us = overheads.send_us
    recv_us = overheads.recv_us
    latency_us = overheads.latency_us
    left_us = costs.left_token_us
    right_us = costs.right_token_us + _TEST_MUTATE_RIGHT_TOKEN_US
    successor_us = costs.successor_us
    acts = cycle.activations
    get_extra = (search_costs or {}).get

    # Resolve every activation's destination processor once.  Both the
    # event loop and the message tally need it, and distinct bucket keys
    # are far fewer than activations, so the hash work is shared here.
    processor_for = mapping.processor_for
    key_proc: Dict[BucketKey, int] = {}
    dest_of: Dict[int, int] = {}
    for act in cycle.ordered():
        key = act.key
        proc = key_proc.get(key)
        if proc is None:
            proc = key_proc[key] = processor_for(key)
        dest_of[act.act_id] = proc

    # --- step 1: broadcast -------------------------------------------------
    control_busy = send_us
    match_start = send_us + latency_us + recv_us
    network_busy = latency_us if n_procs > 0 else 0.0
    n_messages = 1  # the broadcast packet

    # --- step 2: constant tests on every processor -------------------------
    ready = [match_start + costs.constant_tests_us] * n_procs
    busy = [recv_us + costs.constant_tests_us] * n_procs
    activations = [0] * n_procs
    left_activations = [0] * n_procs

    seq = 0
    #: heap of (arrival, seq, proc, via_message, activation); seq is
    #: unique, so tuple comparison never reaches the activation.
    queue: list = []
    heappush = heapq.heappush
    heappop = heapq.heappop
    #: completion times of instantiation deliveries at the control proc
    control_arrivals: List[float] = []
    control_ready = control_busy  # control is busy until broadcast sent

    def send_to_control(depart: float) -> None:
        nonlocal control_busy, control_ready, network_busy, n_messages
        n_messages += 1
        network_busy += latency_us
        arrive = depart + latency_us
        # Control handles instantiation receipts FIFO as they arrive.
        control_ready = max(control_ready, arrive) + recv_us
        control_busy += recv_us
        control_arrivals.append(control_ready)

    for root in cycle.roots():
        owner = dest_of[root.act_id]
        if root.kind == KIND_TERMINAL:
            # A single-CE instantiation: produced by the constant tests;
            # the bucket owner ships it to the control processor.
            depart = ready[owner] + send_us
            busy[owner] += send_us
            ready[owner] = depart
            send_to_control(depart)
            continue
        seq += 1
        heappush(queue, (ready[owner], seq, owner, False, root))

    # --- steps 3-4: event loop ---------------------------------------------
    while queue:
        arrival, _, p, via_message, act = heappop(queue)
        proc_ready = ready[p]
        start = proc_ready if proc_ready > arrival else arrival
        t = start
        if via_message:
            t += recv_us
        t += left_us if act.side == LEFT else right_us
        extra = get_extra(act.act_id)
        if extra is not None:
            t += extra
        activations[p] += 1
        if act.side == LEFT:
            left_activations[p] += 1

        for succ_id in act.successors:
            succ = acts[succ_id]
            t += successor_us
            if succ.kind == KIND_TERMINAL:
                t += send_us
                send_to_control(t)
                continue
            dest = dest_of[succ_id]
            seq += 1
            if dest == p:
                heappush(queue, (t, seq, p, False, succ))
            else:
                t += send_us
                heappush(queue, (t + latency_us, seq, dest, True, succ))

        busy[p] += t - start
        ready[p] = t

    # Tally inter-processor token messages by walking the causal links
    # against the mapping (equivalent to counting via_message pushes).
    token_messages = 0
    for act in cycle.ordered():
        parent_id = act.parent_id
        if act.kind == KIND_TERMINAL or parent_id is None:
            continue
        if acts[parent_id].kind == KIND_TERMINAL:
            continue
        if dest_of[parent_id] != dest_of[act.act_id]:
            token_messages += 1
    n_messages += token_messages
    network_busy += token_messages * latency_us

    makespan = max([match_start + costs.constant_tests_us]
                   + ready + control_arrivals)
    return CycleResult(index=cycle.index, makespan_us=makespan,
                       proc_busy_us=busy,
                       proc_activations=activations,
                       proc_left_activations=left_activations,
                       n_messages=n_messages,
                       network_busy_us=network_busy,
                       control_busy_us=control_busy)


def simulate_base(trace: SectionTrace,
                  costs: CostModel = DEFAULT_COSTS) -> SimResult:
    """The paper's base case: one match processor, zero overheads."""
    return simulate_config(trace, RunConfig(n_procs=1, costs=costs,
                                            overheads=ZERO_OVERHEADS))

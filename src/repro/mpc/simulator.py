"""Discrete-event simulation of the Section 3.2 mapping.

The simulator replays a hash-table activity trace against a machine of
``n_procs`` match processors plus one control processor, following the
paper's match procedure:

1. The control processor broadcasts the cycle's wme packet to all match
   processors (one send overhead at control; latency; one receive
   overhead at each match processor).
2. Every match processor evaluates all constant tests (30 µs) and keeps
   exactly the root activations whose hash bucket it owns — the coarse
   granularity: these never travel as messages.
3. Processing an activation = add/delete the token in its bucket
   (32 µs left / 16 µs right) then generate successors (16 µs each).
   Each successor headed for a bucket on another processor is sent as a
   message (send overhead at the producer, latency in the network,
   receive overhead at the consumer) — the fine granularity.
4. Instantiations (terminal activations) are sent to the control
   processor.
5. The cycle ends when all activations are processed and all messages
   delivered; cycles are serialized by the control barrier.  Termination
   detection is idealized and free, as in the paper.

Everything is deterministic: the event queue breaks ties on a sequence
counter and processors serve tasks FIFO by arrival time.

The inner event loop is the harness's hottest code — every sweep point
of every figure goes through it — so it is written for speed: heap
entries are plain ``(arrival, seq, proc, via_message, activation)``
tuples (the unique ``seq`` guarantees comparison never reaches the
activation), each activation's destination processor is resolved exactly
once per cycle, and per-event attribute/method lookups are hoisted into
locals.  :mod:`repro.mpc._reference` preserves the original
object-based loop; ``tests/test_mpc_parallel.py`` asserts both produce
bit-identical results.

Scaling to thousands of processors (ROADMAP item 3)
---------------------------------------------------
The dense loop above still charges O(P) per cycle — list allocations,
the final ``max`` — which dominates exactly in the regime the paper
says matters (mostly-idle machines).  ``RunConfig(compress_rounds=
True)`` switches to two complementary optimizations, both **bit-exact**
(the ``compressed_vs_exact`` oracle in :mod:`repro.check` holds them to
the reference loop):

* an **active-set event loop** (:func:`_simulate_cycle_active`): per
  cycle only processors that did cycle-specific work get entries in
  the ready/busy dictionaries; everyone else sits at the closed-form
  broadcast + constant-test floor, represented once by a
  :class:`~repro.mpc.metrics.SparseProcArray` default.  Every
  floating-point operation that *does* happen uses the same operands
  in the same order as the dense loop, so results are bit-identical.
* **round compression**: a run of consecutive fully-idle cycles is
  collapsed analytically into one closed-form :class:`CycleResult`
  (:func:`_idle_cycle_result`) carried with a repeat count — the
  counters are advanced exactly, in the spirit of the round-compression
  literature, not approximated.

:func:`iter_cycle_results` is the memory-bounded core both modes share:
it yields ``(CycleResult, repeat)`` pairs one at a time and accepts
streaming trace sources (anything yielding
:class:`~repro.trace.events.CycleTrace` / :class:`~repro.trace.events
.IdleRun` entries), so traces with 10⁶+ activations never need to be
materialized.
"""

from __future__ import annotations

import heapq
import warnings
from collections import defaultdict
from dataclasses import replace
from typing import Dict, Iterator, List, Optional, Tuple

from ..rete.hashing import BucketKey
from ..trace.events import (KIND_TERMINAL, LEFT, CycleTrace, IdleRun,
                            SectionTrace, iter_cycles)
from .config import MappingFactory, RunConfig
from .costmodel import DEFAULT_COSTS, ZERO_OVERHEADS, CostModel, \
    OverheadModel
from .mapping import BucketMapping, RoundRobinMapping, greedy_mapping
from .metrics import CycleResult, SimResult, SparseProcArray

#: Test-only mis-pricing hook for the conformance harness
#: (:mod:`repro.check`).  When nonzero, the optimized event loops —
#: dense and active-set; the reference loop, the fault/protocol loop
#: and the recorded mirror all ignore it — charge right tokens this
#: many extra microseconds.  The harness's mutation smoke test sets it
#: (via :func:`repro.check.mutate_cost`) to prove the oracle matrix
#: catches a mis-priced cost constant.  Never set it outside tests.
_TEST_MUTATE_RIGHT_TOKEN_US = 0.0


def bucket_work(cycle: CycleTrace,
                costs: CostModel = DEFAULT_COSTS) -> Dict[BucketKey, float]:
    """Per-bucket processing time in *cycle* (greedy-distribution input).

    This is the "detailed trace of the activity in each bucket" the paper
    feeds its offline greedy algorithm.
    """
    work: Dict[BucketKey, float] = defaultdict(float)
    left_us = costs.left_token_us
    right_us = costs.right_token_us
    successor_us = costs.successor_us
    for act in cycle.ordered():
        if act.kind == KIND_TERMINAL:
            continue
        work[act.key] += (left_us if act.side == LEFT else right_us) \
            + successor_us * len(act.successors)
    return dict(work)


class BucketWorkCache:
    """Memoized :func:`bucket_work`, shared across sweep points.

    The greedy-distribution experiments rebuild a mapping per (cycle,
    processor count) pair; the per-bucket activity depends only on the
    cycle, so one cache serves every processor count of a sweep.  Cycles
    are identified by object identity (a strong reference is kept, so an
    id is never recycled while cached).
    """

    def __init__(self, costs: CostModel = DEFAULT_COSTS) -> None:
        self.costs = costs
        self._cache: Dict[int, tuple] = {}

    def __call__(self, cycle: CycleTrace) -> Dict[BucketKey, float]:
        entry = self._cache.get(id(cycle))
        if entry is None or entry[0] is not cycle:
            entry = (cycle, bucket_work(cycle, self.costs))
            self._cache[id(cycle)] = entry
        return entry[1]

    def __getstate__(self):
        # The cache keys are process-local object ids: never ship them
        # to a worker process (the parallel sweep engine pickles
        # factories); start empty there instead.
        return {"costs": self.costs}

    def __setstate__(self, state):
        self.costs = state["costs"]
        self._cache = {}


class GreedyMappingFactory:
    """Per-cycle idealized greedy (LPT) distribution, ready to share.

    A picklable :data:`MappingFactory`: pass
    ``mapping_factory=GreedyMappingFactory(n_procs)`` to
    :func:`simulate`, or build one per processor count around a shared
    :class:`BucketWorkCache` so a whole sweep prices each cycle's bucket
    activity once.
    """

    def __init__(self, n_procs: int,
                 costs: CostModel = DEFAULT_COSTS,
                 work_cache: Optional[BucketWorkCache] = None) -> None:
        self.n_procs = n_procs
        self.work_cache = work_cache if work_cache is not None \
            else BucketWorkCache(costs)

    def __call__(self, cycle: CycleTrace) -> BucketMapping:
        return greedy_mapping(self.work_cache(cycle), self.n_procs)


class _SearchCostTracker:
    """Incremental deletion-search pricing (footnote 6 model).

    Bucket occupancy is tracked in causal (serial trace) order across
    the whole section — Rete memory persists between cycles — and every
    "-" activation is charged ``delete_search_us`` per entry it must
    scan past.  The depth state only ever advances, so charging cycles
    one at a time as the engine reaches them is bit-identical to the
    old up-front whole-trace pass — and it is what lets
    :func:`iter_cycle_results` consume streaming traces in one pass.
    """

    __slots__ = ("rate", "depth")

    def __init__(self, rate: float) -> None:
        self.rate = rate
        self.depth: Dict[BucketKey, int] = {}

    def charge(self, cycle: CycleTrace) -> Dict[int, float]:
        """Per-activation surcharges for *cycle*; advances the state."""
        rate = self.rate
        if rate <= 0.0:
            return {}
        depth = self.depth
        per_cycle: Dict[int, float] = {}
        for act in cycle:
            if act.kind == KIND_TERMINAL:
                continue
            if act.tag == "+":
                depth[act.key] = depth.get(act.key, 0) + 1
            else:
                before = depth.get(act.key, 0)
                if before > 0:
                    per_cycle[act.act_id] = rate * before
                    depth[act.key] = before - 1
        return per_cycle


def compute_search_costs(trace: SectionTrace,
                         costs: CostModel) -> Dict[int, Dict[int, float]]:
    """Per-activation deletion-search surcharges for a whole section.

    Whole-trace wrapper over :class:`_SearchCostTracker`.  Returns
    ``{cycle_index: {act_id: extra_us}}``; empty when the cost model
    keeps the paper's constant-time assumption.
    """
    if costs.delete_search_us <= 0.0:
        return {}
    tracker = _SearchCostTracker(costs.delete_search_us)
    extra: Dict[int, Dict[int, float]] = {}
    for cycle in iter_cycles(trace):
        per_cycle = tracker.charge(cycle)
        if per_cycle:
            extra[cycle.index] = per_cycle
    return extra


def iter_cycle_results(trace, config: RunConfig
                       ) -> Iterator[Tuple[CycleResult, int]]:
    """Simulate *trace* one cycle at a time, yielding ``(result,
    repeat)`` pairs.

    This is the memory-bounded engine core: it accepts any trace
    source — a :class:`~repro.trace.events.SectionTrace` or a
    streaming source yielding :class:`~repro.trace.events.CycleTrace`
    / :class:`~repro.trace.events.IdleRun` entries — and never holds
    more than one cycle's result.  ``repeat`` is 1 everywhere except
    with ``config.compress_rounds``, where a maximal run of
    consecutive fully-idle cycles is emitted as one closed-form result
    with ``repeat`` equal to the run length.  Sweeps that only need
    aggregates consume this directly and discard each pair;
    :func:`simulate_config` collects the pairs into a
    :class:`~repro.mpc.metrics.SimResult`.
    """
    n_procs = config.n_procs
    costs = config.costs
    overheads = config.overheads
    mapping = config.mapping
    mapping_factory = config.mapping_factory
    faults = config.faults
    protocol = config.protocol
    recorder = config.recorder
    compress = config.compress_rounds
    if mapping is None:
        mapping = RoundRobinMapping(n_procs)

    faulty = config.faulty
    simulate_cycle_with_faults = None
    record_idle_stretch = None
    if faulty:
        from .faults import DEFAULT_PROTOCOL, simulate_cycle_with_faults
        if protocol is None:
            protocol = DEFAULT_PROTOCOL
    if recorder is not None:
        from .timeline import _record_idle_stretch as record_idle_stretch
        from .timeline import _simulate_cycle_recorded
        recorder.begin_section(trace.name, n_procs, costs, overheads,
                               faulty)

    # Round compression under fault injection: every fault draw is
    # already keyed to the *absolute* cycle index (see
    # :func:`repro.mpc.faults.counter_u01` callers), so collapsing an
    # idle stretch never shifts which cycles later faults land on.  The
    # two fault-model features that can touch a fully-idle cycle are
    # handled explicitly: every-cycle stall windows (``cycle=None``)
    # fold into the closed-form idle template
    # (:func:`_idle_cycle_result_faulty`), and cycle-specific stalls /
    # fail-stops break the stretch so those indices are simulated
    # exactly.  With a recorder attached, idle cycles under faults are
    # simulated per-cycle too (exact spans beat collapsed ones).
    fault_breaks: frozenset = frozenset()
    collapse_idle = True
    if compress and faulty:
        collapse_idle = recorder is None
        fault_breaks = frozenset(
            s.cycle for s in faults.stalls if s.cycle is not None
        ) | frozenset(f.cycle for f in faults.failures)

    tracker = _SearchCostTracker(costs.delete_search_us)
    idle_template: Optional[CycleResult] = None
    pending_start = 0
    pending_count = 0

    def flush() -> Iterator[Tuple[CycleResult, int]]:
        """Emit the pending idle stretch (if any) as one RLE pair."""
        nonlocal pending_count, idle_template
        if not pending_count:
            return
        start, count = pending_start, pending_count
        pending_count = 0
        if idle_template is None:
            idle_template = (
                _idle_cycle_result_faulty(n_procs, costs, overheads,
                                          faults)
                if faulty else
                _idle_cycle_result(n_procs, costs, overheads))
        if recorder is not None:
            record_idle_stretch(recorder, start, count, n_procs, costs,
                                overheads)
        yield (replace(idle_template, index=start), count)

    def one_cycle(cycle) -> Iterator[Tuple[CycleResult, int]]:
        """Simulate one cycle on whichever loop the config selects."""
        cycle_mapping = (mapping_factory(cycle) if mapping_factory
                         else mapping)
        if cycle_mapping.n_procs != n_procs:
            raise ValueError("mapping_factory produced a mapping for "
                             f"{cycle_mapping.n_procs} processors")
        search_costs = tracker.charge(cycle)
        if faulty:
            cycle_result = simulate_cycle_with_faults(
                cycle, n_procs, costs, overheads, cycle_mapping,
                faults, protocol, search_costs, recorder=recorder)
        elif recorder is not None:
            cycle_result = _simulate_cycle_recorded(
                cycle, n_procs, costs, overheads, cycle_mapping,
                search_costs, recorder)
        elif compress:
            cycle_result = _simulate_cycle_active(
                cycle, n_procs, costs, overheads, cycle_mapping,
                search_costs)
        else:
            cycle_result = _simulate_cycle(
                cycle, n_procs, costs, overheads, cycle_mapping,
                search_costs)
        yield (cycle_result, 1)

    for entry in trace:
        is_idle_run = isinstance(entry, IdleRun)
        if compress:
            # Fully-idle cycles (empty trace cycles or IdleRun markers)
            # join the pending stretch while contiguous; anything else
            # flushes it first.
            if is_idle_run:
                idle_start, idle_count = entry.start_index, entry.count
            elif not entry.activations:
                idle_start, idle_count = entry.index, 1
            else:
                idle_start = None
            if idle_start is not None and collapse_idle:
                end = idle_start + idle_count
                # Stretch boundaries at fault-affected indices (the
                # break set is tiny — explicit stalls and fail-stops —
                # so this never iterates the idle run itself).
                breaks = (sorted(b for b in fault_breaks
                                 if idle_start <= b < end)
                          if fault_breaks else [])
                pos = idle_start
                for b in breaks + [end]:
                    if pos < b:
                        if pending_count and \
                                pending_start + pending_count == pos:
                            pending_count += b - pos
                        else:
                            yield from flush()
                            pending_start, pending_count = pos, b - pos
                    if b < end:
                        yield from flush()
                        yield from one_cycle(CycleTrace(index=b))
                    pos = b + 1
                continue
            yield from flush()
        for cycle in entry.cycles() if is_idle_run else (entry,):
            yield from one_cycle(cycle)
    yield from flush()


def simulate_config(trace, config: RunConfig) -> SimResult:
    """Simulate *trace* under one :class:`~repro.mpc.config.RunConfig`.

    This is the engine entry point every executor backend and sweep
    shares; :func:`simulate` is a thin compatibility wrapper around it,
    and :func:`iter_cycle_results` is the streaming core it collects.

    Parameters
    ----------
    trace:
        The section to replay (validated traces only; see
        :func:`repro.trace.validate_trace`), or any streaming trace
        source (see :mod:`repro.trace.events`).
    config:
        The full machine configuration.  ``config.mapping`` defaults to
        the paper's round robin; ``config.mapping_factory`` overrides
        it with a fresh mapping per cycle (the paper's idealized greedy
        redistribution).  A ``None`` or null ``config.faults`` keeps
        the exact fault-free code path — results are bit-identical to a
        fault-free config; ``config.protocol`` defaults to
        :data:`~repro.mpc.faults.DEFAULT_PROTOCOL` when faults are
        active and is ignored otherwise.  ``config.recorder`` routes
        every cycle through the span-recording mirror of the event loop
        (:mod:`repro.mpc.timeline`) without changing any result bit.
        ``config.compress_rounds`` selects the active-set event loop
        and run-length encodes idle stretches — bit-identical numbers
        in O(active work) time; see the module docstring.

    Returns
    -------
    SimResult with one :class:`CycleResult` per cycle (run-length
    encoded when ``config.compress_rounds``; see
    :meth:`~repro.mpc.metrics.SimResult.expanded`).
    """
    result = SimResult(trace_name=trace.name, n_procs=config.n_procs)
    repeats: Optional[List[int]] = [] if config.compress_rounds else None
    for cycle_result, repeat in iter_cycle_results(trace, config):
        result.cycles.append(cycle_result)
        if repeats is not None:
            repeats.append(repeat)
    result.repeats = repeats
    return result


def simulate(trace: SectionTrace,
             n_procs: int,
             costs: CostModel = DEFAULT_COSTS,
             overheads: OverheadModel = ZERO_OVERHEADS,
             mapping: Optional[BucketMapping] = None,
             mapping_factory: Optional[MappingFactory] = None,
             faults: Optional["FaultModel"] = None,
             protocol: Optional["ProtocolModel"] = None,
             recorder: Optional["TimelineRecorder"] = None) -> SimResult:
    """Simulate *trace* on *n_procs* match processors.

    Compatibility wrapper over :func:`simulate_config`.  The short form
    — ``simulate(trace, n_procs, costs=..., overheads=...)`` — remains
    the supported convenience spelling.  The remaining keywords
    (*mapping*, *mapping_factory*, *faults*, *protocol*, *recorder*)
    are **deprecated** here: build a
    :class:`~repro.mpc.config.RunConfig` and call
    :func:`simulate_config` instead.  Passing any of them emits a
    ``DeprecationWarning`` (results are unchanged).
    """
    if (mapping is not None or mapping_factory is not None
            or faults is not None or protocol is not None
            or recorder is not None):
        warnings.warn(
            "passing mapping/mapping_factory/faults/protocol/recorder "
            "to simulate() is deprecated; build a RunConfig and call "
            "simulate_config(trace, config)",
            DeprecationWarning, stacklevel=2)
    return simulate_config(trace, RunConfig(
        n_procs=n_procs, costs=costs, overheads=overheads,
        mapping=mapping, mapping_factory=mapping_factory,
        faults=faults, protocol=protocol, recorder=recorder))


def _simulate_cycle(cycle: CycleTrace, n_procs: int, costs: CostModel,
                    overheads: OverheadModel,
                    mapping: BucketMapping,
                    search_costs: Optional[Dict[int, float]] = None
                    ) -> CycleResult:
    send_us = overheads.send_us
    recv_us = overheads.recv_us
    latency_us = overheads.latency_us
    left_us = costs.left_token_us
    right_us = costs.right_token_us + _TEST_MUTATE_RIGHT_TOKEN_US
    successor_us = costs.successor_us
    acts = cycle.activations
    get_extra = (search_costs or {}).get

    # Resolve every activation's destination processor once.  Both the
    # event loop and the message tally need it, and distinct bucket keys
    # are far fewer than activations, so the hash work is shared here.
    processor_for = mapping.processor_for
    key_proc: Dict[BucketKey, int] = {}
    dest_of: Dict[int, int] = {}
    for act in cycle.ordered():
        key = act.key
        proc = key_proc.get(key)
        if proc is None:
            proc = key_proc[key] = processor_for(key)
        dest_of[act.act_id] = proc

    # --- step 1: broadcast -------------------------------------------------
    control_busy = send_us
    match_start = send_us + latency_us + recv_us
    network_busy = latency_us if n_procs > 0 else 0.0
    n_messages = 1  # the broadcast packet

    # --- step 2: constant tests on every processor -------------------------
    ready = [match_start + costs.constant_tests_us] * n_procs
    busy = [recv_us + costs.constant_tests_us] * n_procs
    activations = [0] * n_procs
    left_activations = [0] * n_procs

    seq = 0
    #: heap of (arrival, seq, proc, via_message, activation); seq is
    #: unique, so tuple comparison never reaches the activation.
    queue: list = []
    heappush = heapq.heappush
    heappop = heapq.heappop
    #: completion times of instantiation deliveries at the control proc
    control_arrivals: List[float] = []
    control_ready = control_busy  # control is busy until broadcast sent

    def send_to_control(depart: float) -> None:
        nonlocal control_busy, control_ready, network_busy, n_messages
        n_messages += 1
        network_busy += latency_us
        arrive = depart + latency_us
        # Control handles instantiation receipts FIFO as they arrive.
        control_ready = max(control_ready, arrive) + recv_us
        control_busy += recv_us
        control_arrivals.append(control_ready)

    for root in cycle.roots():
        owner = dest_of[root.act_id]
        if root.kind == KIND_TERMINAL:
            # A single-CE instantiation: produced by the constant tests;
            # the bucket owner ships it to the control processor.
            depart = ready[owner] + send_us
            busy[owner] += send_us
            ready[owner] = depart
            send_to_control(depart)
            continue
        seq += 1
        heappush(queue, (ready[owner], seq, owner, False, root))

    # --- steps 3-4: event loop ---------------------------------------------
    while queue:
        arrival, _, p, via_message, act = heappop(queue)
        proc_ready = ready[p]
        start = proc_ready if proc_ready > arrival else arrival
        t = start
        if via_message:
            t += recv_us
        t += left_us if act.side == LEFT else right_us
        extra = get_extra(act.act_id)
        if extra is not None:
            t += extra
        activations[p] += 1
        if act.side == LEFT:
            left_activations[p] += 1

        for succ_id in act.successors:
            succ = acts[succ_id]
            t += successor_us
            if succ.kind == KIND_TERMINAL:
                t += send_us
                send_to_control(t)
                continue
            dest = dest_of[succ_id]
            seq += 1
            if dest == p:
                heappush(queue, (t, seq, p, False, succ))
            else:
                t += send_us
                heappush(queue, (t + latency_us, seq, dest, True, succ))

        busy[p] += t - start
        ready[p] = t

    # Tally inter-processor token messages by walking the causal links
    # against the mapping (equivalent to counting via_message pushes).
    token_messages = 0
    for act in cycle.ordered():
        parent_id = act.parent_id
        if act.kind == KIND_TERMINAL or parent_id is None:
            continue
        if acts[parent_id].kind == KIND_TERMINAL:
            continue
        if dest_of[parent_id] != dest_of[act.act_id]:
            token_messages += 1
    n_messages += token_messages
    network_busy += token_messages * latency_us

    makespan = max([match_start + costs.constant_tests_us]
                   + ready + control_arrivals)
    return CycleResult(index=cycle.index, makespan_us=makespan,
                       proc_busy_us=busy,
                       proc_activations=activations,
                       proc_left_activations=left_activations,
                       n_messages=n_messages,
                       network_busy_us=network_busy,
                       control_busy_us=control_busy)


def _idle_cycle_result(n_procs: int, costs: CostModel,
                       overheads: OverheadModel) -> CycleResult:
    """Closed-form result of one fully-idle cycle.

    An empty cycle still broadcasts the (empty) wme packet and runs the
    constant tests everywhere, so its cost is exactly the Section 3.2
    floor: makespan ``send + latency + recv + constant_tests``, every
    processor busy ``recv + constant_tests``, one message (the
    broadcast), ``latency`` of network transit and ``send`` of control
    time.  The expressions mirror :func:`_simulate_cycle` on an empty
    cycle operation for operation, so the template is bit-identical to
    simulating the cycle — that is what lets round compression replace
    a million executions of the dense loop with one of these plus a
    repeat count.
    """
    send_us = overheads.send_us
    recv_us = overheads.recv_us
    latency_us = overheads.latency_us
    match_start = send_us + latency_us + recv_us
    return CycleResult(
        index=0,
        makespan_us=match_start + costs.constant_tests_us,
        proc_busy_us=SparseProcArray(
            n_procs, recv_us + costs.constant_tests_us),
        proc_activations=SparseProcArray(n_procs, 0),
        proc_left_activations=SparseProcArray(n_procs, 0),
        n_messages=1,
        network_busy_us=latency_us if n_procs > 0 else 0.0,
        control_busy_us=send_us)


def _idle_cycle_result_faulty(n_procs: int, costs: CostModel,
                              overheads: OverheadModel,
                              faults) -> CycleResult:
    """Closed-form result of one fully-idle cycle under *faults*.

    An idle cycle carries no data messages (the broadcast is reliable
    by model), so loss, duplication and jitter draws can never reach it
    — the only fault state that can is a stall window.  Cycle-specific
    stalls and fail-stops are excluded from compression by the caller
    (their indices break the stretch), leaving every-cycle
    (``cycle=None``) windows, which by definition hit each idle cycle
    identically: one template serves the whole stretch.  Each
    expression mirrors :func:`repro.mpc.faults
    .simulate_cycle_with_faults` on an empty cycle operation for
    operation — same operands, same order — so the template is
    bit-identical to simulating the cycle.
    """
    base = _idle_cycle_result(n_procs, costs, overheads)
    windows: Dict[int, List[Tuple[float, float]]] = {}
    for stall in faults.stalls:
        if stall.cycle is not None:
            continue
        if not 0 <= stall.proc < n_procs:
            continue
        windows.setdefault(stall.proc, []).append(
            (stall.start_us, stall.end_us))
    if not windows:
        return base
    match_start = overheads.send_us + overheads.latency_us \
        + overheads.recv_us
    stall_us = 0.0
    makespan = base.makespan_us
    for p in sorted(windows):  # ascending: float-sum order matters
        intervals = windows[p]
        intervals.sort()
        t = match_start
        for start, end in intervals:
            if start <= t < end:
                t = end
        stall_us += t - match_start
        ready = t + costs.constant_tests_us
        if ready > makespan:
            makespan = ready
    return replace(base, makespan_us=makespan, stall_us=stall_us)


def _simulate_cycle_active(cycle: CycleTrace, n_procs: int,
                           costs: CostModel,
                           overheads: OverheadModel,
                           mapping: BucketMapping,
                           search_costs: Optional[Dict[int, float]] = None
                           ) -> CycleResult:
    """O(active work) mirror of :func:`_simulate_cycle`.

    Identical event processing, but per-processor state lives in dicts
    keyed by the processors the cycle actually touches; everyone else
    sits at the closed-form post-broadcast floor (``floor_ready`` /
    ``floor_busy``), supplied as dict-lookup defaults and as the
    :class:`~repro.mpc.metrics.SparseProcArray` defaults of the result.
    Because an untouched processor's dense-loop value *is* exactly the
    floor, and every operation on a touched processor uses the same
    operands in the same order as the dense loop, the result is
    bit-identical — at O(events) cost instead of O(P + events).
    """
    send_us = overheads.send_us
    recv_us = overheads.recv_us
    latency_us = overheads.latency_us
    left_us = costs.left_token_us
    right_us = costs.right_token_us + _TEST_MUTATE_RIGHT_TOKEN_US
    successor_us = costs.successor_us
    acts = cycle.activations
    get_extra = (search_costs or {}).get

    processor_for = mapping.processor_for
    key_proc: Dict[BucketKey, int] = {}
    dest_of: Dict[int, int] = {}
    for act in cycle.ordered():
        key = act.key
        proc = key_proc.get(key)
        if proc is None:
            proc = key_proc[key] = processor_for(key)
        dest_of[act.act_id] = proc

    # --- step 1: broadcast -------------------------------------------------
    control_busy = send_us
    match_start = send_us + latency_us + recv_us
    network_busy = latency_us if n_procs > 0 else 0.0
    n_messages = 1  # the broadcast packet

    # --- step 2: constant tests — the floor every processor starts at ------
    floor_ready = match_start + costs.constant_tests_us
    floor_busy = recv_us + costs.constant_tests_us
    ready: Dict[int, float] = {}
    busy: Dict[int, float] = {}
    activations: Dict[int, int] = {}
    left_activations: Dict[int, int] = {}
    ready_get = ready.get
    busy_get = busy.get
    activations_get = activations.get
    left_get = left_activations.get

    seq = 0
    queue: list = []
    heappush = heapq.heappush
    heappop = heapq.heappop
    control_arrivals: List[float] = []
    control_ready = control_busy  # control is busy until broadcast sent

    def send_to_control(depart: float) -> None:
        nonlocal control_busy, control_ready, network_busy, n_messages
        n_messages += 1
        network_busy += latency_us
        arrive = depart + latency_us
        control_ready = max(control_ready, arrive) + recv_us
        control_busy += recv_us
        control_arrivals.append(control_ready)

    for root in cycle.roots():
        owner = dest_of[root.act_id]
        if root.kind == KIND_TERMINAL:
            depart = ready_get(owner, floor_ready) + send_us
            busy[owner] = busy_get(owner, floor_busy) + send_us
            ready[owner] = depart
            send_to_control(depart)
            continue
        seq += 1
        heappush(queue, (ready_get(owner, floor_ready), seq, owner,
                         False, root))

    # --- steps 3-4: event loop ---------------------------------------------
    while queue:
        arrival, _, p, via_message, act = heappop(queue)
        proc_ready = ready_get(p, floor_ready)
        start = proc_ready if proc_ready > arrival else arrival
        t = start
        if via_message:
            t += recv_us
        t += left_us if act.side == LEFT else right_us
        extra = get_extra(act.act_id)
        if extra is not None:
            t += extra
        activations[p] = activations_get(p, 0) + 1
        if act.side == LEFT:
            left_activations[p] = left_get(p, 0) + 1

        for succ_id in act.successors:
            succ = acts[succ_id]
            t += successor_us
            if succ.kind == KIND_TERMINAL:
                t += send_us
                send_to_control(t)
                continue
            dest = dest_of[succ_id]
            seq += 1
            if dest == p:
                heappush(queue, (t, seq, p, False, succ))
            else:
                t += send_us
                heappush(queue, (t + latency_us, seq, dest, True, succ))

        busy[p] = busy_get(p, floor_busy) + (t - start)
        ready[p] = t

    token_messages = 0
    for act in cycle.ordered():
        parent_id = act.parent_id
        if act.kind == KIND_TERMINAL or parent_id is None:
            continue
        if acts[parent_id].kind == KIND_TERMINAL:
            continue
        if dest_of[parent_id] != dest_of[act.act_id]:
            token_messages += 1
    n_messages += token_messages
    network_busy += token_messages * latency_us

    # Untouched processors all sit exactly at floor_ready, so including
    # the floor once makes this max bit-identical to the dense one.
    makespan = max([floor_ready] + list(ready.values())
                   + control_arrivals)
    return CycleResult(index=cycle.index, makespan_us=makespan,
                       proc_busy_us=SparseProcArray(
                           n_procs, floor_busy, busy),
                       proc_activations=SparseProcArray(
                           n_procs, 0, activations),
                       proc_left_activations=SparseProcArray(
                           n_procs, 0, left_activations),
                       n_messages=n_messages,
                       network_busy_us=network_busy,
                       control_busy_us=control_busy)


def simulate_base(trace: SectionTrace,
                  costs: CostModel = DEFAULT_COSTS) -> SimResult:
    """The paper's base case: one match processor, zero overheads."""
    return simulate_config(trace, RunConfig(n_procs=1, costs=costs,
                                            overheads=ZERO_OVERHEADS))

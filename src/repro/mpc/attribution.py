"""Idle-time attribution: decompose *why* processors wait (Section 5).

The paper explains saturating speedups with a handful of limiters:
cycles too small to amortize the serial broadcast + constant-test
floor, long dependent chains that starve successor generation, dominant
hash buckets that unbalance the load, and per-message handling
overhead.  This module turns a recorded :class:`~repro.mpc.timeline
.Timeline` into exactly that decomposition: every idle microsecond of
every processor in every cycle is assigned to one category, and the
categories sum — exactly, with the paper's 0.5 µs-granular cost models
— to the measured idle time (``n_procs * makespan - sum(proc_busy)``).

Categories
----------
``broadcast_floor``
    Waiting for the cycle's wme packet: the serial broadcast the paper's
    Section 5.2.1 "small cycles" analysis charges against every cycle.
``chain_wait``
    Mid-cycle waiting for a predecessor activation elsewhere to finish —
    the long-dependent-chain limiter.
``comm_overhead``
    The slice of a mid-cycle wait equal to the delivery delay (send
    overhead + latency + jitter) of the message that ended it: time the
    data existed but was in the message machinery.
``imbalance``
    Done early while another processor still works — the dominant-bucket
    / load-imbalance limiter (tail of the cycle).
``protocol``
    Stall and recovery windows, and retransmit-timeout waiting, from the
    fault/protocol layer (zero on the paper's perfect network).

Each cycle also reports its **busy composition** (time per span
category) — small cycles show up as a large ``constant_tests`` share of
busy time, message-handling overhead as large ``send``/``recv``
shares — and its **critical path**: the chain of activations, walked
by parent links from the last-finishing activation, that determined
the cycle's makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .timeline import (CycleTimeline, Envelope, Timeline)

#: The idle-time categories, in report order.
IDLE_CATEGORIES = ("broadcast_floor", "chain_wait", "comm_overhead",
                   "imbalance", "protocol")

_CATEGORY_LABELS = {
    "broadcast_floor": "broadcast + constant-test floor wait",
    "chain_wait": "long-chain wait (predecessor elsewhere)",
    "comm_overhead": "message delivery (send+latency) wait",
    "imbalance": "bucket imbalance (done early)",
    "protocol": "protocol/fault (stall, recovery, timeouts)",
}


@dataclass(slots=True)
class CycleAttribution:
    """One cycle's idle decomposition, busy composition, critical path.

    For a compressed idle stretch (``repeat`` > 1, from a
    round-compressed run's timeline) the time quantities — ``idle_us``,
    ``busy_us``, the category maps and ``per_proc_idle_us`` — cover the
    *whole stretch*, scaled exactly from the template cycle;
    ``makespan_us`` stays per-cycle.  :meth:`check_sums` holds
    bit-exactly either way (0.5 µs-granular costs make the scaling
    distribute exactly over the category sums).
    """

    index: int
    makespan_us: float
    n_procs: int
    idle_us: float
    idle_by_category: Dict[str, float]
    busy_us: float
    busy_by_category: Dict[str, float]
    per_proc_idle_us: List[float]
    critical_path: List[Envelope]
    #: How many consecutive identical cycles this entry covers.
    repeat: int = 1

    def check_sums(self, *, exact: bool = True,
                   rel_tol: float = 1e-9) -> None:
        """Assert the categories partition the measured idle time."""
        total = sum(self.idle_by_category.values())
        if exact:
            ok = total == self.idle_us
        else:
            ok = abs(total - self.idle_us) <= \
                rel_tol * max(1.0, self.idle_us)
        if not ok:
            raise ValueError(
                f"cycle {self.index}: categories sum to {total!r}, "
                f"measured idle is {self.idle_us!r}")


@dataclass(slots=True)
class SectionAttribution:
    """Whole-section aggregation of per-cycle attributions."""

    trace_name: str
    n_procs: int
    cycles: List[CycleAttribution] = field(default_factory=list)

    @property
    def n_cycles(self) -> int:
        """Number of simulated cycles (compressed runs counted in full)."""
        return sum(c.repeat for c in self.cycles)

    @property
    def idle_us(self) -> float:
        return sum(c.idle_us for c in self.cycles)

    @property
    def busy_us(self) -> float:
        return sum(c.busy_us for c in self.cycles)

    def idle_by_category(self) -> Dict[str, float]:
        totals = {category: 0.0 for category in IDLE_CATEGORIES}
        for cycle in self.cycles:
            for category, value in cycle.idle_by_category.items():
                totals[category] += value
        return totals

    def busy_by_category(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for cycle in self.cycles:
            for category, value in cycle.busy_by_category.items():
                totals[category] = totals.get(category, 0.0) + value
        return totals

    def idle_shares(self) -> Dict[str, float]:
        """Category -> fraction of total idle time (sums to 1)."""
        idle = self.idle_us
        if idle <= 0:
            return {category: 0.0 for category in IDLE_CATEGORIES}
        return {category: value / idle
                for category, value in self.idle_by_category().items()}

    def dominant_category(self) -> str:
        shares = self.idle_shares()
        return max(IDLE_CATEGORIES, key=lambda c: shares[c])

    def average_idle_fraction(self) -> float:
        capacity = self.idle_us + self.busy_us
        return self.idle_us / capacity if capacity > 0 else 0.0

    def longest_cycle(self) -> CycleAttribution:
        if not self.cycles:
            raise ValueError("empty attribution")
        return max(self.cycles, key=lambda c: c.makespan_us)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (the ``profile --format json`` payload)."""
        longest = self.longest_cycle() if self.cycles else None
        return {
            "trace": self.trace_name,
            "n_procs": self.n_procs,
            "n_cycles": self.n_cycles,
            "idle_us": self.idle_us,
            "busy_us": self.busy_us,
            "average_idle_fraction": self.average_idle_fraction(),
            "idle_by_category_us": self.idle_by_category(),
            "idle_shares": self.idle_shares(),
            "busy_by_category_us": self.busy_by_category(),
            "longest_cycle": None if longest is None else {
                "index": longest.index,
                "makespan_us": longest.makespan_us,
                "critical_path": [
                    {"act_id": e.act_id, "proc": e.proc,
                     "start_us": e.start_us, "end_us": e.end_us,
                     "via_message": e.via_message}
                    for e in longest.critical_path],
            },
        }


def _merge_busy_intervals(
        intervals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Coalesce sorted, possibly touching/overlapping busy intervals."""
    merged: List[Tuple[float, float]] = []
    for start, end in intervals:
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    return merged


def _overlap(a0: float, a1: float,
             windows: List[Tuple[float, float]]) -> float:
    """Total overlap of [a0, a1) with a list of intervals."""
    total = 0.0
    for w0, w1 in windows:
        lo = a0 if a0 > w0 else w0
        hi = a1 if a1 < w1 else w1
        if hi > lo:
            total += hi - lo
    return total


def attribute_cycle(cycle: CycleTimeline) -> CycleAttribution:
    """Decompose one cycle's idle time into the limiter categories."""
    makespan = cycle.makespan_us
    idle_by_category = {category: 0.0 for category in IDLE_CATEGORIES}
    busy_by_category: Dict[str, float] = {}
    per_proc_idle: List[float] = []

    # Per-processor structures: busy intervals, stall windows, and the
    # envelope starting at each instant (to classify the wait before it).
    busy_spans: List[List[Tuple[float, float]]] = \
        [[] for _ in range(cycle.n_procs)]
    stall_spans: List[List[Tuple[float, float]]] = \
        [[] for _ in range(cycle.n_procs)]
    for span in cycle.spans:
        if span.proc >= 0:
            if span.is_busy:
                busy_spans[span.proc].append((span.start_us, span.end_us))
                busy_by_category[span.category] = \
                    busy_by_category.get(span.category, 0.0) \
                    + (span.end_us - span.start_us)
            else:
                stall_spans[span.proc].append((span.start_us,
                                               span.end_us))
    env_at: List[Dict[float, Envelope]] = \
        [{} for _ in range(cycle.n_procs)]
    for envelope in cycle.envelopes:
        env_at[envelope.proc][envelope.start_us] = envelope

    for p in range(cycle.n_procs):
        intervals = _merge_busy_intervals(sorted(busy_spans[p]))
        stalls = stall_spans[p]
        proc_idle = 0.0

        def classify(gap_start: float, gap_end: float,
                     tail: bool) -> None:
            nonlocal proc_idle
            remaining = gap_end - gap_start
            if remaining <= 0:
                return
            proc_idle += remaining
            # 1. Protocol: explicit stall/recovery windows in the gap.
            stalled = _overlap(gap_start, gap_end, stalls)
            if stalled > 0:
                stalled = min(stalled, remaining)
                idle_by_category["protocol"] += stalled
                remaining -= stalled
                if remaining <= 0:
                    return
            if tail:
                idle_by_category["imbalance"] += remaining
                return
            if gap_start == 0.0:
                # Before the first busy instant: broadcast in flight.
                idle_by_category["broadcast_floor"] += remaining
                return
            envelope = env_at[p].get(gap_end)
            if envelope is not None and envelope.via_message:
                # 2. Protocol: retransmit-timeout share of the delivery.
                wait = min(remaining, envelope.wait_protocol_us)
                if wait > 0:
                    idle_by_category["protocol"] += wait
                    remaining -= wait
                # 3. Pure communication share of the delivery.
                comm = min(remaining, envelope.wait_comm_us)
                if comm > 0:
                    idle_by_category["comm_overhead"] += comm
                    remaining -= comm
            # 4. Whatever is left: waiting on upstream computation.
            if remaining > 0:
                idle_by_category["chain_wait"] += remaining

        cursor = 0.0
        for start, end in intervals:
            classify(cursor, start, tail=False)
            cursor = end
        classify(cursor, makespan, tail=True)
        per_proc_idle.append(proc_idle)

    busy_total = sum(end - start
                     for spans in busy_spans
                     for start, end in spans)
    repeat = cycle.repeat
    if repeat != 1:
        # Scale the stretch's template to the whole run.  Every value
        # is a multiple of 0.5 µs, so the products are exact and the
        # partition invariant (check_sums) survives bit-for-bit.
        idle_by_category = {category: value * repeat
                            for category, value in
                            idle_by_category.items()}
        busy_by_category = {category: value * repeat
                            for category, value in
                            busy_by_category.items()}
        per_proc_idle = [value * repeat for value in per_proc_idle]
        busy_total = busy_total * repeat
    return CycleAttribution(
        index=cycle.index, makespan_us=makespan, n_procs=cycle.n_procs,
        idle_us=sum(per_proc_idle),
        idle_by_category=idle_by_category,
        busy_us=busy_total,
        busy_by_category=busy_by_category,
        per_proc_idle_us=per_proc_idle,
        critical_path=critical_path(cycle),
        repeat=repeat)


def critical_path(cycle: CycleTimeline) -> List[Envelope]:
    """The parent chain ending at the last-finishing activation.

    Walks ``parent_id`` links backwards from the envelope with the
    latest end time; the result is in causal (root-first) order.  This
    is the data-dependence spine of the cycle — the sequence whose
    serial length bounds how fast any number of processors could have
    finished it.
    """
    if not cycle.envelopes:
        return []
    by_act: Dict[int, Envelope] = \
        {e.act_id: e for e in cycle.envelopes}
    last = max(cycle.envelopes, key=lambda e: (e.end_us, e.act_id))
    chain: List[Envelope] = []
    cursor: Optional[Envelope] = last
    while cursor is not None:
        chain.append(cursor)
        parent = cursor.parent_id
        cursor = by_act.get(parent) if parent is not None else None
    chain.reverse()
    return chain


def attribute_timeline(timeline: Timeline) -> SectionAttribution:
    """Attribution of every cycle of a recorded timeline."""
    section = SectionAttribution(trace_name=timeline.trace_name,
                                 n_procs=timeline.n_procs)
    for cycle in timeline.cycles:
        section.cycles.append(attribute_cycle(cycle))
    return section


# ---------------------------------------------------------------------------
# Report formatting
# ---------------------------------------------------------------------------

def format_attribution(section: SectionAttribution,
                       title: str = "") -> str:
    """ASCII attribution report: idle table, busy mix, critical path."""
    lines: List[str] = []
    if title:
        lines.append(title)
    idle = section.idle_us
    shares = section.idle_shares()
    by_category = section.idle_by_category()
    lines.append(
        f"idle time: {idle / 1000:.2f} ms across "
        f"{section.n_procs} procs x {section.n_cycles} cycles "
        f"({section.average_idle_fraction():.1%} of capacity)")
    width = max(len(label) for label in _CATEGORY_LABELS.values())
    for category in IDLE_CATEGORIES:
        label = _CATEGORY_LABELS[category].ljust(width)
        bar = "#" * int(round(30 * shares[category]))
        lines.append(f"  {label}  {by_category[category] / 1000:>9.2f} ms"
                     f"  {shares[category]:>6.1%}  {bar}")
    busy = section.busy_by_category()
    busy_total = sum(busy.values())
    if busy_total > 0:
        mix = ", ".join(
            f"{category} {value / busy_total:.0%}"
            for category, value in sorted(busy.items(),
                                          key=lambda kv: -kv[1]))
        lines.append(f"busy mix: {mix}")
    if section.cycles:
        longest = section.longest_cycle()
        path = longest.critical_path
        lines.append(
            f"critical path (cycle {longest.index}, the longest at "
            f"{longest.makespan_us / 1000:.2f} ms): "
            f"{len(path)} activation(s)")
        if path:
            hops = " -> ".join(
                f"act {e.act_id}@p{e.proc}"
                + ("*" if e.via_message else "")
                for e in path[:8])
            if len(path) > 8:
                hops += f" -> ... ({len(path) - 8} more)"
            lines.append(f"  {hops}   (* = arrived by message)")
    return "\n".join(lines)

"""Cost and overhead models (paper Section 4 and Table 5-1).

The node-activation costs come from profile data of the authors' earlier
shared-memory implementations; the communication parameters are the
Nectar group's figures.  All times are microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class CostModel:
    """Per-activation processing costs (paper Section 4).

    Attributes
    ----------
    constant_tests_us:
        Time for one processor to evaluate *all* constant-test nodes for
        a cycle's wme packet (the tests are assumed hashed — a ×5 win
        over naive evaluation, per Gupta).
    left_token_us / right_token_us:
        Adding or deleting one left / right token in its hash bucket.
    successor_us:
        Comparing against the opposite bucket, per new token generated.
    """

    constant_tests_us: float = 30.0
    left_token_us: float = 32.0
    right_token_us: float = 16.0
    successor_us: float = 16.0
    #: Extra cost per entry already in the bucket when *deleting* a
    #: token.  The paper's simulator assumes constant-time bucket
    #: operations and footnote 6 flags the consequence: Tourney's
    #: speedups are "somewhat overestimated" because deletion from its
    #: overloaded buckets really requires a search.  Setting this to a
    #: nonzero per-entry scan cost (e.g. 1-2 us) prices that search;
    #: the default 0.0 reproduces the paper's assumption.
    delete_search_us: float = 0.0

    def store_cost(self, side: str) -> float:
        """Cost of the add/delete for a token arriving on *side*."""
        if side == "left":
            return self.left_token_us
        if side == "right":
            return self.right_token_us
        raise ValueError(f"unknown side {side!r}")

    def scaled(self, left_right_ratio: float) -> "CostModel":
        """Variant with a different left:right cost ratio, same right cost.

        The paper reports experimenting with this ratio and seeing only a
        5-10% effect; :mod:`benchmarks` includes an ablation that checks
        the same insensitivity in our simulator.
        """
        return CostModel(
            constant_tests_us=self.constant_tests_us,
            left_token_us=self.right_token_us * left_right_ratio,
            right_token_us=self.right_token_us,
            successor_us=self.successor_us,
            delete_search_us=self.delete_search_us)


@dataclass(frozen=True)
class OverheadModel:
    """Message-passing overheads (Table 5-1) and network latency.

    ``send_us`` is paid by the sending processor per message, ``recv_us``
    by the receiver, and ``latency_us`` is pure network transit time —
    0.5 µs, the Nectar group's figure, in every run of the paper.
    """

    send_us: float = 0.0
    recv_us: float = 0.0
    latency_us: float = 0.5

    @property
    def total_us(self) -> float:
        """The per-message processing overhead (the Table 5-1 'Total')."""
        return self.send_us + self.recv_us

    def label(self) -> str:
        return f"{self.total_us:g}us"


#: The zero-overhead, zero-latency setting used for Figure 5-1 and for
#: the base case of every speedup in the paper.
ZERO_OVERHEADS = OverheadModel(send_us=0.0, recv_us=0.0, latency_us=0.0)

#: The four Table 5-1 rows (Runs 1-4), all with the 0.5 µs Nectar latency.
TABLE_5_1: Tuple[OverheadModel, ...] = (
    OverheadModel(send_us=0.0, recv_us=0.0),
    OverheadModel(send_us=5.0, recv_us=3.0),
    OverheadModel(send_us=10.0, recv_us=6.0),
    OverheadModel(send_us=20.0, recv_us=12.0),
)


def table_5_1_rows() -> List[Tuple[str, float, float, float]]:
    """The printable Table 5-1: (run, send, receive, total)."""
    return [(f"Run {i + 1}", m.send_us, m.recv_us, m.total_us)
            for i, m in enumerate(TABLE_5_1)]


#: Default cost model instance (the paper's numbers).
DEFAULT_COSTS = CostModel()

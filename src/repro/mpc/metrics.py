"""Simulation results and derived metrics.

A :class:`SimResult` holds one :class:`CycleResult` per MRA cycle; the
speedup, idle-time and network-utilization numbers the paper reports are
all derived here.

Two representation tricks keep results memory-bounded at thousands of
processors and millions of cycles (ROADMAP item 3):

* :class:`SparseProcArray` — a per-processor array stored as (length,
  default, overrides).  The active-set event loop touches only the
  processors that did any cycle-specific work, so a 4096-processor
  cycle result costs O(touched) memory instead of O(P).  It compares
  equal to the plain list the dense loop produces.
* Run-length encoding on :class:`SimResult` — with round compression a
  stretch of *k* identical fully-idle cycles is stored once with a
  repeat count in :attr:`SimResult.repeats`.  All aggregates account
  for the repeats; :meth:`SimResult.expanded` materializes the
  per-cycle view for bitwise comparison against the exact loop.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence


class SparseProcArray:
    """A length-``n`` per-processor sequence with few non-default slots.

    Behaves like the list the dense event loop builds — ``len``,
    indexing, iteration and (symmetric) equality against any sequence —
    while storing only the overridden slots.  Instances are treated as
    immutable by convention: the simulator shares one default-only
    instance across every cycle of a compressed idle stretch.
    """

    __slots__ = ("length", "default", "overrides")

    def __init__(self, length: int, default,
                 overrides: Optional[Dict[int, object]] = None) -> None:
        self.length = length
        self.default = default
        self.overrides = dict(overrides) if overrides else {}

    def __len__(self) -> int:
        return self.length

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self)[index]
        i = index + self.length if index < 0 else index
        if not 0 <= i < self.length:
            raise IndexError(index)
        return self.overrides.get(i, self.default)

    def __iter__(self) -> Iterator:
        get = self.overrides.get
        default = self.default
        return (get(i, default) for i in range(self.length))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SparseProcArray):
            if self.length != other.length:
                return False
            if self.default == other.default:
                a = {i: v for i, v in self.overrides.items()
                     if v != self.default}
                b = {i: v for i, v in other.overrides.items()
                     if v != other.default}
                return a == b
            return all(x == y for x, y in zip(self, other))
        if isinstance(other, (list, tuple)):
            return self.length == len(other) \
                and all(x == y for x, y in zip(self, other))
        return NotImplemented

    def __repr__(self) -> str:
        return (f"SparseProcArray({self.length}, {self.default!r}, "
                f"{self.overrides!r})")

    def to_list(self) -> List:
        return list(self)

    def fast_sum(self):
        """Sum without iterating the default slots (aggregate helper)."""
        return self.default * (self.length - len(self.overrides)) \
            + sum(self.overrides.values())


def _proc_sum(values) -> float:
    """Sum of a per-processor array, sparse-aware.

    Uses :meth:`SparseProcArray.fast_sum` when available — O(touched)
    instead of O(P).  Note the summation order differs from ``sum(list)``
    there; with the paper's 0.5 µs-granular cost models both are exact.
    """
    fast = getattr(values, "fast_sum", None)
    return fast() if fast is not None else sum(values)


@dataclass
class CycleResult:
    """Timing of one simulated MRA cycle.

    All times in microseconds, measured from the start of the cycle's
    broadcast.  ``proc_*`` lists are indexed by match-processor number.
    """

    index: int
    makespan_us: float
    proc_busy_us: List[float]
    proc_activations: List[int]
    proc_left_activations: List[int]
    n_messages: int
    network_busy_us: float
    control_busy_us: float
    #: Reliable-delivery protocol counters (:mod:`repro.mpc.faults`).
    #: All zero on the fault-free path, which keeps fault-free results
    #: (and their equality comparisons) identical to before the fault
    #: subsystem existed.
    retransmits: int = 0
    duplicate_drops: int = 0
    acks: int = 0
    timeout_wait_us: float = 0.0
    stall_us: float = 0.0
    recovery_us: float = 0.0

    @property
    def n_procs(self) -> int:
        return len(self.proc_busy_us)

    def idle_fractions(self) -> List[float]:
        """Per-processor idle fraction over the cycle."""
        if self.makespan_us <= 0:
            return [0.0] * self.n_procs
        return [max(0.0, 1.0 - busy / self.makespan_us)
                for busy in self.proc_busy_us]


@dataclass
class SimResult:
    """A full section simulation: one entry per cycle, plus config echo.

    With round compression (``RunConfig(compress_rounds=True)``) the
    ``cycles`` list is run-length encoded: ``repeats[i]`` says how many
    consecutive identical cycles ``cycles[i]`` stands for.  ``repeats``
    is ``None`` on the exact path, which keeps legacy equality
    comparisons between uncompressed results unchanged.
    """

    trace_name: str
    n_procs: int
    cycles: List[CycleResult] = field(default_factory=list)
    #: Run-length counts parallel to ``cycles`` (``None`` = one each).
    repeats: Optional[List[int]] = None

    def _counted(self) -> Iterator:
        """(cycle, repeat) pairs, RLE-aware."""
        if self.repeats is None:
            return ((c, 1) for c in self.cycles)
        return zip(self.cycles, self.repeats)

    @property
    def n_cycles(self) -> int:
        """Number of simulated cycles (RLE runs counted in full)."""
        if self.repeats is None:
            return len(self.cycles)
        return sum(self.repeats)

    def cycle_at(self, pos: int) -> CycleResult:
        """The cycle result at expanded position *pos* (RLE-aware)."""
        if self.repeats is None:
            return self.cycles[pos]
        if pos < 0:
            pos += self.n_cycles
        for cycle, repeat in zip(self.cycles, self.repeats):
            if pos < repeat:
                return cycle
            pos -= repeat
        raise IndexError(pos)

    def expand_cycles(self) -> Iterator[CycleResult]:
        """Per-cycle results with RLE runs unrolled and indices fixed."""
        if self.repeats is None:
            yield from self.cycles
            return
        for cycle, repeat in zip(self.cycles, self.repeats):
            if repeat == 1:
                yield cycle
            else:
                for j in range(repeat):
                    yield dataclasses.replace(cycle,
                                              index=cycle.index + j)

    def expanded(self) -> "SimResult":
        """An uncompressed (``repeats=None``) view of this result."""
        if self.repeats is None:
            return self
        return SimResult(trace_name=self.trace_name, n_procs=self.n_procs,
                         cycles=list(self.expand_cycles()))

    @property
    def total_us(self) -> float:
        """End-to-end match time: cycles are serialized by the control
        processor's barrier, so the section time is the sum.

        Exact under RLE too: every makespan is a multiple of 0.5 µs
        under the paper's cost models, so ``makespan * k`` equals the
        k-fold sum bit for bit.
        """
        if self.repeats is None:
            return sum(c.makespan_us for c in self.cycles)
        return sum(c.makespan_us * r for c, r in self._counted())

    @property
    def n_messages(self) -> int:
        return sum(c.n_messages * r for c, r in self._counted())

    # -- fault/protocol aggregates (zero on the fault-free path) ------------

    @property
    def retransmits(self) -> int:
        return sum(c.retransmits * r for c, r in self._counted())

    @property
    def duplicate_drops(self) -> int:
        return sum(c.duplicate_drops * r for c, r in self._counted())

    @property
    def acks(self) -> int:
        return sum(c.acks * r for c, r in self._counted())

    @property
    def timeout_wait_us(self) -> float:
        return sum(c.timeout_wait_us * r for c, r in self._counted())

    @property
    def stall_us(self) -> float:
        return sum(c.stall_us * r for c, r in self._counted())

    @property
    def recovery_us(self) -> float:
        return sum(c.recovery_us * r for c, r in self._counted())

    def fault_summary(self) -> str:
        """One line of protocol-layer accounting for reports."""
        return (f"{self.retransmits} retransmits, "
                f"{self.duplicate_drops} duplicate drops, "
                f"{self.acks} acks, "
                f"{self.timeout_wait_us / 1000:.2f} ms timeout wait, "
                f"{(self.stall_us + self.recovery_us) / 1000:.2f} ms "
                f"stalled/recovering")

    def average_idle_fraction(self) -> float:
        """Mean idle fraction across processors and cycles, time-weighted."""
        busy = sum(_proc_sum(c.proc_busy_us) * r
                   for c, r in self._counted())
        capacity = self.n_procs * self.total_us
        if capacity <= 0:
            return 0.0
        return max(0.0, 1.0 - busy / capacity)

    def network_utilization(self) -> float:
        """Fraction of time the interconnect is carrying a message.

        Modelled as a single shared medium: total transit time over
        total time.  This is the *most pessimistic* accounting (a
        link-level model would show even more idleness), so the paper's
        "97-98% idle" claim is tested against its hardest version.
        """
        if self.total_us <= 0:
            return 0.0
        transit = sum(c.network_busy_us * r for c, r in self._counted())
        return min(1.0, transit / self.total_us)

    def network_idle_fraction(self) -> float:
        return 1.0 - self.network_utilization()

    def left_token_distribution(self, cycle_pos: int) -> List[int]:
        """Left activations per processor in one cycle (Figure 5-5)."""
        return list(self.cycle_at(cycle_pos).proc_left_activations)


def speedup(base: SimResult, result: SimResult) -> float:
    """Paper-style speedup: T(1 processor, zero overheads) / T(run)."""
    if result.total_us <= 0:
        raise ValueError("degenerate run with zero total time")
    return base.total_us / result.total_us


def speedup_series(base: SimResult,
                   results: Sequence[SimResult]) -> List[float]:
    """Speedups of several runs against one base."""
    return [speedup(base, r) for r in results]

"""Simulation results and derived metrics.

A :class:`SimResult` holds one :class:`CycleResult` per MRA cycle; the
speedup, idle-time and network-utilization numbers the paper reports are
all derived here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class CycleResult:
    """Timing of one simulated MRA cycle.

    All times in microseconds, measured from the start of the cycle's
    broadcast.  ``proc_*`` lists are indexed by match-processor number.
    """

    index: int
    makespan_us: float
    proc_busy_us: List[float]
    proc_activations: List[int]
    proc_left_activations: List[int]
    n_messages: int
    network_busy_us: float
    control_busy_us: float
    #: Reliable-delivery protocol counters (:mod:`repro.mpc.faults`).
    #: All zero on the fault-free path, which keeps fault-free results
    #: (and their equality comparisons) identical to before the fault
    #: subsystem existed.
    retransmits: int = 0
    duplicate_drops: int = 0
    acks: int = 0
    timeout_wait_us: float = 0.0
    stall_us: float = 0.0
    recovery_us: float = 0.0

    @property
    def n_procs(self) -> int:
        return len(self.proc_busy_us)

    def idle_fractions(self) -> List[float]:
        """Per-processor idle fraction over the cycle."""
        if self.makespan_us <= 0:
            return [0.0] * self.n_procs
        return [max(0.0, 1.0 - busy / self.makespan_us)
                for busy in self.proc_busy_us]


@dataclass
class SimResult:
    """A full section simulation: one entry per cycle, plus config echo."""

    trace_name: str
    n_procs: int
    cycles: List[CycleResult] = field(default_factory=list)

    @property
    def total_us(self) -> float:
        """End-to-end match time: cycles are serialized by the control
        processor's barrier, so the section time is the sum."""
        return sum(c.makespan_us for c in self.cycles)

    @property
    def n_messages(self) -> int:
        return sum(c.n_messages for c in self.cycles)

    # -- fault/protocol aggregates (zero on the fault-free path) ------------

    @property
    def retransmits(self) -> int:
        return sum(c.retransmits for c in self.cycles)

    @property
    def duplicate_drops(self) -> int:
        return sum(c.duplicate_drops for c in self.cycles)

    @property
    def acks(self) -> int:
        return sum(c.acks for c in self.cycles)

    @property
    def timeout_wait_us(self) -> float:
        return sum(c.timeout_wait_us for c in self.cycles)

    @property
    def stall_us(self) -> float:
        return sum(c.stall_us for c in self.cycles)

    @property
    def recovery_us(self) -> float:
        return sum(c.recovery_us for c in self.cycles)

    def fault_summary(self) -> str:
        """One line of protocol-layer accounting for reports."""
        return (f"{self.retransmits} retransmits, "
                f"{self.duplicate_drops} duplicate drops, "
                f"{self.acks} acks, "
                f"{self.timeout_wait_us / 1000:.2f} ms timeout wait, "
                f"{(self.stall_us + self.recovery_us) / 1000:.2f} ms "
                f"stalled/recovering")

    def average_idle_fraction(self) -> float:
        """Mean idle fraction across processors and cycles, time-weighted."""
        busy = sum(sum(c.proc_busy_us) for c in self.cycles)
        capacity = self.n_procs * self.total_us
        if capacity <= 0:
            return 0.0
        return max(0.0, 1.0 - busy / capacity)

    def network_utilization(self) -> float:
        """Fraction of time the interconnect is carrying a message.

        Modelled as a single shared medium: total transit time over
        total time.  This is the *most pessimistic* accounting (a
        link-level model would show even more idleness), so the paper's
        "97-98% idle" claim is tested against its hardest version.
        """
        if self.total_us <= 0:
            return 0.0
        transit = sum(c.network_busy_us for c in self.cycles)
        return min(1.0, transit / self.total_us)

    def network_idle_fraction(self) -> float:
        return 1.0 - self.network_utilization()

    def left_token_distribution(self, cycle_pos: int) -> List[int]:
        """Left activations per processor in one cycle (Figure 5-5)."""
        return list(self.cycles[cycle_pos].proc_left_activations)


def speedup(base: SimResult, result: SimResult) -> float:
    """Paper-style speedup: T(1 processor, zero overheads) / T(run)."""
    if result.total_us <= 0:
        raise ValueError("degenerate run with zero total time")
    return base.total_us / result.total_us


def speedup_series(base: SimResult,
                   results: Sequence[SimResult]) -> List[float]:
    """Speedups of several runs against one base."""
    return [speedup(base, r) for r in results]

"""Discrete-event simulation of production-system match on a
message-passing computer (paper Sections 3.2, 4 and 5).

Typical use::

    from repro.mpc import simulate, simulate_base, speedup
    from repro.mpc import OverheadModel, RoundRobinMapping

    base = simulate_base(trace)
    run = simulate(trace, n_procs=16,
                   overheads=OverheadModel(send_us=5, recv_us=3))
    print(speedup(base, run))
"""

from .config import (OVERHEADS, MappingFactory, RunConfig,
                     SupervisePolicy)
from .continuum import simulate_master_copy, simulate_replicated
from .dedicated import simulate_dedicated_alpha
from .costmodel import (DEFAULT_COSTS, TABLE_5_1, ZERO_OVERHEADS, CostModel,
                        OverheadModel, table_5_1_rows)
from .faults import (DEFAULT_PROTOCOL, DeliveryPlan, FailStop, FaultModel,
                     ProtocolModel, StallWindow, plan_delivery)
from .mapping import (DEFAULT_N_BUCKETS, BucketMapping, ExplicitMapping,
                      RandomMapping, RoundRobinMapping, greedy_assignment,
                      greedy_mapping)
from .metrics import (CycleResult, SimResult, SparseProcArray, speedup,
                      speedup_series)
from .pairs import simulate_pairs
from .parallel import (GridPoint, parallel_overhead_sweep,
                       parallel_speedup_curve, pool_worth_it,
                       resolve_workers, run_grid, set_default_workers)
from .sharedbus import DEFAULT_QUEUE_ACCESS_US, simulate_shared_bus
from .simulator import (BucketWorkCache, GreedyMappingFactory, bucket_work,
                        compute_search_costs, iter_cycle_results, simulate,
                        simulate_base, simulate_config)
from .termination import (TerminationScheme, apply_termination,
                          detection_delay, termination_overhead_fraction)
from .timeline import (CATEGORIES, CONTROL, GANTT_LEGEND, NETWORK,
                       CycleTimeline, Envelope, Span, Timeline,
                       TimelineRecorder, chrome_trace, gantt, gantt_section,
                       timeline_jsonl, write_chrome_trace,
                       write_timeline_jsonl)
from .attribution import (IDLE_CATEGORIES, CycleAttribution,
                          SectionAttribution, attribute_cycle,
                          attribute_timeline, critical_path,
                          format_attribution)
from .sweep import (DEFAULT_LOSS_RATES, DEFAULT_PROC_COUNTS,
                    SCALE_PROC_COUNTS, DegradationCurve, SpeedupCurve,
                    fault_sweep, format_curves, format_degradation,
                    overhead_sweep, speedup_curve, speedup_loss,
                    total_time_us)

__all__ = [
    "DEFAULT_COSTS", "TABLE_5_1", "ZERO_OVERHEADS", "CostModel",
    "OverheadModel", "table_5_1_rows",
    "DEFAULT_PROTOCOL", "DeliveryPlan", "FailStop", "FaultModel",
    "ProtocolModel", "StallWindow", "plan_delivery",
    "DEFAULT_LOSS_RATES", "DegradationCurve", "fault_sweep",
    "format_degradation",
    "DEFAULT_N_BUCKETS", "BucketMapping", "ExplicitMapping",
    "RandomMapping", "RoundRobinMapping", "greedy_assignment",
    "greedy_mapping",
    "CycleResult", "SimResult", "SparseProcArray", "speedup",
    "speedup_series",
    "OVERHEADS", "MappingFactory", "RunConfig", "SupervisePolicy",
    "BucketWorkCache", "GreedyMappingFactory",
    "bucket_work", "compute_search_costs", "iter_cycle_results",
    "simulate", "simulate_base", "simulate_config",
    "DEFAULT_PROC_COUNTS", "SCALE_PROC_COUNTS", "SpeedupCurve",
    "format_curves", "overhead_sweep", "speedup_curve", "speedup_loss",
    "total_time_us",
    "GridPoint", "parallel_overhead_sweep", "parallel_speedup_curve",
    "pool_worth_it", "resolve_workers", "run_grid",
    "set_default_workers",
    "simulate_master_copy", "simulate_replicated", "simulate_pairs",
    "DEFAULT_QUEUE_ACCESS_US", "simulate_shared_bus",
    "simulate_dedicated_alpha",
    "TerminationScheme", "apply_termination", "detection_delay",
    "termination_overhead_fraction",
    "CATEGORIES", "CONTROL", "GANTT_LEGEND", "NETWORK", "CycleTimeline",
    "Envelope", "Span", "Timeline", "TimelineRecorder", "chrome_trace",
    "gantt", "gantt_section", "timeline_jsonl", "write_chrome_trace",
    "write_timeline_jsonl",
    "IDLE_CATEGORIES", "CycleAttribution", "SectionAttribution",
    "attribute_cycle", "attribute_timeline", "critical_path",
    "format_attribution",
]

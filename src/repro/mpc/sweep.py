"""Parameter sweeps: the experiment harness behind Figures 5-1/5-2/5-4/5-6.

Every speedup is computed the paper's way — against the run with a
single match processor and zero communication overheads on the *same*
trace (Section 5.1).

Both sweep entry points take a ``workers`` knob: ``1`` runs the exact
serial path in-process, ``N`` fans the grid out over N worker processes
via :mod:`repro.mpc.parallel`, and ``None`` (the default) resolves to
``os.cpu_count()`` (overridable by ``REPRO_SWEEP_WORKERS`` or
:func:`repro.mpc.parallel.set_default_workers`).  The parallel path is
deterministic and numerically identical to the serial one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..trace.events import SectionTrace
from .costmodel import (DEFAULT_COSTS, TABLE_5_1, ZERO_OVERHEADS, CostModel,
                        OverheadModel)
from .mapping import BucketMapping
from .metrics import SimResult, speedup
from .simulator import MappingFactory, simulate, simulate_base

#: The processor counts swept in the paper's figures (Nectar scale: up
#: to 32 processors).
DEFAULT_PROC_COUNTS: Tuple[int, ...] = (1, 2, 4, 8, 16, 24, 32)


@dataclass
class SpeedupCurve:
    """One speedup-vs-processors series (one line of a paper figure)."""

    label: str
    proc_counts: List[int]
    speedups: List[float]
    results: List[SimResult] = field(repr=False, default_factory=list)

    def peak(self) -> Tuple[int, float]:
        """(processor count, speedup) at the best point of the curve."""
        best = max(range(len(self.speedups)),
                   key=lambda i: self.speedups[i])
        return self.proc_counts[best], self.speedups[best]

    def at(self, n_procs: int) -> float:
        """Speedup at a specific processor count."""
        return self.speedups[self.proc_counts.index(n_procs)]

    def rows(self) -> List[str]:
        return [f"  {p:>3} procs: {s:6.2f}x"
                for p, s in zip(self.proc_counts, self.speedups)]


def speedup_curve(trace: SectionTrace,
                  proc_counts: Sequence[int] = DEFAULT_PROC_COUNTS,
                  overheads: OverheadModel = ZERO_OVERHEADS,
                  costs: CostModel = DEFAULT_COSTS,
                  mapping_for: Optional[Callable[[int], BucketMapping]]
                  = None,
                  mapping_factory_for: Optional[
                      Callable[[int], MappingFactory]] = None,
                  label: Optional[str] = None,
                  workers: Optional[int] = None) -> SpeedupCurve:
    """Speedups of *trace* across processor counts at one overhead setting.

    *mapping_for* builds the bucket distribution for each processor
    count (default: round robin); *mapping_factory_for* instead builds a
    per-cycle mapping factory (for the idealized greedy distribution).
    *workers* fans the processor counts out over worker processes
    (``1`` = serial, ``None`` = all cores); results are identical either
    way.
    """
    if workers != 1:
        from .parallel import parallel_speedup_curve, resolve_workers
        if resolve_workers(workers) > 1:
            return parallel_speedup_curve(
                trace, proc_counts, overheads=overheads, costs=costs,
                mapping_for=mapping_for,
                mapping_factory_for=mapping_factory_for, label=label,
                workers=workers)
    return _serial_speedup_curve(trace, proc_counts, overheads=overheads,
                                 costs=costs, mapping_for=mapping_for,
                                 mapping_factory_for=mapping_factory_for,
                                 label=label)


def _serial_speedup_curve(trace: SectionTrace,
                          proc_counts: Sequence[int] = DEFAULT_PROC_COUNTS,
                          overheads: OverheadModel = ZERO_OVERHEADS,
                          costs: CostModel = DEFAULT_COSTS,
                          mapping_for: Optional[
                              Callable[[int], BucketMapping]] = None,
                          mapping_factory_for: Optional[
                              Callable[[int], MappingFactory]] = None,
                          label: Optional[str] = None) -> SpeedupCurve:
    """The in-process sweep (the ``workers=1`` path)."""
    base = simulate_base(trace, costs=costs)
    speedups: List[float] = []
    results: List[SimResult] = []
    for n_procs in proc_counts:
        kwargs = {}
        if mapping_factory_for is not None:
            kwargs["mapping_factory"] = mapping_factory_for(n_procs)
        elif mapping_for is not None:
            kwargs["mapping"] = mapping_for(n_procs)
        result = simulate(trace, n_procs=n_procs, costs=costs,
                          overheads=overheads, **kwargs)
        results.append(result)
        speedups.append(speedup(base, result))
    return SpeedupCurve(label=label or f"{trace.name}@{overheads.label()}",
                        proc_counts=list(proc_counts), speedups=speedups,
                        results=results)


def overhead_sweep(trace: SectionTrace,
                   proc_counts: Sequence[int] = DEFAULT_PROC_COUNTS,
                   overhead_settings: Sequence[OverheadModel] = TABLE_5_1,
                   costs: CostModel = DEFAULT_COSTS,
                   workers: Optional[int] = None) -> List[SpeedupCurve]:
    """The Figure 5-2 experiment: one curve per Table 5-1 setting.

    With ``workers`` > 1 the whole (setting x processors) grid is one
    parallel fan-out; the curves are identical to the serial result.
    """
    if workers != 1:
        from .parallel import parallel_overhead_sweep, resolve_workers
        if resolve_workers(workers) > 1:
            return parallel_overhead_sweep(trace, proc_counts,
                                           overhead_settings, costs,
                                           workers=workers)
    return _serial_overhead_sweep(trace, proc_counts, overhead_settings,
                                  costs)


def _serial_overhead_sweep(trace: SectionTrace,
                           proc_counts: Sequence[int] = DEFAULT_PROC_COUNTS,
                           overhead_settings: Sequence[OverheadModel]
                           = TABLE_5_1,
                           costs: CostModel = DEFAULT_COSTS
                           ) -> List[SpeedupCurve]:
    """The in-process Figure 5-2 sweep (the ``workers=1`` path)."""
    return [_serial_speedup_curve(trace, proc_counts, overheads=overheads,
                                  costs=costs,
                                  label=f"{trace.name}@{overheads.label()}")
            for overheads in overhead_settings]


def speedup_loss(zero_curve: SpeedupCurve,
                 loaded_curve: SpeedupCurve) -> float:
    """Fractional loss of *peak* speedup due to overheads.

    The paper quotes losses of ~30% (Rubik), ~45% (Tourney) and up to
    ~50% (Weaver) at the heaviest (32 µs total) setting.
    """
    _, zero_peak = zero_curve.peak()
    _, loaded_peak = loaded_curve.peak()
    if zero_peak <= 0:
        return 0.0
    return 1.0 - loaded_peak / zero_peak


def format_curves(curves: Sequence[SpeedupCurve],
                  title: str = "") -> str:
    """ASCII table: processors down the side, one column per curve."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "procs " + " ".join(f"{c.label:>22}" for c in curves)
    lines.append(header)
    proc_counts = curves[0].proc_counts
    for i, n_procs in enumerate(proc_counts):
        row = f"{n_procs:>5} " + " ".join(
            f"{c.speedups[i]:>21.2f}x" for c in curves)
        lines.append(row)
    return "\n".join(lines)

"""Parameter sweeps: the experiment harness behind Figures 5-1/5-2/5-4/5-6.

Every speedup is computed the paper's way — against the run with a
single match processor and zero communication overheads on the *same*
trace (Section 5.1).

Both sweep entry points take a ``workers`` knob: ``1`` runs the exact
serial path in-process, ``N`` fans the grid out over N worker processes
via :mod:`repro.mpc.parallel`, and ``None`` (the default) resolves to
``os.cpu_count()`` (overridable by ``REPRO_SWEEP_WORKERS`` or
:func:`repro.mpc.parallel.set_default_workers`).  The parallel path is
deterministic and numerically identical to the serial one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..trace.events import SectionTrace
from .costmodel import (DEFAULT_COSTS, TABLE_5_1, ZERO_OVERHEADS, CostModel,
                        OverheadModel)
from .faults import FaultModel, ProtocolModel
from .mapping import BucketMapping
from .config import RunConfig
from .metrics import SimResult, speedup
from .simulator import MappingFactory, iter_cycle_results, simulate_config

#: The loss rates of the canonical degradation curve (the fault-sweep
#: analogue of the paper's Table 5-1 overhead rows).
DEFAULT_LOSS_RATES: Tuple[float, ...] = (0.0, 1e-4, 1e-3, 1e-2)

#: The processor counts swept in the paper's figures (Nectar scale: up
#: to 32 processors).
DEFAULT_PROC_COUNTS: Tuple[int, ...] = (1, 2, 4, 8, 16, 24, 32)

#: Processor counts for the what-if extrapolation past Nectar scale
#: (ROADMAP item 3) — use with ``compress_rounds=True`` and
#: ``keep_results=False`` to stay memory-bounded.
SCALE_PROC_COUNTS: Tuple[int, ...] = (64, 256, 1024, 4096)


def total_time_us(trace, config: RunConfig) -> float:
    """End-to-end match time of one run, without materializing results.

    Streams :func:`~repro.mpc.simulator.iter_cycle_results` and
    accumulates makespans in yield order — bit-identical to
    ``simulate_config(trace, config).total_us`` (same additions in the
    same order), at O(1) memory per point.  This is what lets sweeps
    visit thousands of processors on million-activation traces.
    """
    total = 0.0
    for result, repeat in iter_cycle_results(trace, config):
        total += result.makespan_us if repeat == 1 \
            else result.makespan_us * repeat
    return total


def _speedup_from_totals(base_total_us: float, total_us: float) -> float:
    """Paper-style speedup from two streamed totals."""
    if total_us <= 0:
        raise ValueError("degenerate run with zero total time")
    return base_total_us / total_us


@dataclass
class SpeedupCurve:
    """One speedup-vs-processors series (one line of a paper figure)."""

    label: str
    proc_counts: List[int]
    speedups: List[float]
    results: List[SimResult] = field(repr=False, default_factory=list)

    def peak(self) -> Tuple[int, float]:
        """(processor count, speedup) at the best point of the curve."""
        best = max(range(len(self.speedups)),
                   key=lambda i: self.speedups[i])
        return self.proc_counts[best], self.speedups[best]

    def at(self, n_procs: int) -> float:
        """Speedup at a specific processor count."""
        return self.speedups[self.proc_counts.index(n_procs)]

    def rows(self) -> List[str]:
        return [f"  {p:>3} procs: {s:6.2f}x"
                for p, s in zip(self.proc_counts, self.speedups)]


def speedup_curve(trace: SectionTrace,
                  proc_counts: Sequence[int] = DEFAULT_PROC_COUNTS,
                  overheads: OverheadModel = ZERO_OVERHEADS,
                  costs: CostModel = DEFAULT_COSTS,
                  mapping_for: Optional[Callable[[int], BucketMapping]]
                  = None,
                  mapping_factory_for: Optional[
                      Callable[[int], MappingFactory]] = None,
                  label: Optional[str] = None,
                  workers: Optional[int] = None,
                  compress_rounds: bool = False,
                  keep_results: bool = True) -> SpeedupCurve:
    """Speedups of *trace* across processor counts at one overhead setting.

    *mapping_for* builds the bucket distribution for each processor
    count (default: round robin); *mapping_factory_for* instead builds a
    per-cycle mapping factory (for the idealized greedy distribution).
    *workers* fans the processor counts out over worker processes
    (``1`` = serial, ``None`` = all cores); results are identical either
    way.  *compress_rounds* runs every point (and the base) through the
    O(active-work) loop — numerically identical speedups.
    ``keep_results=False`` streams each point to its total instead of
    materializing per-cycle results (``curve.results`` stays empty) —
    the memory-bounded mode for :data:`SCALE_PROC_COUNTS`-sized grids
    on million-activation traces; it always evaluates in-process.
    """
    if not keep_results:
        return _streamed_speedup_curve(
            trace, proc_counts, overheads=overheads, costs=costs,
            mapping_for=mapping_for,
            mapping_factory_for=mapping_factory_for, label=label,
            compress_rounds=compress_rounds)
    if workers != 1:
        from .parallel import parallel_speedup_curve, resolve_workers
        if resolve_workers(workers) > 1:
            return parallel_speedup_curve(
                trace, proc_counts, overheads=overheads, costs=costs,
                mapping_for=mapping_for,
                mapping_factory_for=mapping_factory_for, label=label,
                workers=workers, compress_rounds=compress_rounds)
    return _serial_speedup_curve(trace, proc_counts, overheads=overheads,
                                 costs=costs, mapping_for=mapping_for,
                                 mapping_factory_for=mapping_factory_for,
                                 label=label,
                                 compress_rounds=compress_rounds)


def _serial_speedup_curve(trace: SectionTrace,
                          proc_counts: Sequence[int] = DEFAULT_PROC_COUNTS,
                          overheads: OverheadModel = ZERO_OVERHEADS,
                          costs: CostModel = DEFAULT_COSTS,
                          mapping_for: Optional[
                              Callable[[int], BucketMapping]] = None,
                          mapping_factory_for: Optional[
                              Callable[[int], MappingFactory]] = None,
                          label: Optional[str] = None,
                          compress_rounds: bool = False) -> SpeedupCurve:
    """The in-process sweep (the ``workers=1`` path)."""
    base = simulate_config(trace, RunConfig(
        n_procs=1, costs=costs, overheads=ZERO_OVERHEADS,
        compress_rounds=compress_rounds))
    speedups: List[float] = []
    results: List[SimResult] = []
    for n_procs in proc_counts:
        kwargs = {}
        if mapping_factory_for is not None:
            kwargs["mapping_factory"] = mapping_factory_for(n_procs)
        elif mapping_for is not None:
            kwargs["mapping"] = mapping_for(n_procs)
        result = simulate_config(trace, RunConfig(
            n_procs=n_procs, costs=costs, overheads=overheads,
            compress_rounds=compress_rounds, **kwargs))
        results.append(result)
        speedups.append(speedup(base, result))
    return SpeedupCurve(label=label or f"{trace.name}@{overheads.label()}",
                        proc_counts=list(proc_counts), speedups=speedups,
                        results=results)


def _streamed_speedup_curve(trace,
                            proc_counts: Sequence[int],
                            overheads: OverheadModel = ZERO_OVERHEADS,
                            costs: CostModel = DEFAULT_COSTS,
                            mapping_for: Optional[
                                Callable[[int], BucketMapping]] = None,
                            mapping_factory_for: Optional[
                                Callable[[int], MappingFactory]] = None,
                            label: Optional[str] = None,
                            compress_rounds: bool = False) -> SpeedupCurve:
    """The memory-bounded sweep (``keep_results=False``).

    Each point streams straight to its total via :func:`total_time_us`;
    per-cycle results are never materialized, so a 4096-processor point
    on a million-activation trace costs O(1) result memory.  Speedups
    are bit-identical to the materializing path.
    """
    base_total = total_time_us(trace, RunConfig(
        n_procs=1, costs=costs, overheads=ZERO_OVERHEADS,
        compress_rounds=compress_rounds))
    speedups: List[float] = []
    for n_procs in proc_counts:
        kwargs = {}
        if mapping_factory_for is not None:
            kwargs["mapping_factory"] = mapping_factory_for(n_procs)
        elif mapping_for is not None:
            kwargs["mapping"] = mapping_for(n_procs)
        total = total_time_us(trace, RunConfig(
            n_procs=n_procs, costs=costs, overheads=overheads,
            compress_rounds=compress_rounds, **kwargs))
        speedups.append(_speedup_from_totals(base_total, total))
    return SpeedupCurve(label=label or f"{trace.name}@{overheads.label()}",
                        proc_counts=list(proc_counts), speedups=speedups)


def overhead_sweep(trace: SectionTrace,
                   proc_counts: Sequence[int] = DEFAULT_PROC_COUNTS,
                   overhead_settings: Sequence[OverheadModel] = TABLE_5_1,
                   costs: CostModel = DEFAULT_COSTS,
                   workers: Optional[int] = None,
                   compress_rounds: bool = False,
                   keep_results: bool = True) -> List[SpeedupCurve]:
    """The Figure 5-2 experiment: one curve per Table 5-1 setting.

    With ``workers`` > 1 the whole (setting x processors) grid is one
    parallel fan-out; the curves are identical to the serial result.
    ``compress_rounds`` / ``keep_results`` behave as in
    :func:`speedup_curve`.
    """
    if not keep_results:
        return [_streamed_speedup_curve(
                    trace, proc_counts, overheads=overheads, costs=costs,
                    label=f"{trace.name}@{overheads.label()}",
                    compress_rounds=compress_rounds)
                for overheads in overhead_settings]
    if workers != 1:
        from .parallel import parallel_overhead_sweep, resolve_workers
        if resolve_workers(workers) > 1:
            return parallel_overhead_sweep(trace, proc_counts,
                                           overhead_settings, costs,
                                           workers=workers,
                                           compress_rounds=compress_rounds)
    return _serial_overhead_sweep(trace, proc_counts, overhead_settings,
                                  costs, compress_rounds=compress_rounds)


def _serial_overhead_sweep(trace: SectionTrace,
                           proc_counts: Sequence[int] = DEFAULT_PROC_COUNTS,
                           overhead_settings: Sequence[OverheadModel]
                           = TABLE_5_1,
                           costs: CostModel = DEFAULT_COSTS,
                           compress_rounds: bool = False
                           ) -> List[SpeedupCurve]:
    """The in-process Figure 5-2 sweep (the ``workers=1`` path)."""
    return [_serial_speedup_curve(trace, proc_counts, overheads=overheads,
                                  costs=costs,
                                  label=f"{trace.name}@{overheads.label()}",
                                  compress_rounds=compress_rounds)
            for overheads in overhead_settings]


@dataclass
class DegradationCurve:
    """Speedup vs message-loss rate at a fixed processor count.

    The fault-injection analogue of a :class:`SpeedupCurve`: the x axis
    is the per-message loss probability instead of the processor count.
    """

    label: str
    n_procs: int
    loss_rates: List[float]
    speedups: List[float]
    results: List[SimResult] = field(repr=False, default_factory=list)

    def degradation(self, i: int) -> float:
        """Fractional speedup lost at point *i* relative to loss 0."""
        if not self.speedups or self.speedups[0] <= 0:
            return 0.0
        return 1.0 - self.speedups[i] / self.speedups[0]

    def is_monotone(self, tol: float = 1e-9) -> bool:
        """Whether speedup never increases as the loss rate grows."""
        return all(b <= a + tol for a, b in
                   zip(self.speedups, self.speedups[1:]))

    def rows(self) -> List[str]:
        return [f"  loss {rate:<8g} {s:6.2f}x  "
                f"(-{100 * self.degradation(i):.1f}%)"
                for i, (rate, s) in enumerate(zip(self.loss_rates,
                                                  self.speedups))]


def fault_sweep(trace: SectionTrace,
                n_procs: int = 16,
                loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
                overheads: OverheadModel = ZERO_OVERHEADS,
                costs: CostModel = DEFAULT_COSTS,
                seed: int = 0,
                dup_prob: float = 0.0,
                jitter_us: float = 0.0,
                protocol: Optional[ProtocolModel] = None,
                label: Optional[str] = None,
                workers: Optional[int] = None) -> DegradationCurve:
    """Speedup degradation of *trace* across message-loss rates.

    Every point simulates the same machine under a
    :class:`~repro.mpc.faults.FaultModel` seeded with *seed* at one
    loss rate; speedups are paper-style, against the fault-free
    1-processor zero-overhead base.  A loss rate of exactly 0 (with
    ``dup_prob`` and ``jitter_us`` 0) runs the fault-free simulator —
    the curve's anchor is bit-identical to :func:`simulate` without
    faults.  Deterministic for any *workers* value.
    """
    from .parallel import GridPoint, run_grid
    points = [GridPoint(n_procs=1)]
    for rate in loss_rates:
        faults = FaultModel(seed=seed, loss_prob=rate, dup_prob=dup_prob,
                            jitter_us=jitter_us)
        points.append(GridPoint(n_procs=n_procs, overheads=overheads,
                                faults=None if faults.is_null else faults,
                                protocol=protocol))
    results = run_grid(trace, points, costs=costs, workers=workers)
    base, rest = results[0], results[1:]
    return DegradationCurve(
        label=label or f"{trace.name}@{n_procs}procs",
        n_procs=n_procs,
        loss_rates=list(loss_rates),
        speedups=[speedup(base, result) for result in rest],
        results=rest)


def format_degradation(curve: DegradationCurve, title: str = "") -> str:
    """ASCII table of a degradation curve, with protocol counters."""
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{'loss':>10} {'speedup':>9} {'degraded':>9} "
                 f"{'retransmits':>12} {'dup drops':>10} "
                 f"{'timeout (ms)':>13}")
    for i, (rate, s) in enumerate(zip(curve.loss_rates, curve.speedups)):
        r = curve.results[i]
        lines.append(f"{rate:>10g} {s:>8.2f}x {curve.degradation(i):>8.1%} "
                     f"{r.retransmits:>12} {r.duplicate_drops:>10} "
                     f"{r.timeout_wait_us / 1000:>13.2f}")
    return "\n".join(lines)


def speedup_loss(zero_curve: SpeedupCurve,
                 loaded_curve: SpeedupCurve) -> float:
    """Fractional loss of *peak* speedup due to overheads.

    The paper quotes losses of ~30% (Rubik), ~45% (Tourney) and up to
    ~50% (Weaver) at the heaviest (32 µs total) setting.
    """
    _, zero_peak = zero_curve.peak()
    _, loaded_peak = loaded_curve.peak()
    if zero_peak <= 0:
        return 0.0
    return 1.0 - loaded_peak / zero_peak


def format_curves(curves: Sequence[SpeedupCurve],
                  title: str = "") -> str:
    """ASCII table: processors down the side, one column per curve."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "procs " + " ".join(f"{c.label:>22}" for c in curves)
    lines.append(header)
    proc_counts = curves[0].proc_counts
    for i, n_procs in enumerate(proc_counts):
        row = f"{n_procs:>5} " + " ".join(
            f"{c.speedups[i]:>21.2f}x" for c in curves)
        lines.append(row)
    return "\n".join(lines)

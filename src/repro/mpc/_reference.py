"""Reference (pre-optimization) implementation of the cycle simulation.

This is the straightforward object-based event loop the optimized
:mod:`repro.mpc.simulator` replaced.  It is kept, verbatim in logic, for
two jobs:

* **Executable specification** — ``tests/test_mpc_parallel.py`` asserts
  that the optimized simulator produces bit-identical
  :class:`~repro.mpc.metrics.CycleResult`\\ s on every canonical section.
* **Honest baseline** — ``benchmarks/bench_harness_perf.py`` measures
  the optimized hot path against this implementation on the same
  machine, so the recorded speedup is not a cross-machine guess.

Do not use it in experiment code; it is deliberately slow.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..trace.events import (KIND_TERMINAL, LEFT, CycleTrace, SectionTrace,
                            TraceActivation)
from .costmodel import DEFAULT_COSTS, ZERO_OVERHEADS, CostModel, \
    OverheadModel
from .mapping import BucketMapping, RoundRobinMapping
from .metrics import CycleResult, SimResult


@dataclass
class _Task:
    """A pending activation delivery to a match processor."""

    arrival: float
    seq: int
    proc: int
    act: TraceActivation
    via_message: bool

    def __lt__(self, other: "_Task") -> bool:
        return (self.arrival, self.seq) < (other.arrival, other.seq)


def simulate_cycle_reference(cycle: CycleTrace, n_procs: int,
                             costs: CostModel, overheads: OverheadModel,
                             mapping: BucketMapping,
                             search_costs: Optional[Dict[int, float]] = None
                             ) -> CycleResult:
    """One cycle of the Section 3.2 mapping, unoptimized."""
    search_costs = search_costs or {}
    # --- step 1: broadcast -------------------------------------------------
    control_busy = overheads.send_us
    match_start = (overheads.send_us + overheads.latency_us
                   + overheads.recv_us)
    network_busy = overheads.latency_us if n_procs > 0 else 0.0
    n_messages = 1  # the broadcast packet

    # --- step 2: constant tests on every processor -------------------------
    ready = [match_start + costs.constant_tests_us] * n_procs
    busy = [overheads.recv_us + costs.constant_tests_us] * n_procs
    activations = [0] * n_procs
    left_activations = [0] * n_procs

    seq = 0
    queue: List[_Task] = []
    control_arrivals: List[float] = []
    control_ready = control_busy  # control is busy until broadcast sent

    def send_to_control(depart: float) -> None:
        nonlocal control_busy, control_ready, network_busy, n_messages
        n_messages += 1
        network_busy += overheads.latency_us
        arrive = depart + overheads.latency_us
        control_ready = max(control_ready, arrive) + overheads.recv_us
        control_busy += overheads.recv_us
        control_arrivals.append(control_ready)

    for root in cycle.roots():
        owner = mapping.processor_for(root.key)
        if root.kind == KIND_TERMINAL:
            depart = ready[owner] + overheads.send_us
            busy[owner] += overheads.send_us
            ready[owner] = depart
            send_to_control(depart)
            continue
        seq += 1
        heapq.heappush(queue, _Task(arrival=ready[owner], seq=seq,
                                    proc=owner, act=root,
                                    via_message=False))

    # --- steps 3-4: event loop ---------------------------------------------
    while queue:
        task = heapq.heappop(queue)
        p = task.proc
        act = task.act
        start = max(ready[p], task.arrival)
        t = start
        if task.via_message:
            t += overheads.recv_us
        t += costs.store_cost(act.side)
        t += search_costs.get(act.act_id, 0.0)
        activations[p] += 1
        if act.side == LEFT:
            left_activations[p] += 1

        for succ_id in act.successors:
            succ = cycle.activations[succ_id]
            t += costs.successor_us
            if succ.kind == KIND_TERMINAL:
                t += overheads.send_us
                send_to_control(t)
                continue
            dest = mapping.processor_for(succ.key)
            seq += 1
            if dest == p:
                heapq.heappush(queue, _Task(arrival=t, seq=seq, proc=p,
                                            act=succ, via_message=False))
            else:
                t += overheads.send_us
                heapq.heappush(queue, _Task(
                    arrival=t + overheads.latency_us, seq=seq, proc=dest,
                    act=succ, via_message=True))

        busy[p] += t - start
        ready[p] = t

    token_messages = 0
    for act in cycle:
        if act.kind == KIND_TERMINAL or act.parent_id is None:
            continue
        parent = cycle.activations[act.parent_id]
        if parent.kind == KIND_TERMINAL:
            continue
        if mapping.processor_for(parent.key) != \
                mapping.processor_for(act.key):
            token_messages += 1
    n_messages += token_messages
    network_busy += token_messages * overheads.latency_us

    makespan = max([match_start + costs.constant_tests_us]
                   + ready + control_arrivals)
    return CycleResult(index=cycle.index, makespan_us=makespan,
                       proc_busy_us=busy,
                       proc_activations=activations,
                       proc_left_activations=left_activations,
                       n_messages=n_messages,
                       network_busy_us=network_busy,
                       control_busy_us=control_busy)


def simulate_reference(trace: SectionTrace, n_procs: int,
                       costs: CostModel = DEFAULT_COSTS,
                       overheads: OverheadModel = ZERO_OVERHEADS,
                       mapping: Optional[BucketMapping] = None) -> SimResult:
    """Whole-section reference simulation (round-robin mapping only)."""
    from .simulator import compute_search_costs
    if mapping is None:
        mapping = RoundRobinMapping(n_procs)
    search_costs = compute_search_costs(trace, costs)
    result = SimResult(trace_name=trace.name, n_procs=n_procs)
    for cycle in trace:
        result.cycles.append(
            simulate_cycle_reference(cycle, n_procs, costs, overheads,
                                     mapping,
                                     search_costs.get(cycle.index, {})))
    return result

"""Deterministic fault injection and a reliable-delivery protocol layer.

The paper's simulation assumes a perfect Nectar-class network: every
message arrives exactly once, in bounded time, and every processor is
always available.  Real message-passing machines buy that abstraction
with protocol machinery — explicit acknowledgements, timeouts and
retransmissions (cf. the QCDSP message-passing system, which budgets an
ack/retransmit engine per link).  This module prices that machinery so
the degradation of the paper's speedups under network and processor
faults becomes a measurable axis:

* :class:`FaultModel` — a *seeded, fully deterministic* description of
  what goes wrong: per-message loss and duplication probabilities,
  latency jitter, per-processor stall windows, and fail-stop cycles
  (a processor crashes at a cycle boundary and restarts after a fixed
  recovery time, its hash-table partition restored from checkpoint).
* :class:`ProtocolModel` — the reliable-delivery layer on top of the
  :class:`~repro.mpc.costmodel.OverheadModel`: positive acks per data
  copy, a retransmit timeout with exponential backoff, and a bounded
  retry budget (the final attempt is carried by a link-level reliable
  fallback, so the simulation always terminates).
* :func:`simulate_cycle_with_faults` — the fault-aware counterpart of
  the optimized event loop in :mod:`repro.mpc.simulator`, charging
  send/receive overheads for every ack and retry so degradation shows
  up in the :class:`~repro.mpc.metrics.SimResult` counters
  (``retransmits``, ``duplicate_drops``, ``acks``, ``timeout_wait_us``,
  ``stall_us``, ``recovery_us``).

Determinism
-----------
All randomness is *counter-based*, not sequential: each draw hashes
``(seed, cycle index, message id, attempt, stream)`` through a
splitmix64 finalizer.  A message's fate therefore depends only on its
identity — the activation id it carries — never on the order the event
loop happens to process it, so the same seed always yields bit-identical
results, and raising ``loss_prob`` can only lose a *superset* of the
messages lost at a lower rate (which is what makes degradation curves
monotone).

The zero-fault path is untouched: :func:`repro.mpc.simulator.simulate`
dispatches to this module only when a non-null fault model is supplied,
so ``FaultModel()`` (all-zero) reproduces today's simulator bit for bit.

Model simplifications (documented, deliberate):

* The cycle's wme broadcast and the ack channel are reliable — only
  data messages (inter-processor tokens and instantiation sends) are
  subject to loss/duplication/jitter.
* Retransmit sends are charged to the sender inline at the original
  send point (a protocol engine would charge them asynchronously; the
  totals are identical and the accounting stays deterministic).
* Stalls and recoveries are non-preemptive: work that would *start*
  inside a stall window is pushed past it, work already started runs to
  completion.  The control processor is assumed fault-free.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..trace.events import KIND_TERMINAL, LEFT, CycleTrace
from .costmodel import CostModel, OverheadModel
from .mapping import BucketMapping
from .metrics import CycleResult

_MASK64 = (1 << 64) - 1
_INV_2_64 = 1.0 / float(1 << 64)

#: Independent draw streams (fold into the counter hash so that loss,
#: duplication and jitter decisions for one message never correlate).
_STREAM_LOSS = 1
_STREAM_DUP = 2
_STREAM_JITTER = 3


def _mix64(x: int) -> int:
    """The splitmix64 finalizer: a high-quality 64-bit mixing function."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def counter_u01(seed: int, *counters: int) -> float:
    """A uniform draw in [0, 1) determined entirely by its arguments."""
    x = _mix64(seed ^ 0x9E3779B97F4A7C15)
    for c in counters:
        x = _mix64(x ^ ((c * 0x9E3779B97F4A7C15) & _MASK64))
    return x * _INV_2_64


@dataclass(frozen=True)
class StallWindow:
    """Processor *proc* cannot start work in [start_us, end_us).

    ``cycle`` restricts the window to one cycle index; ``None`` applies
    it to every cycle (times are cycle-relative, measured from the
    broadcast that opens the cycle).
    """

    proc: int
    start_us: float
    end_us: float
    cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.end_us < self.start_us:
            raise ValueError("stall window ends before it starts")


@dataclass(frozen=True)
class FailStop:
    """Processor *proc* fail-stops at the start of cycle *cycle*.

    The processor restarts and has its hash-table partition restored
    from checkpoint after ``recovery_us``; messages addressed to it
    queue up meanwhile.  Modelled as a stall window [0, recovery_us)
    in that cycle, plus the ``recovery_us`` result counter.
    """

    proc: int
    cycle: int
    recovery_us: float = 10_000.0

    def __post_init__(self) -> None:
        if self.recovery_us < 0:
            raise ValueError("recovery_us must be >= 0")


@dataclass(frozen=True)
class FaultModel:
    """Seeded deterministic fault injection for one simulation run.

    Attributes
    ----------
    seed:
        Root of every counter-based draw; the same seed always produces
        bit-identical :class:`~repro.mpc.metrics.SimResult`\\ s.
    loss_prob / dup_prob:
        Per-data-message-attempt probability of loss in transit, and
        per-delivery probability of a duplicate copy arriving.
    jitter_us:
        Maximum extra transit latency per delivery, drawn uniformly
        from [0, jitter_us).
    stalls / failures:
        Deterministic processor unavailability (see
        :class:`StallWindow` / :class:`FailStop`).
    """

    seed: int = 0
    loss_prob: float = 0.0
    dup_prob: float = 0.0
    jitter_us: float = 0.0
    stalls: Tuple[StallWindow, ...] = ()
    failures: Tuple[FailStop, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_prob <= 1.0:
            raise ValueError("loss_prob must be in [0, 1]")
        if not 0.0 <= self.dup_prob <= 1.0:
            raise ValueError("dup_prob must be in [0, 1]")
        if self.jitter_us < 0.0:
            raise ValueError("jitter_us must be >= 0")

    @property
    def is_null(self) -> bool:
        """True when this model can never perturb a run.

        The simulator uses this to keep the zero-fault configuration on
        the exact fault-free code path (bit-identical results).
        """
        return (self.loss_prob == 0.0 and self.dup_prob == 0.0
                and self.jitter_us == 0.0 and not self.stalls
                and not self.failures)

    # -- counter-based draws (message id = the carried activation id) --

    def lost(self, cycle: int, msg_id: int, attempt: int) -> bool:
        return counter_u01(self.seed, cycle, msg_id, attempt,
                           _STREAM_LOSS) < self.loss_prob

    def duplicated(self, cycle: int, msg_id: int) -> bool:
        return counter_u01(self.seed, cycle, msg_id, 0,
                           _STREAM_DUP) < self.dup_prob

    def jitter(self, cycle: int, msg_id: int, attempt: int) -> float:
        if self.jitter_us == 0.0:
            return 0.0
        return self.jitter_us * counter_u01(self.seed, cycle, msg_id,
                                            attempt, _STREAM_JITTER)

    def windows_for_cycle(self, cycle_index: int,
                          n_procs: int) -> Dict[int, List[Tuple[float,
                                                                float]]]:
        """Per-processor sorted stall intervals applying to one cycle."""
        windows: Dict[int, List[Tuple[float, float]]] = {}
        for stall in self.stalls:
            if stall.cycle is not None and stall.cycle != cycle_index:
                continue
            if not 0 <= stall.proc < n_procs:
                continue
            windows.setdefault(stall.proc, []).append(
                (stall.start_us, stall.end_us))
        for failure in self.failures:
            if failure.cycle != cycle_index:
                continue
            if not 0 <= failure.proc < n_procs:
                continue
            windows.setdefault(failure.proc, []).append(
                (0.0, failure.recovery_us))
        for intervals in windows.values():
            intervals.sort()
        return windows

    def recovery_in_cycle(self, cycle_index: int, n_procs: int) -> float:
        """Total restart time spent by fail-stopped processors."""
        return sum(f.recovery_us for f in self.failures
                   if f.cycle == cycle_index and 0 <= f.proc < n_procs)


@dataclass(frozen=True)
class ProtocolModel:
    """Ack/timeout/retransmit reliable-delivery parameters.

    Every data message is positively acknowledged: the receiver pays one
    send overhead per received copy (including duplicates it drops) and
    the sender one receive overhead per ack.  An unacknowledged message
    is retransmitted after ``timeout_us``, the timeout growing by
    ``backoff`` per retry.  After ``max_retries`` retransmissions the
    final attempt is carried by a link-level reliable fallback (it
    cannot be lost), bounding worst-case delivery time — and keeping
    the simulation deterministic and finite even at ``loss_prob=1``.
    """

    timeout_us: float = 500.0
    backoff: float = 2.0
    max_retries: int = 8

    def __post_init__(self) -> None:
        if self.timeout_us <= 0.0:
            raise ValueError("timeout_us must be > 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")


#: The default reliable-delivery setting used by sweeps and the CLI.
DEFAULT_PROTOCOL = ProtocolModel()


@dataclass(frozen=True)
class DeliveryPlan:
    """The deterministic fate of one data message.

    ``attempts`` copies were sent (the first ``attempts - 1`` lost),
    the sender waited ``timeout_wait_us`` in retransmit timeouts, the
    surviving copy took ``latency + jitter_us`` to transit, and
    ``duplicates`` extra copies arrived to be dropped.
    """

    attempts: int
    timeout_wait_us: float
    jitter_us: float
    duplicates: int

    @property
    def retransmits(self) -> int:
        return self.attempts - 1


def plan_delivery(faults: FaultModel, protocol: ProtocolModel,
                  cycle: int, msg_id: int) -> DeliveryPlan:
    """Resolve loss/retry/duplication for one message, deterministically."""
    wait = 0.0
    timeout = protocol.timeout_us
    attempt = 0
    while attempt < protocol.max_retries and \
            faults.lost(cycle, msg_id, attempt):
        wait += timeout
        timeout *= protocol.backoff
        attempt += 1
    return DeliveryPlan(
        attempts=attempt + 1,
        timeout_wait_us=wait,
        jitter_us=faults.jitter(cycle, msg_id, attempt),
        duplicates=1 if faults.duplicated(cycle, msg_id) else 0)


def simulate_cycle_with_faults(
        cycle: CycleTrace, n_procs: int, costs: CostModel,
        overheads: OverheadModel, mapping: BucketMapping,
        faults: FaultModel, protocol: ProtocolModel,
        search_costs: Optional[Dict[int, float]] = None,
        recorder: Optional["TimelineRecorder"] = None) -> CycleResult:
    """One cycle of the Section 3.2 mapping under *faults* + *protocol*.

    Structured exactly like the optimized loop in
    :mod:`repro.mpc.simulator`, with three insertions: delivery plans
    (loss/retry/duplication/jitter) for every data message, ack
    accounting on both ends, and processor stall/recovery windows.

    With a :class:`~repro.mpc.timeline.TimelineRecorder` the same loop
    also emits typed spans — including the protocol machinery (acks,
    retransmissions, timeout waits) and stall windows — without
    touching any timing arithmetic, so recorded results stay
    bit-identical to unrecorded ones.
    """
    send_us = overheads.send_us
    recv_us = overheads.recv_us
    latency_us = overheads.latency_us
    left_us = costs.left_token_us
    right_us = costs.right_token_us
    successor_us = costs.successor_us
    acts = cycle.activations
    get_extra = (search_costs or {}).get
    cycle_index = cycle.index

    record = recorder is not None
    if record:
        from .timeline import (CAT_ACK, CAT_BROADCAST, CAT_CONSTANT_TESTS,
                               CAT_RECV, CAT_RETRANSMIT, CAT_SEND,
                               CAT_STALL, CAT_SUCCESSOR, CAT_TIMEOUT_WAIT,
                               CAT_TOKEN_ADD, CAT_TOKEN_DELETE,
                               CAT_TRANSIT, CONTROL, NETWORK,
                               CycleTimeline, Envelope, Span)
        spans: List["Span"] = []
        envelopes: List["Envelope"] = []
        add_span = spans.append
        add_envelope = envelopes.append

        def record_sender_side(proc: int, depart_base: float,
                               plan: DeliveryPlan, msg_id: int) -> None:
            """Sender busy spans: one send per attempt, one ack receipt."""
            s = depart_base
            for attempt in range(plan.attempts):
                add_span(Span(CAT_SEND if attempt == 0 else CAT_RETRANSMIT,
                              proc, s, s + send_us, msg_id))
                s += send_us
            add_span(Span(CAT_ACK, proc, s, s + recv_us, msg_id))

        def record_data_transits(depart_base: float, arrive: float,
                                 plan: DeliveryPlan, msg_id: int) -> None:
            """Network occupancy of every data copy, plus timeout waits."""
            first_wire = depart_base + send_us
            if plan.timeout_wait_us > 0:
                add_span(Span(CAT_TIMEOUT_WAIT, NETWORK, first_wire,
                              first_wire + plan.timeout_wait_us, msg_id))
            for _ in range(plan.retransmits):  # the lost copies
                add_span(Span(CAT_RETRANSMIT, NETWORK, first_wire,
                              first_wire + latency_us, msg_id))
            add_span(Span(CAT_TRANSIT, NETWORK,
                          arrive - (latency_us + plan.jitter_us), arrive,
                          msg_id))
            for _ in range(plan.duplicates):
                add_span(Span(CAT_TRANSIT, NETWORK, arrive - latency_us,
                              arrive, msg_id))

        def record_ack_transits(after: float, copies: int,
                                msg_id: int) -> None:
            for _ in range(copies):
                add_span(Span(CAT_ACK, NETWORK, after, after + latency_us,
                              msg_id))

    # Fault-model state for this cycle.
    windows = faults.windows_for_cycle(cycle_index, n_procs)
    recovery_us = faults.recovery_in_cycle(cycle_index, n_procs)
    retransmits = 0
    duplicate_drops = 0
    acks = 0
    timeout_wait_us = 0.0
    stall_us = 0.0

    def past_stalls(p: int, t: float) -> float:
        """Earliest time >= *t* at which processor *p* may start work."""
        intervals = windows.get(p)
        if not intervals:
            return t
        for start, end in intervals:
            if start <= t < end:
                t = end
        return t

    # Resolve every activation's destination processor once (as in the
    # fault-free loop).
    processor_for = mapping.processor_for
    key_proc: Dict = {}
    dest_of: Dict[int, int] = {}
    for act in cycle.ordered():
        key = act.key
        proc = key_proc.get(key)
        if proc is None:
            proc = key_proc[key] = processor_for(key)
        dest_of[act.act_id] = proc

    # --- step 1: broadcast (reliable, as documented) -----------------------
    control_busy = send_us
    match_start = send_us + latency_us + recv_us
    network_busy = latency_us if n_procs > 0 else 0.0
    n_messages = 1  # the broadcast packet
    if record:
        add_span(Span(CAT_BROADCAST, CONTROL, 0.0, send_us))
        if n_procs > 0:
            add_span(Span(CAT_TRANSIT, NETWORK, send_us,
                          send_us + latency_us))

    # --- step 2: constant tests, start pushed past stall windows -----------
    ready = []
    for p in range(n_procs):
        start = past_stalls(p, match_start)
        stall_us += start - match_start
        if record:
            add_span(Span(CAT_RECV, p, send_us + latency_us, match_start))
            if start > match_start:
                add_span(Span(CAT_STALL, p, match_start, start))
            add_span(Span(CAT_CONSTANT_TESTS, p, start,
                          start + costs.constant_tests_us))
        ready.append(start + costs.constant_tests_us)
    busy = [recv_us + costs.constant_tests_us] * n_procs
    activations = [0] * n_procs
    left_activations = [0] * n_procs

    seq = 0
    queue: list = []
    heappush = heapq.heappush
    heappop = heapq.heappop
    control_arrivals: List[float] = []
    control_ready = control_busy  # control is busy until broadcast sent

    def send_to_control(depart_base: float, msg_id: int,
                        sender: int) -> float:
        """Reliable-protocol instantiation send; returns the sender's
        time after all send-side protocol costs."""
        nonlocal control_busy, control_ready, network_busy, n_messages
        nonlocal retransmits, duplicate_drops, acks, timeout_wait_us
        plan = plan_delivery(faults, protocol, cycle_index, msg_id)
        copies = plan.attempts + plan.duplicates
        retransmits += plan.retransmits
        duplicate_drops += plan.duplicates
        timeout_wait_us += plan.timeout_wait_us
        acks += 1 + plan.duplicates
        # Data copies + one ack per received copy cross the network.
        n_messages += copies + 1 + plan.duplicates
        network_busy += latency_us * (copies + 1 + plan.duplicates) \
            + plan.jitter_us
        # Sender: one send overhead per attempt, one ack receipt.
        t = depart_base + send_us * plan.attempts + recv_us
        arrive = depart_base + send_us + plan.timeout_wait_us \
            + latency_us + plan.jitter_us
        # Control: FIFO receipt of every copy, one ack send per copy.
        per_copy = recv_us + send_us
        begin = max(control_ready, arrive)
        control_ready = begin + per_copy * (1 + plan.duplicates)
        control_busy += per_copy * (1 + plan.duplicates)
        control_arrivals.append(control_ready)
        if record:
            record_sender_side(sender, depart_base, plan, msg_id)
            record_data_transits(depart_base, arrive, plan, msg_id)
            b = begin
            for _ in range(1 + plan.duplicates):
                add_span(Span(CAT_RECV, CONTROL, b, b + recv_us, msg_id))
                add_span(Span(CAT_ACK, CONTROL, b + recv_us,
                              b + recv_us + send_us, msg_id))
                b += per_copy
            record_ack_transits(b, 1 + plan.duplicates, msg_id)
        return t

    for root in cycle.roots():
        owner = dest_of[root.act_id]
        if root.kind == KIND_TERMINAL:
            start = past_stalls(owner, ready[owner])
            stall_us += start - ready[owner]
            if record and start > ready[owner]:
                add_span(Span(CAT_STALL, owner, ready[owner], start))
            t = send_to_control(start, root.act_id, owner)
            if record:
                add_envelope(Envelope(root.act_id, None, owner, start,
                                      t, False))
            busy[owner] += t - start
            ready[owner] = t
            continue
        seq += 1
        heappush(queue, (ready[owner], seq, owner, False, root))

    # --- steps 3-4: event loop ---------------------------------------------
    while queue:
        arrival, _, p, via_message, act = heappop(queue)
        proc_ready = ready[p]
        start = proc_ready if proc_ready > arrival else arrival
        stalled = past_stalls(p, start)
        stall_us += stalled - start
        if record and stalled > start:
            add_span(Span(CAT_STALL, p, start, stalled))
        start = stalled
        t = start
        env_wait_comm = 0.0
        env_wait_protocol = 0.0
        if via_message:
            # Receive the data copy, ack it; drop + ack any duplicate.
            plan = plan_delivery(faults, protocol, cycle_index, act.act_id)
            t += (recv_us + send_us) * (1 + plan.duplicates)
            if record:
                env_wait_comm = send_us + latency_us + plan.jitter_us
                env_wait_protocol = plan.timeout_wait_us
                b = start
                for _ in range(1 + plan.duplicates):
                    add_span(Span(CAT_RECV, p, b, b + recv_us,
                                  act.act_id))
                    add_span(Span(CAT_ACK, p, b + recv_us,
                                  b + recv_us + send_us, act.act_id))
                    b += recv_us + send_us
                record_ack_transits(b, 1 + plan.duplicates, act.act_id)
        token_start = t
        t += left_us if act.side == LEFT else right_us
        extra = get_extra(act.act_id)
        if extra is not None:
            t += extra
        if record:
            add_span(Span(CAT_TOKEN_ADD if act.tag == "+" else
                          CAT_TOKEN_DELETE, p, token_start, t,
                          act.act_id))
        activations[p] += 1
        if act.side == LEFT:
            left_activations[p] += 1

        for succ_id in act.successors:
            succ = acts[succ_id]
            gen_start = t
            t += successor_us
            if record:
                add_span(Span(CAT_SUCCESSOR, p, gen_start, t, succ_id))
            if succ.kind == KIND_TERMINAL:
                t = send_to_control(t, succ_id, p)
                continue
            dest = dest_of[succ_id]
            seq += 1
            if dest == p:
                heappush(queue, (t, seq, p, False, succ))
            else:
                plan = plan_delivery(faults, protocol, cycle_index,
                                     succ_id)
                copies = plan.attempts + plan.duplicates
                retransmits += plan.retransmits
                duplicate_drops += plan.duplicates
                timeout_wait_us += plan.timeout_wait_us
                acks += 1 + plan.duplicates
                n_messages += copies + 1 + plan.duplicates
                network_busy += latency_us * (copies + 1 + plan.duplicates) \
                    + plan.jitter_us
                arrive = t + send_us + plan.timeout_wait_us \
                    + latency_us + plan.jitter_us
                if record:
                    record_sender_side(p, t, plan, succ_id)
                    record_data_transits(t, arrive, plan, succ_id)
                # Sender: send per attempt, then the ack receipt.
                t += send_us * plan.attempts + recv_us
                heappush(queue, (arrive, seq, dest, True, succ))

        if record:
            add_envelope(Envelope(act.act_id, act.parent_id, p, start, t,
                                  via_message,
                                  wait_comm_us=env_wait_comm,
                                  wait_protocol_us=env_wait_protocol))
        busy[p] += t - start
        ready[p] = t

    makespan = max([match_start + costs.constant_tests_us]
                   + ready + control_arrivals)
    if record:
        recorder.add_cycle(CycleTimeline(
            index=cycle_index, n_procs=n_procs, makespan_us=makespan,
            proc_busy_us=list(busy), spans=spans, envelopes=envelopes))
    return CycleResult(index=cycle_index, makespan_us=makespan,
                       proc_busy_us=busy,
                       proc_activations=activations,
                       proc_left_activations=left_activations,
                       n_messages=n_messages,
                       network_busy_us=network_busy,
                       control_busy_us=control_busy,
                       retransmits=retransmits,
                       duplicate_drops=duplicate_drops,
                       acks=acks,
                       timeout_wait_us=timeout_wait_us,
                       stall_us=stall_us,
                       recovery_us=recovery_us)

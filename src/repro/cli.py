"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``sections``
    Print the Table 5-2 statistics of the three characteristic sections.
``simulate``
    Simulate a section (or a trace file) on an MPC and print speedups;
    ``--loss/--dup/--jitter/--fault-seed`` inject deterministic faults.
``fault-sweep``
    Speedup-vs-loss-rate degradation curve at one processor count.
``profile``
    Record a run's timeline and report idle-time attribution, an ASCII
    Gantt chart, or export Chrome trace-event JSON / JSONL spans.
``cache-stats``
    Trace-cache contents (entries, quarantined files) and counters.
``figures``
    Regenerate paper figures (same as ``examples/paper_figures.py``).
``trace``
    Generate a section trace and write it in the Fig 4-1 text format.
``run``
    Run a section on an executor backend (``--backend sim`` /
    ``actors`` / ``served``; live runs are cross-checked against the
    simulator), or execute an OPS5 source file on the Rete engine.
    ``--trace-live`` distributed-traces an actors run (flight
    recorders, span contexts, clock-aligned merge) into a Chrome
    trace-event file, reconciled against the match counters.
``loadtest``
    Open-loop (Poisson-arrival) load test of the served backend;
    writes throughput, latency quantiles and shed counts to
    ``BENCH_served.json``.

Examples
--------
::

    python -m repro sections
    python -m repro simulate --section rubik --procs 1 8 32 --overhead 8
    python -m repro simulate --section rubik --procs 16 --overhead 8 \\
                             --loss 0.01 --jitter 5
    python -m repro fault-sweep --section rubik --procs 16 --overhead 8
    python -m repro profile rubik --procs 16 --overhead 8
    python -m repro profile rubik --procs 16 --format chrome --out t.json
    python -m repro simulate --section weaver --procs 16 --json
    python -m repro trace --section weaver --out weaver.trace
    python -m repro simulate --trace-file weaver.trace --procs 16
    python -m repro run --backend actors --section rubik --procs 2
    python -m repro run --backend actors --procs 4 --trace-live
    python -m repro run --backend served --sessions 8 --procs 4
    python -m repro loadtest --sessions 64 --duration 5
    python -m repro run my_program.ops --max-cycles 100

Errors (an unreadable or malformed trace file, an invalid flag
combination) exit with status 2 and a one-line ``error: ...`` message
on stderr — never a bare traceback.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import List, Optional

from .analysis import format_table
from .mpc import (OVERHEADS, GridPoint, RunConfig, fault_sweep,
                  format_degradation, run_grid, set_default_workers,
                  simulate_base, speedup)
from .obs import configure_logging
from .trace import (TraceFormatError, TraceValidationError, read_trace,
                    save_trace, set_cache_enabled, validate_trace)
from .workloads import rubik_section, tourney_section, weaver_section

logger = logging.getLogger(__name__)

SECTIONS = {
    "rubik": rubik_section,
    "tourney": tourney_section,
    "weaver": weaver_section,
}


class CLIError(Exception):
    """A user-facing error: printed as one line, exit status 2."""


def _print_json(payload: dict, sort_keys: bool = False) -> None:
    """Print a ``--json`` payload with the end-of-run observability
    snapshot folded in under ``"obs"``.

    Every machine-readable output thereby carries what the whole stack
    did this process — trace-cache hits, broken sweep pools
    (``parallel.pool_broken``), shed sessions, live-trace dumps —
    instead of those counters dying invisibly at exit."""
    from .obs import get_registry
    payload = dict(payload)
    payload["obs"] = get_registry().snapshot()
    print(json.dumps(payload, indent=2, sort_keys=sort_keys))


def _apply_perf_flags(args) -> None:
    """Honor the shared --workers / --no-trace-cache options."""
    if getattr(args, "no_trace_cache", False):
        set_cache_enabled(False)
    workers = getattr(args, "workers", None)
    if workers is not None:
        set_default_workers(workers)


def _read_trace_file(path):
    try:
        trace = read_trace(path)
    except OSError as err:
        raise CLIError(f"cannot read trace file {path}: "
                       f"{err.strerror or err}") from err
    except TraceFormatError as err:
        raise CLIError(f"malformed trace file {path}: {err}") from err
    try:
        validate_trace(trace)
    except TraceValidationError as err:
        raise CLIError(f"invalid trace {path}: {err}") from err
    return trace


def _load_trace(args):
    path = getattr(args, "trace_file", None)
    if path:
        return _read_trace_file(path)
    return SECTIONS[args.section](args.seed)


def _run_config(args, **kwargs) -> RunConfig:
    """Flag validation, shared with every backend: a RunConfig off the
    argparse namespace (:meth:`repro.mpc.RunConfig.from_args`), with
    ``ValueError`` re-raised as a one-line :class:`CLIError`."""
    try:
        return RunConfig.from_args(args, **kwargs)
    except ValueError as err:
        raise CLIError(str(err)) from err


def _check_procs(procs) -> None:
    for n in procs if isinstance(procs, list) else [procs]:
        if n < 1:
            raise CLIError(f"--procs must be >= 1, got {n}")


def cmd_sections(args) -> int:
    rows = []
    for name, build in SECTIONS.items():
        stats = build(args.seed).stats()
        lf = round(100 * stats.left_fraction)
        rows.append([name, f"{stats.left} ({lf}%)",
                     f"{stats.right} ({100 - lf}%)", stats.total])
    print(format_table(
        ["section", "left", "right", "total"], rows,
        title="Characteristic sections (paper Table 5-2)"))
    return 0


def cmd_simulate(args) -> int:
    _check_procs(args.procs)
    configs = [_run_config(args, n_procs=n) for n in args.procs]
    faults = configs[0].faults
    trace = _load_trace(args)
    overheads = configs[0].overheads
    if args.timeline and len(args.procs) != 1:
        raise CLIError("--timeline needs exactly one --procs value "
                       f"(got {len(args.procs)})")
    base = simulate_base(trace)
    if args.timeline:
        # Record the run in-process (spans cannot cross worker
        # boundaries); bit-identical to the unrecorded fan-out.
        from .mpc import (TimelineRecorder, simulate_config,
                          write_chrome_trace)
        recorder = TimelineRecorder()
        runs = [simulate_config(trace,
                                configs[0].replace(recorder=recorder))]
        write_chrome_trace(recorder.timeline, args.timeline)
    else:
        # One grid point per processor count, fanned out over --workers.
        points = [GridPoint(n_procs=c.n_procs, overheads=c.overheads,
                            faults=c.faults,
                            protocol=c.protocol if c.faults is not None
                            else None,
                            compress_rounds=c.compress_rounds)
                  for c in configs]
        runs = run_grid(trace, points,
                        workers=getattr(args, "workers", None))
    if args.json:
        payload = {
            "trace": trace.name,
            "overheads_us": overheads.total_us,
            "base_total_us": base.total_us,
            "faults": None if faults is None else {
                "seed": faults.seed, "loss_prob": faults.loss_prob,
                "dup_prob": faults.dup_prob,
                "jitter_us": faults.jitter_us},
            "points": [{
                "n_procs": n_procs,
                "total_us": run.total_us,
                "speedup": speedup(base, run),
                "n_messages": run.n_messages,
                "network_idle_fraction": run.network_idle_fraction(),
                "retransmits": run.retransmits,
                "duplicate_drops": run.duplicate_drops,
            } for n_procs, run in zip(args.procs, runs)],
        }
        _print_json(payload)
        return 0
    headers = ["procs", "time (ms)", "speedup", "messages", "net idle"]
    if faults is not None:
        headers += ["retransmits", "dup drops"]
    rows = []
    for n_procs, run in zip(args.procs, runs):
        row = [n_procs, f"{run.total_us / 1000:.2f}",
               f"{speedup(base, run):.2f}x", run.n_messages,
               f"{run.network_idle_fraction():.1%}"]
        if faults is not None:
            row += [run.retransmits, run.duplicate_drops]
        rows.append(row)
    title = (f"{trace.name}: base (1 proc, 0 overhead) = "
             f"{base.total_us / 1000:.2f} ms; "
             f"overheads {overheads.label()}")
    if faults is not None:
        title += (f"; faults loss={faults.loss_prob:g} "
                  f"dup={faults.dup_prob:g} jitter={faults.jitter_us:g}us "
                  f"seed={faults.seed}")
    print(format_table(headers, rows, title=title))
    if args.timeline:
        print(f"timeline written to {args.timeline} "
              f"(load in https://ui.perfetto.dev)")
    return 0


def cmd_fault_sweep(args) -> int:
    for rate in args.loss:
        if not 0.0 <= rate <= 1.0:
            raise CLIError(f"--loss rates must be in [0, 1], got {rate:g}")
    # Validates procs, overhead and the shared fault/protocol flags.
    config = _run_config(args, n_procs=args.procs, loss=0.0)
    trace = _load_trace(args)
    overheads = config.overheads
    curve = fault_sweep(trace, n_procs=args.procs, loss_rates=args.loss,
                        overheads=overheads, seed=args.fault_seed,
                        dup_prob=args.dup, jitter_us=args.jitter,
                        protocol=config.protocol,
                        workers=getattr(args, "workers", None))
    if args.timeline:
        # Record the worst point of the sweep (highest loss rate).
        from .mpc import (TimelineRecorder, simulate_config,
                          write_chrome_trace)
        recorder = TimelineRecorder()
        simulate_config(trace, _run_config(
            args, n_procs=args.procs, loss=max(args.loss),
            recorder=recorder))
        write_chrome_trace(recorder.timeline, args.timeline)
    if args.json:
        _print_json({
            "trace": trace.name,
            "n_procs": args.procs,
            "overheads_us": overheads.total_us,
            "seed": args.fault_seed,
            "loss_rates": curve.loss_rates,
            "speedups": curve.speedups,
            "degradation": [curve.degradation(i)
                            for i in range(len(curve.speedups))],
            "monotone": curve.is_monotone(),
        })
    else:
        print(format_degradation(
            curve,
            title=f"{trace.name}@{args.procs} procs, overheads "
                  f"{overheads.label()}, seed {args.fault_seed}: "
                  f"speedup degradation vs message-loss rate"))
        if args.timeline:
            print(f"timeline (loss {max(args.loss):g}) written to "
                  f"{args.timeline}")
    if not curve.is_monotone():
        logger.warning("degradation curve is not monotone")
    return 0


def cmd_diagnose(args) -> int:
    from .analysis import diagnose, diagnose_measured
    config = _run_config(args, n_procs=args.procs)
    trace = _load_trace(args)
    findings = diagnose(trace)
    findings += diagnose_measured(trace, n_procs=args.procs,
                                  overheads=config.overheads)
    if getattr(args, "live", False):
        # Measured truth, not the model: run the actors backend traced
        # and attribute the merged live timeline the same way.
        from .analysis import diagnose_live
        from .exec import ExecutorError
        from .exec import run as exec_run
        try:
            outcome = exec_run(trace, config.replace(live_trace=True),
                               backend="actors")
        except ExecutorError as err:
            raise CLIError(f"{type(err).__name__}: {err}") from err
        findings += diagnose_live(outcome.live)
    if not findings:
        print(f"{trace.name}: no speedup limiters detected")
        return 0
    print(f"{trace.name}: {len(findings)} finding(s)")
    for finding in findings:
        print(f"  {finding}")
    return 0


def cmd_profile(args) -> int:
    from .mpc import (TimelineRecorder, attribute_timeline,
                      format_attribution, gantt_section, simulate_config,
                      write_chrome_trace, write_timeline_jsonl)
    recorder = TimelineRecorder()
    config = _run_config(args, n_procs=args.procs, recorder=recorder)
    overheads = config.overheads
    faults = config.faults
    if args.target in SECTIONS:
        trace = SECTIONS[args.target](args.seed)
    else:
        trace = _read_trace_file(args.target)
    simulate_config(trace, config)
    timeline = recorder.timeline
    if args.format == "chrome":
        out = args.out or f"{trace.name}-{args.procs}p.trace.json"
        write_chrome_trace(timeline, out)
        print(f"wrote Chrome trace with "
              f"{sum(len(c.spans) for c in timeline.cycles)} spans over "
              f"{len(timeline.cycles)} cycles to {out} "
              f"(load in https://ui.perfetto.dev)")
        return 0
    if args.format == "jsonl":
        if args.out:
            with open(args.out, "w", encoding="utf-8") as stream:
                n = write_timeline_jsonl(timeline, stream)
            print(f"wrote {n} spans to {args.out}")
        else:
            write_timeline_jsonl(timeline, sys.stdout)
        return 0
    section = attribute_timeline(timeline)
    if args.format == "json":
        text = json.dumps(section.to_dict(), indent=2)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as stream:
                stream.write(text + "\n")
            print(f"wrote attribution to {args.out}")
        else:
            print(text)
        return 0
    title = (f"{trace.name} @{args.procs} procs, overheads "
             f"{overheads.label()}")
    if faults is not None:
        title += (f", faults loss={faults.loss_prob:g} "
                  f"dup={faults.dup_prob:g} seed={faults.seed}")
    print(format_attribution(section, title=title))
    print()
    print(gantt_section(timeline, width=args.width,
                        cycles=args.cycle or None))
    return 0


def cmd_cache_stats(args) -> int:
    from .trace import cache_dir, cache_enabled, cache_stats, \
        format_cache_stats
    directory = cache_dir()
    entries = sorted(directory.glob("*.trace")) \
        if directory.is_dir() else []
    corrupt = sorted(directory.glob("*.trace.corrupt")) \
        if directory.is_dir() else []
    total_bytes = 0
    for path in entries:
        try:
            total_bytes += path.stat().st_size
        except OSError:
            pass
    if args.json:
        _print_json({
            "dir": str(directory),
            "enabled": cache_enabled(),
            "entries": len(entries),
            "bytes": total_bytes,
            "quarantined": len(corrupt),
            "counters": cache_stats(),
        })
        return 0
    print(f"cache dir: {directory}")
    print(f"enabled: {cache_enabled()}")
    print(f"entries: {len(entries)} ({total_bytes / 1024:.1f} KiB)")
    print(f"quarantined: {len(corrupt)}")
    print(f"this process: {format_cache_stats()}")
    return 0


def cmd_autotune(args) -> int:
    from .analysis import autotune
    trace = _load_trace(args)
    result = autotune(trace, n_procs=args.procs)
    print(f"{trace.name}:")
    print(result.summary())
    if args.out:
        from .trace import save_trace
        save_trace(result.trace, args.out)
        print(f"tuned trace written to {args.out}")
    return 0


def cmd_trace(args) -> int:
    trace = SECTIONS[args.section](args.seed)
    save_trace(trace, args.out)
    print(f"wrote {trace.total_activations()} activations over "
          f"{len(trace.cycles)} cycles to {args.out}")
    return 0


def cmd_generate(args) -> int:
    from .trace import save_trace
    from .workloads import SectionSpec, generate_section
    spec = SectionSpec(
        name=args.name, cycles=args.cycles,
        right_activations=args.right, left_activations=args.left,
        fanout=args.fanout, active_left_buckets=args.buckets,
        left_skew=args.skew, seed=args.seed)
    trace = generate_section(spec)
    save_trace(trace, args.out)
    stats = trace.stats()
    print(f"wrote {stats.total} activations "
          f"({stats.left} left / {stats.right} right) over "
          f"{len(trace.cycles)} cycles to {args.out}")
    return 0


def cmd_figures(args) -> int:
    # Reuse the example script's figure registry.
    import importlib.util
    import pathlib
    spec_path = (pathlib.Path(__file__).resolve().parent.parent.parent
                 / "examples" / "paper_figures.py")
    if not spec_path.exists():
        print("error: examples/paper_figures.py not found "
              "(source checkout required)", file=sys.stderr)
        return 2
    spec = importlib.util.spec_from_file_location("paper_figures",
                                                  spec_path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # type: ignore[union-attr]
    sections = [rubik_section(), tourney_section(), weaver_section()]
    wanted = args.names or list(module.FIGURES)
    for name in wanted:
        if name not in module.FIGURES:
            print(f"error: unknown figure {name!r}; choose from "
                  f"{sorted(module.FIGURES)}", file=sys.stderr)
            return 2
        module.FIGURES[name](sections)
    return 0


def cmd_check(args) -> int:
    from .check import mutated_right_token_cost, run_check
    if args.budget < 1:
        raise CLIError(f"--budget must be >= 1, got {args.budget}")

    def progress(case, failures):
        if failures:
            names = ", ".join(name for name, _ in failures)
            print(f"FAIL case {case.index} ({case.family}): {names}",
                  file=sys.stderr)
        elif args.verbosity:
            print(f"ok case {case.index} ({case.family})",
                  file=sys.stderr)

    only = tuple(name for name in (args.only or "").split(",")
                 if name) or None

    def run():
        try:
            return run_check(seed=args.seed, budget=args.budget,
                             out_dir=args.out, only=only,
                             progress=progress)
        except ValueError as err:
            raise CLIError(str(err)) from err

    if args.mutate:
        # Deliberately mis-price the optimized loop: a harness that
        # still exits 0 under --mutate is broken.
        with mutated_right_token_cost(args.mutate):
            report = run()
    else:
        report = run()

    if args.json:
        _print_json(report.to_dict(), sort_keys=True)
    else:
        print(f"checked {report.cases_run} cases "
              f"(seed {report.seed}) in {report.elapsed_s:.2f}s: "
              f"{len(report.failures)} failing")
        for failure in report.failures:
            print(f"  {failure.describe()}")
            if failure.repro_path:
                print(f"    repro: {failure.repro_path}")
    return 0 if report.ok else 1


def cmd_loadtest(args) -> int:
    from .exec.loadtest import run_loadtest
    if args.duration <= 0:
        raise CLIError(f"--duration must be > 0, got {args.duration:g}")
    _check_procs(args.procs)
    payload = run_loadtest(sessions=args.sessions,
                           duration_s=args.duration, seed=args.seed,
                           procs=args.procs,
                           max_sessions=args.max_sessions,
                           max_pending=args.max_pending)
    with open(args.out, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2)
        stream.write("\n")
    if args.json:
        _print_json(payload)
    else:
        shed = payload["shed"]
        lat = payload["latency_s"]
        print(f"offered {payload['sessions']} sessions over "
              f"{payload['duration_s']:g}s "
              f"({payload['offered_rate_per_s']:.1f}/s, seed "
              f"{payload['seed']}), {payload['procs']} actors each")
        print(f"  completed {payload['completed']} "
              f"({payload['throughput_per_s']:.1f}/s achieved); shed "
              f"{shed['total']} (overloaded {shed['overloaded']}, "
              f"draining {shed['draining']}); "
              f"errors {sum(payload['errors'].values())}")
        if lat["count"]:
            print(f"  latency p50 {lat['p50'] * 1000:.1f} ms / "
                  f"p95 {lat['p95'] * 1000:.1f} ms / "
                  f"p99 {lat['p99'] * 1000:.1f} ms "
                  f"(max {lat['max'] * 1000:.1f} ms)")
    print(f"wrote {args.out}")
    return 0


def cmd_run(args) -> int:
    if args.source:
        return _run_ops5(args)
    return _run_backend(args)


def _run_ops5(args) -> int:
    """The legacy direct mode: execute an OPS5 source file."""
    from .ops5 import Interpreter, parse_program
    from .rete import ReteNetwork
    with open(args.source, "r", encoding="utf-8") as fh:
        program = parse_program(fh.read())
    interp = Interpreter(matcher=ReteNetwork())
    interp.load_program(program)
    result = interp.run(max_cycles=args.max_cycles)
    sys.stdout.write(result.output)
    status = ("halted" if result.halted
              else "quiesced" if result.quiesced else "cycle limit")
    print(f"[{result.cycles} firings; {status}]")
    if args.verbose:
        for record in result.firings:
            print(f"  cycle {record.cycle}: {record.production_name}")
    return 0


#: The ``repro run --chaos`` preset: actor kills and stalls (per
#: actor-cycle, cheap to recover, detected immediately) plus message
#: delays (harmless to counting).  Per-message drop/duplicate faults
#: are deliberately absent: a real section pushes thousands of data
#: messages per cycle, so any per-message corruption rate makes a
#: clean replay attempt improbable within the restart budget — those
#: faults are exercised by ``repro check --only live_recovery`` and
#: the chaos test suite on small generated traces instead.
_CHAOS_PRESET = dict(kill_prob=0.05, delay_prob=0.01, delay_s=0.002,
                     stall_prob=0.05, stall_s=0.01)


def _chaos_policy(args):
    """The ChaosPolicy requested by ``--chaos``/``--chaos-seed``."""
    if not (getattr(args, "chaos", False)
            or getattr(args, "chaos_seed", None) is not None):
        return None
    if args.backend != "actors":
        raise CLIError("--chaos applies to the actors backend only "
                       "(use --backend actors)")
    from .exec import ChaosPolicy
    seed = args.chaos_seed if args.chaos_seed is not None else 0
    return ChaosPolicy(seed=seed, **_CHAOS_PRESET)


def _run_backend(args) -> int:
    """Run a section on one executor backend (``--backend``)."""
    from .exec import ExecutorError, get_executor, match_signature
    from .exec import run as exec_run
    config = _run_config(args, n_procs=args.procs)
    if config.compress_rounds and args.backend != "sim":
        raise CLIError("--compress-rounds applies to the sim backend "
                       "only (live backends execute every cycle)")
    if config.supervise is not None and args.backend == "sim":
        raise CLIError("--supervise applies to the live backends only "
                       "(the simulator has nothing to supervise)")
    if config.live_trace and args.backend != "actors":
        raise CLIError("--trace-live applies to the actors backend "
                       "only (use --backend actors; 'repro profile' "
                       "exports modeled sim timelines)")
    if getattr(args, "trace_out", None) and not config.live_trace:
        raise CLIError("--trace-out requires --trace-live")
    chaos = _chaos_policy(args)
    if chaos is not None:
        # Bound the per-cycle deadline so an injected wedge surfaces
        # in seconds, not the full REPRO_EXEC_TIMEOUT_S.
        import dataclasses as _dc
        from .mpc import SupervisePolicy
        policy = config.supervise or SupervisePolicy()
        if policy.cycle_timeout_s is None:
            policy = _dc.replace(policy, cycle_timeout_s=30.0)
        config = config.replace(supervise=policy)
    trace = _load_trace(args)
    try:
        if args.backend == "served":
            executor = get_executor("served",
                                    max_sessions=args.sessions)
            try:
                handles = [executor.submit(trace, config)
                           for _ in range(args.sessions)]
                results = [handle.result() for handle in handles]
            finally:
                executor.close()
            outcome = results[0]
            if any(match_signature(r) != match_signature(outcome)
                   for r in results[1:]):
                raise CLIError("served sessions diverged on the same "
                               "input — session isolation is broken")
        elif args.backend == "actors":
            outcome = exec_run(trace, config, backend="actors",
                               transport=args.transport, chaos=chaos)
        else:
            outcome = exec_run(trace, config, backend="sim")
    except ExecutorError as err:
        # Typed, actionable: the run failed loudly rather than wedging
        # or returning silently-wrong counters.
        raise CLIError(f"{type(err).__name__}: {err}") from err
    except ValueError as err:
        raise CLIError(str(err)) from err
    live = args.backend != "sim"
    if live:
        # Every live run is cross-checked against the model: same
        # activation counts, message counts and fire sequence.
        reference = exec_run(trace, config.replace(live_trace=False),
                             backend="sim")
        if match_signature(reference) != match_signature(outcome):
            raise CLIError(f"{args.backend} run diverged from the "
                           f"simulator on {trace.name}")
    trace_info = None
    if config.live_trace:
        trace_info = _export_live_trace(args, trace, outcome)
    result = outcome.result
    n_fires = sum(len(f) for f in outcome.fires)
    if args.json:
        payload = {
            "trace": trace.name,
            "backend": args.backend,
            "n_procs": config.n_procs,
            "overheads_us": config.overheads.total_us,
            "cycles": result.n_cycles,
            "n_messages": result.n_messages,
            "instantiations": n_fires,
            "wall_s": outcome.wall_s,
            "matches_simulator": True if live else None,
        }
        if config.supervise is not None:
            payload["supervised"] = True
        if chaos is not None:
            payload["chaos_seed"] = chaos.seed
        if args.backend == "served":
            payload["sessions"] = args.sessions
        if args.backend == "sim":
            payload["total_us"] = result.total_us
        if trace_info is not None:
            payload["live_trace"] = trace_info
        _print_json(payload)
        return 0
    print(f"{trace.name} on backend {args.backend}: "
          f"{result.n_cycles} cycles, {result.n_messages} messages, "
          f"{n_fires} instantiations "
          f"({config.n_procs} procs, overheads "
          f"{config.overheads.label()})")
    if args.backend == "sim":
        print(f"  model time {result.total_us / 1000:.2f} ms; "
              f"wall {outcome.wall_s:.3f} s")
    else:
        print(f"  wall {outcome.wall_s:.3f} s"
              + (f" ({args.transport} transport)"
                 if args.backend == "actors" else
                 f" ({args.sessions} concurrent sessions, "
                 f"all identical)"))
        print("  match results and fire sequence match the simulator")
        if chaos is not None:
            print(f"  recovered from seeded chaos (seed {chaos.seed}) "
                  f"bit-identically")
        elif config.supervise is not None:
            print("  supervised: heartbeats, deadlines, "
                  "checkpoint-replay restarts")
        if trace_info is not None:
            print(f"  live trace: {trace_info['spans']} spans over "
                  f"{trace_info['cycles']} committed cycles, "
                  f"reconciled against the match counters; written to "
                  f"{trace_info['path']} "
                  f"(load in https://ui.perfetto.dev)")
            for line in trace_info["findings"]:
                print(f"    {line}")
    return 0


def _export_live_trace(args, trace, outcome) -> dict:
    """Write, reconcile and summarize a ``--trace-live`` run's merged
    timeline; returns the JSON-ready ``live_trace`` payload."""
    from .analysis import diagnose_live
    from .obs.trace import reconcile_live, write_chrome_trace_live
    timeline = outcome.live
    if timeline is None:
        raise CLIError("--trace-live produced no timeline "
                       "(executor returned no live trace)")
    try:
        reconcile_live(timeline, outcome.result)
    except ValueError as err:
        raise CLIError(f"live trace failed reconciliation: {err}") \
            from err
    out = getattr(args, "trace_out", None) \
        or f"{trace.name}-live-{args.transport}.trace.json"
    with open(out, "w", encoding="utf-8") as stream:
        write_chrome_trace_live(timeline, stream)
    findings = [str(f) for f in diagnose_live(timeline)]
    return {
        "path": out,
        "spans": len(timeline.spans),
        "cycles": len(timeline.cycle_indices()),
        "reconciled": True,
        "findings": findings,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Production systems on message-passing computers "
                    "(Tambe/Acharya/Gupta 1989) — reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError("must be >= 1")
        return value

    # Shared performance knobs (see README "Performance").
    perf = argparse.ArgumentParser(add_help=False)
    perf.add_argument(
        "--workers", type=positive_int, default=None, metavar="N",
        help="worker processes for simulation sweeps (default: all "
             "cores, or $REPRO_SWEEP_WORKERS; 1 = fully serial). "
             "Results are identical for any value.")
    perf.add_argument(
        "--no-trace-cache", action="store_true",
        help="rebuild section traces from scratch instead of loading "
             "them from the on-disk trace cache (equivalent to "
             "REPRO_TRACE_CACHE=0)")

    # Shared logging verbosity (routed through repro.obs.logging).
    verb = argparse.ArgumentParser(add_help=False)
    verb.add_argument(
        "-v", dest="verbosity", action="count", default=0,
        help="log progress to stderr (-v = INFO, -vv = DEBUG)")
    verb.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress warnings (errors only)")

    # Shared output/input flags, declared once and reused by every
    # subcommand that takes them (same spelling and default everywhere).
    jsonp = argparse.ArgumentParser(add_help=False)
    jsonp.add_argument(
        "--json", action="store_true",
        help="print machine-readable JSON instead of a table")

    seedp = argparse.ArgumentParser(add_help=False)
    seedp.add_argument("--seed", type=int, default=0,
                       help="trace-generation seed (default 0)")

    timelinep = argparse.ArgumentParser(add_help=False)
    timelinep.add_argument(
        "--timeline", metavar="PATH",
        help="record the run and write a Chrome trace-event file here")

    compressp = argparse.ArgumentParser(add_help=False)
    compressp.add_argument(
        "--compress-rounds", action="store_true",
        help="collapse fully-idle cycle stretches analytically "
             "(bit-identical results, O(active work) runtime; "
             "composes with fault injection — fault draws are keyed "
             "to absolute cycle indices)")

    def source_parent(default_section: str) -> argparse.ArgumentParser:
        src = argparse.ArgumentParser(add_help=False)
        group = src.add_mutually_exclusive_group()
        group.add_argument("--section", choices=sorted(SECTIONS),
                           default=default_section)
        group.add_argument("--trace-file", help="a saved Fig 4-1 trace")
        return src

    p = sub.add_parser("sections", help="Table 5-2 statistics",
                       parents=[perf, verb, seedp])
    p.set_defaults(fn=cmd_sections)

    # Shared fault-injection knobs (see README "Fault model").
    fault = argparse.ArgumentParser(add_help=False)
    fault.add_argument(
        "--dup", type=float, default=0.0, metavar="P",
        help="per-message duplication probability in [0, 1] (default 0)")
    fault.add_argument(
        "--jitter", type=float, default=0.0, metavar="US",
        help="max extra transit latency per message in us (default 0)")
    fault.add_argument(
        "--fault-seed", type=int, default=0, metavar="N",
        help="seed of the deterministic fault model (default 0); the "
             "same seed always reproduces the same faults")
    fault.add_argument(
        "--timeout", type=float, default=500.0, metavar="US",
        help="ack timeout before retransmit, in us (default 500)")
    fault.add_argument(
        "--retries", type=int, default=8, metavar="N",
        help="max retransmissions before the reliable fallback "
             "(default 8)")

    p = sub.add_parser("simulate", help="simulate a section on an MPC",
                       parents=[perf, fault, verb,
                                source_parent("rubik"), seedp, jsonp,
                                timelinep, compressp])
    p.add_argument("--procs", type=int, nargs="+",
                   default=[1, 2, 4, 8, 16, 32])
    p.add_argument("--overhead", type=int, default=0,
                   help="total message overhead in us "
                        "(a Table 5-1 row: 0, 8, 16 or 32)")
    p.add_argument("--loss", type=float, default=0.0, metavar="P",
                   help="per-message loss probability in [0, 1] "
                        "(default 0 = the paper's perfect network)")
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("fault-sweep",
                       help="speedup degradation vs message-loss rate",
                       parents=[perf, fault, verb,
                                source_parent("rubik"), seedp, jsonp,
                                timelinep])
    p.add_argument("--procs", type=int, default=16,
                   help="processor count held fixed across the sweep")
    p.add_argument("--loss", type=float, nargs="+", metavar="P",
                   default=[0.0, 1e-4, 1e-3, 1e-2],
                   help="loss rates to sweep (default: 0 1e-4 1e-3 1e-2)")
    p.add_argument("--overhead", type=int, default=8,
                   help="total message overhead in us "
                        "(a Table 5-1 row: 0, 8, 16 or 32; default 8)")
    p.set_defaults(fn=cmd_fault_sweep)

    p = sub.add_parser("profile",
                       help="record a run and report its timeline: "
                            "idle-time attribution, Gantt chart, "
                            "Chrome trace export",
                       parents=[fault, verb, seedp])
    p.add_argument("target",
                   help="section name (%s) or a saved trace file"
                        % "/".join(sorted(SECTIONS)))
    p.add_argument("--procs", type=int, default=16)
    p.add_argument("--overhead", type=int, default=8,
                   help="total message overhead in us "
                        "(a Table 5-1 row: 0, 8, 16 or 32; default 8)")
    p.add_argument("--loss", type=float, default=0.0, metavar="P",
                   help="per-message loss probability in [0, 1] "
                        "(default 0)")
    p.add_argument("--format", choices=["table", "chrome", "jsonl",
                                        "json"],
                   default="table",
                   help="table = attribution + Gantt (default); chrome "
                        "= Perfetto-loadable trace-event JSON; jsonl = "
                        "one JSON object per span; json = attribution "
                        "summary")
    p.add_argument("--out", metavar="PATH",
                   help="output file (chrome default: "
                        "<trace>-<procs>p.trace.json; jsonl/json "
                        "default: stdout)")
    p.add_argument("--cycle", type=int, nargs="+", metavar="N",
                   help="cycle indices to chart (default: the longest)")
    p.add_argument("--width", type=int, default=72,
                   help="Gantt chart width in columns (default 72)")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("cache-stats",
                       help="trace-cache contents and counters",
                       parents=[verb, jsonp])
    p.set_defaults(fn=cmd_cache_stats)

    p = sub.add_parser("diagnose",
                       help="detect speedup limiters in a trace "
                            "(Section 5.2 methodology)",
                       parents=[perf, verb, source_parent("tourney"),
                                seedp])
    p.add_argument("--procs", type=int, default=16,
                   help="processor count for the measured idle-time "
                        "attribution (default 16)")
    p.add_argument("--overhead", type=int, default=8,
                   help="overhead setting for the measured attribution "
                        "(default 8)")
    p.add_argument("--live", action="store_true",
                   help="also run the actors backend with live "
                        "tracing and attribute the measured (wall-"
                        "clock) idle time — same categories and "
                        "remedies as the simulated attribution")
    p.set_defaults(fn=cmd_diagnose)

    p = sub.add_parser("trace", help="write a section trace to a file",
                       parents=[perf, verb, seedp])
    p.add_argument("--section", choices=sorted(SECTIONS),
                   default="rubik")
    p.add_argument("--out", required=True)
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("autotune",
                       help="apply the Section 5.2 remedies "
                            "automatically",
                       parents=[perf, verb, source_parent("tourney"),
                                seedp])
    p.add_argument("--procs", type=int, default=16)
    p.add_argument("--out", help="write the tuned trace here")
    p.set_defaults(fn=cmd_autotune)

    p = sub.add_parser("generate",
                       help="synthesize a custom section trace",
                       parents=[verb, seedp])
    p.add_argument("--name", default="custom")
    p.add_argument("--cycles", type=int, default=4)
    p.add_argument("--right", type=int, default=1000,
                   help="right activations over the section")
    p.add_argument("--left", type=int, default=1000,
                   help="left activations over the section")
    p.add_argument("--fanout", type=int, default=4)
    p.add_argument("--buckets", type=int, default=32,
                   help="active left buckets per cycle")
    p.add_argument("--skew", type=float, default=0.8,
                   help="Zipf skew of left traffic over buckets")
    p.add_argument("--out", required=True)
    p.set_defaults(fn=cmd_generate)

    p = sub.add_parser("figures", help="regenerate paper figures",
                       parents=[perf, verb])
    p.add_argument("names", nargs="*",
                   help="figure ids (default: all)")
    p.set_defaults(fn=cmd_figures)

    p = sub.add_parser(
        "run",
        help="run a section on an executor backend, or an OPS5 file",
        description="With SOURCE: execute an OPS5 source file on the "
                    "Rete engine (the legacy direct mode). Without: "
                    "run a section on one of the pluggable executor "
                    "backends — 'sim' (the discrete-event simulator), "
                    "'actors' (live asyncio or multiprocessing actors "
                    "speaking the Section 3.2 message protocol) or "
                    "'served' (N concurrent sessions on one asyncio "
                    "server). Live runs are cross-checked against the "
                    "simulator: same match counters, same fire "
                    "sequence.",
        parents=[verb, source_parent("rubik"), seedp, jsonp,
                 compressp])
    p.add_argument("source", nargs="?",
                   help="an OPS5 source file (legacy direct mode; "
                        "overrides --backend)")
    p.add_argument("--backend", choices=("sim", "actors", "served"),
                   default="sim",
                   help="executor backend (default sim)")
    p.add_argument("--procs", type=int, default=8,
                   help="match processors / actors (default 8)")
    p.add_argument("--overhead", type=int, default=0,
                   help="total message overhead in us "
                        "(a Table 5-1 row: 0, 8, 16 or 32)")
    p.add_argument("--transport", choices=("asyncio", "process"),
                   default="asyncio",
                   help="actors backend: how messages move "
                        "(default asyncio; 'process' = one OS process "
                        "per actor)")
    p.add_argument("--sessions", type=positive_int, default=4,
                   metavar="N",
                   help="served backend: concurrent sessions to run "
                        "(default 4)")
    p.add_argument("--supervise", action="store_true",
                   help="live backends: wrap the run in the "
                        "supervision layer (heartbeat liveness checks, "
                        "per-cycle deadlines, checkpoint-replay "
                        "restarts); results stay bit-identical to the "
                        "unsupervised run")
    p.add_argument("--chaos", action="store_true",
                   help="actors backend: inject a light deterministic "
                        "chaos mix (message drop/duplicate/delay, "
                        "actor stalls and kills) and recover through "
                        "supervision; implies --supervise")
    p.add_argument("--chaos-seed", type=int, default=None, metavar="N",
                   help="seed of the deterministic chaos policy "
                        "(implies --chaos; same seed, same faults)")
    p.add_argument("--trace-live", action="store_true",
                   help="actors backend: distributed-trace the live "
                        "run (per-actor flight recorders, span "
                        "contexts on every data message, clock-"
                        "aligned merge), reconcile the spans against "
                        "the match counters and write a Chrome "
                        "trace-event file; match results stay "
                        "bit-identical to the untraced run")
    p.add_argument("--trace-out", metavar="PATH",
                   help="live-trace output path (default "
                        "<trace>-live-<transport>.trace.json)")
    p.add_argument("--max-cycles", type=int, default=10_000)
    p.add_argument("--verbose", action="store_true",
                   help="list every production firing (OPS5 mode)")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "loadtest",
        help="open-loop load test of the served backend",
        description="Offer N sessions to a served-backend server on "
                    "an open-loop (Poisson) arrival schedule at rate "
                    "sessions/duration, seeded and reproducible, and "
                    "measure what the server achieves: throughput, "
                    "exact client-observed latency quantiles "
                    "(p50/p95/p99) and shed counts split by reason. "
                    "Writes the full payload to --out "
                    "(BENCH_served.json).",
        parents=[verb, jsonp])
    p.add_argument("--sessions", type=positive_int, default=64,
                   metavar="N",
                   help="sessions to offer (default 64)")
    p.add_argument("--duration", type=float, default=5.0, metavar="S",
                   help="seconds to spread the arrivals over "
                        "(default 5; offered rate = sessions/duration)")
    p.add_argument("--seed", type=int, default=0,
                   help="arrival-schedule seed (default 0)")
    p.add_argument("--procs", type=int, default=2,
                   help="match actors per session (default 2)")
    p.add_argument("--max-sessions", type=positive_int, default=32,
                   metavar="N",
                   help="server concurrency limit (default 32)")
    p.add_argument("--max-pending", type=positive_int, default=None,
                   metavar="N",
                   help="shed high-water mark (default "
                        "4 x max-sessions)")
    p.add_argument("--out", default="BENCH_served.json", metavar="PATH",
                   help="bench payload file (default BENCH_served.json)")
    p.set_defaults(fn=cmd_loadtest)

    p = sub.add_parser(
        "check",
        help="run the differential-oracle conformance harness",
        description="Generate seeded adversarial traces and OPS5 "
                    "programs, run every oracle pair and invariant on "
                    "each, and shrink any failure to a minimal repro. "
                    "Exits 1 if anything fails.",
        parents=[verb, jsonp])
    p.add_argument("--seed", type=int, default=0,
                   help="root seed of the case stream (default 0)")
    p.add_argument("--budget", type=positive_int, default=200,
                   metavar="N",
                   help="number of generated cases (default 200)")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="write minimal-repro JSON files here on failure")
    p.add_argument("--only", default=None, metavar="NAMES",
                   help="run only the named oracles/invariants "
                        "(comma-separated, e.g. live_recovery); named "
                        "checks run on every eligible case, sampling "
                        "throttles notwithstanding")
    p.add_argument("--mutate", type=float, default=0.0,
                   metavar="US", help=argparse.SUPPRESS)
    p.set_defaults(fn=cmd_check)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(verbose=getattr(args, "verbosity", 0),
                      quiet=getattr(args, "quiet", False))
    _apply_perf_flags(args)
    try:
        return args.fn(args)
    except CLIError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())

"""repro — reproduction of "Implementation of Production Systems on
Message-Passing Computers" (Tambe, Acharya & Gupta, CMU-CS-89-129 /
ICPP 1989).

Layers, bottom-up:

* :mod:`repro.ops5` — the OPS5 language subset and MRA interpreter.
* :mod:`repro.rete` — the Rete match engine with the paper's global
  hashed memories, plus network/source transformations.
* :mod:`repro.trace` — hash-table activity traces (Fig 4-1): recording,
  serialization, validation and trace-level transformations.
* :mod:`repro.mpc` — the discrete-event simulator of the Section 3.2
  mapping, with the Section 4 cost model, Table 5-1 overheads and the
  bucket distribution strategies of Section 5.2.2.
* :mod:`repro.workloads` — the Rubik/Tourney/Weaver characteristic
  sections (synthetic, Table 5-2-exact) and real OPS5 demo programs.
* :mod:`repro.analysis` — the probabilistic bucket model, load metrics
  and report formatting.

Thirty-second tour::

    from repro.workloads import rubik_section
    from repro.mpc import simulate, simulate_base, speedup, TABLE_5_1

    trace = rubik_section()
    base = simulate_base(trace)
    run = simulate(trace, n_procs=32, overheads=TABLE_5_1[1])
    print(f"{speedup(base, run):.1f}x on 32 processors")
"""

__version__ = "1.0.0"

from . import analysis, mpc, ops5, rete, trace, workloads

__all__ = ["analysis", "mpc", "ops5", "rete", "trace", "workloads",
           "__version__"]

"""The "good speedups" section: Rubik (paper Section 5).

Four consecutive MRA cycles from a Rubik's-cube solver.  Published
characteristics reproduced exactly:

* Table 5-2: 2388 left activations (28%), 6114 right (72%), 8502 total.
* Dominated by right activations, which the wme broadcast makes free of
  communication — hence the smallest overhead sensitivity of the three
  sections (≈30% speedup loss at 32 µs total overhead, Figure 5-2 top).
* Figure 5-5: the per-cycle distribution of left tokens over processors
  is quite uneven, and the busy buckets *alternate* between consecutive
  cycles, even though the aggregate over the section is roughly even.

The alternation is modelled by giving odd and even cycles disjoint
active left-bucket sets; the unevenness by Zipf-skewed token counts over
the ~48 active buckets of each cycle.
"""

from __future__ import annotations

import random

from ..mpc.mapping import DEFAULT_N_BUCKETS
from ..rete.hashing import BucketKey, stable_hash
from ..trace.cache import (cached_trace, module_source, source_fingerprint,
                           trace_key)
from ..trace.events import SectionTrace
from .synthetic import TraceBuilder, partition_counts, zipf_weights

#: Table 5-2 targets.
LEFT_TOTAL = 2388
RIGHT_TOTAL = 6114
N_CYCLES = 4

#: Structure knobs (calibrated against Figures 5-1/5-2/5-5).
N_RIGHT_NODES = 30          # distinct join nodes fed by wme changes
RIGHT_VALUE_SPACE = 320     # distinct hash values among right tokens
N_LEFT_NODES = 8            # join nodes receiving generated left tokens
ACTIVE_LEFT_BUCKETS = 28    # active left buckets per cycle
LEFT_SKEW = 0.7             # Zipf skew of tokens over active buckets
HOT_BUCKETS = 8             # the heavy head of the Zipf distribution
TERMINALS_PER_CYCLE = 25    # instantiations reaching the control proc

#: Figure 5-5 is drawn at this processor count; the alternation of busy
#: and idle processors between consecutive cycles is reproduced by
#: steering each cycle's few *hot* left buckets onto alternating halves
#: of this grid (the original trace exhibited the same accident of
#: hashing).  The cold buckets are left to natural hashing, so bucket
#: distribution strategies still compare fairly.
FIG_5_5_PROCS = 16


def _cycle_buckets(cycle: int, count: int, hot: int) -> list:
    """(node, value) bucket identities for one cycle.

    The first *hot* buckets hash onto the half of the FIG_5_5_PROCS
    grid selected by the cycle's parity, one per processor of the half
    where possible; the halves overlap on one processor — Figure 5-5
    shows processor 1 busy in *both* cycles while most others
    alternate.  Cycles of the same parity reuse the same buckets, so
    the aggregate over the section stays roughly even.
    """
    mid = FIG_5_5_PROCS // 2
    # Hot buckets live strictly on one half; the halves do NOT overlap.
    half = list(range(0, mid - 1)) if cycle % 2 == 0 \
        else list(range(mid + 1, FIG_5_5_PROCS))

    def proc_of(node: int, value: int) -> int:
        key = BucketKey(node, (value,))
        return (stable_hash(key) % DEFAULT_N_BUCKETS) % FIG_5_5_PROCS

    chosen = []
    used_procs: set = set()
    value = 10_000 * (cycle % 2)
    while len(chosen) < hot:
        node = 101 + len(chosen) % N_LEFT_NODES
        proc = proc_of(node, value)
        value += 1
        if proc not in half:
            continue
        if proc in used_procs and len(used_procs) < len(half):
            continue  # spread the hot buckets across the half
        used_procs.add(proc)
        chosen.append((node, value - 1))

    # One mid-weight bucket pinned to the same middle processor in both
    # parities: Figure 5-5's processor that handles ~20 tokens in BOTH
    # cycles.  Its value is parity-independent, so same-parity cycles
    # reuse it too.
    value = 50_000
    while True:
        node = 101 + len(chosen) % N_LEFT_NODES
        if proc_of(node, value) == mid:
            chosen.append((node, value))
            break
        value += 1

    # The cold tail is left to natural hashing.
    value = 10_000 * (cycle % 2) + 5_000
    while len(chosen) < count:
        node = 101 + len(chosen) % N_LEFT_NODES
        chosen.append((node, value))
        value += 1
    return chosen


def rubik_section(seed: int = 0) -> SectionTrace:
    """The Rubik section trace (deterministic for a given seed).

    Served from the on-disk trace cache when available (the key covers
    this module's source, its building blocks and *seed*); built from
    scratch otherwise or when ``REPRO_TRACE_CACHE=0``.
    """
    key = trace_key("rubik", seed=seed, source=source_fingerprint(
        module_source(__name__),
        module_source("repro.workloads.synthetic")))
    return cached_trace(key, lambda: _build_rubik_section(seed))


def _build_rubik_section(seed: int) -> SectionTrace:
    rng = random.Random(seed)
    builder = TraceBuilder("rubik")

    rights = partition_counts(RIGHT_TOTAL, [1.0 / N_CYCLES] * N_CYCLES)
    lefts = partition_counts(LEFT_TOTAL, [1.0 / N_CYCLES] * N_CYCLES)

    for c in range(N_CYCLES):
        builder.new_cycle()
        n_right = rights[c]
        n_left = lefts[c]

        # Active left buckets for this cycle: odd/even cycles put their
        # hot buckets on opposite processor halves, so the busy
        # processors alternate (Figure 5-5's "busy in one cycle, idle
        # in the next").  The Zipf head (the hot buckets) stays first —
        # weights and bucket identities are aligned by construction.
        buckets = _cycle_buckets(c, ACTIVE_LEFT_BUCKETS, HOT_BUCKETS)
        weights = zipf_weights(ACTIVE_LEFT_BUCKETS, LEFT_SKEW)
        per_bucket = partition_counts(n_left, weights)

        # Right roots: spread widely ("a large proportion of right
        # buckets is active; hence, they get distributed evenly").
        roots = []
        for i in range(n_right):
            node = 1 + rng.randrange(N_RIGHT_NODES)
            value = rng.randrange(RIGHT_VALUE_SPACE)
            roots.append(builder.root(node, side="right",
                                      values=(value,)))

        # Left activations: generated by the first n_left right roots,
        # one each, landing in the cycle's active buckets.
        children = []
        slot = 0
        for bucket_idx, count in enumerate(per_bucket):
            node, value = buckets[bucket_idx]
            for _ in range(count):
                parent = roots[slot]
                children.append(builder.child(parent, node,
                                              values=(value,)))
                slot += 1

        # A few instantiations per cycle reach the conflict set.
        for i in range(TERMINALS_PER_CYCLE):
            builder.terminal(children[i], node=900 + i % 5)

    trace = builder.build()
    stats = trace.stats()
    assert stats.left == LEFT_TOTAL, stats.left
    assert stats.right == RIGHT_TOTAL, stats.right
    return trace

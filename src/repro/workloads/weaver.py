"""The "small cycles" section: Weaver (paper Sections 5 and 5.2.1).

Four consecutive small cycles from a VLSI-routing expert system.
Published characteristics reproduced exactly:

* Table 5-2: 338 left activations (81%), 78 right (19%), 416 total.
* Small cycles (≈100 tokens or less) limit speedup: there is simply not
  much to do in parallel, and what there is, is badly shaped — in one
  cycle, **three left activations generate 120 of its ≈150 activations**
  (Section 5.2.1).  Generating each successor costs 16 µs at the single
  site holding the bucket, so those three activations are the critical
  path.
* The bottleneck node is *shared* by several outputs (Figure 5-3's O1/O2
  shape): each hot activation's successors spread across
  ``HOT_BRANCHES`` distinct destination nodes, so unsharing the node
  splits generation across processors — Figure 5-4's substantial
  improvement.
"""

from __future__ import annotations

import random

from ..trace.cache import (cached_trace, module_source, source_fingerprint,
                           trace_key)
from ..trace.events import SectionTrace
from .synthetic import TraceBuilder, partition_counts

#: Table 5-2 targets.
LEFT_TOTAL = 338
RIGHT_TOTAL = 78
N_CYCLES = 4

#: The shared bottleneck node of the heavy cycle.
HOT_NODE = 40

#: Heavy-cycle structure (Section 5.2.1's numbers).
HOT_ROOTS = 3               # the three producing left activations
HOT_FANOUT = 40             # successors each (3 x 40 = 120)
HOT_BRANCHES = 4            # distinct destination nodes (outputs sharing
                            # the node; what unsharing splits)
HEAVY_LEFT = 130            # 3 hot + 7 other roots + 120 generated
HEAVY_RIGHT = 20            # right activations in the heavy cycle
TERMINALS_HEAVY = 12


def weaver_section(seed: int = 0) -> SectionTrace:
    """The Weaver section trace (deterministic for a given seed).

    Served from the on-disk trace cache when available (the key covers
    this module's source, its building blocks and *seed*); built from
    scratch otherwise or when ``REPRO_TRACE_CACHE=0``.
    """
    key = trace_key("weaver", seed=seed, source=source_fingerprint(
        module_source(__name__),
        module_source("repro.workloads.synthetic")))
    return cached_trace(key, lambda: _build_weaver_section(seed))


def _build_weaver_section(seed: int) -> SectionTrace:
    rng = random.Random(seed)
    builder = TraceBuilder("weaver")

    small_left = partition_counts(LEFT_TOTAL - HEAVY_LEFT,
                                  [1.0 / (N_CYCLES - 1)] * (N_CYCLES - 1))
    small_right = partition_counts(RIGHT_TOTAL - HEAVY_RIGHT,
                                   [1.0 / (N_CYCLES - 1)] * (N_CYCLES - 1))

    def small_cycle(n_left: int, n_right: int) -> None:
        builder.new_cycle()
        for i in range(n_right):
            builder.root(1 + i % 6, side="right",
                         values=(rng.randrange(30),))
        # Small cycles carry little parallelism: a handful of chains of
        # dependent activations (each token enables the next join down).
        n_roots = max(1, n_left // 5)
        chains = [builder.root(10 + i % 5, side="left",
                               values=(rng.randrange(30),))
                  for i in range(n_roots)]
        made = n_roots
        i = 0
        while made < n_left:
            chains[i % n_roots] = builder.child(
                chains[i % n_roots], 20 + i % 4,
                values=(rng.randrange(30),))
            made += 1
            i += 1

    # Cycle 1: small.
    small_cycle(small_left[0], small_right[0])

    # Cycle 2: the heavy small cycle of Section 5.2.1.
    builder.new_cycle()
    for i in range(HEAVY_RIGHT):
        builder.root(1 + i % 6, side="right", values=(rng.randrange(30),))
    # All three producers land in one bucket of the shared node — "a
    # processor that generates such [a] large number of successors
    # becomes a bottleneck" (Section 5.2.1).
    hot_roots = [builder.root(HOT_NODE, side="left", values=())
                 for _ in range(HOT_ROOTS)]
    other_roots = [builder.root(30 + i % 3, side="left",
                                values=(rng.randrange(30),))
                   for i in range(HEAVY_LEFT - HOT_ROOTS
                                  - HOT_ROOTS * HOT_FANOUT)]
    generated = []
    for root in hot_roots:
        for j in range(HOT_FANOUT):
            # Successors cycle over the node's output branches, so each
            # hot activation feeds all HOT_BRANCHES destinations.
            dest = 41 + j % HOT_BRANCHES
            generated.append(builder.child(
                root, dest, values=(rng.randrange(50),)))
    for i in range(TERMINALS_HEAVY):
        builder.terminal(generated[i * 7 % len(generated)],
                         node=900 + i % 3)

    # Cycles 3-4: small.
    small_cycle(small_left[1], small_right[1])
    small_cycle(small_left[2], small_right[2])

    trace = builder.build()
    stats = trace.stats()
    assert stats.left == LEFT_TOTAL, stats.left
    assert stats.right == RIGHT_TOTAL, stats.right
    return trace

"""Workloads: the paper's three characteristic sections (synthetic,
matched to every published statistic) plus real OPS5 demo programs that
exercise the full OPS5 → Rete → trace → simulator pipeline.
"""

from .generator import SectionSpec, generate_section
from .match import (MATCH_PROGRAMS, MatchScript, adversarial_cross_product,
                    record_match_deltas, replay_deltas, rubik_match_program,
                    tourney_match_program, weaver_match_program)
from .rubik import rubik_section
from .synthetic import StreamSpec, SyntheticStream
from .tourney import tourney_section
from .weaver import weaver_section

__all__ = ["SectionSpec", "StreamSpec", "SyntheticStream",
           "generate_section",
           "rubik_section", "tourney_section", "weaver_section",
           "all_sections",
           "MATCH_PROGRAMS", "MatchScript", "adversarial_cross_product",
           "record_match_deltas", "replay_deltas", "rubik_match_program",
           "tourney_match_program", "weaver_match_program"]


def all_sections(seed: int = 0):
    """The three Section 5 traces, in the paper's presentation order."""
    return [rubik_section(seed), tourney_section(seed),
            weaver_section(seed)]

"""Match-kernel workloads: rubik / tourney / weaver shaped OPS5 programs.

The paper benchmarks its simulator on three production systems — Rubik
(a cube solver), Tourney (a tournament scheduler) and Weaver (a VLSI
channel router).  The originals were never released; the synthetic
section traces in :mod:`repro.workloads.generator` match their published
*statistics*.  This module instead supplies *executable* stand-ins of
the same shape, used to benchmark the flattened match kernel
(:mod:`repro.rete.kernel`) against the reference engine:

* :func:`rubik_match_program` — face rotations over 24 sticker wmes.
  Wide constant-test fan-out (24 ``^pos`` patterns on one class, enough
  to engage the kernel's vectorized alpha path), modify bursts of five
  wmes per firing, and adjacency observer rules sharing the rotation
  rules' alpha patterns.
* :func:`tourney_match_program` — round-robin score updates plus
  within-club rivalry rules that maintain cross-products over the
  player memory, and a negated leader rule probed by every score
  change.
* :func:`weaver_match_program` — tasks claiming contended resources
  through negated lock CEs; lock churn drives negative-node count
  transitions in both directions.

All three are deterministic (seeded), self-driving (a ``ctl`` counter
advances until a halt rule fires) and terminate within a few hundred
MRA cycles.

:func:`record_match_deltas` runs a program through the real interpreter
once and captures the exact (tag, wme) stream the matcher saw.  Because
conflict resolution is deterministic, the stream is engine-independent;
:func:`replay_deltas` feeds it to any matcher, which is how
``benchmarks/bench_rete_perf.py`` times match throughput without
re-running RHS execution.

:func:`adversarial_cross_product` builds the CORGI-style worst case —
one rule whose two CEs join on a single shared key, so *n* row wmes and
*n* column wmes produce n² instantiations.  Cost must stay quadratic in
the token count (each wme arrival scans one opposite bucket); the bench
asserts the 2n/n time ratio to catch accidentally super-quadratic
kernels.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..ops5 import Program, parse_program
from ..ops5.conflict import Instantiation, Strategy
from ..ops5.interpreter import Interpreter
from ..ops5.matcher import Matcher
from ..ops5.wme import WME
from ..rete import MINUS, PLUS, ReteNetwork

#: A recorded matcher-level delta: ("+" | "-", wme).
Delta = Tuple[str, WME]


# ---------------------------------------------------------------------------
# rubik: face rotations over a sticker array
# ---------------------------------------------------------------------------

_N_POSITIONS = 24
_N_FACES = 6


def _face_positions(face: int) -> List[int]:
    """The four sticker positions cycled by *face* (faces overlap, as on
    a real cube, so one sticker modify wakes several rotation rules)."""
    return [(4 * face + 3 * k) % _N_POSITIONS for k in range(4)]


def rubik_match_program(seed: int = 0, n_moves: int = 40) -> str:
    """A rubik-shaped OPS5 source: *n_moves* seeded face rotations."""
    rng = random.Random(seed)
    lines = [
        "(literalize sticker pos color)",
        "(literalize move step face)",
        "(literalize ctl step)",
        "",
        "(startup",
        "  (make ctl ^step 0)",
    ]
    for pos in range(_N_POSITIONS):
        lines.append(f"  (make sticker ^pos {pos} ^color c{pos // 4})")
    for step in range(n_moves):
        face = rng.randrange(_N_FACES)
        lines.append(f"  (make move ^step {step} ^face f{face})")
    lines.append(")")
    for face in range(_N_FACES):
        p = _face_positions(face)
        lines += [
            "",
            f"(p rot-f{face}",
            "  (ctl ^step <s>)",
            f"  (move ^step <s> ^face f{face})",
            f"  (sticker ^pos {p[0]} ^color <c0>)",
            f"  (sticker ^pos {p[1]} ^color <c1>)",
            f"  (sticker ^pos {p[2]} ^color <c2>)",
            f"  (sticker ^pos {p[3]} ^color <c3>)",
            "  -->",
            "  (modify 3 ^color <c3>)",
            "  (modify 4 ^color <c0>)",
            "  (modify 5 ^color <c1>)",
            "  (modify 6 ^color <c2>)",
            "  (modify 1 ^step (compute <s> + 1)))",
        ]
    # Observer rules: adjacent same-colour stickers.  They share the
    # rotation rules' alpha patterns and add join load on every sticker
    # modify; recency keeps the rotation chain firing ahead of them.
    for pos in range(0, _N_POSITIONS, 2):
        lines += [
            "",
            f"(p adj-{pos}",
            f"  (sticker ^pos {pos} ^color <c>)",
            f"  (sticker ^pos {pos + 1} ^color <c>)",
            "  -->",
            f"  (write adj {pos} (crlf)))",
        ]
    lines += [
        "",
        "(p rubik-done",
        f"  (ctl ^step {n_moves})",
        "  -->",
        "  (halt))",
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# tourney: score updates over cross-product standings rules
# ---------------------------------------------------------------------------

def tourney_match_program(seed: int = 0, n_players: int = 12,
                          n_rounds: int = 30) -> str:
    """A tourney-shaped OPS5 source: one seeded pairing per round."""
    rng = random.Random(seed)
    clubs = ["north", "south", "east"]
    lines = [
        "(literalize player name club score)",
        "(literalize pair round a b)",
        "(literalize ctl round)",
        "",
        "(startup",
        "  (make ctl ^round 0)",
    ]
    for i in range(n_players):
        club = clubs[i % len(clubs)]
        lines.append(
            f"  (make player ^name p{i} ^club {club} ^score {i})")
    for rnd in range(n_rounds):
        a, b = rng.sample(range(n_players), 2)
        lines.append(f"  (make pair ^round {rnd} ^a p{a} ^b p{b})")
    lines += [
        ")",
        "",
        "(p play",
        "  (ctl ^round <r>)",
        "  (pair ^round <r> ^a <pa> ^b <pb>)",
        "  (player ^name <pa> ^score <sa>)",
        "  (player ^name <pb> ^score <sb>)",
        "  -->",
        "  (modify 3 ^score (compute <sa> + 3))",
        "  (modify 4 ^score (compute <sb> + 1))",
        "  (modify 1 ^round (compute <r> + 1)))",
        "",
        # Within-club cross-product: every score modify probes the
        # club's whole membership on both sides of the join.
        "(p rivals",
        "  (player ^club <k> ^name <n1> ^score <s1>)",
        "  (player ^club <k> ^name { <n2> <> <n1> } ^score > <s1>)",
        "  -->",
        "  (write rival <n1> <n2> (crlf)))",
        "",
        # Negated CE with an empty equality key: every player delta
        # right-activates the negative node against all stored tokens.
        "(p leader",
        "  (ctl ^round <r>)",
        "  (player ^name <n> ^score <s>)",
        "  -(player ^score > <s>)",
        "  -->",
        "  (write leader <n> (crlf)))",
        "",
        "(p tourney-done",
        f"  (ctl ^round {n_rounds})",
        "  -->",
        "  (halt))",
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# weaver: resource allocation through negated lock CEs
# ---------------------------------------------------------------------------

def weaver_match_program(seed: int = 0, n_tasks: int = 24,
                         n_resources: int = 5,
                         horizon: Optional[int] = None) -> str:
    """A weaver-shaped OPS5 source: contended resource claims."""
    rng = random.Random(seed)
    if horizon is None:
        horizon = n_tasks + 10
    lines = [
        "(literalize task id res state due)",
        "(literalize lock res owner)",
        "(literalize gen at id res due)",
        "(literalize ctl tick)",
        "",
        "(startup",
        "  (make ctl ^tick 0)",
    ]
    for i in range(n_tasks):
        at = rng.randrange(max(1, horizon - 4))
        res = rng.randrange(n_resources)
        due = at + rng.randint(1, 4)
        lines.append(
            f"  (make gen ^at {at} ^id t{i} ^res r{res} ^due {due})")
    lines += [
        ")",
        "",
        "(p spawn",
        "  (ctl ^tick <t>)",
        "  (gen ^at <t> ^id <i> ^res <r> ^due <d>)",
        "  -->",
        "  (make task ^id <i> ^res <r> ^due <d> ^state pending)",
        "  (remove 2))",
        "",
        "(p alloc",
        "  (ctl ^tick <t>)",
        "  (task ^id <i> ^res <r> ^state pending)",
        "  -(lock ^res <r>)",
        "  -->",
        "  (make lock ^res <r> ^owner <i>)",
        "  (modify 2 ^state running))",
        "",
        "(p finish",
        "  (ctl ^tick <t>)",
        "  (task ^id <i> ^res <r> ^state running ^due <= <t>)",
        "  (lock ^res <r> ^owner <i>)",
        "  -->",
        "  (remove 3)",
        "  (modify 2 ^state done))",
        "",
        "(p tick",
        "  (ctl ^tick <t>)",
        "  -->",
        "  (modify 1 ^tick (compute <t> + 1)))",
        "",
        "(p weaver-done",
        f"  (ctl ^tick {{ <t> {horizon} }})",
        "  -->",
        "  (halt))",
    ]
    return "\n".join(lines)


#: name -> source generator, for iteration in tests and the bench.
MATCH_PROGRAMS: dict = {
    "rubik": rubik_match_program,
    "tourney": tourney_match_program,
    "weaver": weaver_match_program,
}


# ---------------------------------------------------------------------------
# delta recording and replay
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MatchScript:
    """A program plus the matcher-level delta stream one run produced."""

    program: Program
    deltas: Tuple[Delta, ...]
    cycles: int
    halted: bool

    def wave_count(self) -> int:
        """Number of wme waves (one wave per delta)."""
        return len(self.deltas)


class _RecordingMatcher:
    """Matcher wrapper capturing the (tag, wme) stream it is fed."""

    def __init__(self, inner: Matcher) -> None:
        self.inner = inner
        self.deltas: List[Delta] = []

    def add_production(self, production) -> None:
        self.inner.add_production(production)

    def add_wme(self, wme: WME) -> None:
        self.deltas.append((PLUS, wme))
        self.inner.add_wme(wme)

    def remove_wme(self, wme: WME) -> None:
        self.deltas.append((MINUS, wme))
        self.inner.remove_wme(wme)

    def conflict_set(self) -> List[Instantiation]:
        return self.inner.conflict_set()


def record_match_deltas(source: str,
                        max_cycles: int = 5000) -> MatchScript:
    """Run *source* once; return the matcher-level delta stream.

    Conflict resolution (LEX with deterministic tie-breaks) makes the
    firing sequence — hence the stream — a pure function of the source,
    so a script recorded with one conformant engine replays identically
    into any other.
    """
    recorder = _RecordingMatcher(ReteNetwork())
    interp = Interpreter(matcher=recorder, strategy=Strategy.LEX)
    interp.load_program(parse_program(source))
    result = interp.run(max_cycles=max_cycles)
    return MatchScript(program=parse_program(source),
                       deltas=tuple(recorder.deltas),
                       cycles=result.cycles, halted=result.halted)


def replay_deltas(matcher: Matcher, program: Program,
                  deltas: Sequence[Delta]) -> List[Instantiation]:
    """Load *program* into *matcher*, replay *deltas*, return the final
    conflict set.  This is the timed inner loop of the rete bench."""
    for production in program.productions:
        matcher.add_production(production)
    add, remove = matcher.add_wme, matcher.remove_wme
    for tag, wme in deltas:
        if tag == PLUS:
            add(wme)
        else:
            remove(wme)
    return matcher.conflict_set()


# ---------------------------------------------------------------------------
# adversarial cross-product
# ---------------------------------------------------------------------------

_CROSS_SOURCE = """
(literalize row v)
(literalize col w)

(p cross
  (row ^v <x>)
  (col ^w <x>)
  -->
  (halt))
"""


def adversarial_cross_product(n: int) -> Tuple[Program, List[Delta]]:
    """The CORGI-style worst case: one join key shared by everything.

    Returns a one-rule program and a delta script that adds *n* row wmes
    and *n* col wmes (all carrying the same key, so they land in a
    single hash bucket and form n² instantiations), then removes them
    all.  Total match work is Θ(n²); a kernel that rescans buckets
    superlinearly per wave shows up as a worse-than-quadratic time
    ratio between n and 2n.
    """
    program = parse_program(_CROSS_SOURCE)
    deltas: List[Delta] = []
    wmes = []
    for i in range(n):
        wmes.append(WME(wme_id=2 * i + 1, cls="row", attrs={"v": "k"},
                        timestamp=i))
        wmes.append(WME(wme_id=2 * i + 2, cls="col", attrs={"w": "k"},
                        timestamp=i))
    for wme in wmes:
        deltas.append((PLUS, wme))
    for wme in reversed(wmes):
        deltas.append((MINUS, wme))
    return program, deltas

"""A toy XCON-style configurator — a larger live OPS5 workload.

R1/XCON (McDermott), the system the paper's introduction leads with, is
a computer configurator.  This miniature of that species places boards
into cabinet slots, tracks the power budget, assigns disks to
controllers, and adds hardware when resources run out — exercising
joins, negation, ``compute`` arithmetic, disjunctions and long modify
chains on a scale that grows with the order size.

Use :func:`configurator_program` to build an order of any size and
:func:`configurator_trace` for its recorded hash-table activity.
"""

from __future__ import annotations

from ..ops5 import Program, parse_program
from ..trace.events import SectionTrace
from ..trace.recorder import record_program

RULES = """
(p start-configuration
  (order ^status new)
  -->
  (make cabinet ^id cab1 ^slots 4 ^power 300)
  (modify 1 ^status configuring))

(p place-board
  (order ^status configuring)
  (board ^id <b> ^placed no ^draw <w>)
  (cabinet ^id <c> ^slots { <s> > 0 } ^power <p>)
  -->
  (modify 2 ^placed yes ^cabinet <c>)
  (modify 3 ^slots (compute <s> - 1) ^power (compute <p> - <w>)))

(p add-expansion-cabinet
  (order ^status configuring)
  (board ^placed no)
  -(cabinet ^slots > 0)
  (count ^cabinets <n>)
  -->
  (bind <m> (compute <n> + 1))
  (make cabinet ^id <m> ^slots 4 ^power 300)
  (modify 4 ^cabinets <m>)
  (write added expansion cabinet (crlf)))

(p power-deficit
  (order ^status configuring)
  (cabinet ^id <c> ^power { <p> < 0 })
  -->
  (modify 2 ^power (compute <p> + 200))
  (make psu ^cabinet <c>)
  (write added psu to cabinet <c> (crlf)))

(p assign-disk
  (order ^status configuring)
  (disk ^id <d> ^assigned no ^size << small large >>)
  (controller ^id <k> ^free { <f> > 0 })
  -->
  (modify 2 ^assigned yes ^controller <k>)
  (modify 3 ^free (compute <f> - 1)))

(p add-controller
  (order ^status configuring)
  (disk ^assigned no)
  -(controller ^free > 0)
  (count ^controllers <n>)
  -->
  (bind <m> (compute <n> + 1))
  (make controller ^id <m> ^free 2)
  (modify 4 ^controllers <m>)
  (write added controller (crlf)))

(p configuration-complete
  (order ^status configuring)
  -(board ^placed no)
  -(disk ^assigned no)
  -->
  (modify 1 ^status done)
  (write configuration complete (crlf))
  (halt))
"""


def configurator_source(n_boards: int = 6, n_disks: int = 5) -> str:
    """OPS5 source for an order with the given component counts."""
    if n_boards < 0 or n_disks < 0:
        raise ValueError("component counts cannot be negative")
    makes = [
        "(make order ^status new)",
        "(make count ^cabinets 1 ^controllers 0)",
    ]
    for i in range(n_boards):
        draw = 60 + 45 * (i % 3)
        makes.append(f"(make board ^id b{i + 1} ^placed no "
                     f"^draw {draw})")
    for i in range(n_disks):
        size = "small" if i % 2 == 0 else "large"
        makes.append(f"(make disk ^id d{i + 1} ^assigned no "
                     f"^size {size})")
    return f"(startup {' '.join(makes)})\n{RULES}"


def configurator_program(n_boards: int = 6, n_disks: int = 5) -> Program:
    """Parsed configurator program for the given order size."""
    return parse_program(configurator_source(n_boards, n_disks))


def configurator_trace(n_boards: int = 6, n_disks: int = 5,
                       max_cycles: int = 10_000) -> SectionTrace:
    """End-to-end recorded trace of a configurator run."""
    return record_program(configurator_program(n_boards, n_disks),
                          f"configurator-{n_boards}b{n_disks}d",
                          max_cycles=max_cycles)

"""The "cross-product" section: Tourney (paper Section 5).

One cycle with a heavy cross-product, surrounded by four small cycles
for comparison.  Published characteristics reproduced exactly:

* Table 5-2: 10667 left activations (99%), 83 right (1%), 10750 total.
* The cross-product node tests **no variable**, so every token arriving
  at it hashes to the same bucket ("non-randomized tokens") and is
  processed serially by the bucket's owner — the section's dominant
  speedup limiter (Section 5.2.2).
* The multiple-modify effect: the cross-product bucket's traffic is an
  alternating stream of deletes and re-adds caused by modify actions on
  the wmes matching one production.
* Copy-and-constraint (Figure 5-6) splits the cross-product node and
  yields an improvement that is real but modest, because secondary hot
  buckets downstream then become the limiter (the paper additionally
  notes its baseline Tourney speedups are overestimated).

Structure of the cross-product cycle: ``CP_ROOTS`` left tokens pile into
the single bucket of node ``CP_NODE``; each generates ``CP_FANOUT``
successors at stage-2 nodes whose buckets are Zipf-skewed (the secondary
hot spots); those in turn generate a thinner, well-hashed stage 3.
"""

from __future__ import annotations

import random

from ..trace.cache import (cached_trace, module_source, source_fingerprint,
                           trace_key)
from ..trace.events import SectionTrace
from .synthetic import TraceBuilder, partition_counts, zipf_weights

#: Table 5-2 targets.
LEFT_TOTAL = 10667
RIGHT_TOTAL = 83
N_SMALL_CYCLES = 4

#: The cross-product node (no equality test -> a single shared bucket).
CP_NODE = 50

#: Small-cycle structure.
SMALL_LEFT = 25             # left activations per small cycle
SMALL_RIGHT = 5             # right activations per small cycle

#: Cross-product cycle structure (calibrated to Figures 5-2/5-6).
CP_ROOTS = 240              # left tokens arriving at the cp bucket
CP_FANOUT = 12              # successors generated per cp token
STAGE2_NODES = 5            # nodes receiving cp successors
STAGE2_BUCKETS = 40         # distinct stage-2 buckets
STAGE2_SKEW = 0.85          # skew: a few stage-2 buckets stay hot
STAGE3_VALUE_SPACE = 400    # stage 3 hashes well
TERMINALS = 40              # instantiations out of the cp cycle


def tourney_section(seed: int = 0) -> SectionTrace:
    """The Tourney section trace (deterministic for a given seed).

    Served from the on-disk trace cache when available (the key covers
    this module's source, its building blocks and *seed*); built from
    scratch otherwise or when ``REPRO_TRACE_CACHE=0``.
    """
    key = trace_key("tourney", seed=seed, source=source_fingerprint(
        module_source(__name__),
        module_source("repro.workloads.synthetic")))
    return cached_trace(key, lambda: _build_tourney_section(seed))


def _build_tourney_section(seed: int) -> SectionTrace:
    rng = random.Random(seed)
    builder = TraceBuilder("tourney")

    cp_left = LEFT_TOTAL - N_SMALL_CYCLES * SMALL_LEFT
    cp_right = RIGHT_TOTAL - N_SMALL_CYCLES * SMALL_RIGHT
    stage2_total = CP_ROOTS * CP_FANOUT
    stage3_total = cp_left - CP_ROOTS - stage2_total
    assert stage3_total >= 0, "structure knobs exceed the left budget"

    def small_cycle() -> None:
        builder.new_cycle()
        for i in range(SMALL_RIGHT):
            builder.root(1 + i % 3, side="right",
                         values=(rng.randrange(40),))
        parents = []
        for i in range(SMALL_LEFT // 5):
            parents.append(builder.root(10 + i % 4, side="left",
                                        values=(rng.randrange(40),)))
        made = len(parents)
        i = 0
        while made < SMALL_LEFT:
            parent = parents[i % len(parents)]
            parents.append(builder.child(parent, 20 + i % 3,
                                         values=(rng.randrange(40),)))
            made += 1
            i += 1

    # Two small cycles, the cross-product cycle, two more small cycles
    # ("four small cycles that surround the cross-product cycle").
    small_cycle()
    small_cycle()

    # --- the cross-product cycle ---------------------------------------
    builder.new_cycle()
    for i in range(cp_right):
        builder.root(1 + i % 5, side="right", values=(rng.randrange(60),))

    stage2_weights = zipf_weights(STAGE2_BUCKETS, STAGE2_SKEW)
    stage2_counts = partition_counts(stage2_total, stage2_weights)
    stage2_values = list(range(STAGE2_BUCKETS))
    # How many stage-3 tokens each stage-2 token generates, on average.
    stage3_counts = partition_counts(
        stage3_total, [1.0 / stage2_total] * stage2_total)

    # The multiple-modify effect: the first half of the stream populates
    # the bucket (the tokens the earlier cycles left behind), then each
    # modify issues a delete of an old token followed by the re-add —
    # "multiple tokens headed for the same bucket, half of which are
    # adds and half are deletes".  The deletes land on a full bucket,
    # which is what makes their search expensive (footnote 6).
    cp_tokens = []
    for i in range(CP_ROOTS):
        if i < CP_ROOTS // 2:
            tag = "+"
        else:
            tag = "-" if i % 2 == 0 else "+"
        cp_tokens.append(builder.root(CP_NODE, side="left", tag=tag,
                                      values=()))

    stage2_tokens = []
    bucket_iter = [(b, n) for b, n in enumerate(stage2_counts)
                   for _ in range(n)]
    rng.shuffle(bucket_iter)
    for i, (bucket_idx, _) in enumerate(bucket_iter):
        parent = cp_tokens[i // CP_FANOUT]
        node = 60 + bucket_idx % STAGE2_NODES
        stage2_tokens.append(builder.child(
            parent, node, values=(stage2_values[bucket_idx],)))

    made = 0
    for i, count in enumerate(stage3_counts):
        for _ in range(count):
            builder.child(stage2_tokens[i], node=70 + made % 6,
                          values=(rng.randrange(STAGE3_VALUE_SPACE),))
            made += 1

    for i in range(TERMINALS):
        builder.terminal(stage2_tokens[-(i + 1)], node=900 + i % 4)

    small_cycle()
    small_cycle()

    trace = builder.build()
    stats = trace.stats()
    assert stats.left == LEFT_TOTAL, stats.left
    assert stats.right == RIGHT_TOTAL, stats.right
    return trace

"""Real OPS5 demo programs, traced end-to-end through the full pipeline
(OPS5 parse → Rete match → trace record → MPC simulate).

These are not the paper's (unreleased) programs; they are classic
production-system workloads of the same species, small enough to run in
tests yet structurally rich: joins, negation, modify chains and
cross-products all appear.
"""

from __future__ import annotations

from ..ops5 import Program, parse_program
from ..trace.cache import cached_trace, trace_key
from ..trace.events import SectionTrace
from ..trace.recorder import record_program

#: Blocks world: stack all blocks onto the table one by one.
BLOCKS_WORLD = """
(literalize block name on clear)
(literalize goal want)

(startup
  (make block ^name a ^on b ^clear yes)
  (make block ^name b ^on c ^clear no)
  (make block ^name c ^on table ^clear no)
  (make goal ^want flat))

(p unstack
  (goal ^want flat)
  (block ^name <top> ^on <below> ^clear yes)
  (block ^name <below>)
  -->
  (modify 2 ^on table)
  (modify 3 ^clear yes))

(p finished
  (goal ^want flat)
  -(block ^on <other> ^clear no)
  -(block ^clear no)
  -->
  (remove 1)
  (write all flat (crlf)))
"""

#: Monkey and bananas (abridged): classic means-ends OPS5 demo.
MONKEY_AND_BANANAS = """
(literalize monkey at holds)
(literalize object name at weight on)
(literalize goal status type object)

(startup
  (make monkey ^at t5-7 ^holds nil)
  (make object ^name couch ^at t7-7 ^weight heavy)
  (make object ^name ladder ^at t3-3 ^weight light ^on floor)
  (make object ^name bananas ^at t7-8 ^weight light ^on ceiling)
  (make goal ^status active ^type holds ^object bananas))

(p mb-on-floor-walk-to-ladder
  (goal ^status active ^type holds ^object bananas)
  (object ^name ladder ^at <lat> ^on floor)
  (monkey ^at { <mat> <> <lat> })
  -->
  (modify 3 ^at <lat>))

(p mb-climb-with-ladder
  (goal ^status active ^type holds ^object bananas)
  (object ^name bananas ^at <bat> ^on ceiling)
  (object ^name ladder ^at { <lat> <> <bat> } ^on floor)
  (monkey ^at <lat> ^holds nil)
  -->
  (modify 3 ^at <bat>)
  (modify 4 ^at <bat>))

(p mb-grab-bananas
  (goal ^status active ^type holds ^object bananas)
  (object ^name bananas ^at <bat> ^on ceiling)
  (object ^name ladder ^at <bat>)
  (monkey ^at <bat> ^holds nil)
  -->
  (modify 4 ^holds bananas)
  (modify 2 ^on nil))

(p mb-done
  (goal ^status active ^type holds ^object <o>)
  (monkey ^holds <o>)
  -->
  (modify 1 ^status satisfied)
  (write got <o> (crlf))
  (halt))
"""

#: A toy grid router in the spirit of Weaver: claim free channel slots
#: for pending nets, retiring each net as it is routed.
GRID_ROUTER = """
(literalize net id from to routed)
(literalize channel id row free)
(literalize route net channel)

(startup
  (make channel ^id c1 ^row 1 ^free yes)
  (make channel ^id c2 ^row 2 ^free yes)
  (make channel ^id c3 ^row 3 ^free yes)
  (make net ^id n1 ^from 1 ^to 2 ^routed no)
  (make net ^id n2 ^from 2 ^to 3 ^routed no)
  (make net ^id n3 ^from 3 ^to 1 ^routed no))

(p route-net
  (net ^id <n> ^routed no ^from <r>)
  (channel ^id <c> ^row <r> ^free yes)
  -->
  (make route ^net <n> ^channel <c>)
  (modify 1 ^routed yes)
  (modify 2 ^free no))

(p all-routed
  (net ^routed yes)
  -(net ^routed no)
  -(route ^net nil)
  -->
  (write routing complete (crlf))
  (halt))
"""


def blocks_world_program() -> Program:
    """Parsed blocks-world program."""
    return parse_program(BLOCKS_WORLD)


def monkey_program() -> Program:
    """Parsed monkey-and-bananas program."""
    return parse_program(MONKEY_AND_BANANAS)


def router_program() -> Program:
    """Parsed grid-router program."""
    return parse_program(GRID_ROUTER)


def _recorded_trace(source: str, name: str) -> SectionTrace:
    """Record *source* once; load the trace from the cache thereafter.

    The cache key is the OPS5 program text itself, so editing a program
    re-records it, and ``REPRO_TRACE_CACHE=0`` always re-runs the full
    OPS5 → Rete → trace pipeline.
    """
    key = trace_key(f"program-{name}", source=source, name=name)
    return cached_trace(
        key, lambda: record_program(parse_program(source), name))


def blocks_world_trace() -> SectionTrace:
    """End-to-end recorded trace of the blocks-world run."""
    return _recorded_trace(BLOCKS_WORLD, "blocks-world")


def monkey_trace() -> SectionTrace:
    """End-to-end recorded trace of the monkey-and-bananas run."""
    return _recorded_trace(MONKEY_AND_BANANAS, "monkey-and-bananas")


def router_trace() -> SectionTrace:
    """End-to-end recorded trace of the grid-router run."""
    return _recorded_trace(GRID_ROUTER, "grid-router")

"""Structural validation of section traces.

The MPC simulator replays traces blindly, so malformed causality (a
successor claimed by two parents, a parent that never generated the
child, dangling ids) would silently corrupt timing results.  These
checks run on every synthetic generator's output in the test suite and
are cheap enough to call before long simulations.
"""

from __future__ import annotations

from typing import List

from .events import (KIND_TERMINAL, LEFT, VALID_KINDS, VALID_SIDES,
                     VALID_TAGS, CycleTrace, SectionTrace)


class TraceValidationError(Exception):
    """Raised (or collected) when a trace breaks a structural rule."""


def validate_cycle(cycle: CycleTrace) -> List[str]:
    """Return a list of problems in *cycle* (empty = valid)."""
    problems: List[str] = []
    acts = cycle.activations

    claimed = {}
    for act in acts.values():
        where = f"cycle {cycle.index} act {act.act_id}"
        if act.kind not in VALID_KINDS:
            problems.append(f"{where}: bad kind {act.kind!r}")
        if act.side not in VALID_SIDES:
            problems.append(f"{where}: bad side {act.side!r}")
        if act.tag not in VALID_TAGS:
            problems.append(f"{where}: bad tag {act.tag!r}")
        if act.key.node_id != act.node_id:
            problems.append(f"{where}: bucket key node "
                            f"{act.key.node_id} != node {act.node_id}")
        if act.kind == KIND_TERMINAL and act.successors:
            problems.append(f"{where}: terminal with successors")
        if act.parent_id is not None:
            parent = acts.get(act.parent_id)
            if parent is None:
                problems.append(f"{where}: parent {act.parent_id} missing")
            else:
                if parent.act_id >= act.act_id:
                    problems.append(
                        f"{where}: parent id {parent.act_id} not smaller")
                if act.act_id not in parent.successors:
                    problems.append(
                        f"{where}: not listed in parent's successors")
        for succ_id in act.successors:
            child = acts.get(succ_id)
            if child is None:
                problems.append(f"{where}: successor {succ_id} missing")
                continue
            if child.parent_id != act.act_id:
                problems.append(
                    f"{where}: successor {succ_id} claims parent "
                    f"{child.parent_id}")
            if succ_id in claimed:
                problems.append(
                    f"{where}: successor {succ_id} also claimed by "
                    f"{claimed[succ_id]}")
            claimed[succ_id] = act.act_id
        # Generated (non-root) two-input activations must be left
        # activations: paper Section 2.2/3.2 — tokens generated at
        # two-input nodes result only in left activations.
        if (act.parent_id is not None and act.kind != KIND_TERMINAL
                and act.side != LEFT):
            problems.append(f"{where}: generated activation on the "
                            f"right side")
    return problems


def validate_trace(trace: SectionTrace,
                   raise_on_error: bool = True) -> List[str]:
    """Validate every cycle; optionally raise on the first problem set."""
    problems: List[str] = []
    seen_indices = set()
    for cycle in trace:
        if cycle.index in seen_indices:
            problems.append(f"duplicate cycle index {cycle.index}")
        seen_indices.add(cycle.index)
        problems.extend(validate_cycle(cycle))
    if problems and raise_on_error:
        preview = "; ".join(problems[:5])
        raise TraceValidationError(
            f"{len(problems)} problem(s) in trace {trace.name!r}: "
            f"{preview}")
    return problems

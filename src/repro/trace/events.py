"""Trace event model: the simulator's input (paper Section 4, Figure 4-1).

A *section trace* records, for a run of consecutive MRA cycles, every
hash-table activation the Rete network performed: which node, which side
(left/right memory), add or delete, which bucket, and which successor
activations it generated.  The paper's simulator consumes exactly this —
"a detailed trace of the activity of the hash-table used for the Rete
network" — and so does ours, which is what makes recorded and synthetic
traces interchangeable.

Streaming traces
----------------
The simulator does not actually need a materialized
:class:`SectionTrace`: any object with a ``name`` attribute, a
``total_activations()`` method and an ``__iter__`` yielding *trace
entries* — :class:`CycleTrace` objects or :class:`IdleRun` markers —
works, and must be **re-iterable** (every ``__iter__`` call starts a
fresh pass) so sweeps can replay it per grid point.  That is what lets
synthetic workloads with 10⁶+ activations flow through the engine
without ever existing in memory at once (see
:class:`repro.workloads.synthetic.SyntheticStream` and
:class:`repro.trace.format.FileTraceStream`).  :func:`iter_cycles`
expands entries into plain cycles for consumers that need the exact
per-cycle view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..rete.hashing import BucketKey

#: Sides of a two-input node activation.
LEFT = "left"
RIGHT = "right"

#: Node kinds appearing in traces.
KIND_JOIN = "join"
KIND_NEGATIVE = "negative"
KIND_TERMINAL = "terminal"

#: Per-side add/delete charge is decided by the cost model; terminal
#: activations represent instantiations sent to the control processor.
VALID_SIDES = (LEFT, RIGHT)
VALID_TAGS = ("+", "-")
VALID_KINDS = (KIND_JOIN, KIND_NEGATIVE, KIND_TERMINAL)


@dataclass(slots=True)
class TraceActivation:
    """One node activation in the trace.

    Attributes
    ----------
    act_id:
        Unique within the cycle; successors always have larger ids than
        the activation that generated them.
    parent_id:
        The generating activation, or None for a *root* — a token
        produced directly by the constant tests from the cycle's wme
        changes (Section 3.2 step 2).
    node_id / kind:
        The destination two-input node (or terminal).
    side:
        Which memory the token is stored into; right activations stay
        where the wme broadcast put them, left activations travel.
    tag:
        "+" add or "-" delete.
    key:
        The hash-bucket key: (node id, equality-test values).
    successors:
        act_ids of the activations this one generated (16 µs each under
        the paper's cost model).
    """

    act_id: int
    parent_id: Optional[int]
    node_id: int
    kind: str
    side: str
    tag: str
    key: BucketKey
    successors: Tuple[int, ...] = ()

    @property
    def is_root(self) -> bool:
        return self.parent_id is None

    @property
    def n_successors(self) -> int:
        return len(self.successors)


@dataclass(slots=True)
class CycleTrace:
    """All activations of one MRA cycle, indexed by act_id.

    Iteration order (ascending act_id) is computed lazily and cached —
    the simulators walk each cycle several times per run, and re-sorting
    on every walk dominated their profile.  The cache is dropped on
    :meth:`add`; the lists returned by :meth:`ordered` and :meth:`roots`
    are shared, so callers must not mutate them.
    """

    index: int
    activations: Dict[int, TraceActivation] = field(default_factory=dict)
    _ordered: Optional[List[TraceActivation]] = field(
        default=None, init=False, repr=False, compare=False)
    _roots: Optional[List[TraceActivation]] = field(
        default=None, init=False, repr=False, compare=False)

    def add(self, activation: TraceActivation) -> None:
        if activation.act_id in self.activations:
            raise ValueError(
                f"duplicate act_id {activation.act_id} in cycle "
                f"{self.index}")
        self.activations[activation.act_id] = activation
        self._ordered = None
        self._roots = None

    def ordered(self) -> List[TraceActivation]:
        """All activations in ascending act_id order (cached)."""
        if self._ordered is None:
            acts = self.activations
            self._ordered = [acts[i] for i in sorted(acts)]
        return self._ordered

    def roots(self) -> List[TraceActivation]:
        """Root activations in act_id order (cached)."""
        if self._roots is None:
            self._roots = [a for a in self.ordered() if a.parent_id is None]
        return self._roots

    def __len__(self) -> int:
        return len(self.activations)

    def __iter__(self) -> Iterator[TraceActivation]:
        return iter(self.ordered())

    def two_input_activations(self) -> List[TraceActivation]:
        """Join/negative activations (what Table 5-2 counts)."""
        return [a for a in self if a.kind != KIND_TERMINAL]

    def max_node_id(self) -> int:
        return max((a.node_id for a in self.activations.values()),
                   default=0)

    def max_act_id(self) -> int:
        return max(self.activations, default=0)


@dataclass(slots=True, frozen=True)
class IdleRun:
    """A run of *count* consecutive fully-idle (empty) cycles.

    Streaming trace sources yield one of these instead of *count* empty
    :class:`CycleTrace` objects, so an idle stretch costs O(1) to
    generate, serialize and (with round compression) simulate.  The
    cycles it stands for have indices ``start_index .. start_index +
    count - 1`` and no activations.
    """

    start_index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("idle run needs at least one cycle")

    @property
    def end_index(self) -> int:
        """Index one past the last idle cycle."""
        return self.start_index + self.count

    def cycles(self) -> Iterator["CycleTrace"]:
        """The empty cycles this marker stands for, materialized."""
        for j in range(self.count):
            yield CycleTrace(index=self.start_index + j)


#: What a trace source yields per iteration step.
TraceEntry = Union["CycleTrace", IdleRun]


def iter_cycles(entries: Iterable[TraceEntry]) -> Iterator["CycleTrace"]:
    """Expand a trace-entry stream into plain cycles.

    :class:`IdleRun` markers become their empty cycles; everything else
    passes through.  This is the exact per-cycle view — the reference
    loop and validators consume it.
    """
    for entry in entries:
        if isinstance(entry, IdleRun):
            yield from entry.cycles()
        else:
            yield entry


def materialize(source) -> "SectionTrace":
    """Collect any trace source (stream or section) into a
    :class:`SectionTrace`.  Already-materialized sections pass through
    unchanged."""
    if isinstance(source, SectionTrace):
        return source
    return SectionTrace(name=getattr(source, "name", "stream"),
                        cycles=list(iter_cycles(source)))


@dataclass(slots=True)
class ActivationStats:
    """Aggregate counts in the shape of the paper's Table 5-2."""

    left: int = 0
    right: int = 0
    terminal: int = 0
    successors: int = 0

    @property
    def total(self) -> int:
        return self.left + self.right

    @property
    def left_fraction(self) -> float:
        return self.left / self.total if self.total else 0.0

    def row(self, name: str) -> str:
        """A Table 5-2 row: left (x%), right (y%), total."""
        lf = round(100 * self.left_fraction)
        return (f"{name:<10} {self.left:>7} ({lf}%)   "
                f"{self.right:>7} ({100 - lf}%)   {self.total:>7}")


@dataclass(slots=True)
class SectionTrace:
    """A named sequence of consecutive cycle traces — one 'section' of a
    production-system execution, in the paper's sense (Section 5)."""

    name: str
    cycles: List[CycleTrace] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.cycles)

    def __iter__(self) -> Iterator[CycleTrace]:
        return iter(self.cycles)

    def total_activations(self) -> int:
        return sum(len(c) for c in self.cycles)

    def stats(self) -> ActivationStats:
        """Left/right/terminal activation counts across the section."""
        stats = ActivationStats()
        for cycle in self.cycles:
            for act in cycle:
                if act.kind == KIND_TERMINAL:
                    stats.terminal += 1
                elif act.side == LEFT:
                    stats.left += 1
                else:
                    stats.right += 1
                if act.kind != KIND_TERMINAL:
                    stats.successors += act.n_successors
        return stats

    def slice(self, start: int, stop: int) -> "SectionTrace":
        """Sub-section of cycles [start:stop] (by position)."""
        return SectionTrace(name=f"{self.name}[{start}:{stop}]",
                            cycles=self.cycles[start:stop])

    def bucket_keys(self) -> List[BucketKey]:
        """All distinct bucket keys appearing in the section."""
        seen = {}
        for cycle in self.cycles:
            for act in cycle:
                seen.setdefault(act.key, None)
        return list(seen)

    def node_ids(self) -> List[int]:
        """All distinct two-input node ids appearing in the section."""
        seen = {}
        for cycle in self.cycles:
            for act in cycle:
                if act.kind != KIND_TERMINAL:
                    seen.setdefault(act.node_id, None)
        return list(seen)

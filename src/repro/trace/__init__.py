"""Hash-table activity traces: the simulator input of paper Section 4.

* :mod:`~repro.trace.events` — the event model (activations, cycles,
  sections).
* :mod:`~repro.trace.recorder` — record traces from live Rete runs.
* :mod:`~repro.trace.format` — the Figure 4-1-style text format.
* :mod:`~repro.trace.cache` — content-addressed on-disk trace cache.
* :mod:`~repro.trace.validate` — structural validation.
* :mod:`~repro.trace.transform` — trace-level unsharing, dummy nodes and
  copy-and-constraint (paper Section 5.2).
"""

from .cache import (cache_dir, cache_enabled, cache_stats, cached_trace,
                    clear_cache, format_cache_stats, invalidate,
                    module_source, set_cache_enabled, source_fingerprint,
                    trace_key)
from .events import (KIND_JOIN, KIND_NEGATIVE, KIND_TERMINAL, LEFT, RIGHT,
                     ActivationStats, CycleTrace, IdleRun, SectionTrace,
                     TraceActivation, TraceEntry, iter_cycles, materialize)
from .format import (TRACE_FORMAT_VERSION, FileTraceStream, TraceFormatError,
                     dump_entries, dump_trace, dumps_trace, load_trace,
                     loads_trace, read_trace, save_entries, save_trace)
from .recorder import TraceRecorder, record_program
from .transform import (copy_and_constraint_trace, insert_dummy_nodes,
                        unshare_trace)
from .validate import TraceValidationError, validate_cycle, validate_trace

__all__ = [
    "KIND_JOIN", "KIND_NEGATIVE", "KIND_TERMINAL", "LEFT", "RIGHT",
    "ActivationStats", "CycleTrace", "IdleRun", "SectionTrace",
    "TraceActivation", "TraceEntry", "iter_cycles", "materialize",
    "TRACE_FORMAT_VERSION", "FileTraceStream", "TraceFormatError",
    "dump_entries", "dump_trace", "dumps_trace", "load_trace",
    "loads_trace", "read_trace", "save_entries", "save_trace",
    "cache_dir", "cache_enabled", "cache_stats", "cached_trace",
    "clear_cache", "format_cache_stats", "invalidate", "module_source",
    "set_cache_enabled", "source_fingerprint", "trace_key",
    "TraceRecorder", "record_program",
    "copy_and_constraint_trace", "insert_dummy_nodes", "unshare_trace",
    "TraceValidationError", "validate_cycle", "validate_trace",
]

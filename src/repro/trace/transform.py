"""Trace-level versions of the paper's Section 5.2 transformations.

The paper's simulator consumes traces, so its remedies are evaluated by
rewriting the trace the way the transformed network would have produced
it:

* :func:`unshare_trace` — Figure 5-3: activations at a shared node are
  replicated, one copy per output branch, each copy generating only its
  branch's successors (and the generating parent pays for one token per
  copy: "some work is duplicated").
* :func:`copy_and_constraint_trace` — Section 5.2.2: activations at a
  node are partitioned across k replica nodes, giving the hash function
  the extra discrimination the split productions would provide.
* :func:`insert_dummy_nodes` — Section 5.2.1 option 2: a node generating
  many successors hands them to 2–4 dummy nodes which generate them in
  parallel.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..rete.hashing import BucketKey
from .events import (KIND_JOIN, KIND_TERMINAL, CycleTrace, SectionTrace,
                     TraceActivation)


def _max_node_id(trace: SectionTrace) -> int:
    return max((c.max_node_id() for c in trace.cycles), default=0)


def _renumber_cycle(cycle: CycleTrace) -> CycleTrace:
    """Reassign act ids in topological (DFS-from-roots) order.

    Transforms that insert activations mid-forest can leave parents with
    larger ids than children; this restores the id invariant without
    changing the structure.
    """
    children: Dict[int, List[int]] = {}
    roots: List[int] = []
    for act in cycle:
        if act.parent_id is None:
            roots.append(act.act_id)
        else:
            children.setdefault(act.parent_id, []).append(act.act_id)

    mapping: Dict[int, int] = {}
    order: List[int] = []
    stack = list(reversed(roots))
    while stack:
        old_id = stack.pop()
        mapping[old_id] = len(mapping) + 1
        order.append(old_id)
        stack.extend(reversed(sorted(children.get(old_id, ()))))

    renumbered = CycleTrace(index=cycle.index)
    for old_id in order:
        act = cycle.activations[old_id]
        renumbered.add(TraceActivation(
            act_id=mapping[old_id],
            parent_id=(None if act.parent_id is None
                       else mapping[act.parent_id]),
            node_id=act.node_id, kind=act.kind, side=act.side,
            tag=act.tag, key=act.key,
            successors=tuple(sorted(mapping[s] for s in act.successors))))
    return renumbered


def _rebuild_successors(cycle: CycleTrace) -> None:
    """Recompute successor tuples from parent links, in-place."""
    children: Dict[int, List[int]] = {}
    for act in cycle.activations.values():
        if act.parent_id is not None:
            children.setdefault(act.parent_id, []).append(act.act_id)
    for act in cycle.activations.values():
        act.successors = tuple(sorted(children.get(act.act_id, ())))


# ---------------------------------------------------------------------------
# Unsharing (Figure 5-3)
# ---------------------------------------------------------------------------

def unshare_trace(trace: SectionTrace,
                  node_ids: Optional[Sequence[int]] = None) -> SectionTrace:
    """Unshare the given nodes (default: every node with >1 output branch).

    A node's *branches* are the distinct destination nodes its
    activations feed, observed over the whole section.  Each activation
    at an unshared node becomes one copy per branch; the copy for branch
    *d* keeps exactly the successors headed for *d*.  Parents are
    re-pointed so that the copy count shows up as extra generated tokens
    at the generating site — the duplicated work of the transformation.
    """
    branches: Dict[int, Set[int]] = {}
    for cycle in trace:
        for act in cycle:
            if act.kind == KIND_TERMINAL:
                continue
            for succ_id in act.successors:
                succ = cycle.activations[succ_id]
                branches.setdefault(act.node_id, set()).add(succ.node_id)

    if node_ids is None:
        targets = {n for n, b in branches.items() if len(b) > 1}
    else:
        targets = {n for n in node_ids if len(branches.get(n, ())) > 1}

    node_alloc = _max_node_id(trace)
    branch_node: Dict[Tuple[int, int], int] = {}
    for node in sorted(targets):
        for dest in sorted(branches[node]):
            node_alloc += 1
            branch_node[(node, dest)] = node_alloc

    out = SectionTrace(name=f"{trace.name}+unshare")
    for cycle in trace:
        new_cycle = CycleTrace(index=cycle.index)
        next_id = 1
        # (old_act_id, branch_dest) -> new act id of the copy owning it;
        # unsplit activations map every dest to their single new id.
        copy_for_branch: Dict[Tuple[int, int], int] = {}
        single_copy: Dict[int, int] = {}

        for act in cycle:  # ascending act_id: parents before children
            if act.parent_id is None:
                new_parent = None
            else:
                # Which copy of my parent generated me?  The one owning
                # the branch toward my (original) node.
                new_parent = copy_for_branch.get(
                    (act.parent_id, act.node_id),
                    single_copy.get(act.parent_id))

            if act.node_id in targets:
                # One copy per output branch; each copy's successors are
                # re-derived from the children's parent links below, so
                # the copy for branch d automatically owns exactly the
                # successors headed for d.
                for dest in sorted(branches[act.node_id]):
                    new_node = branch_node[(act.node_id, dest)]
                    new_act = TraceActivation(
                        act_id=next_id, parent_id=new_parent,
                        node_id=new_node, kind=act.kind, side=act.side,
                        tag=act.tag,
                        key=BucketKey(new_node, act.key.values),
                        successors=())
                    copy_for_branch[(act.act_id, dest)] = next_id
                    new_cycle.add(new_act)
                    next_id += 1
            else:
                new_act = TraceActivation(
                    act_id=next_id, parent_id=new_parent,
                    node_id=act.node_id, kind=act.kind, side=act.side,
                    tag=act.tag, key=act.key, successors=())
                single_copy[act.act_id] = next_id
                new_cycle.add(new_act)
                next_id += 1

        _rebuild_successors(new_cycle)
        out.cycles.append(new_cycle)
    return out


# ---------------------------------------------------------------------------
# Copy and constraint (Section 5.2.2)
# ---------------------------------------------------------------------------

def copy_and_constraint_trace(
        trace: SectionTrace, node_id: int, k: int,
        assignment: Optional[Callable[[TraceActivation], int]] = None,
) -> SectionTrace:
    """Partition the activations of *node_id* across *k* replica nodes.

    Models splitting the culprit production into *k* copies: each token
    matches exactly one copy, so no work is duplicated — but the replica
    node-ids give the hash function the discrimination it lacked, so the
    tokens spread over *k* buckets instead of one.

    *assignment* maps an activation to its replica in ``range(k)``;
    the default deals them round-robin in arrival order per cycle, the
    best case the source transformation could achieve.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    base = _max_node_id(trace)
    replica_ids = [base + 1 + i for i in range(k)]

    out = SectionTrace(name=f"{trace.name}+cc{k}")
    for cycle in trace:
        new_cycle = CycleTrace(index=cycle.index)
        counter = 0
        for act in cycle:
            if act.node_id == node_id and act.kind != KIND_TERMINAL:
                if assignment is not None:
                    part = assignment(act) % k
                else:
                    part = counter % k
                    counter += 1
                new_node = replica_ids[part]
                new_cycle.add(TraceActivation(
                    act_id=act.act_id, parent_id=act.parent_id,
                    node_id=new_node, kind=act.kind, side=act.side,
                    tag=act.tag,
                    key=BucketKey(new_node, act.key.values),
                    successors=act.successors))
            else:
                new_cycle.add(TraceActivation(
                    act_id=act.act_id, parent_id=act.parent_id,
                    node_id=act.node_id, kind=act.kind, side=act.side,
                    tag=act.tag, key=act.key, successors=act.successors))
        out.cycles.append(new_cycle)
    return out


# ---------------------------------------------------------------------------
# Dummy nodes (Section 5.2.1, option 2) -- see _renumber_cycle above
# ---------------------------------------------------------------------------

def insert_dummy_nodes(trace: SectionTrace, node_id: int,
                       parts: int = 2) -> SectionTrace:
    """Split successor generation at *node_id* across *parts* dummy nodes.

    Every activation at *node_id* with more than one successor hands its
    successors, in *parts* contiguous groups, to dummy activations at
    fresh node ids; each dummy then generates its group.  The dummies
    cost one (left) activation each but let the generation proceed in
    parallel on up to *parts* processors — the paper suggests 2–4.
    """
    if parts < 2:
        raise ValueError("parts must be >= 2 (1 would be a no-op)")
    base = _max_node_id(trace)
    dummy_ids = [base + 1 + i for i in range(parts)]

    out = SectionTrace(name=f"{trace.name}+dummy{parts}")
    for cycle in trace:
        new_cycle = CycleTrace(index=cycle.index)
        next_extra = cycle.max_act_id() + 1
        # Plan first, emit second: an activation can be both a split
        # site and the child of one (chained activations at node_id),
        # so the re-parenting map must be complete before any copy is
        # written out.
        reparent: Dict[int, int] = {}
        dummies_of: Dict[int, List[TraceActivation]] = {}
        for act in cycle:
            if not (act.node_id == node_id and act.kind != KIND_TERMINAL
                    and act.n_successors > 1):
                continue
            groups: List[List[int]] = [[] for _ in range(parts)]
            for i, succ_id in enumerate(act.successors):
                groups[i * parts // len(act.successors)].append(succ_id)
            dummies: List[TraceActivation] = []
            for part, group in enumerate(groups):
                if not group:
                    continue
                dummy_node = dummy_ids[part]
                dummy = TraceActivation(
                    act_id=next_extra, parent_id=act.act_id,
                    node_id=dummy_node, kind=KIND_JOIN, side="left",
                    tag=act.tag,
                    key=BucketKey(dummy_node, act.key.values),
                    successors=tuple(group))
                next_extra += 1
                dummies.append(dummy)
                for succ_id in group:
                    reparent[succ_id] = dummy.act_id
            dummies_of[act.act_id] = dummies
        for act in cycle:
            dummies = dummies_of.get(act.act_id)
            new_cycle.add(TraceActivation(
                act_id=act.act_id,
                parent_id=reparent.get(act.act_id, act.parent_id),
                node_id=act.node_id, kind=act.kind, side=act.side,
                tag=act.tag, key=act.key,
                successors=(tuple(d.act_id for d in dummies)
                            if dummies is not None else act.successors)))
            for dummy in dummies or ():
                new_cycle.add(dummy)
        # (ids are repaired by _renumber_cycle below: the dummies were
        # given ids larger than the successors they adopt)
        out.cycles.append(_renumber_cycle(new_cycle))
    return out

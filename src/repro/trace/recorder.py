"""Recording hash-table activity traces from live Rete runs.

:class:`TraceRecorder` attaches to a :class:`~repro.rete.ReteNetwork` and
an :class:`~repro.ops5.Interpreter` and groups the network's activation
events by MRA cycle, producing the :class:`~repro.trace.events
.SectionTrace` the MPC simulator consumes.  This is the path that turns a
real OPS5 program into simulator input, end to end.
"""

from __future__ import annotations

from typing import Dict, List

from ..ops5.interpreter import Interpreter
from ..rete.network import ReteNetwork
from ..rete.stats import ActivationEvent
from .events import CycleTrace, SectionTrace, TraceActivation


class TraceRecorder:
    """Collects per-cycle activation forests from a network.

    Usage::

        network = ReteNetwork()
        interp = Interpreter(matcher=network)
        recorder = TraceRecorder(network)
        interp.load_program(program)        # recorded as cycle 0
        interp.run()                        # firings become cycles 1..n
        trace = recorder.section("my-run")

    Cycle 0 holds the activations caused by initial working-memory setup;
    experiment code usually drops it with ``trace.slice(1, None)`` since
    the paper's sections are mid-run cycles.
    """

    def __init__(self, network: ReteNetwork) -> None:
        self.network = network
        self._cycles: Dict[int, CycleTrace] = {}
        self._current_cycle = 0
        network.observers.append(self._on_event)

    # -- wiring ------------------------------------------------------------

    def attach(self, interpreter: Interpreter) -> None:
        """Follow the interpreter's cycle numbering.

        The cycle hook fires at the start of each MRA cycle, before any
        working-memory change of that firing reaches the matcher, so
        every activation lands in the right cycle bucket.
        """
        interpreter.cycle_listeners.append(self.set_cycle)

    def set_cycle(self, cycle: int) -> None:
        """Manual cycle control for driving the network without an
        interpreter (tests, custom drivers)."""
        self._current_cycle = cycle

    # -- event collection -----------------------------------------------------

    def _on_event(self, event: ActivationEvent) -> None:
        cycle = self._cycles.setdefault(self._current_cycle,
                                        CycleTrace(self._current_cycle))
        cycle.add(TraceActivation(
            act_id=event.act_id,
            parent_id=event.parent_id,
            node_id=event.node_id,
            kind=event.node_kind,
            side=event.side,
            tag=event.tag,
            key=event.key,
            successors=(),   # filled below from children's parent links
        ))

    # -- extraction --------------------------------------------------------------

    def section(self, name: str,
                drop_setup_cycle: bool = False) -> SectionTrace:
        """Build the finished section trace.

        Successor lists are reconstructed from parent links here (events
        arrive in post-order, so children are only known at the end).
        """
        cycles: List[CycleTrace] = []
        for index in sorted(self._cycles):
            if drop_setup_cycle and index == 0:
                continue
            source = self._cycles[index]
            rebuilt = CycleTrace(index=index)
            children: Dict[int, List[int]] = {}
            for act in source:
                if act.parent_id is not None:
                    children.setdefault(act.parent_id, []).append(
                        act.act_id)
            for act in source:
                rebuilt.add(TraceActivation(
                    act_id=act.act_id, parent_id=act.parent_id,
                    node_id=act.node_id, kind=act.kind, side=act.side,
                    tag=act.tag, key=act.key,
                    successors=tuple(sorted(children.get(act.act_id, ()))),
                ))
            cycles.append(rebuilt)
        return SectionTrace(name=name, cycles=cycles)


def record_program(program, name: str, max_cycles: int = 10_000,
                   drop_setup_cycle: bool = True) -> SectionTrace:
    """One-call convenience: run *program* under Rete and record a trace.

    The interpreter's startup wmes land in cycle 0, dropped by default.
    """
    network = ReteNetwork()
    recorder = TraceRecorder(network)
    interpreter = Interpreter(matcher=network)
    recorder.attach(interpreter)
    interpreter.load_program(program)
    interpreter.run(max_cycles=max_cycles)
    return recorder.section(name, drop_setup_cycle=drop_setup_cycle)

"""Content-addressed on-disk cache for section traces.

Recording a section — running the OPS5 interpreter and Rete match, or
rebuilding a calibrated synthetic section — is pure: the same program
source and parameters always yield the same trace.  This module
memoizes that work.  A trace is stored once under a key derived from

* the trace-format version (:data:`repro.trace.format
  .TRACE_FORMAT_VERSION`),
* a hash of the *source* that produced it (the OPS5 program text, or
  the generator module's own source code), and
* the run parameters (seed, name, structural knobs).

and loaded losslessly from disk thereafter via the Figure 4-1 text
format, which round-trips traces activation-by-activation.  Any change
to the source or parameters changes the key, so stale entries are never
served — they are simply orphaned until :func:`clear_cache`.

A per-process memory layer sits in front of the disk: repeated calls in
one process (the common shape of a test session or a figure
regeneration) return the same :class:`~repro.trace.events.SectionTrace`
object.  Cached traces are therefore *shared* and must be treated as
immutable — which all downstream code already does: the Section 5.2
transformations build fresh activations rather than editing in place.

Escape hatches
--------------
``REPRO_TRACE_CACHE=0`` in the environment (or
:func:`set_cache_enabled`\\ ``(False)``) disables caching entirely;
every call rebuilds from scratch — the exact pre-cache behavior.
``REPRO_TRACE_CACHE_DIR`` overrides the cache directory.
:func:`clear_cache` removes every stored trace.

Corruption
----------
A cache entry that exists but fails to parse (torn write survived a
crash, disk corruption, manual edit) is **quarantined**, not silently
rebuilt over: the file is renamed to ``<entry>.corrupt`` and a warning
is logged via the ``repro.trace.cache`` logger, then the trace is
rebuilt and stored fresh.  Repeated corruption therefore stays
diagnosable — the ``*.corrupt`` files accumulate as evidence instead of
vanishing.  :func:`clear_cache` removes quarantined files too.
"""

from __future__ import annotations

import atexit
import hashlib
import importlib
import inspect
import logging
import os
import re
import tempfile
from functools import lru_cache
from pathlib import Path
from typing import Callable, Dict, Optional

from ..obs import get_registry, log_event
from .events import SectionTrace
from .format import (TRACE_FORMAT_VERSION, TraceFormatError, dump_trace,
                     read_trace)

logger = logging.getLogger(__name__)

#: Counter names, all under this prefix (see :func:`cache_stats`).
METRIC_PREFIX = "trace_cache."

_COUNTERS = ("memory_hits", "disk_hits", "misses", "stores", "quarantines")


def _count(event: str) -> None:
    get_registry().counter(METRIC_PREFIX + event).inc()


def cache_stats() -> Dict[str, int]:
    """This process's cache counters (hits/misses/stores/quarantines)."""
    registry = get_registry()
    return {name: registry.counter(METRIC_PREFIX + name).value
            for name in _COUNTERS}


def format_cache_stats(stats: Optional[Dict[str, int]] = None) -> str:
    """The counters as one ``key=value`` line (process summary)."""
    stats = cache_stats() if stats is None else stats
    return "trace cache: " + " ".join(f"{k}={v}" for k, v in stats.items())


@atexit.register
def _log_summary_at_exit() -> None:
    # One INFO line per process that touched the cache — visible with
    # -v, silent otherwise (INFO is below the default WARNING level).
    # Handlers may point at a stream the host (e.g. pytest's capture)
    # already closed this late in shutdown, so swallow emit errors.
    stats = cache_stats()
    if not any(stats.values()):
        return
    previous = logging.raiseExceptions
    logging.raiseExceptions = False
    try:
        logger.info("%s", format_cache_stats(stats))
    finally:
        logging.raiseExceptions = previous

#: Environment switch: set to ``0``/``false``/``off``/``no`` to disable.
ENV_ENABLED = "REPRO_TRACE_CACHE"

#: Environment override for the on-disk cache location.
ENV_DIR = "REPRO_TRACE_CACHE_DIR"

_FALSY = ("0", "false", "off", "no")

#: Process-level memo (key -> loaded/built trace).
_memory: Dict[str, SectionTrace] = {}

#: Programmatic enable/disable override (None = follow the environment).
_enabled_override: Optional[bool] = None


def cache_enabled() -> bool:
    """Whether the cache is active (env + programmatic override)."""
    if _enabled_override is not None:
        return _enabled_override
    return os.environ.get(ENV_ENABLED, "1").strip().lower() not in _FALSY


def set_cache_enabled(enabled: Optional[bool]) -> None:
    """Force the cache on/off; ``None`` restores environment control."""
    global _enabled_override
    _enabled_override = enabled


def cache_dir() -> Path:
    """The on-disk cache directory (not necessarily existing yet).

    ``REPRO_TRACE_CACHE_DIR`` wins; a source checkout uses
    ``<repo>/.trace_cache``; an installed package falls back to a
    per-user directory under the system temp dir.
    """
    env = os.environ.get(ENV_DIR)
    if env:
        return Path(env)
    root = Path(__file__).resolve().parents[3]
    if (root / "pyproject.toml").exists():
        return root / ".trace_cache"
    return Path(tempfile.gettempdir()) / "repro-trace-cache"


def trace_key(kind: str, *, source: str = "", **params) -> str:
    """Content-addressed cache key.

    *kind* is a human-readable prefix kept in the filename; *source* is
    the text whose content determines the trace (program source or
    generator code); *params* are the run parameters.  Values are
    hashed via ``repr``, so use primitives.
    """
    digest = hashlib.sha256()
    digest.update(f"format={TRACE_FORMAT_VERSION}\n".encode("utf-8"))
    digest.update(f"kind={kind}\n".encode("utf-8"))
    digest.update(b"source\n" + source.encode("utf-8") + b"\x00")
    for name in sorted(params):
        digest.update(f"param {name}={params[name]!r}\n".encode("utf-8"))
    prefix = re.sub(r"[^A-Za-z0-9_.-]+", "-", kind)[:40] or "trace"
    return f"{prefix}-{digest.hexdigest()[:32]}"


def source_fingerprint(*texts: str) -> str:
    """Stable digest of one or more source texts, for use as *source*."""
    digest = hashlib.sha256()
    for text in texts:
        digest.update(text.encode("utf-8") + b"\x00")
    return digest.hexdigest()


@lru_cache(maxsize=None)
def module_source(module_name: str) -> str:
    """Source text of an imported module.

    The synthetic-section generators fold their own source (and their
    building blocks') into the cache key this way: editing a generator
    invalidates its cached traces with no manual version bump.
    """
    return inspect.getsource(importlib.import_module(module_name))


def _path_for(key: str) -> Path:
    return cache_dir() / f"{key}.trace"


def _store(key: str, trace: SectionTrace) -> None:
    directory = cache_dir()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        # Write-to-temp + atomic rename: concurrent processes (the
        # parallel sweep engine, pytest-xdist) may race on the same key,
        # and a torn file must never be served.
        fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as stream:
                dump_trace(trace, stream)
            os.replace(tmp_name, _path_for(key))
            _count("stores")
        finally:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
    except OSError:
        pass  # a read-only filesystem degrades to build-every-time


def cached_trace(key: str, build: Callable[[], SectionTrace], *,
                 refresh: bool = False) -> SectionTrace:
    """Return the trace stored under *key*, building it on a miss.

    With the cache disabled this is exactly ``build()``.  *refresh*
    forces a rebuild and overwrites the stored entry.
    """
    if not cache_enabled():
        return build()
    if not refresh:
        trace = _memory.get(key)
        if trace is not None:
            _count("memory_hits")
            return trace
        path = _path_for(key)
        try:
            trace = read_trace(path)
        except OSError:
            trace = None  # a plain miss (or unreadable dir): rebuild
        except TraceFormatError as err:
            _quarantine(path, err)
            trace = None
        if trace is not None:
            _count("disk_hits")
            log_event(logger, "cache_hit", level=logging.DEBUG,
                      key=key, layer="disk")
            _memory[key] = trace
            return trace
    _count("misses")
    log_event(logger, "cache_miss", level=logging.DEBUG, key=key,
              refresh=refresh)
    trace = build()
    _store(key, trace)
    _memory[key] = trace
    return trace


def _quarantine(path: Path, err: Exception) -> Optional[Path]:
    """Set a corrupt cache entry aside as ``<name>.corrupt``.

    Renaming (rather than deleting) keeps the evidence: repeated
    corruption of the same entry is a symptom worth diagnosing, not
    something to silently rebuild over.  Returns the quarantine path,
    or ``None`` if even the rename failed (read-only filesystem).
    """
    target = path.with_name(path.name + ".corrupt")
    _count("quarantines")
    try:
        os.replace(path, target)
    except OSError:
        logger.warning(
            "corrupt trace cache entry %s (%s); could not quarantine it "
            "— rebuilding anyway", path, err)
        return None
    logger.warning(
        "corrupt trace cache entry %s (%s); quarantined as %s and "
        "rebuilding", path.name, err, target.name)
    return target


def invalidate(key: str) -> bool:
    """Drop one entry (memory + disk); True if anything was removed."""
    removed = _memory.pop(key, None) is not None
    try:
        _path_for(key).unlink()
        removed = True
    except OSError:
        pass
    return removed


def clear_cache() -> int:
    """Remove every cached trace (and quarantined ``*.corrupt`` file);
    returns the number of files deleted."""
    _memory.clear()
    count = 0
    directory = cache_dir()
    if directory.is_dir():
        for pattern in ("*.trace", "*.trace.corrupt"):
            for path in directory.glob(pattern):
                try:
                    path.unlink()
                    count += 1
                except OSError:
                    pass
    return count

"""Text serialization of section traces, modelled on the paper's
Figure 4-1 simulator input.

The format is line-oriented and lossless::

    #repro-trace 1
    section rubik-good-speedups
    cycle 1
    a 1 - 17 join right + k n:3 s:red : 4 5
    a 4 1 23 join left + k s:red :
    ...

Fields of an ``a`` line: act-id, parent-id (``-`` for roots), node-id,
kind, side, tag, then ``k`` followed by the bucket-key values
(type-tagged, percent-escaped), then ``:`` followed by the successor
act-ids.  Values are tagged ``n:`` (number) or ``s:`` (symbol) so that
``1`` and ``"1"`` survive the round trip.

Two extensions serve the large-scale path (ROADMAP item 3):

* an ``idle <start> <count>`` line stands for *count* consecutive empty
  cycles (an :class:`~repro.trace.events.IdleRun`), so a million-cycle
  idle stretch is one line instead of a million ``cycle`` headers.
  :func:`dump_trace` never emits it for materialized sections — only
  :func:`dump_entries` does — and both readers accept it.
* :class:`FileTraceStream` reads a trace file *lazily*, one cycle in
  memory at a time, and is re-iterable — the streaming counterpart of
  :func:`read_trace` for traces too large to materialize.
"""

from __future__ import annotations

import io
import sys
from typing import Iterable, Iterator, Optional, TextIO
from urllib.parse import quote, unquote

from ..ops5.values import Value
from ..rete.hashing import BucketKey
from .events import (VALID_KINDS, VALID_SIDES, VALID_TAGS, CycleTrace,
                     IdleRun, SectionTrace, TraceActivation, TraceEntry)

#: Version of the on-disk trace format.  Bump when the serialization
#: changes shape; the content-addressed cache (:mod:`repro.trace.cache`)
#: folds it into every key, so stale cache entries self-invalidate.
TRACE_FORMAT_VERSION = 1

_MAGIC = f"#repro-trace {TRACE_FORMAT_VERSION}"


class TraceFormatError(Exception):
    """Raised when a trace file is malformed."""


def _encode_value(value: Value) -> str:
    if isinstance(value, bool):
        raise TraceFormatError("boolean values are not OPS5 atoms")
    if isinstance(value, int):
        return f"n:{value}"
    if isinstance(value, float):
        return f"n:{value!r}"
    # Percent-encode everything outside [A-Za-z0-9_.~-]: whitespace of any
    # flavour would break field splitting, and this keeps the format ASCII.
    return f"s:{quote(value, safe='')}"


def _decode_value(text: str) -> Value:
    if len(text) < 2 or text[1] != ":":
        raise TraceFormatError(f"bad value field {text!r}")
    tag, body = text[0], text[2:]
    if tag == "n":
        try:
            return int(body)
        except ValueError:
            try:
                return float(body)
            except ValueError:
                raise TraceFormatError(f"bad number {body!r}") from None
    if tag == "s":
        # Interned: a million-activation file repeats the same few
        # hundred symbols; one shared str per symbol instead of one per
        # occurrence (ROADMAP item 2).
        return sys.intern(unquote(body))
    raise TraceFormatError(f"unknown value tag {tag!r}")


def _write_cycle(cycle: CycleTrace, stream: TextIO) -> None:
    stream.write(f"cycle {cycle.index}\n")
    for act in cycle:
        parent = "-" if act.parent_id is None else str(act.parent_id)
        values = " ".join(_encode_value(v) for v in act.key.values)
        successors = " ".join(str(s) for s in act.successors)
        stream.write(
            f"a {act.act_id} {parent} {act.node_id} {act.kind} "
            f"{act.side} {act.tag} k {values} : {successors}".rstrip()
            + "\n")


def dump_trace(trace: SectionTrace, stream: TextIO) -> None:
    """Write *trace* to *stream* in the text format."""
    stream.write(_MAGIC + "\n")
    stream.write(f"section {trace.name}\n")
    for cycle in trace:
        _write_cycle(cycle, stream)


def dump_entries(name: str, entries: Iterable[TraceEntry],
                 stream: TextIO) -> None:
    """Write a trace-entry stream (cycles and idle runs) to *stream*.

    The streaming counterpart of :func:`dump_trace`: consumes entries
    one at a time (nothing is materialized) and writes each
    :class:`~repro.trace.events.IdleRun` as a single ``idle`` line.
    """
    stream.write(_MAGIC + "\n")
    stream.write(f"section {name}\n")
    for entry in entries:
        if isinstance(entry, IdleRun):
            stream.write(f"idle {entry.start_index} {entry.count}\n")
        else:
            _write_cycle(entry, stream)


def save_entries(name: str, entries: Iterable[TraceEntry], path) -> None:
    """Write a trace-entry stream to the file at *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        dump_entries(name, entries, fh)


def dumps_trace(trace: SectionTrace) -> str:
    """Serialize *trace* to a string."""
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    return buffer.getvalue()


def load_trace(stream: TextIO) -> SectionTrace:
    """Parse a trace from *stream*; inverse of :func:`dump_trace`."""
    lines = [ln.rstrip("\n") for ln in stream]
    if not lines or lines[0].strip() != _MAGIC:
        raise TraceFormatError(
            f"missing magic header {_MAGIC!r}")
    index = 1
    if index >= len(lines) or not lines[index].startswith("section "):
        raise TraceFormatError("missing 'section <name>' line")
    name = lines[index][len("section "):]
    trace = SectionTrace(name=name)
    current: CycleTrace | None = None
    for line_no, line in enumerate(lines[index + 1:], start=index + 2):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.startswith("cycle "):
            try:
                cycle_index = int(stripped.split()[1])
            except (IndexError, ValueError):
                raise TraceFormatError(
                    f"line {line_no}: bad cycle header {stripped!r}")
            current = CycleTrace(index=cycle_index)
            trace.cycles.append(current)
            continue
        if stripped.startswith("a "):
            if current is None:
                raise TraceFormatError(
                    f"line {line_no}: activation before any cycle header")
            current.add(_parse_activation(stripped, line_no))
            continue
        if stripped.startswith("idle "):
            for cycle in _parse_idle(stripped, line_no).cycles():
                trace.cycles.append(cycle)
            current = None
            continue
        raise TraceFormatError(f"line {line_no}: unrecognised {stripped!r}")
    return trace


def _parse_idle(line: str, line_no: int) -> IdleRun:
    fields = line.split()
    try:
        start, count = int(fields[1]), int(fields[2])
        if len(fields) != 3:
            raise ValueError("expected 'idle <start> <count>'")
        return IdleRun(start_index=start, count=count)
    except (IndexError, ValueError) as exc:
        raise TraceFormatError(f"line {line_no}: {exc}") from None


def loads_trace(text: str) -> SectionTrace:
    """Parse a trace from a string."""
    return load_trace(io.StringIO(text))


def _parse_activation(line: str, line_no: int) -> TraceActivation:
    fields = line.split()
    # a <id> <parent> <node> <kind> <side> <tag> k <vals...> : <succs...>
    try:
        if fields[7] != "k":
            raise ValueError("expected 'k' marker")
        colon = fields.index(":", 7)
        act_id = int(fields[1])
        parent_id = None if fields[2] == "-" else int(fields[2])
        node_id = int(fields[3])
        kind, side, tag = fields[4], fields[5], fields[6]
        values = tuple(_decode_value(f) for f in fields[8:colon])
        successors = tuple(int(f) for f in fields[colon + 1:])
    except (IndexError, ValueError) as exc:
        raise TraceFormatError(f"line {line_no}: {exc}") from None
    if kind not in VALID_KINDS:
        raise TraceFormatError(f"line {line_no}: bad kind {kind!r}")
    if side not in VALID_SIDES:
        raise TraceFormatError(f"line {line_no}: bad side {side!r}")
    if tag not in VALID_TAGS:
        raise TraceFormatError(f"line {line_no}: bad tag {tag!r}")
    return TraceActivation(
        act_id=act_id, parent_id=parent_id, node_id=node_id, kind=kind,
        side=side, tag=tag, key=BucketKey(node_id, values),
        successors=successors)


def save_trace(trace: SectionTrace, path) -> None:
    """Write *trace* to the file at *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        dump_trace(trace, fh)


def read_trace(path) -> SectionTrace:
    """Read a trace from the file at *path*."""
    with open(path, "r", encoding="utf-8") as fh:
        return load_trace(fh)


class FileTraceStream:
    """Lazy, re-iterable reader of a trace file.

    Holds one cycle in memory at a time — a million-activation file
    streams through the simulator at O(largest cycle) memory.  Each
    ``__iter__`` call reopens the file, so the stream can feed every
    point of a sweep.  Picklable (only the path travels), which lets
    the parallel sweep engine ship it to worker processes.

    ``idle`` lines come out as :class:`~repro.trace.events.IdleRun`
    markers; pass ``coalesce_idle=True`` to also merge runs of adjacent
    *explicit* empty cycles into markers (the round-compression engine
    does that itself, so the default leaves cycles as written).
    """

    def __init__(self, path, coalesce_idle: bool = False) -> None:
        self.path = path
        self.coalesce_idle = coalesce_idle
        self.name = self._read_name()
        self._total: Optional[int] = None

    def _read_name(self) -> str:
        with open(self.path, "r", encoding="utf-8") as fh:
            magic = fh.readline().rstrip("\n")
            if magic.strip() != _MAGIC:
                raise TraceFormatError(f"missing magic header {_MAGIC!r}")
            section = fh.readline().rstrip("\n")
            if not section.startswith("section "):
                raise TraceFormatError("missing 'section <name>' line")
            return section[len("section "):]

    def __iter__(self) -> Iterator[TraceEntry]:
        pending: Optional[IdleRun] = None
        for entry in self._parse():
            if not self.coalesce_idle:
                yield entry
                continue
            empty = isinstance(entry, IdleRun) or len(entry) == 0
            if empty:
                start = entry.start_index if isinstance(entry, IdleRun) \
                    else entry.index
                count = entry.count if isinstance(entry, IdleRun) else 1
                if pending is not None and pending.end_index == start:
                    pending = IdleRun(pending.start_index,
                                      pending.count + count)
                else:
                    if pending is not None:
                        yield pending
                    pending = IdleRun(start, count)
                continue
            if pending is not None:
                yield pending
                pending = None
            yield entry
        if pending is not None:
            yield pending

    def _parse(self) -> Iterator[TraceEntry]:
        with open(self.path, "r", encoding="utf-8") as fh:
            fh.readline()  # magic (validated in __init__)
            fh.readline()  # section name
            current: Optional[CycleTrace] = None
            line_no = 2
            for line in fh:
                line_no += 1
                stripped = line.strip()
                if not stripped or stripped.startswith("#"):
                    continue
                if stripped.startswith("cycle "):
                    if current is not None:
                        yield current
                    try:
                        index = int(stripped.split()[1])
                    except (IndexError, ValueError):
                        raise TraceFormatError(
                            f"line {line_no}: bad cycle header "
                            f"{stripped!r}") from None
                    current = CycleTrace(index=index)
                    continue
                if stripped.startswith("a "):
                    if current is None:
                        raise TraceFormatError(
                            f"line {line_no}: activation before any "
                            f"cycle header")
                    current.add(_parse_activation(stripped, line_no))
                    continue
                if stripped.startswith("idle "):
                    if current is not None:
                        yield current
                        current = None
                    yield _parse_idle(stripped, line_no)
                    continue
                raise TraceFormatError(
                    f"line {line_no}: unrecognised {stripped!r}")
            if current is not None:
                yield current

    def total_activations(self) -> int:
        """Activation count (one counting pass on first call, cached)."""
        if self._total is None:
            total = 0
            with open(self.path, "r", encoding="utf-8") as fh:
                for line in fh:
                    if line.startswith("a "):
                        total += 1
            self._total = total
        return self._total

    def __getstate__(self):
        return {"path": self.path, "coalesce_idle": self.coalesce_idle,
                "name": self.name, "_total": self._total}

    def __setstate__(self, state):
        self.path = state["path"]
        self.coalesce_idle = state["coalesce_idle"]
        self.name = state["name"]
        self._total = state["_total"]

"""Memory-footprint estimation and node partitioning (paper Section 3.1).

The paper's space discussion: the Rete net encoded in the OPS83 style
(in-line procedure expansion) costs "about 1-2 Mbytes" for a ~1000
production program, while "a message-passing processor may have only
10-20 kbytes of local memory".  The two proposed remedies, both
implemented here:

1. **Partition the nodes** so that each processor evaluates nodes from
   only one partition; the hash function preserves node-id bits so
   routing stays consistent.  "To avoid contention, nodes belonging to
   a single production are put into different partitions."
2. **Encode two-input nodes as 14-byte structures** indexed by node-id
   instead of expanding them in-line, trading a small register-load
   cost per activation.

These are planning tools, not simulated costs: they answer "how many
partitions / which encoding do I need to fit this rule set into a given
local memory".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .network import ReteNetwork

#: In-line (OPS83 software technology) expansion cost per two-input
#: node.  Calibrated to the paper's figure: ~1000 productions (about
#: two joins each) occupying 1-2 MB puts a node at roughly 750 bytes.
INLINE_BYTES_PER_NODE = 750

#: The compact encoding of the paper: "encode the two-input nodes into
#: structures of 14 bytes, indexed by the node-id".
STRUCT_BYTES_PER_NODE = 14

#: Shared interpreter code a processor needs alongside the table-driven
#: encoding (the paper pays "a small performance penalty of loading the
#: required information into registers" instead of duplicated code).
STRUCT_INTERPRETER_BYTES = 4096


def inline_bytes(network: ReteNetwork) -> int:
    """Estimated code size with in-line expansion of every node."""
    return network.node_count() * INLINE_BYTES_PER_NODE


def struct_bytes(network: ReteNetwork) -> int:
    """Estimated size with the 14-byte structure encoding."""
    return (network.node_count() * STRUCT_BYTES_PER_NODE
            + STRUCT_INTERPRETER_BYTES)


def partitions_needed(network: ReteNetwork, local_memory_bytes: int,
                      encoding: str = "struct") -> int:
    """Minimum partitions so one partition fits in local memory.

    ``encoding`` is ``"inline"`` or ``"struct"``.  The struct encoding
    must fit the shared interpreter in every partition.
    """
    if local_memory_bytes <= 0:
        raise ValueError("local memory must be positive")
    n_nodes = network.node_count()
    if n_nodes == 0:
        return 1
    if encoding == "inline":
        per_node = INLINE_BYTES_PER_NODE
        fixed = 0
    elif encoding == "struct":
        per_node = STRUCT_BYTES_PER_NODE
        fixed = STRUCT_INTERPRETER_BYTES
    else:
        raise ValueError(f"unknown encoding {encoding!r}")
    budget = local_memory_bytes - fixed
    if budget < per_node:
        raise ValueError(
            f"local memory of {local_memory_bytes} bytes cannot hold "
            f"even one node under the {encoding} encoding")
    nodes_per_partition = budget // per_node
    return -(-n_nodes // nodes_per_partition)  # ceil division


@dataclass
class Partitioning:
    """A node→partition assignment with its quality diagnostics."""

    assignment: Dict[int, int]
    n_partitions: int
    #: productions that could not keep all their nodes in distinct
    #: partitions (possible when a production has more two-input nodes
    #: than there are partitions, or through sharing constraints)
    conflicted_productions: List[str]

    def partition_sizes(self) -> List[int]:
        sizes = [0] * self.n_partitions
        for partition in self.assignment.values():
            sizes[partition] += 1
        return sizes


def partition_nodes(network: ReteNetwork,
                    n_partitions: int) -> Partitioning:
    """Assign two-input nodes to partitions, spreading each production.

    Greedy: productions are processed in definition order; each of a
    production's (not yet assigned) nodes goes to the least-loaded
    partition not already used by that production — the paper's
    "nodes belonging to a single production are put into different
    partitions" contention rule.  Shared nodes keep their first
    assignment; a production whose chain cannot avoid reuse (more nodes
    than partitions, or sharing pins) is reported in
    ``conflicted_productions``.
    """
    if n_partitions < 1:
        raise ValueError("need at least one partition")
    assignment: Dict[int, int] = {}
    loads = [0] * n_partitions
    conflicted: List[str] = []

    for name, node_ids in network.production_nodes.items():
        used_here = set()
        conflict = False
        for node_id in node_ids:
            if node_id in assignment:
                partition = assignment[node_id]
                if partition in used_here:
                    conflict = True
                used_here.add(partition)
                continue
            candidates = [p for p in range(n_partitions)
                          if p not in used_here]
            if not candidates:
                candidates = list(range(n_partitions))
                conflict = True
            partition = min(candidates, key=lambda p: (loads[p], p))
            assignment[node_id] = partition
            loads[partition] += 1
            used_here.add(partition)
        if conflict:
            conflicted.append(name)

    # Nodes reachable only through sharing keys already covered; any
    # remaining (e.g. from productions with no two-input nodes) are
    # none by construction.
    return Partitioning(assignment=assignment,
                        n_partitions=n_partitions,
                        conflicted_productions=conflicted)

"""Network and source-level transformations from paper Section 5.2.

Three remedies for speedup limiters:

* **Unsharing** (Section 5.2.1, Figure 5-3): replicate two-input nodes so
  that outputs previously sharing one node are generated independently.
  Because productions must be loaded before working memory, unsharing is
  realised as a rebuild with sharing disabled
  (:func:`build_unshared_network`); the node census before/after measures
  the duplicated work, which the paper bounds at a factor of 1.1–1.6.

* **Copy and constraint** (Section 5.2.2, after Stolfo): split a culprit
  production into several copies, each matching only part of the data the
  original matched.  The copies have distinct two-input nodes, hence
  distinct node-ids in the hash function, hence distinct buckets — the
  "additional discrimination" the paper introduces for the Tourney
  cross-product.  :func:`copy_and_constraint_values` partitions a
  symbolic attribute by value; :func:`copy_and_constraint_ranges`
  partitions a numeric attribute by half-open ranges.

* **Dummy nodes** are a trace-level device in the paper's simulator (they
  only re-shape where successors are generated, not what matches); see
  :func:`repro.trace.transform.insert_dummy_nodes`.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..ops5.ast import (AttrTest, ConditionElement, Constant, Predicate,
                        Production)
from ..ops5.values import Value
from .network import ReteNetwork


def build_network(productions: Iterable[Production],
                  share: bool = True) -> ReteNetwork:
    """Build a network over *productions*, optionally with sharing off."""
    network = ReteNetwork(share=share)
    for production in productions:
        network.add_production(production)
    return network


def build_unshared_network(
        productions: Iterable[Production]) -> ReteNetwork:
    """The Figure 5-3 transformation applied globally: no shared joins."""
    return build_network(productions, share=False)


def _with_extra_tests(ce: ConditionElement,
                      extra: Sequence[AttrTest]) -> ConditionElement:
    return ConditionElement(cls=ce.cls, tests=ce.tests + tuple(extra),
                            negated=ce.negated)


def _copy_with_ce(production: Production, ce_index: int,
                  new_ce: ConditionElement, suffix: str) -> Production:
    lhs = list(production.lhs)
    lhs[ce_index - 1] = new_ce
    return Production(name=f"{production.name}{suffix}",
                      lhs=tuple(lhs), rhs=production.rhs)


def copy_and_constraint_values(
        production: Production, ce_index: int, attr: str,
        values: Sequence[Value]) -> List[Production]:
    """Split *production* into one copy per value of ``^attr``.

    Each copy ``name*cc<i>`` adds the constant test ``^attr = values[i]``
    to the 1-based CE *ce_index*.  The union of the copies matches
    exactly what the original matched **provided** *values* covers every
    value the attribute takes in the data; values outside the list are
    matched by no copy (the caller is asserting the domain).

    Raises
    ------
    ValueError
        If *values* is empty or contains duplicates.
    """
    if not values:
        raise ValueError("need at least one partition value")
    if len(set(values)) != len(values):
        raise ValueError("partition values must be distinct")
    _check_ce_index(production, ce_index)
    out: List[Production] = []
    ce = production.lhs[ce_index - 1]
    for i, value in enumerate(values):
        test = AttrTest(attr=attr, predicate=Predicate.EQ,
                        operand=Constant(value))
        out.append(_copy_with_ce(production, ce_index,
                                 _with_extra_tests(ce, [test]),
                                 suffix=f"*cc{i + 1}"))
    return out


def copy_and_constraint_ranges(
        production: Production, ce_index: int, attr: str,
        boundaries: Sequence[float]) -> List[Production]:
    """Split a numeric attribute into half-open ranges.

    ``boundaries = [b0, b1, ..., bk]`` produces k copies; copy i matches
    ``b(i-1) <= ^attr < b(i)`` (the last copy uses ``<=`` on the upper
    bound so the closed interval [b0, bk] is fully covered).  Only wmes
    whose attribute is numeric and inside [b0, bk] are matched by some
    copy — as with the value form, the caller asserts the domain.
    """
    if len(boundaries) < 2:
        raise ValueError("need at least two boundaries (one range)")
    if any(b >= c for b, c in zip(boundaries, boundaries[1:])):
        raise ValueError("boundaries must be strictly increasing")
    _check_ce_index(production, ce_index)
    out: List[Production] = []
    ce = production.lhs[ce_index - 1]
    last = len(boundaries) - 2
    for i, (lo, hi) in enumerate(zip(boundaries, boundaries[1:])):
        upper_pred = Predicate.LE if i == last else Predicate.LT
        tests = [
            AttrTest(attr=attr, predicate=Predicate.GE, operand=Constant(lo)),
            AttrTest(attr=attr, predicate=upper_pred, operand=Constant(hi)),
        ]
        out.append(_copy_with_ce(production, ce_index,
                                 _with_extra_tests(ce, tests),
                                 suffix=f"*cc{i + 1}"))
    return out


def _check_ce_index(production: Production, ce_index: int) -> None:
    if not 1 <= ce_index <= len(production.lhs):
        raise ValueError(
            f"ce_index {ce_index} out of range for "
            f"{production.name} with {len(production.lhs)} CEs")


def sharing_factor(productions: Iterable[Production]) -> float:
    """Ratio of unshared to shared two-input node counts.

    The paper cites a 1.1–1.6 running-time effect for sharing in general;
    this census gives the structural analogue for a rule set.
    """
    productions = list(productions)
    shared = build_network(productions, share=True).node_count()
    unshared = build_network(productions, share=False).node_count()
    if shared == 0:
        return 1.0
    return unshared / shared

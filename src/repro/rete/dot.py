"""Graphviz DOT export of Rete networks (Figure 2-2 style diagrams).

Renders the compiled network — alpha patterns, two-input nodes,
negative nodes, terminals and their wiring — as a ``digraph`` for
inspection with any DOT viewer.  Handy when debugging sharing or the
transformations of Section 5.2::

    from repro.rete import build_network, to_dot
    print(to_dot(build_network(productions)))
"""

from __future__ import annotations

from typing import List

from .network import ReteNetwork
from .nodes import NegativeNode, ProductionNode


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def _alpha_label(pattern) -> str:
    parts = [pattern.cls]
    parts += [str(t) for t in pattern.const_tests]
    if pattern.always_false:
        parts.append("(never matches)")
    return "\\n".join(parts)


def _join_label(node) -> str:
    parts = [f"#{node.node_id} {node.label}"]
    if node.eq_tests:
        parts.append("hash: " + ", ".join(
            f"<{var}>=^{attr}" for var, attr in node.eq_tests))
    else:
        parts.append("hash: (none - one bucket)")
    if node.residual_tests:
        parts.append("tests: " + ", ".join(
            f"^{attr} {pred.value} <{var}>"
            for var, pred, attr in node.residual_tests))
    return "\\n".join(parts)


def to_dot(network: ReteNetwork, title: str = "rete") -> str:
    """Serialize *network* as a Graphviz digraph string."""
    lines: List[str] = [f"digraph {_quote(title)} {{",
                        "  rankdir=TB;",
                        "  node [fontsize=10];"]

    # Alpha patterns.
    for pattern in network._alpha_patterns:
        lines.append(
            f"  a{pattern.pattern_id} [shape=ellipse, "
            f"label={_quote(_alpha_label(pattern))}];")

    # Beta nodes.
    for node in network._beta_nodes.values():
        if isinstance(node, ProductionNode):
            lines.append(
                f"  n{node.node_id} [shape=doubleoctagon, "
                f"label={_quote(node.production.name)}];")
        elif isinstance(node, NegativeNode):
            lines.append(
                f"  n{node.node_id} [shape=box, style=dashed, "
                f"label={_quote('NOT ' + _join_label(node))}];")
        else:
            lines.append(
                f"  n{node.node_id} [shape=box, "
                f"label={_quote(_join_label(node))}];")

    # Alpha -> beta subscriptions.
    for pattern in network._alpha_patterns:
        for sub in network._subscriptions.get(pattern.pattern_id, []):
            style = ("[label=left, style=bold]" if sub.side == "left"
                     else "[label=right]")
            lines.append(
                f"  a{pattern.pattern_id} -> n{sub.node.node_id} "
                f"{style};")

    # Beta -> beta children.
    for node in network._beta_nodes.values():
        if isinstance(node, ProductionNode):
            continue
        for child in node.children:
            lines.append(f"  n{node.node_id} -> n{child.node_id} "
                         f"[label=left, style=bold];")

    lines.append("}")
    return "\n".join(lines)


def save_dot(network: ReteNetwork, path, title: str = "rete") -> None:
    """Write the DOT rendering of *network* to *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_dot(network, title=title) + "\n")

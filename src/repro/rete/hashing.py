"""Deterministic hashing of memory-bucket keys.

The paper's mapping hashes each token on (a) the node-id of its
destination two-input node and (b) the values bound to the variables
tested for equality at that node (Section 3.1).  Everything downstream —
bucket→processor distribution, the load-balance phenomena of Section 5.2
— depends on this hash, so it must be stable across processes and runs.
Python's builtin ``hash`` is salted per process; we use FNV-1a over a
canonical byte encoding instead.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

from ..ops5.values import Value

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def intern_value(value: Value) -> Value:
    """Intern string values; pass everything else through.

    Symbols recur massively across a trace — a million-activation
    section mentions a few hundred distinct attribute values — so
    interning makes every repeated symbol one shared object: equality
    short-circuits on identity and the per-copy memory goes away.
    Only exact ``str`` is interned (subclasses keep their type).
    """
    return sys.intern(value) if type(value) is str else value


@dataclass(frozen=True, order=True)
class BucketKey:
    """Identity of one hash bucket in the global left/right tables.

    Two tokens with the same destination node and the same equality-test
    values share a bucket — that is precisely the paper's "tokens flowing
    into a two-input node with the same values bound to the variables
    hash to the same index".

    String values are interned on construction (see
    :func:`intern_value`): bucket keys are compared and hashed on every
    routing decision, and interned symbols make those comparisons
    pointer checks.
    """

    node_id: int
    values: Tuple[Value, ...] = ()

    def __post_init__(self) -> None:
        if any(type(v) is str for v in self.values):
            object.__setattr__(
                self, "values",
                tuple(intern_value(v) for v in self.values))

    def __str__(self) -> str:
        vals = ",".join(_canonical(v) for v in self.values)
        return f"n{self.node_id}[{vals}]"


def _canonical(value: Value) -> str:
    """Type-tagged canonical text for a value (1 and '1' must differ)."""
    if isinstance(value, bool):  # defensive; OPS5 has no booleans
        return f"s:{value}"
    if isinstance(value, int):
        return f"n:{value}"
    if isinstance(value, float):
        # Integral floats normalise to the int spelling so that 1.0 and 1
        # (which OPS5 treats as equal) land in the same bucket.
        if value.is_integer():
            return f"n:{int(value)}"
        return f"n:{value!r}"
    return f"s:{value}"


def fnv1a(data: bytes) -> int:
    """64-bit FNV-1a hash."""
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    return h


@lru_cache(maxsize=1 << 16)
def stable_hash(key: BucketKey) -> int:
    """Deterministic 64-bit hash of a bucket key.

    The node id participates in the hash (paper: the hash function uses
    the node-id as a parameter), so buckets of different nodes spread
    independently even when their test values coincide.  Memoized: the
    simulators hash the same keys once per routing decision, and a
    section touches far fewer distinct keys than activations (profiling
    showed the uncached hash at ~50% of simulation time).
    """
    text = f"{key.node_id}|" + "|".join(_canonical(v) for v in key.values)
    return fnv1a(text.encode("utf-8"))


def bucket_index(key: BucketKey, n_buckets: int) -> int:
    """Map *key* into a table with *n_buckets* slots."""
    if n_buckets <= 0:
        raise ValueError("n_buckets must be positive")
    return stable_hash(key) % n_buckets

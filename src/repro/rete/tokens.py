"""Rete tokens: partial instantiations flowing through the network.

Paper Section 2.2: a token consists of a tag (+ for addition, - for
deletion), a list of wme IDs identifying the wmes matching a subsequence
of the production's CEs, and a list of variable bindings.  Here the tag
travels separately (as an argument of the activation methods) so that the
same immutable :class:`Token` value can be added and later deleted.

Tokens are value objects: two tokens are equal iff they hold the same
wme sequence.  Bindings are derived deterministically from the wmes by
the network structure, so they are excluded from equality — this is what
lets a minus token find and delete its stored plus twin.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..ops5.values import Value
from ..ops5.wme import WME
from .hashing import intern_value

#: Token tags, as in the paper: "+" add, "-" delete.
PLUS = "+"
MINUS = "-"


@dataclass(frozen=True)
class Token:
    """An immutable partial instantiation.

    Attributes
    ----------
    wmes:
        The wmes matching the positive CEs processed so far, in CE order.
    bindings:
        Variable bindings established so far, as a sorted tuple of
        ``(name, value)`` pairs (tuples keep the token hashable).
    """

    wmes: Tuple[WME, ...]
    bindings: Tuple[Tuple[str, Value], ...] = ()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Token):
            return NotImplemented
        return self.ids() == other.ids()

    def __hash__(self) -> int:
        return hash(self.ids())

    def ids(self) -> Tuple[int, ...]:
        """The wme-id list — the token's identity (paper Section 2.2)."""
        return tuple(w.wme_id for w in self.wmes)

    def binding(self, name: str) -> Value:
        """Value bound to variable *name* (raises KeyError when unbound)."""
        for var, value in self.bindings:
            if var == name:
                return value
        raise KeyError(name)

    def bindings_dict(self) -> Dict[str, Value]:
        """The bindings as a plain dict (for instantiation construction)."""
        return dict(self.bindings)

    def extend(self, wme: WME,
               new_bindings: Mapping[str, Value]) -> "Token":
        """Return this token extended by *wme* and its fresh bindings.

        Binding names and string values are interned (see
        :func:`repro.rete.hashing.intern_value`): every join compares
        binding tuples, and a long run binds the same few symbols over
        and over.
        """
        if not new_bindings:
            merged = self.bindings
        else:
            merged = tuple(sorted(
                (sys.intern(name), intern_value(value))
                for name, value in
                {**dict(self.bindings), **new_bindings}.items()))
        return Token(wmes=self.wmes + (wme,), bindings=merged)

    def __len__(self) -> int:
        return len(self.wmes)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ids = ",".join(str(i) for i in self.ids())
        return f"<tok [{ids}]>"


#: The empty token seeding the top of the beta network.
EMPTY_TOKEN = Token(wmes=(), bindings=())


def make_unit_token(wme: WME,
                    new_bindings: Mapping[str, Value]) -> Token:
    """A length-1 token for a wme entering the first CE's position."""
    return EMPTY_TOKEN.extend(wme, new_bindings)

"""Rete tokens: partial instantiations flowing through the network.

Paper Section 2.2: a token consists of a tag (+ for addition, - for
deletion), a list of wme IDs identifying the wmes matching a subsequence
of the production's CEs, and a list of variable bindings.  Here the tag
travels separately (as an argument of the activation methods) so that the
same immutable :class:`Token` value can be added and later deleted.

Tokens are value objects: two tokens are equal iff they hold the same
wme sequence.  Bindings are derived deterministically from the wmes by
the network structure, so they are excluded from equality — this is what
lets a minus token find and delete its stored plus twin.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..ops5.values import Value
from ..ops5.wme import WME
from .hashing import intern_value

#: Token tags, as in the paper: "+" add, "-" delete.
PLUS = "+"
MINUS = "-"


@dataclass(frozen=True)
class Token:
    """An immutable partial instantiation.

    Attributes
    ----------
    wmes:
        The wmes matching the positive CEs processed so far, in CE order.
    bindings:
        Variable bindings established so far, as a sorted tuple of
        ``(name, value)`` pairs (tuples keep the token hashable).
    """

    wmes: Tuple[WME, ...]
    bindings: Tuple[Tuple[str, Value], ...] = ()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Token):
            return NotImplemented
        return self.ids() == other.ids()

    def __hash__(self) -> int:
        return hash(self.ids())

    def ids(self) -> Tuple[int, ...]:
        """The wme-id list — the token's identity (paper Section 2.2)."""
        return tuple(w.wme_id for w in self.wmes)

    def binding(self, name: str) -> Value:
        """Value bound to variable *name* (raises KeyError when unbound)."""
        for var, value in self.bindings:
            if var == name:
                return value
        raise KeyError(name)

    def bindings_dict(self) -> Dict[str, Value]:
        """The bindings as a plain dict (for instantiation construction)."""
        return dict(self.bindings)

    def extend(self, wme: WME,
               new_bindings: Mapping[str, Value]) -> "Token":
        """Return this token extended by *wme* and its fresh bindings.

        Binding names and string values are interned (see
        :func:`repro.rete.hashing.intern_value`): every join compares
        binding tuples, and a long run binds the same few symbols over
        and over.
        """
        if not new_bindings:
            merged = self.bindings
        else:
            merged = tuple(sorted(
                (sys.intern(name), intern_value(value))
                for name, value in
                {**dict(self.bindings), **new_bindings}.items()))
        return Token(wmes=self.wmes + (wme,), bindings=merged)

    def __len__(self) -> int:
        return len(self.wmes)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ids = ",".join(str(i) for i in self.ids())
        return f"<tok [{ids}]>"


#: The empty token seeding the top of the beta network.
EMPTY_TOKEN = Token(wmes=(), bindings=())


def make_unit_token(wme: WME,
                    new_bindings: Mapping[str, Value]) -> Token:
    """A length-1 token for a wme entering the first CE's position."""
    return EMPTY_TOKEN.extend(wme, new_bindings)


class TokenPool:
    """Array-of-struct token storage with free-list reuse.

    The flattened kernel (:mod:`repro.rete.kernel`) does not allocate a
    :class:`Token` object per partial instantiation.  Instead a token is
    an integer index into this pool's parallel arrays:

    * ``ids[i]`` — the wme-id tuple, the token's identity (paper
      Section 2.2; what minus tokens match against their plus twin);
    * ``wmes[i]`` — the wme sequence, needed only at terminal nodes to
      build conflict-set instantiations;
    * ``values[i]`` — the variable-binding *values* in the owning
      node's static binding layout (the variable *names* live in the
      compiled network, once, not in every token).

    Slots are reference counted: a join/negative node storing a token
    index in its memory bucket calls :meth:`retain`; removing it calls
    :meth:`release`.  When the count returns to zero the slot goes onto
    the free list and its tuples are dropped, so a long run of
    symmetric add/delete churn recycles a small working set of slots
    instead of allocating garbage at match rate.  Tokens allocated
    during a wave but never stored (minus waves; tokens whose only
    successor is a terminal) are reclaimed by the kernel at wave end
    via :meth:`release_if_unused`.
    """

    __slots__ = ("ids", "wmes", "values", "refs", "_free")

    def __init__(self) -> None:
        self.ids: list = []
        self.wmes: list = []
        self.values: list = []
        self.refs: list = []
        self._free: list = []

    def alloc(self, ids: Tuple[int, ...], wmes: Tuple[WME, ...],
              values: Tuple[Value, ...]) -> int:
        """Claim a slot (reusing a freed one when available); refs start
        at zero — storage sites retain explicitly."""
        free = self._free
        if free:
            idx = free.pop()
            self.ids[idx] = ids
            self.wmes[idx] = wmes
            self.values[idx] = values
            self.refs[idx] = 0
            return idx
        idx = len(self.ids)
        self.ids.append(ids)
        self.wmes.append(wmes)
        self.values.append(values)
        self.refs.append(0)
        return idx

    def retain(self, idx: int) -> None:
        self.refs[idx] += 1

    def release(self, idx: int) -> None:
        """Drop one reference; free the slot when none remain."""
        refs = self.refs[idx] - 1
        self.refs[idx] = refs
        if refs <= 0:
            self._recycle(idx)

    def release_if_unused(self, idx: int) -> None:
        """Free *idx* if no memory bucket retained it (wave cleanup)."""
        if self.refs[idx] == 0:
            self._recycle(idx)

    def _recycle(self, idx: int) -> None:
        self.ids[idx] = None
        self.wmes[idx] = None
        self.values[idx] = None
        # -1 marks a slot already on the free list: a wave-end sweep
        # must not double-free a slot that was recycled mid-wave (and
        # possibly reallocated) after its bucket reference went away.
        self.refs[idx] = -1
        self._free.append(idx)

    def live_count(self) -> int:
        """Number of slots currently holding a token (for tests)."""
        return len(self.ids) - len(self._free)

    def capacity(self) -> int:
        """Total slots ever allocated (high-water mark, for tests)."""
        return len(self.ids)

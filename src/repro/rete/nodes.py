"""Rete network nodes: joins, negative nodes and production (terminal)
nodes, operating on the global hashed memories.

The paper's three node types (Section 2.2) map as follows:

* **Constant-test nodes** are folded into :class:`AlphaPattern` — one
  pattern per distinct (class, constant tests, intra-CE tests) triple,
  shared across productions.  The paper's simulator likewise treats all
  constant tests as a single 30 µs lump per cycle, so the internal
  topology of the constant-test part is not observable.
* **Memory nodes** are not objects at all: their contents live in the two
  global hash tables (:class:`~repro.rete.memory.HashedMemories`), keyed
  by (node id, equality-test values) — the paper's Section 3.1 data
  structure.  Each join/negative node knows how to compute its keys.
* **Two-input nodes** are :class:`JoinNode` / :class:`NegativeNode`.

Every token arrival at a two-input or terminal node is reported to the
owning network as an *activation* (the unit of cost in the paper's
simulator); see :mod:`repro.rete.stats` for the event type.

Since the flattened-kernel rewrite these classes are the network's
*structural* representation only: the builder still creates them, the
sharing/partitioning analyses and dot export still walk them, and
:class:`~repro.rete._reference.ReferenceReteNetwork` still executes
through their recursive ``left_activate`` / ``right_activate`` methods
— but the production engine lowers them into flat instruction arrays
(:mod:`repro.rete.kernel`) before the first wme wave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..ops5.ast import AttrTest, Predicate
from ..ops5.conflict import Instantiation
from ..ops5.values import Value
from ..ops5.wme import WME
from .hashing import BucketKey
from .tokens import MINUS, PLUS, Token

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import ReteNetwork


#: Equality join test: token.binding(var) must equal wme.get(attr).
#: These tests define the hash-bucket key (paper Section 3.1).
EqTest = Tuple[str, str]  # (var, attr)

#: Residual (non-equality) join test: predicate.apply(wme[attr], binding).
ResidualTest = Tuple[str, Predicate, str]  # (var, predicate, attr)

#: Binding extraction: variable var takes the value of wme attribute attr.
BindingSpec = Tuple[str, str]  # (var, attr)

#: Intra-CE test: predicate.apply(wme[attr], wme[first_attr]).
IntraTest = Tuple[str, Predicate, str]  # (first_attr, predicate, attr)


@dataclass(frozen=True)
class AlphaPattern:
    """A shared constant-test chain ending in wme delivery.

    ``matches`` evaluates the class test, the constant tests and the
    intra-CE variable-consistency tests — everything decidable from a
    single wme.  ``always_false`` marks patterns that can never match
    (e.g. a relational test on a variable with no prior binding), kept
    for semantic parity with the naive matcher.
    """

    pattern_id: int
    cls: str
    const_tests: Tuple[AttrTest, ...] = ()
    intra_tests: Tuple[IntraTest, ...] = ()
    always_false: bool = False

    def matches(self, wme: WME) -> bool:
        if self.always_false:
            return False
        if wme.cls != self.cls:
            return False
        for test in self.const_tests:
            if not test.evaluate_constant(wme.get(test.attr)):
                return False
        for first_attr, predicate, attr in self.intra_tests:
            if not predicate.apply(wme.get(attr), wme.get(first_attr)):
                return False
        return True

    def signature(self) -> Tuple:
        """Sharing key: patterns with equal signatures are one pattern."""
        return (self.cls, tuple(sorted(self.const_tests,
                                       key=lambda t: (t.attr,
                                                      t.predicate.value,
                                                      str(t.operand)))),
                tuple(sorted(self.intra_tests,
                             key=lambda t: (t[0], t[1].value, t[2]))),
                self.always_false)


class BetaNode:
    """Base class for nodes that accept tokens on their left input."""

    def __init__(self, node_id: int, label: str,
                 network: "ReteNetwork") -> None:
        self.node_id = node_id
        self.label = label
        self.network = network
        self.children: List[BetaNode] = []

    def left_activate(self, token: Token, tag: str,
                      parent_act: Optional[int]) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} #{self.node_id} {self.label}>"


class JoinNode(BetaNode):
    """A two-input node testing joint satisfaction of CEs.

    Left input: tokens (from the parent join/negative node, or unit
    tokens made from wmes matching the first CE).  Right input: wmes
    from this CE's alpha pattern.  Memory contents are stored in the
    global hash tables under keys derived from ``eq_tests``.
    """

    kind = "join"

    def __init__(self, node_id: int, label: str, network: "ReteNetwork",
                 eq_tests: Tuple[EqTest, ...],
                 residual_tests: Tuple[ResidualTest, ...],
                 new_bindings: Tuple[BindingSpec, ...]) -> None:
        super().__init__(node_id, label, network)
        self.eq_tests = eq_tests
        self.residual_tests = residual_tests
        self.new_bindings = new_bindings

    # -- keys ---------------------------------------------------------------

    def left_key(self, token: Token) -> BucketKey:
        """Bucket key for an incoming token, from its bindings."""
        return BucketKey(self.node_id,
                         tuple(token.binding(var)
                               for var, _ in self.eq_tests))

    def right_key(self, wme: WME) -> BucketKey:
        """Bucket key for an incoming wme, from its attribute values."""
        return BucketKey(self.node_id,
                         tuple(wme.get(attr) for _, attr in self.eq_tests))

    # -- tests ----------------------------------------------------------------

    def _residual_ok(self, token: Token, wme: WME) -> bool:
        for var, predicate, attr in self.residual_tests:
            if not predicate.apply(wme.get(attr), token.binding(var)):
                return False
        return True

    def _extend(self, token: Token, wme: WME) -> Token:
        fresh: Dict[str, Value] = {var: wme.get(attr)
                                   for var, attr in self.new_bindings}
        return token.extend(wme, fresh)

    # -- activations -----------------------------------------------------------

    def left_activate(self, token: Token, tag: str,
                      parent_act: Optional[int]) -> None:
        """Store the token, match the opposite (right) bucket, propagate."""
        key = self.left_key(token)
        mem = self.network.memories
        if tag == PLUS:
            mem.add_left(key, token)
        else:
            mem.remove_left(key, token)
        act = self.network.emit_activation(self, "left", tag, key,
                                           parent_act)
        n_successors = 0
        for wme in list(mem.right_bucket(key)):
            if self._residual_ok(token, wme):
                new_token = self._extend(token, wme)
                for child in self.children:
                    child.left_activate(new_token, tag, act)
                    n_successors += 1
        self.network.finish_activation(act, n_successors)

    def right_activate(self, wme: WME, tag: str,
                       parent_act: Optional[int]) -> None:
        """Store the wme, match the opposite (left) bucket, propagate."""
        key = self.right_key(wme)
        mem = self.network.memories
        if tag == PLUS:
            mem.add_right(key, wme)
        else:
            mem.remove_right(key, wme)
        act = self.network.emit_activation(self, "right", tag, key,
                                           parent_act)
        n_successors = 0
        for token in list(mem.left_bucket(key)):
            if self._residual_ok(token, wme):
                new_token = self._extend(token, wme)
                for child in self.children:
                    child.left_activate(new_token, tag, act)
                    n_successors += 1
        self.network.finish_activation(act, n_successors)


class NegativeNode(BetaNode):
    """A two-input node for a negated CE.

    A token passes (propagates with tag +) while *zero* wmes of the
    negated CE's alpha pattern are consistent with it.  The node tracks a
    join count per stored token; right-side arrivals can therefore
    *retract* previously-propagated tokens (emit -) and right-side
    deletions can release them (emit +).
    """

    kind = "negative"

    def __init__(self, node_id: int, label: str, network: "ReteNetwork",
                 eq_tests: Tuple[EqTest, ...],
                 residual_tests: Tuple[ResidualTest, ...]) -> None:
        super().__init__(node_id, label, network)
        self.eq_tests = eq_tests
        self.residual_tests = residual_tests
        #: join counts keyed by token identity (wme-id tuple)
        self._counts: Dict[Tuple[int, ...], int] = {}

    def left_key(self, token: Token) -> BucketKey:
        return BucketKey(self.node_id,
                         tuple(token.binding(var)
                               for var, _ in self.eq_tests))

    def right_key(self, wme: WME) -> BucketKey:
        return BucketKey(self.node_id,
                         tuple(wme.get(attr) for _, attr in self.eq_tests))

    def _residual_ok(self, token: Token, wme: WME) -> bool:
        for var, predicate, attr in self.residual_tests:
            if not predicate.apply(wme.get(attr), token.binding(var)):
                return False
        return True

    def left_activate(self, token: Token, tag: str,
                      parent_act: Optional[int]) -> None:
        key = self.left_key(token)
        mem = self.network.memories
        act = self.network.emit_activation(self, "left", tag, key,
                                           parent_act)
        n_successors = 0
        if tag == PLUS:
            mem.add_left(key, token)
            count = sum(1 for wme in mem.right_bucket(key)
                        if self._residual_ok(token, wme))
            self._counts[token.ids()] = count
            if count == 0:
                for child in self.children:
                    child.left_activate(token, PLUS, act)
                    n_successors += 1
        else:
            mem.remove_left(key, token)
            count = self._counts.pop(token.ids(), 0)
            if count == 0:
                for child in self.children:
                    child.left_activate(token, MINUS, act)
                    n_successors += 1
        self.network.finish_activation(act, n_successors)

    def right_activate(self, wme: WME, tag: str,
                       parent_act: Optional[int]) -> None:
        key = self.right_key(wme)
        mem = self.network.memories
        if tag == PLUS:
            mem.add_right(key, wme)
        else:
            mem.remove_right(key, wme)
        act = self.network.emit_activation(self, "right", tag, key,
                                           parent_act)
        n_successors = 0
        for token in list(mem.left_bucket(key)):
            if not self._residual_ok(token, wme):
                continue
            ids = token.ids()
            if tag == PLUS:
                self._counts[ids] = self._counts.get(ids, 0) + 1
                if self._counts[ids] == 1:
                    # Token had been propagated; retract it downstream.
                    for child in self.children:
                        child.left_activate(token, MINUS, act)
                        n_successors += 1
            else:
                self._counts[ids] = self._counts.get(ids, 1) - 1
                if self._counts[ids] == 0:
                    for child in self.children:
                        child.left_activate(token, PLUS, act)
                        n_successors += 1
        self.network.finish_activation(act, n_successors)


class ProductionNode(BetaNode):
    """Terminal node: full tokens become conflict-set instantiations."""

    kind = "terminal"

    def __init__(self, node_id: int, label: str, network: "ReteNetwork",
                 production) -> None:
        super().__init__(node_id, label, network)
        self.production = production
        self._instantiations: Dict[Tuple[int, ...], Instantiation] = {}

    def left_activate(self, token: Token, tag: str,
                      parent_act: Optional[int]) -> None:
        key = BucketKey(self.node_id, ())
        act = self.network.emit_activation(self, "left", tag, key,
                                           parent_act)
        if tag == PLUS:
            self._instantiations[token.ids()] = Instantiation(
                production=self.production, wmes=token.wmes,
                bindings=token.bindings_dict())
        else:
            self._instantiations.pop(token.ids(), None)
        self.network.finish_activation(act, 0)

    def instantiations(self) -> List[Instantiation]:
        """Current live instantiations of this production."""
        return list(self._instantiations.values())

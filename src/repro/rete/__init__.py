"""Rete match engine with hashed memories (paper Sections 2.2 and 3.1).

The central class is :class:`ReteNetwork`, a drop-in
:class:`~repro.ops5.matcher.Matcher` for the OPS5 interpreter::

    from repro.ops5 import Interpreter, parse_program
    from repro.rete import ReteNetwork

    interp = Interpreter(matcher=ReteNetwork())
    interp.load_program(parse_program(source))
    interp.run()

Attach an observer to ``network.observers`` to see every two-input node
activation — that is how :mod:`repro.trace` records simulator input.
"""

from .builder import CEAnalysis, NetworkBuilder, analyze_ce
from .dot import save_dot, to_dot
from .footprint import (INLINE_BYTES_PER_NODE, STRUCT_BYTES_PER_NODE,
                        Partitioning, inline_bytes, partition_nodes,
                        partitions_needed, struct_bytes)
from ._reference import ReferenceReteNetwork
from .hashing import BucketKey, bucket_index, fnv1a, stable_hash
from .kernel import NUMPY_MIN_PATTERNS, ReteKernel, resolve_numpy
from .memory import FlatMemories, HashedMemories
from .network import ReteError, ReteNetwork
from .nodes import (AlphaPattern, BetaNode, JoinNode, NegativeNode,
                    ProductionNode)
from .stats import ActivationCounter, ActivationEvent
from .tokens import (EMPTY_TOKEN, MINUS, PLUS, Token, TokenPool,
                     make_unit_token)
from .transform import (build_network, build_unshared_network,
                        copy_and_constraint_ranges,
                        copy_and_constraint_values, sharing_factor)

__all__ = [
    "CEAnalysis", "NetworkBuilder", "analyze_ce",
    "BucketKey", "bucket_index", "fnv1a", "stable_hash",
    "FlatMemories", "HashedMemories",
    "NUMPY_MIN_PATTERNS", "ReteKernel", "resolve_numpy",
    "ReferenceReteNetwork", "ReteError", "ReteNetwork",
    "AlphaPattern", "BetaNode", "JoinNode", "NegativeNode",
    "ProductionNode",
    "ActivationCounter", "ActivationEvent",
    "EMPTY_TOKEN", "MINUS", "PLUS", "Token", "TokenPool",
    "make_unit_token",
    "build_network", "build_unshared_network",
    "copy_and_constraint_ranges", "copy_and_constraint_values",
    "sharing_factor",
    "INLINE_BYTES_PER_NODE", "STRUCT_BYTES_PER_NODE", "Partitioning",
    "inline_bytes", "partition_nodes", "partitions_needed",
    "struct_bytes",
    "save_dot", "to_dot",
]

"""Activation events and aggregate statistics for Rete runs.

An *activation* (paper Section 2.2) is the combined act of storing a
token in a memory node and running the associated two-input node test.
Every activation in a network run is reported to registered observers as
an :class:`ActivationEvent`; the trace recorder builds simulator input
from these, and :class:`ActivationCounter` aggregates them into the
left/right totals of the paper's Table 5-2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .hashing import BucketKey


@dataclass
class ActivationEvent:
    """One token/wme arrival at a two-input or terminal node.

    Attributes
    ----------
    act_id:
        Serial number within the network's lifetime; children always have
        larger ids than their parent.
    parent_id:
        The activation whose matching produced this one, or None for root
        activations generated directly by a wme change (the constant-test
        outputs of paper Section 3.2 step 2).
    node_kind:
        ``"join"``, ``"negative"`` or ``"terminal"``.
    side:
        ``"left"`` or ``"right"`` — which memory the arriving item is
        stored into.  Terminal arrivals are ``"left"`` by convention.
    tag:
        ``"+"`` or ``"-"``.
    key:
        The hash-bucket key (node id + equality-test values).
    n_successors:
        Number of successor activations this one generated (16 µs each in
        the paper's cost model).
    """

    act_id: int
    parent_id: Optional[int]
    node_id: int
    node_label: str
    node_kind: str
    side: str
    tag: str
    key: BucketKey
    n_successors: int = 0


@dataclass
class ActivationCounter:
    """Observer accumulating the Table 5-2 style counts.

    Counts *two-input node* activations only (join + negative): the paper
    counts left/right activations at two-input nodes; terminal arrivals
    are instantiation deliveries, not memory activations.
    """

    left: int = 0
    right: int = 0
    terminal: int = 0
    successors: int = 0
    by_node: Dict[int, int] = field(default_factory=dict)

    def __call__(self, event: ActivationEvent) -> None:
        if event.node_kind == "terminal":
            self.terminal += 1
            return
        if event.side == "left":
            self.left += 1
        else:
            self.right += 1
        self.successors += event.n_successors
        self.by_node[event.node_id] = self.by_node.get(event.node_id, 0) + 1

    @property
    def total(self) -> int:
        """Total two-input node activations (left + right)."""
        return self.left + self.right

    def left_fraction(self) -> float:
        """Fraction of activations that are left activations."""
        return self.left / self.total if self.total else 0.0

    def summary(self) -> str:
        """One-line summary in the Table 5-2 format."""
        lf = 100.0 * self.left_fraction()
        return (f"left={self.left} ({lf:.0f}%)  "
                f"right={self.right} ({100 - lf:.0f}%)  "
                f"total={self.total}")

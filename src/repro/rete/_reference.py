"""The original object-dispatch Rete engine, preserved verbatim.

This module mirrors :mod:`repro.mpc._reference`: when the match hot
path was rewritten as a flattened kernel (:mod:`repro.rete.kernel`),
the engine it replaced moved here, unchanged, so that every future
optimization can be checked against the original behaviour bit for bit.

:class:`ReferenceReteNetwork` is the pre-kernel :class:`ReteNetwork`:
working-memory deltas propagate through :class:`~repro.rete.nodes`
objects by recursive ``left_activate`` / ``right_activate`` dispatch,
memory state lives in :class:`~repro.rete.memory.HashedMemories`, and
tokens are immutable :class:`~repro.rete.tokens.Token` values.  It
implements the same :class:`~repro.ops5.matcher.Matcher` protocol and
emits the same :class:`~repro.rete.stats.ActivationEvent` stream.

The equivalence chain is pinned end to end by the conformance harness:
``rete_vs_naive`` proves the reference engine against the from-scratch
naive matcher, and ``rete_fast_vs_reference`` proves the flattened
kernel against this engine — identical conflict sets *and* identical
activation-event streams after every working-memory change.

Do not "improve" this module.  Its value is that it does not change.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..ops5.ast import Production
from ..ops5.conflict import Instantiation
from ..ops5.wme import WME
from .builder import NetworkBuilder
from .hashing import BucketKey
from .memory import HashedMemories
from .nodes import (AlphaPattern, BetaNode, BindingSpec, JoinNode,
                    NegativeNode, ProductionNode)
from .stats import ActivationEvent
from .tokens import MINUS, PLUS, make_unit_token


class ReteError(Exception):
    """Raised on illegal network operations (e.g. late production adds)."""


class _Subscription:
    """Delivery of an alpha pattern's matches to one beta-node input."""

    __slots__ = ("node", "side", "unit_bindings")

    def __init__(self, node: BetaNode, side: str,
                 unit_bindings: Tuple[BindingSpec, ...] = ()) -> None:
        self.node = node
        self.side = side  # "left" (unit tokens) or "right" (raw wmes)
        self.unit_bindings = unit_bindings


class ReferenceReteNetwork:
    """The original Rete match engine with hashed memories."""

    def __init__(self, share: bool = True) -> None:
        #: When False, two-input nodes are never shared between
        #: productions — the global form of the paper's Section 5.2.1
        #: "unsharing" transformation (Figure 5-3).
        self.share = share
        self.memories = HashedMemories()
        self.observers: List[Callable[[ActivationEvent], None]] = []
        self._builder = NetworkBuilder(self)
        self._alpha_patterns: List[AlphaPattern] = []
        self._subscriptions: Dict[int, List[_Subscription]] = {}
        self._beta_nodes: Dict[int, BetaNode] = {}
        self._terminals: List[ProductionNode] = []
        self._productions: List[Production] = []
        #: two-input node ids used by each production (shared nodes
        #: appear under every production using them); the Section 3.1
        #: partitioning constraint needs this.
        self.production_nodes: Dict[str, List[int]] = {}
        self._next_node_id = 1
        self._next_pattern_id = 1
        self._next_act_id = 1
        self._live_wme_count = 0
        self._wmes_seen = False

    # -- Matcher protocol -----------------------------------------------------

    def add_production(self, production: Production) -> None:
        """Compile *production* into the network.

        Must be called before any wme enters the network: backfilling the
        memories of freshly created (possibly shared) nodes is not
        supported, and silently wrong matches would be worse than an
        error.
        """
        if self._wmes_seen:
            raise ReteError(
                "productions must be added before any wme; "
                "rebuild the network to change the rule set")
        self._productions.append(production)
        self._builder.add_production(production)

    def add_wme(self, wme: WME) -> None:
        """Propagate a wme addition (a + token wave) through the network."""
        self._wmes_seen = True
        self._live_wme_count += 1
        self._dispatch(wme, PLUS)

    def remove_wme(self, wme: WME) -> None:
        """Propagate a wme deletion (a - token wave) through the network."""
        self._wmes_seen = True
        self._live_wme_count -= 1
        self._dispatch(wme, MINUS)

    def conflict_set(self) -> List[Instantiation]:
        """All live instantiations across the terminal nodes."""
        out: List[Instantiation] = []
        for terminal in self._terminals:
            out.extend(terminal.instantiations())
        return out

    # -- alpha dispatch -----------------------------------------------------------

    def _dispatch(self, wme: WME, tag: str) -> None:
        for pattern in self._alpha_patterns:
            if not pattern.matches(wme):
                continue
            for sub in self._subscriptions.get(pattern.pattern_id, []):
                if sub.side == "right":
                    sub.node.right_activate(wme, tag, parent_act=None)  # type: ignore[union-attr]
                else:
                    bindings = {var: wme.get(attr)
                                for var, attr in sub.unit_bindings}
                    token = make_unit_token(wme, bindings)
                    sub.node.left_activate(token, tag, parent_act=None)

    # -- builder services -----------------------------------------------------------

    def new_node_id(self) -> int:
        nid = self._next_node_id
        self._next_node_id += 1
        return nid

    def new_pattern_id(self) -> int:
        pid = self._next_pattern_id
        self._next_pattern_id += 1
        return pid

    def register_alpha(self, pattern: AlphaPattern) -> None:
        self._alpha_patterns.append(pattern)
        self._subscriptions.setdefault(pattern.pattern_id, [])

    def register_beta(self, node: BetaNode) -> None:
        self._beta_nodes[node.node_id] = node

    def register_terminal(self, node: ProductionNode) -> None:
        self._beta_nodes[node.node_id] = node
        self._terminals.append(node)

    def subscribe(self, pattern: AlphaPattern, node: BetaNode, side: str,
                  unit_bindings: Tuple[BindingSpec, ...] = ()) -> None:
        self._subscriptions[pattern.pattern_id].append(
            _Subscription(node, side, unit_bindings))

    # -- activation reporting ---------------------------------------------------------

    def emit_activation(self, node: BetaNode, side: str, tag: str,
                        key: BucketKey, parent_act: Optional[int]) -> \
            Optional[ActivationEvent]:
        """Open an activation event.  Returns None when nobody listens."""
        if not self.observers:
            return None
        event = ActivationEvent(
            act_id=self._next_act_id, parent_id=(
                parent_act.act_id if isinstance(parent_act, ActivationEvent)
                else parent_act),
            node_id=node.node_id, node_label=node.label,
            node_kind=node.kind, side=side, tag=tag, key=key)
        self._next_act_id += 1
        return event

    def finish_activation(self, event: Optional[ActivationEvent],
                          n_successors: int) -> None:
        """Close an activation event and deliver it to observers."""
        if event is None:
            return
        event.n_successors = n_successors
        for observer in self.observers:
            observer(event)

    # -- introspection -----------------------------------------------------------------

    @property
    def productions(self) -> Sequence[Production]:
        return tuple(self._productions)

    def two_input_nodes(self) -> List[BetaNode]:
        """The join and negative nodes, in creation order."""
        return [n for n in self._beta_nodes.values()
                if isinstance(n, (JoinNode, NegativeNode))]

    def node_count(self) -> int:
        """Number of two-input nodes (sharing metric for Fig 5-3 tests)."""
        return len(self.two_input_nodes())

    def alpha_pattern_count(self) -> int:
        return len(self._alpha_patterns)

    def node(self, node_id: int) -> BetaNode:
        return self._beta_nodes[node_id]

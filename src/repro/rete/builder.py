"""Compilation of OPS5 productions into the Rete network.

The builder analyses each condition element into:

* an **alpha specification** — class test, constant tests and intra-CE
  variable-consistency tests (everything decidable from one wme);
* **equality join tests** against variables bound by earlier CEs — these
  become the hash-bucket key of the two-input node (paper Section 3.1);
* **residual join tests** — non-equality predicates against earlier
  bindings, evaluated after the bucket lookup;
* **new bindings** — variables first bound by this CE.

Nodes are *shared* between productions whenever the parent beta node, the
alpha pattern and all tests coincide — the sharing whose removal the
paper studies in Section 5.2.1 (Figure 5-3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from ..ops5.ast import (AttrTest, ConditionElement, Predicate,
                        Production, Variable)
from .nodes import (AlphaPattern, BetaNode, BindingSpec, EqTest, IntraTest,
                    JoinNode, NegativeNode, ProductionNode, ResidualTest)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import ReteNetwork


@dataclass(frozen=True)
class CEAnalysis:
    """The compiled form of one condition element, given prior bindings."""

    cls: str
    const_tests: Tuple[AttrTest, ...]
    intra_tests: Tuple[IntraTest, ...]
    always_false: bool
    eq_tests: Tuple[EqTest, ...]
    residual_tests: Tuple[ResidualTest, ...]
    new_bindings: Tuple[BindingSpec, ...]


def analyze_ce(ce: ConditionElement, bound: Set[str]) -> CEAnalysis:
    """Split *ce*'s tests into alpha/join/binding components.

    *bound* is the set of variables bound by earlier positive CEs.
    Mirrors the sequential semantics of the naive matcher exactly,
    including the always-fails case of a non-equality predicate applied
    to a variable with no prior binding.
    """
    const_tests: List[AttrTest] = []
    intra_tests: List[IntraTest] = []
    eq_tests: List[EqTest] = []
    residual_tests: List[ResidualTest] = []
    new_bindings: List[BindingSpec] = []
    ce_local: Dict[str, str] = {}  # var -> attr of first in-CE binding
    always_false = False

    for test in ce.tests:
        operand = test.operand
        if test.is_constant_test():
            const_tests.append(test)
            continue
        assert isinstance(operand, Variable)
        var = operand.name
        if var in bound:
            if test.predicate is Predicate.EQ:
                eq_tests.append((var, test.attr))
            else:
                residual_tests.append((var, test.predicate, test.attr))
        elif var in ce_local:
            intra_tests.append((ce_local[var], test.predicate, test.attr))
        else:
            if test.predicate is Predicate.EQ:
                ce_local[var] = test.attr
                new_bindings.append((var, test.attr))
            else:
                # Unbound variable under a relational predicate: the CE
                # can never match (naive-matcher parity).
                always_false = True

    return CEAnalysis(
        cls=ce.cls,
        const_tests=tuple(const_tests),
        intra_tests=tuple(intra_tests),
        always_false=always_false,
        eq_tests=tuple(sorted(eq_tests)),
        residual_tests=tuple(sorted(residual_tests,
                                    key=lambda t: (t[0], t[1].value, t[2]))),
        new_bindings=tuple(sorted(new_bindings)),
    )


#: Identifies a beta node's position for sharing: either the CE1 alpha
#: pattern (+ its binding spec) or an interior node id.
ParentKey = Tuple


class NetworkBuilder:
    """Incrementally compiles productions into a :class:`ReteNetwork`.

    One builder per network; it owns the sharing tables.
    """

    def __init__(self, network: "ReteNetwork") -> None:
        self.network = network
        self._alpha_by_sig: Dict[Tuple, AlphaPattern] = {}
        self._node_by_share_key: Dict[Tuple, BetaNode] = {}

    # -- alpha network --------------------------------------------------------

    def _get_alpha(self, analysis: CEAnalysis) -> AlphaPattern:
        probe = AlphaPattern(pattern_id=-1, cls=analysis.cls,
                             const_tests=analysis.const_tests,
                             intra_tests=analysis.intra_tests,
                             always_false=analysis.always_false)
        sig = probe.signature()
        existing = self._alpha_by_sig.get(sig)
        if existing is not None:
            return existing
        pattern = AlphaPattern(pattern_id=self.network.new_pattern_id(),
                               cls=analysis.cls,
                               const_tests=analysis.const_tests,
                               intra_tests=analysis.intra_tests,
                               always_false=analysis.always_false)
        self._alpha_by_sig[sig] = pattern
        self.network.register_alpha(pattern)
        return pattern

    # -- beta network -----------------------------------------------------------

    def add_production(self, production: Production) -> ProductionNode:
        """Compile *production*, sharing nodes with earlier productions."""
        bound: Set[str] = set()
        parent_key: Optional[ParentKey] = None
        parent_node: Optional[BetaNode] = None
        first_alpha: Optional[AlphaPattern] = None
        first_bindings: Tuple[BindingSpec, ...] = ()
        used_nodes: List[int] = []

        for index, ce in enumerate(production.lhs):
            analysis = analyze_ce(ce, bound)
            alpha = self._get_alpha(analysis)

            if index == 0:
                # CE1 contributes no two-input node; its unit tokens feed
                # the next node's left input directly.
                first_alpha = alpha
                first_bindings = analysis.new_bindings
                parent_key = ("alpha", alpha.pattern_id,
                              analysis.new_bindings)
                bound.update(var for var, _ in analysis.new_bindings)
                continue

            kind = "negative" if ce.negated else "join"
            share_key = (parent_key, alpha.pattern_id, kind,
                         analysis.eq_tests, analysis.residual_tests,
                         analysis.new_bindings)
            node = (self._node_by_share_key.get(share_key)
                    if self.network.share else None)
            if node is None:
                label = f"{production.name}/ce{index + 1}"
                if ce.negated:
                    node = NegativeNode(
                        node_id=self.network.new_node_id(), label=label,
                        network=self.network, eq_tests=analysis.eq_tests,
                        residual_tests=analysis.residual_tests)
                else:
                    node = JoinNode(
                        node_id=self.network.new_node_id(), label=label,
                        network=self.network, eq_tests=analysis.eq_tests,
                        residual_tests=analysis.residual_tests,
                        new_bindings=analysis.new_bindings)
                if not self.network.share:
                    # Keep keys unique so the node census stays accurate.
                    share_key = share_key + (node,)
                self._node_by_share_key[share_key] = node
                self.network.register_beta(node)
                # Wire the right input to the alpha pattern...
                self.network.subscribe(alpha, node, side="right")
                # ...and the left input to the parent.
                if parent_node is None:
                    assert first_alpha is not None
                    self.network.subscribe(first_alpha, node, side="left",
                                           unit_bindings=first_bindings)
                else:
                    parent_node.children.append(node)

            if not ce.negated:
                bound.update(var for var, _ in analysis.new_bindings)
            parent_key = ("node", node.node_id)
            parent_node = node
            used_nodes.append(node.node_id)

        pnode = ProductionNode(node_id=self.network.new_node_id(),
                               label=f"{production.name}/terminal",
                               network=self.network, production=production)
        self.network.register_terminal(pnode)
        if parent_node is None:
            # Single positive CE: unit tokens go straight to the terminal.
            assert first_alpha is not None
            self.network.subscribe(first_alpha, pnode, side="left",
                                   unit_bindings=first_bindings)
        else:
            parent_node.children.append(pnode)
        self.network.production_nodes[production.name] = used_nodes
        return pnode

    # -- introspection ------------------------------------------------------------

    def shared_node_count(self) -> int:
        """Number of distinct two-input nodes (for sharing tests)."""
        return len(self._node_by_share_key)

"""The flattened Rete match kernel (ROADMAP item 2).

The reference engine (:mod:`repro.rete._reference`) dispatches every
working-memory delta through a graph of node *objects*: each activation
is a Python method call, each token an immutable :class:`Token`
allocation, and each alpha test a scan over every pattern in the
network.  This module compiles the same network — built by the ordinary
:class:`~repro.rete.builder.NetworkBuilder` — into flat parallel arrays
and executes waves with an explicit stack machine:

* **Alpha dispatch** is indexed by wme class: only the patterns that
  could possibly match are tested, as tuple-compare loops over the
  pattern's constant tests.  When numpy is available (and the class has
  enough eligible patterns) the EQ-against-constant batteries of a whole
  class are evaluated in one vectorized shot over interned value ids —
  see :data:`NUMPY_MIN_PATTERNS` and :func:`resolve_numpy`.
* **Beta nodes** become rows of parallel arrays (kind, bucket-key
  positions, residual tests, binding-merge plans, children), indexed by
  a compact integer.  Bucket state lives in
  :class:`~repro.rete.memory.FlatMemories`, keyed by bare value tuples.
* **Tokens** are integer slots in a :class:`~repro.rete.tokens.TokenPool`
  — three parallel lists (ids, wmes, binding values) with free-list
  reuse — instead of per-match ``Token`` objects.  Binding *names* are
  static per node (the node's sorted variable layout), so a token
  carries only a value tuple and variable lookups are index reads.

The executor replicates the reference engine's observable behaviour bit
for bit: activation events get their ``act_id`` in the reference's
pre-order (assigned when an activation *starts*) and are delivered to
observers in its post-order (when the activation's subtree finishes),
conflict sets preserve terminal/insertion order, and memory buckets are
deleted when they empty.  The ``rete_fast_vs_reference`` conformance
oracle and the differential fuzz suite pin this equivalence.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

from ..ops5.ast import Constant, Predicate
from ..ops5.conflict import Instantiation
from ..ops5.wme import WME
from .hashing import BucketKey, intern_value
from .memory import FlatMemories
from .nodes import JoinNode, NegativeNode, ProductionNode
from .stats import ActivationEvent
from .tokens import MINUS, PLUS, TokenPool

#: Compiled node kinds (values of ``ReteKernel.kind``).
KIND_JOIN = 0
KIND_NEGATIVE = 1
KIND_TERMINAL = 2

#: Minimum EQ-constant-eligible patterns a wme class must have before
#: the vectorized alpha path engages.  Below this, a plain Python loop
#: beats the cost of encoding the wme into value ids.
NUMPY_MIN_PATTERNS = 8


def resolve_numpy(use_numpy: Optional[bool] = None):
    """The capability check gating the vectorized alpha path.

    Returns the numpy module when the path should be used, else None.
    ``use_numpy`` is an explicit override (constructor kwarg); when it
    is None the ``REPRO_RETE_NUMPY`` environment variable decides
    (``0``/``off``/``false``/``no`` disables), defaulting to *enabled
    if importable*.  Import failure always falls back to pure Python.
    """
    if use_numpy is False:
        return None
    if use_numpy is None:
        env = os.environ.get("REPRO_RETE_NUMPY", "").strip().lower()
        if env in {"0", "off", "false", "no"}:
            return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised by the CI leg
        return None
    return numpy


class _AlphaSlot:
    """One alpha pattern's compiled tests and delivery list."""

    __slots__ = ("np_row", "const_tests", "intra_tests", "subs")

    def __init__(self, const_tests, intra_tests) -> None:
        self.np_row = -1          # row in the class's vectorized block
        self.const_tests = const_tests
        self.intra_tests = intra_tests
        #: (compact node index, unit_attrs or None) — None means the
        #: subscription feeds the node's *right* input with the raw wme;
        #: a tuple of attributes means unit tokens on the left input.
        self.subs: List[Tuple[int, Optional[Tuple[str, ...]]]] = []


class _AlphaGroup:
    """All patterns of one wme class, in global registration order."""

    __slots__ = ("slots", "np_attrs", "np_pat", "np_attr_idx", "np_val",
                 "np_rows", "np_slots", "py_slots", "val_ids")

    def __init__(self) -> None:
        self.slots: List[_AlphaSlot] = []
        self.np_rows = 0          # vectorized pattern count (0 = off)
        self.np_attrs: Tuple[str, ...] = ()
        self.np_pat = None        # test -> pattern row
        self.np_attr_idx = None   # test -> index into np_attrs
        self.np_val = None        # test -> expected value id
        #: the untraced fast path visits only nonzero ok-rows, so the
        #: vectorized and scalar slots are also kept split by row order
        #: (the traced path walks ``slots`` to preserve event order).
        self.np_slots: List[_AlphaSlot] = []
        self.py_slots: List[_AlphaSlot] = []
        self.val_ids: Dict[Any, int] = {}


def _numpy_eligible(pattern) -> bool:
    """True when a pattern's tests are all EQ-against-constant.

    Disjunctions, relational predicates and intra-CE tests keep the
    (still class-indexed) Python loop; bool constants are excluded
    because dict-key encoding would conflate ``True`` with ``1`` where
    OPS5 equality does not.
    """
    if pattern.intra_tests or pattern.always_false:
        return False
    for test in pattern.const_tests:
        if test.predicate is not Predicate.EQ:
            return False
        if not isinstance(test.operand, Constant):
            return False
        if isinstance(test.operand.value, bool):
            return False
    return True


class ReteKernel:
    """A compiled, array-of-struct execution engine for one network.

    Built from a :class:`~repro.rete.network.ReteNetwork`'s registration
    state (alpha patterns, subscriptions, beta-node topology) after all
    productions are added.  The network delegates ``add_wme`` /
    ``remove_wme`` / ``conflict_set`` here; structural introspection
    stays on the network's node objects.
    """

    def __init__(self, network, use_numpy: Optional[bool] = None) -> None:
        self.net = network
        self.np = resolve_numpy(use_numpy)
        self.pool = TokenPool()

        # -- beta nodes: one row of parallel arrays per node ----------------
        node_objs = sorted(network._beta_nodes.values(),
                           key=lambda n: n.node_id)
        n = len(node_objs)
        ci_of: Dict[int, int] = {node.node_id: ci
                                 for ci, node in enumerate(node_objs)}
        self.kind: List[int] = [0] * n
        self.node_id: List[int] = [0] * n
        self.label: List[str] = [""] * n
        self.kind_str: List[str] = [""] * n
        self.children: List[Tuple[int, ...]] = [()] * n
        self.left_key_pos: List[Tuple[int, ...]] = [()] * n
        self.right_key_attrs: List[Tuple[str, ...]] = [()] * n
        #: residual tests as (value index, predicate, wme attr)
        self.residuals: List[Tuple] = [()] * n
        #: join output plans: (from_wme, index-or-attr) per output slot
        self.merge_plan: List[Tuple] = [()] * n
        #: joins whose CE binds no new variables: the output value tuple
        #: is the parent's, shared, with no per-extension rebuild
        self.copy_values: List[bool] = [False] * n
        self.neg_counts: List[Optional[Dict]] = [None] * n
        self.term_prod: List[Any] = [None] * n
        self.term_names: List[Tuple[str, ...]] = [()] * n
        self.term_insts: List[Optional[Dict]] = [None] * n
        self._terminal_cis: List[int] = [
            ci_of[t.node_id] for t in network._terminals]

        # Left-input variable layouts.  A node's input is either unit
        # tokens from an alpha subscription (layout = the sorted unit
        # binding variables) or its parent's output; parents always have
        # smaller node ids, so one ascending pass resolves everything.
        in_layout: List[Tuple[str, ...]] = [()] * n
        for subs in network._subscriptions.values():
            for sub in subs:
                if sub.side == "left":
                    in_layout[ci_of[sub.node.node_id]] = tuple(
                        var for var, _ in sub.unit_bindings)

        for ci, node in enumerate(node_objs):
            self.node_id[ci] = node.node_id
            self.label[ci] = node.label
            self.kind_str[ci] = node.kind
            layout = in_layout[ci]
            if isinstance(node, ProductionNode):
                self.kind[ci] = KIND_TERMINAL
                self.term_prod[ci] = node.production
                self.term_names[ci] = layout
                self.term_insts[ci] = {}
                continue
            self.left_key_pos[ci] = tuple(
                layout.index(var) for var, _ in node.eq_tests)
            self.right_key_attrs[ci] = tuple(
                attr for _, attr in node.eq_tests)
            self.residuals[ci] = tuple(
                (layout.index(var), pred, attr)
                for var, pred, attr in node.residual_tests)
            if isinstance(node, NegativeNode):
                self.kind[ci] = KIND_NEGATIVE
                self.neg_counts[ci] = {}
                out_layout = layout
            else:
                assert isinstance(node, JoinNode)
                self.kind[ci] = KIND_JOIN
                new_by_var = dict(node.new_bindings)
                out_layout = tuple(sorted(set(layout) | set(new_by_var)))
                self.merge_plan[ci] = tuple(
                    (True, new_by_var[var]) if var in new_by_var
                    else (False, layout.index(var))
                    for var in out_layout)
                self.copy_values[ci] = not new_by_var
            self.children[ci] = tuple(
                ci_of[child.node_id] for child in node.children)
            for child in node.children:
                in_layout[ci_of[child.node_id]] = out_layout

        # Children split by kind (kinds are known once every row is
        # compiled — children always have larger node ids than parents).
        # The untraced walk delivers join outputs to terminal children
        # inline, without allocating a pool slot for tokens that exist
        # only to become a conflict-set entry.
        self.term_children: List[Tuple[int, ...]] = [
            tuple(c for c in self.children[ci]
                  if self.kind[c] == KIND_TERMINAL) for ci in range(n)]
        self.beta_children: List[Tuple[int, ...]] = [
            tuple(c for c in self.children[ci]
                  if self.kind[c] != KIND_TERMINAL) for ci in range(n)]

        self.memories = FlatMemories(n)

        # -- alpha network: class-indexed pattern groups --------------------
        self._alpha: Dict[str, _AlphaGroup] = {}
        slot_of: Dict[int, _AlphaSlot] = {}
        for pattern in network._alpha_patterns:
            if pattern.always_false:
                continue  # can never match; no observable effect
            group = self._alpha.setdefault(pattern.cls, _AlphaGroup())
            slot = _AlphaSlot(pattern.const_tests, pattern.intra_tests)
            group.slots.append(slot)
            slot_of[pattern.pattern_id] = slot
            if self.np is not None and _numpy_eligible(pattern):
                slot.np_row = 0  # provisional; rows assigned below
        for pattern_id, subs in network._subscriptions.items():
            slot = slot_of.get(pattern_id)
            if slot is None:
                continue
            for sub in subs:
                unit_attrs = (tuple(attr for _, attr in sub.unit_bindings)
                              if sub.side == "left" else None)
                slot.subs.append((ci_of[sub.node.node_id], unit_attrs))

        self.numpy_engaged = False
        if self.np is not None:
            for group in self._alpha.values():
                self._vectorize_group(group)

    def _vectorize_group(self, group: _AlphaGroup) -> None:
        """Build the vectorized EQ-constant block for one class group."""
        np = self.np
        eligible = [s for s in group.slots if s.np_row >= 0]
        if len(eligible) < NUMPY_MIN_PATTERNS:
            for slot in eligible:
                slot.np_row = -1
            return
        attrs: List[str] = []
        attr_idx: Dict[str, int] = {}
        pat_rows: List[int] = []
        test_attr: List[int] = []
        test_val: List[int] = []
        val_ids = group.val_ids
        for row, slot in enumerate(eligible):
            slot.np_row = row
            for test in slot.const_tests:
                if test.attr not in attr_idx:
                    attr_idx[test.attr] = len(attrs)
                    attrs.append(test.attr)
                value = test.operand.value
                vid = val_ids.setdefault(value, len(val_ids))
                pat_rows.append(row)
                test_attr.append(attr_idx[test.attr])
                test_val.append(vid)
        group.np_rows = len(eligible)
        group.np_attrs = tuple(attrs)
        group.np_pat = np.asarray(pat_rows, dtype=np.intp)
        group.np_attr_idx = np.asarray(test_attr, dtype=np.intp)
        group.np_val = np.asarray(test_val, dtype=np.int64)
        group.np_slots = eligible
        group.py_slots = [s for s in group.slots if s.np_row < 0]
        self.numpy_engaged = True

    # -- wave execution -----------------------------------------------------

    def dispatch(self, wme: WME, tag: str) -> None:
        """Run one +/- wave: alpha match, then beta propagation."""
        group = self._alpha.get(wme.cls)
        if group is None:
            return
        pool = self.pool
        allocs: List[int] = []
        traced = bool(self.net.observers)
        alpha_match = self._alpha_match
        if group.np_rows:
            np = self.np
            val_ids = group.val_ids
            encoded = [(-1 if type(v) is bool else val_ids.get(v, -1))
                       for v in map(wme.get, group.np_attrs)]
            vals = np.asarray(encoded, dtype=np.int64)
            ok = np.ones(group.np_rows, dtype=bool)
            # A row fails when any of its tests mismatches; scatter
            # False into the failing rows (equivalent to
            # logical_and.at, far cheaper per wave).
            ok[group.np_pat[vals[group.np_attr_idx] != group.np_val]] \
                = False
            if traced:
                # Event order must match the reference engine exactly,
                # so walk every slot in registration order.
                matched = [s for s in group.slots
                           if (ok[s.np_row] if s.np_row >= 0
                               else alpha_match(s, wme))]
            else:
                # Untraced final state is wave-order independent, so
                # visit only the rows the vector pass accepted.
                np_slots = group.np_slots
                matched = [np_slots[r] for r in ok.nonzero()[0].tolist()]
                matched += [s for s in group.py_slots
                            if alpha_match(s, wme)]
        else:
            matched = [s for s in group.slots if alpha_match(s, wme)]
        for slot in matched:
            for ci, unit_attrs in slot.subs:
                if unit_attrs is None:
                    if traced:
                        self._run_right(ci, wme, tag, allocs)
                    else:
                        self._fast_right(ci, wme, tag, allocs)
                else:
                    tok = pool.alloc(
                        (wme.wme_id,), (wme,),
                        tuple(intern_value(wme.get(a))
                              for a in unit_attrs))
                    allocs.append(tok)
                    if traced:
                        self._run_left(ci, tok, tag, allocs)
                    else:
                        self._walk_fast([(ci, tok, tag)], allocs)
        release = pool.release_if_unused
        for idx in allocs:
            release(idx)

    @staticmethod
    def _alpha_match(slot: _AlphaSlot, wme: WME) -> bool:
        get = wme.get
        for test in slot.const_tests:
            if not test.evaluate_constant(get(test.attr)):
                return False
        for first_attr, predicate, attr in slot.intra_tests:
            if not predicate.apply(get(attr), get(first_attr)):
                return False
        return True

    def _run_left(self, ci: int, tok: int, tag: str,
                  allocs: List[int]) -> None:
        self._drain(self._enter_left(ci, tok, tag, None, allocs), allocs)

    def _run_right(self, ci: int, wme: WME, tag: str,
                   allocs: List[int]) -> None:
        self._drain(self._enter_right(ci, wme, tag, allocs), allocs)

    def _drain(self, root_frame, allocs: List[int]) -> None:
        """The stack machine replacing recursive node dispatch.

        Each frame is ``[event, items, pos]``: the activation's (already
        emitted) event and its precomputed successor list.  Pushing a
        child frame performs the child's entry actions — memory update
        plus event-id assignment, the reference engine's pre-order — and
        popping delivers the event to observers, its post-order.
        Precomputing ``items`` at entry is safe because the network is a
        DAG: a node's buckets are only mutated by its *own* activations,
        and the descent below an item only reaches strict descendants.
        """
        enter = self._enter_left
        finish = self._finish
        stack = [root_frame]
        push = stack.append
        pop = stack.pop
        while stack:
            frame = stack[-1]
            items = frame[1]
            pos = frame[2]
            if pos < len(items):
                frame[2] = pos + 1
                cci, ctok, ctag = items[pos]
                push(enter(cci, ctok, ctag, frame[0], allocs))
            else:
                finish(frame[0], len(items))
                pop()

    def _enter_left(self, ci: int, tok: int, tag: str,
                    parent_ev, allocs: List[int]):
        """Entry actions of one left activation; returns its frame."""
        pool = self.pool
        kind = self.kind[ci]
        if kind == KIND_TERMINAL:
            ev = self._emit(ci, "left", tag, (), parent_ev)
            insts = self.term_insts[ci]
            ids = pool.ids[tok]
            if tag == PLUS:
                insts[ids] = Instantiation(
                    production=self.term_prod[ci], wmes=pool.wmes[tok],
                    bindings=dict(zip(self.term_names[ci],
                                      pool.values[tok])))
            else:
                insts.pop(ids, None)
            return [ev, (), 0]

        values = pool.values[tok]
        key = tuple(values[p] for p in self.left_key_pos[ci])
        buckets = self.memories.left[ci]
        items: List[Tuple[int, int, str]] = []
        children = self.children[ci]
        if kind == KIND_JOIN:
            if tag == PLUS:
                buckets.setdefault(key, []).append(tok)
                pool.retain(tok)
            else:
                self._remove_left(ci, key, pool.ids[tok])
            ev = self._emit(ci, "left", tag, key, parent_ev)
            right = self.memories.right[ci].get(key)
            if right and children:
                residuals = self.residuals[ci]
                for wme in right:
                    for pos, pred, attr in residuals:
                        if not pred.apply(wme.get(attr), values[pos]):
                            break
                    else:
                        ntok = self._extend(ci, tok, wme, allocs)
                        for cci in children:
                            items.append((cci, ntok, tag))
            return [ev, items, 0]

        # negative node
        ev = self._emit(ci, "left", tag, key, parent_ev)
        counts = self.neg_counts[ci]
        ids = pool.ids[tok]
        if tag == PLUS:
            buckets.setdefault(key, []).append(tok)
            pool.retain(tok)
            count = 0
            right = self.memories.right[ci].get(key)
            if right:
                residuals = self.residuals[ci]
                for wme in right:
                    for pos, pred, attr in residuals:
                        if not pred.apply(wme.get(attr), values[pos]):
                            break
                    else:
                        count += 1
            counts[ids] = count
            if count == 0:
                items = [(cci, tok, PLUS) for cci in children]
        else:
            self._remove_left(ci, key, ids)
            if counts.pop(ids, 0) == 0:
                items = [(cci, tok, MINUS) for cci in children]
        return [ev, items, 0]

    def _enter_right(self, ci: int, wme: WME, tag: str,
                     allocs: List[int]):
        """Entry actions of one right (wme) activation at its node."""
        get = wme.get
        key = tuple(get(a) for a in self.right_key_attrs[ci])
        rbuckets = self.memories.right[ci]
        if tag == PLUS:
            rbuckets.setdefault(key, []).append(wme)
        else:
            bucket = rbuckets.get(key)
            if bucket:
                try:
                    bucket.remove(wme)
                except ValueError:
                    pass
                else:
                    if not bucket:
                        del rbuckets[key]
        ev = self._emit(ci, "right", tag, key, None)
        pool = self.pool
        items: List[Tuple[int, int, str]] = []
        children = self.children[ci]
        left = self.memories.left[ci].get(key)
        if left:
            residuals = self.residuals[ci]
            values_arr = pool.values
            if self.kind[ci] == KIND_JOIN:
                for tok in left:
                    values = values_arr[tok]
                    for pos, pred, attr in residuals:
                        if not pred.apply(get(attr), values[pos]):
                            break
                    else:
                        if children:
                            ntok = self._extend(ci, tok, wme, allocs)
                            for cci in children:
                                items.append((cci, ntok, tag))
            else:
                counts = self.neg_counts[ci]
                ids_arr = pool.ids
                for tok in left:
                    values = values_arr[tok]
                    for pos, pred, attr in residuals:
                        if not pred.apply(get(attr), values[pos]):
                            break
                    else:
                        ids = ids_arr[tok]
                        if tag == PLUS:
                            count = counts.get(ids, 0) + 1
                            counts[ids] = count
                            if count == 1:
                                # Was propagated; retract downstream.
                                for cci in children:
                                    items.append((cci, tok, MINUS))
                        else:
                            count = counts.get(ids, 1) - 1
                            counts[ids] = count
                            if count == 0:
                                for cci in children:
                                    items.append((cci, tok, PLUS))
        return [ev, items, 0]

    # -- untraced fast path ---------------------------------------------------

    def _fast_right(self, ci: int, wme: WME, tag: str,
                    allocs: List[int]) -> None:
        """Right activation with no observers: no events, lean walk."""
        get = wme.get
        key = tuple(get(a) for a in self.right_key_attrs[ci])
        rbuckets = self.memories.right[ci]
        if tag == PLUS:
            bucket = rbuckets.get(key)
            if bucket is None:
                rbuckets[key] = [wme]
            else:
                bucket.append(wme)
        else:
            bucket = rbuckets.get(key)
            if bucket:
                try:
                    bucket.remove(wme)
                except ValueError:
                    pass
                else:
                    if not bucket:
                        del rbuckets[key]
        left = self.memories.left[ci].get(key)
        if not left:
            return
        pool = self.pool
        stack: List[Tuple[int, int, str]] = []
        children = self.children[ci]
        residuals = self.residuals[ci]
        values_arr = pool.values
        if self.kind[ci] == KIND_JOIN:
            if children:
                tchildren = self.term_children[ci]
                bchildren = self.beta_children[ci]
                copy_vals = self.copy_values[ci]
                plan = self.merge_plan[ci]
                ids_arr = pool.ids
                wmes_arr = pool.wmes
                alloc = pool.alloc
                term_insts = self.term_insts
                term_prod = self.term_prod
                term_names = self.term_names
                wid = (wme.wme_id,)
                wtup = (wme,)
                plus = tag == PLUS
                for tok in left:
                    values = values_arr[tok]
                    for pos, pred, attr in residuals:
                        if not pred.apply(get(attr), values[pos]):
                            break
                    else:
                        nvalues = values if copy_vals else tuple(
                            intern_value(get(src)) if from_wme
                            else values[src]
                            for from_wme, src in plan)
                        nids = ids_arr[tok] + wid
                        nwmes = wmes_arr[tok] + wtup
                        for tci in tchildren:
                            insts = term_insts[tci]
                            if plus:
                                insts[nids] = Instantiation(
                                    term_prod[tci], nwmes,
                                    dict(zip(term_names[tci], nvalues)))
                            else:
                                insts.pop(nids, None)
                        if bchildren:
                            ntok = alloc(nids, nwmes, nvalues)
                            allocs.append(ntok)
                            for cci in bchildren:
                                stack.append((cci, ntok, tag))
        else:
            counts = self.neg_counts[ci]
            ids_arr = pool.ids
            for tok in left:
                values = values_arr[tok]
                for pos, pred, attr in residuals:
                    if not pred.apply(get(attr), values[pos]):
                        break
                else:
                    ids = ids_arr[tok]
                    if tag == PLUS:
                        count = counts.get(ids, 0) + 1
                        counts[ids] = count
                        if count == 1:
                            for cci in children:
                                stack.append((cci, tok, MINUS))
                    else:
                        count = counts.get(ids, 1) - 1
                        counts[ids] = count
                        if count == 0:
                            for cci in children:
                                stack.append((cci, tok, PLUS))
        if stack:
            self._walk_fast(stack, allocs)

    def _walk_fast(self, stack: List[Tuple[int, int, str]],
                   allocs: List[int]) -> None:
        """Propagate left activations with no observers attached.

        With nobody listening there are no events to order, and within
        one root activation the final memory/count/conflict-set state
        is independent of sibling processing order: every node has a
        unique left-input path from the root, and right buckets are
        only mutated at roots.  A bare LIFO work stack therefore
        replaces the event-ordered frame machine of :meth:`_drain` —
        this is the match hot path the benchmarks measure.
        """
        pool = self.pool
        pop = stack.pop
        push = stack.append
        kinds = self.kind
        key_pos_arr = self.left_key_pos
        left_mem = self.memories.left
        right_mem = self.memories.right
        residuals_arr = self.residuals
        children_arr = self.children
        tchildren_arr = self.term_children
        bchildren_arr = self.beta_children
        copy_values_arr = self.copy_values
        merge_plan_arr = self.merge_plan
        term_insts_arr = self.term_insts
        term_prod_arr = self.term_prod
        term_names_arr = self.term_names
        values_arr = pool.values
        ids_arr = pool.ids
        wmes_arr = pool.wmes
        alloc = pool.alloc
        allocs_append = allocs.append
        retain = pool.retain
        while stack:
            ci, tok, tag = pop()
            kind = kinds[ci]
            if kind == KIND_TERMINAL:
                insts = self.term_insts[ci]
                ids = ids_arr[tok]
                if tag == PLUS:
                    insts[ids] = Instantiation(
                        production=self.term_prod[ci],
                        wmes=pool.wmes[tok],
                        bindings=dict(zip(self.term_names[ci],
                                          values_arr[tok])))
                else:
                    insts.pop(ids, None)
                continue
            values = values_arr[tok]
            key = tuple([values[p] for p in key_pos_arr[ci]])
            children = children_arr[ci]
            buckets = left_mem[ci]
            if kind == KIND_JOIN:
                if tag == PLUS:
                    bucket = buckets.get(key)
                    if bucket is None:
                        buckets[key] = [tok]
                    else:
                        bucket.append(tok)
                    retain(tok)
                else:
                    self._remove_left(ci, key, ids_arr[tok])
                right = right_mem[ci].get(key)
                if right and children:
                    residuals = residuals_arr[ci]
                    tchildren = tchildren_arr[ci]
                    bchildren = bchildren_arr[ci]
                    copy_vals = copy_values_arr[ci]
                    plan = merge_plan_arr[ci]
                    ids_tok = ids_arr[tok]
                    wmes_tok = wmes_arr[tok]
                    plus = tag == PLUS
                    for wme in right:
                        get = wme.get
                        if residuals:
                            matched = True
                            for pos, pred, attr in residuals:
                                if not pred.apply(get(attr), values[pos]):
                                    matched = False
                                    break
                            if not matched:
                                continue
                        nvalues = values if copy_vals else tuple(
                            intern_value(get(src)) if from_wme
                            else values[src]
                            for from_wme, src in plan)
                        nids = ids_tok + (wme.wme_id,)
                        nwmes = wmes_tok + (wme,)
                        for tci in tchildren:
                            insts = term_insts_arr[tci]
                            if plus:
                                insts[nids] = Instantiation(
                                    term_prod_arr[tci], nwmes,
                                    dict(zip(term_names_arr[tci],
                                             nvalues)))
                            else:
                                insts.pop(nids, None)
                        if bchildren:
                            ntok = alloc(nids, nwmes, nvalues)
                            allocs_append(ntok)
                            for cci in bchildren:
                                push((cci, ntok, tag))
                continue
            # negative node
            counts = self.neg_counts[ci]
            ids = ids_arr[tok]
            if tag == PLUS:
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = [tok]
                else:
                    bucket.append(tok)
                retain(tok)
                count = 0
                right = right_mem[ci].get(key)
                if right:
                    residuals = residuals_arr[ci]
                    if residuals:
                        for wme in right:
                            get = wme.get
                            for pos, pred, attr in residuals:
                                if not pred.apply(get(attr), values[pos]):
                                    break
                            else:
                                count += 1
                    else:
                        count = len(right)
                counts[ids] = count
                if count == 0:
                    for cci in children:
                        push((cci, tok, PLUS))
            else:
                self._remove_left(ci, key, ids)
                if counts.pop(ids, 0) == 0:
                    for cci in children:
                        push((cci, tok, MINUS))

    def _extend(self, ci: int, tok: int, wme: WME,
                allocs: List[int]) -> int:
        """Allocate the join-output token per the node's merge plan."""
        pool = self.pool
        parent = pool.values[tok]
        if self.copy_values[ci]:
            values = parent  # no new bindings: share the parent tuple
        else:
            values = tuple(
                intern_value(wme.get(src)) if from_wme else parent[src]
                for from_wme, src in self.merge_plan[ci])
        ntok = pool.alloc(pool.ids[tok] + (wme.wme_id,),
                          pool.wmes[tok] + (wme,), values)
        allocs.append(ntok)
        return ntok

    def _remove_left(self, ci: int, key: tuple,
                     ids: Tuple[int, ...]) -> None:
        """Delete one stored token equal (by wme ids) to a minus token.

        Silently tolerates absence, like the reference memories.
        """
        buckets = self.memories.left[ci]
        bucket = buckets.get(key)
        if not bucket:
            return
        pool = self.pool
        pool_ids = pool.ids
        for i, idx in enumerate(bucket):
            if pool_ids[idx] == ids:
                del bucket[i]
                if not bucket:
                    del buckets[key]
                pool.release(idx)
                return

    # -- activation reporting ------------------------------------------------

    def _emit(self, ci: int, side: str, tag: str, key: tuple,
              parent_ev) -> Optional[ActivationEvent]:
        net = self.net
        if not net.observers:
            return None
        node_id = self.node_id[ci]
        ev = ActivationEvent(
            act_id=net._next_act_id,
            parent_id=parent_ev.act_id if parent_ev is not None else None,
            node_id=node_id, node_label=self.label[ci],
            node_kind=self.kind_str[ci], side=side, tag=tag,
            key=BucketKey(node_id, key))
        net._next_act_id += 1
        return ev

    def _finish(self, ev: Optional[ActivationEvent],
                n_successors: int) -> None:
        if ev is None:
            return
        ev.n_successors = n_successors
        for observer in self.net.observers:
            observer(ev)

    # -- results --------------------------------------------------------------

    def conflict_set(self) -> List[Instantiation]:
        """Live instantiations, in terminal-creation/insertion order."""
        out: List[Instantiation] = []
        for ci in self._terminal_cis:
            out.extend(self.term_insts[ci].values())
        return out

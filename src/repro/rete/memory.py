"""The two global hashed memories (paper Section 3.1).

Instead of a linear list per memory node, all left memories live in one
global hash table and all right memories in another.  Buckets are keyed
by :class:`~repro.rete.hashing.BucketKey` — destination node id plus the
values of the equality-tested variables — so a left token only ever needs
to search the right bucket with its own index, and vice versa.

This module is purely a data structure; the join/negative nodes in
:mod:`repro.rete.nodes` decide which keys to use.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ..ops5.wme import WME
from .hashing import BucketKey
from .tokens import Token


class HashedMemories:
    """The pair of global hash tables holding all Rete memory state."""

    def __init__(self) -> None:
        self._left: Dict[BucketKey, List[Token]] = {}
        self._right: Dict[BucketKey, List[WME]] = {}

    # -- left (token) table -------------------------------------------------

    def add_left(self, key: BucketKey, token: Token) -> None:
        """Store *token* in left bucket *key*."""
        self._left.setdefault(key, []).append(token)

    def remove_left(self, key: BucketKey, token: Token) -> bool:
        """Delete one copy of *token* from left bucket *key*.

        Returns False when the token is absent (a minus token whose plus
        twin never arrived — networks after transformation can produce
        these; callers decide whether that is an error).
        """
        bucket = self._left.get(key)
        if not bucket:
            return False
        try:
            bucket.remove(token)
        except ValueError:
            return False
        if not bucket:
            del self._left[key]
        return True

    def left_bucket(self, key: BucketKey) -> List[Token]:
        """Contents of left bucket *key* (empty list when unused)."""
        return self._left.get(key, [])

    # -- right (wme) table ---------------------------------------------------

    def add_right(self, key: BucketKey, wme: WME) -> None:
        """Store *wme* in right bucket *key*."""
        self._right.setdefault(key, []).append(wme)

    def remove_right(self, key: BucketKey, wme: WME) -> bool:
        """Delete one copy of *wme* from right bucket *key*."""
        bucket = self._right.get(key)
        if not bucket:
            return False
        try:
            bucket.remove(wme)
        except ValueError:
            return False
        if not bucket:
            del self._right[key]
        return True

    def right_bucket(self, key: BucketKey) -> List[WME]:
        """Contents of right bucket *key* (empty list when unused)."""
        return self._right.get(key, [])

    # -- inspection -----------------------------------------------------------

    def left_keys(self) -> Iterator[BucketKey]:
        return iter(self._left)

    def right_keys(self) -> Iterator[BucketKey]:
        return iter(self._right)

    def counts(self) -> Tuple[int, int]:
        """(total left tokens, total right wmes) across all buckets."""
        left = sum(len(b) for b in self._left.values())
        right = sum(len(b) for b in self._right.values())
        return left, right

    def is_empty(self) -> bool:
        """True when no state is stored — e.g. after symmetric add/delete."""
        return not self._left and not self._right

    def clear(self) -> None:
        self._left.clear()
        self._right.clear()


class FlatMemories:
    """The flattened kernel's view of the two global memories.

    Same hashed-memory semantics as :class:`HashedMemories` — one
    conceptual left table and one right table, bucketed by destination
    node and equality-test values — but laid out for the hot path:

    * one plain dict per compiled node (node identity is the list
      index, so bucket keys are bare value tuples — no
      :class:`~repro.rete.hashing.BucketKey` object per lookup);
    * left buckets hold **token-pool indices** (ints into the
      :class:`~repro.rete.tokens.TokenPool` arrays), not token
    * string values are interned before keying (see
      :func:`~repro.rete.hashing.intern_value`), so bucket probes
      compare symbols by pointer.

    Buckets are deleted when they empty, preserving the reference
    engine's "no state after symmetric add/delete" invariant that
    :meth:`is_empty` reports.
    """

    __slots__ = ("left", "right")

    def __init__(self, n_nodes: int) -> None:
        #: per-node dict: value-tuple -> list of token pool indices
        self.left: List[Dict[tuple, List[int]]] = [
            {} for _ in range(n_nodes)]
        #: per-node dict: value-tuple -> list of wmes
        self.right: List[Dict[tuple, List[WME]]] = [
            {} for _ in range(n_nodes)]

    # The introspection surface shared with HashedMemories ---------------

    def counts(self) -> Tuple[int, int]:
        """(total left tokens, total right wmes) across all buckets."""
        left = sum(len(b) for node in self.left for b in node.values())
        right = sum(len(b) for node in self.right for b in node.values())
        return left, right

    def is_empty(self) -> bool:
        """True when no state is stored — e.g. after symmetric add/delete."""
        return (all(not node for node in self.left)
                and all(not node for node in self.right))

    def clear(self) -> None:
        for node in self.left:
            node.clear()
        for node in self.right:
            node.clear()

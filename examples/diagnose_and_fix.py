#!/usr/bin/env python3
"""The Section 5.2 methodology as an automated loop.

The paper finds its speedup limiters by inspecting traces — Weaver's
three-activation bottleneck, Tourney's non-discriminating bucket — and
fixes each by hand with unsharing or copy-and-constraint.  The
`repro.analysis` diagnostics detect the same phenomena automatically,
and `autotune` applies the recommended remedy for each finding until
the trace comes back clean.

Run:  python examples/diagnose_and_fix.py [section] [procs]
"""

import sys

from repro.analysis import autotune, diagnose
from repro.workloads import rubik_section, tourney_section, weaver_section

SECTIONS = {"rubik": rubik_section, "tourney": tourney_section,
            "weaver": weaver_section}


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "tourney"
    n_procs = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    if name not in SECTIONS:
        raise SystemExit(f"unknown section {name!r}; "
                         f"choose from {sorted(SECTIONS)}")
    trace = SECTIONS[name]()

    print(f"=== diagnosing {trace.name} ===")
    findings = diagnose(trace)
    if not findings:
        print("no speedup limiters detected")
    for finding in findings:
        print(f"  {finding}")

    print(f"\n=== autotuning for {n_procs} processors ===")
    result = autotune(trace, n_procs=n_procs)
    print(result.summary())

    leftover = diagnose(result.trace)
    hotspots = [f for f in leftover
                if f.kind in ("cross-product", "bottleneck-generator")]
    print(f"\nremaining transformable hot spots: {len(hotspots)}")
    print("(small cycles and modify storms need source-level or "
          "scheduling fixes,\nwhich is exactly where the paper leaves "
          "them)")


if __name__ == "__main__":
    main()

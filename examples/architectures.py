#!/usr/bin/env python3
"""Every simulated architecture, side by side.

The paper positions its distributed-hash-table MPC mapping relative to
several alternatives; this repository implements all of them on the
same cost model:

* the distributed mapping of Section 3.2 (the paper's subject),
* the processor-pair base mapping of Section 3.1,
* the shared-bus implementation it is compared against (Section 5.2),
* the two Section 6 continuum extremes (replicated / master copy),
* with and without termination detection (Section 4 future work).

Run:  python examples/architectures.py [section]
"""

import sys

from repro.analysis import format_table
from repro.mpc import (TABLE_5_1, TerminationScheme, apply_termination,
                       simulate, simulate_base, simulate_master_copy,
                       simulate_pairs, simulate_replicated,
                       simulate_shared_bus, speedup)
from repro.workloads import rubik_section, tourney_section, weaver_section

SECTIONS = {"rubik": rubik_section, "tourney": tourney_section,
            "weaver": weaver_section}
PROCS = [4, 8, 16, 32]
OVH = TABLE_5_1[1]  # the 8us Nectar-like setting


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "rubik"
    if name not in SECTIONS:
        raise SystemExit(f"unknown section {name!r}; "
                         f"choose from {sorted(SECTIONS)}")
    trace = SECTIONS[name]()
    base = simulate_base(trace)
    print(f"section: {trace.name}   "
          f"base time (1 proc, no overheads): "
          f"{base.total_us / 1000:.1f} ms\n")

    rows = []
    for p in PROCS:
        distributed = simulate(trace, n_procs=p, overheads=OVH)
        rows.append([
            p,
            speedup(base, distributed),
            speedup(base, simulate_pairs(trace, n_pairs=max(1, p // 2),
                                         overheads=OVH)),
            speedup(base, simulate_shared_bus(trace, n_procs=p)),
            speedup(base, simulate_replicated(trace, p, overheads=OVH)),
            speedup(base, simulate_master_copy(trace, p,
                                               overheads=OVH)),
            speedup(base, apply_termination(
                distributed, TerminationScheme.TREE, OVH)),
        ])
    print(format_table(
        ["procs", "distributed", "pairs (P/2x2)", "shared bus",
         "replicated", "master copy", "distrib+tree-term"],
        rows,
        title=f"Speedups at {OVH.label()} message overhead"))

    print("""
reading guide:
  distributed   the paper's mapping (Fig 3-3): hash-partitioned buckets
  pairs         the base mapping (Fig 3-2): P/2 pairs = P CPUs,
                store and match overlap, intra-pair forwards cost
  shared bus    the Encore baseline: central task queues, no partitions
  replicated    Section 6 extreme: every store applied on every CPU
  master copy   Section 6 extreme: one CPU owns the hash table
  +tree-term    distributed plus a combining-tree termination detector
""")


if __name__ == "__main__":
    main()

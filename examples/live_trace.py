#!/usr/bin/env python3
"""Distributed tracing of a *live* actors run, end to end.

``examples/profile_section.py`` profiles the simulator — spans come
from a modeled clock, so they reconcile with the cost model exactly.
This example traces the real thing: an asyncio run of the Section 3.2
message protocol, where span context rides inside the protocol's own
``cycle``/``token``/``fire`` messages, each actor records into a
bounded flight-recorder ring, and the coordinator drains the rings at
every barrier and merges them onto one clock-aligned axis.

The walk checks its own output, mirroring the simulator example:

1. run traced and untraced — tracing must be bit-invisible,
2. reconcile the merged spans against the run's counters (``==``),
3. attribute measured idle time to the paper's limiter categories,
4. export a Chrome trace you can open in https://ui.perfetto.dev
   (load it next to a ``repro profile`` trace of the same section to
   see where the model and the machine disagree),
5. crash an actor under supervision and watch the restart and
   checkpoint-replay windows appear as spans — plus the
   flight-recorder post-mortem dump a fatal error would leave behind.

Run:  python examples/live_trace.py
"""

import json
import pathlib
import tempfile

from repro.exec import (ActorExecutor, ChaosPolicy, match_signature,
                        run)
from repro.mpc import (TABLE_5_1, RunConfig, SupervisePolicy,
                       format_attribution)
from repro.obs import (live_attribution, reconcile_live,
                       write_chrome_trace_live)
from repro.obs.trace import LIVE_REPLAY, LIVE_RESTART
from repro.workloads import rubik_section

N_PROCS = 4
OVERHEADS = next(o for o in TABLE_5_1 if o.total_us == 8)
CONFIG = RunConfig(n_procs=N_PROCS, overheads=OVERHEADS)


def trace_a_run(trace):
    print("--- 1. traced run (tracing must be bit-invisible) ---")
    plain = run(trace, CONFIG, backend="actors")
    traced = run(trace, CONFIG.replace(live_trace=True),
                 backend="actors")
    assert match_signature(traced) == match_signature(plain), \
        "tracing changed the run!"
    assert match_signature(traced) == \
        match_signature(run(trace, CONFIG)), "live run diverged from sim"
    timeline = traced.live
    print(f"recorded {len(timeline.spans)} spans over "
          f"{len(timeline.cycle_indices())} committed cycles on "
          f"{timeline.n_procs} actors ({timeline.transport} "
          f"transport); match signature unchanged: yes\n")
    return traced, timeline


def reconcile(outcome, timeline):
    print("--- 2. spans reconcile with the run's own counters ---")
    reconcile_live(timeline, outcome.result)  # raises on mismatch
    print("match-span activations == proc_activations, cumulative "
          "busy\nsnapshots == proc_busy_us, send spans == n_messages "
          "- 1 -- all ==\n")


def attribute(timeline):
    print("--- 3. measured idle-time attribution ---")
    section = live_attribution(timeline)
    for cycle in section.cycles:
        cycle.check_sums()  # partition invariant, exact
    print(format_attribution(section))
    print("(a measurement, not a model: compare against "
          "`repro profile`)\n")


def export(timeline):
    print("--- 4. Chrome trace export ---")
    out = pathlib.Path(tempfile.mkdtemp()) / "live.trace.json"
    with out.open("w") as stream:
        n_events = write_chrome_trace_live(timeline, stream)
    payload = json.loads(out.read_text())
    threads = {e["args"]["name"] for e in payload["traceEvents"]
               if e.get("name") == "thread_name"}
    print(f"wrote {n_events} events to {out}")
    print(f"Perfetto rows: {sorted(threads)}\n")


def crash_and_recover(trace):
    print("--- 5. supervised crash: restarts become spans ---")
    first = trace.cycles[0].index
    config = CONFIG.replace(
        live_trace=True,
        supervise=SupervisePolicy(heartbeat_s=0.02, cycle_timeout_s=5.0,
                                  max_restarts=3, restart_delay_s=0.0))
    executor = ActorExecutor(
        chaos=ChaosPolicy(seed=3, kills=((first, 1),)))
    outcome = executor.submit(trace, config).result()
    assert match_signature(outcome) == \
        match_signature(run(trace, CONFIG)), "recovery changed matches"
    timeline = outcome.live
    restarts = [s for s in timeline.spans
                if s.category == LIVE_RESTART]
    replays = [s for s in timeline.spans
               if s.category == LIVE_REPLAY]
    reconcile_live(timeline, outcome.result)
    print(f"killed actor 1 in cycle {first}: {len(restarts)} restart "
          f"span(s), {len(replays)} replay span(s);")
    print(f"committed generations: {timeline.committed} -- only the "
          f"committed attempt's\nactor spans survive the merge, and "
          f"the recovered run still reconciles.")
    print("(a *fatal* error -- restarts exhausted, wedge, protocol "
          "violation -- would\nadditionally dump every ring to "
          "flight-*.jsonl; see REPRO_FLIGHT_DIR)\n")


def main():
    trace = rubik_section()
    outcome, timeline = trace_a_run(trace)
    reconcile(outcome, timeline)
    attribute(timeline)
    export(timeline)
    crash_and_recover(trace)
    print("done.")


if __name__ == "__main__":
    main()

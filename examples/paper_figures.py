#!/usr/bin/env python3
"""Regenerate every figure and table of the paper's evaluation section
in one run, as ASCII tables and plots.

This drives the same code as the benchmark harness (benchmarks/), but
as a plain script with everything on stdout.

Run:  python examples/paper_figures.py            # all figures
      python examples/paper_figures.py fig5_2     # one of them
"""

import sys

from repro.analysis import (aggregate, alternation_score, bar_chart,
                            curve_plot, format_table)
from repro.mpc import (TABLE_5_1, overhead_sweep, simulate, speedup_curve,
                       speedup_loss, table_5_1_rows)
from repro.trace import copy_and_constraint_trace, unshare_trace
from repro.workloads import rubik_section, tourney_section, weaver_section
from repro.workloads.rubik import FIG_5_5_PROCS
from repro.workloads.tourney import CP_NODE
from repro.workloads.weaver import HOT_NODE

PROCS = [1, 2, 4, 8, 16, 24, 32]


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def fig5_1(sections) -> None:
    banner("Figure 5-1: speedups with zero message-passing overheads")
    curves = [speedup_curve(t, PROCS, label=t.name) for t in sections]
    rows = [[p] + [c.speedups[i] for c in curves]
            for i, p in enumerate(PROCS)]
    print(format_table(["procs"] + [c.label for c in curves], rows))
    print()
    print(curve_plot(PROCS, [c.speedups for c in curves],
                     [c.label for c in curves]))


def table5_1(sections) -> None:
    banner("Table 5-1: message-processing overheads")
    print(format_table(
        ["Runs", "Send (us)", "Receive (us)", "Total (us)"],
        table_5_1_rows()))


def fig5_2(sections) -> None:
    for trace in sections:
        banner(f"Figure 5-2 ({trace.name}): speedups with varying "
               f"overheads")
        curves = overhead_sweep(trace, proc_counts=PROCS)
        labels = [c.label.split("@")[1] for c in curves]
        rows = [[p] + [c.speedups[i] for c in curves]
                for i, p in enumerate(PROCS)]
        print(format_table(["procs"] + labels, rows))
        loss = speedup_loss(curves[0], curves[3])
        print(f"\npeak-speedup loss at 32us total overhead: {loss:.0%}")


def table5_2(sections) -> None:
    banner("Table 5-2: tokens in the sections of the three programs")
    print(f"{'Program':<10} {'Left activations':>18} "
          f"{'Right activations':>19} {'Total':>8}")
    for trace in sections:
        print(trace.stats().row(trace.name))


def fig5_4(sections) -> None:
    banner("Figure 5-4: Weaver speedups with unsharing")
    weaver = sections[2]
    unshared = unshare_trace(weaver, node_ids=[HOT_NODE])
    baseline = speedup_curve(weaver, PROCS, label="shared")
    transformed = speedup_curve(unshared, PROCS, label="unshared")
    rows = [[p, baseline.speedups[i], transformed.speedups[i]]
            for i, p in enumerate(PROCS)]
    print(format_table(["procs", "shared", "unshared"], rows))
    print()
    print(curve_plot(PROCS, [baseline.speedups, transformed.speedups],
                     ["shared", "unshared"]))


def fig5_5(sections) -> None:
    banner(f"Figure 5-5: left-token distribution over "
           f"{FIG_5_5_PROCS} processors (Rubik)")
    run = simulate(sections[0], n_procs=FIG_5_5_PROCS)
    labels = [f"p{p}" for p in range(FIG_5_5_PROCS)]
    c1 = run.cycles[0].proc_left_activations
    c2 = run.cycles[1].proc_left_activations
    print(bar_chart(c1, labels, title="cycle 1"))
    print()
    print(bar_chart(c2, labels, title="cycle 2"))
    print(f"\nalternation (anti-correlation): "
          f"{alternation_score(c1, c2):.2f}")
    total = aggregate([c.proc_left_activations for c in run.cycles])
    print()
    print(bar_chart(total, labels, title="aggregate over the section"))


def fig5_6(sections) -> None:
    banner("Figure 5-6: Tourney speedups with copy and constraint")
    tourney = sections[1]
    cc = copy_and_constraint_trace(tourney, CP_NODE, 4)
    baseline = speedup_curve(tourney, PROCS, label="baseline")
    transformed = speedup_curve(cc, PROCS, label="copy+constraint")
    rows = [[p, baseline.speedups[i], transformed.speedups[i]]
            for i, p in enumerate(PROCS)]
    print(format_table(["procs", "baseline", "copy+constraint"], rows))


FIGURES = {
    "fig5_1": fig5_1,
    "table5_1": table5_1,
    "fig5_2": fig5_2,
    "table5_2": table5_2,
    "fig5_4": fig5_4,
    "fig5_5": fig5_5,
    "fig5_6": fig5_6,
}


def main() -> None:
    wanted = sys.argv[1:] or list(FIGURES)
    unknown = [w for w in wanted if w not in FIGURES]
    if unknown:
        raise SystemExit(f"unknown figure(s) {unknown}; "
                         f"choose from {sorted(FIGURES)}")
    print("building the three characteristic sections...")
    sections = [rubik_section(), tourney_section(), weaver_section()]
    for name in wanted:
        FIGURES[name](sections)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Chaos in live mode: kill workers mid-run, recover bit-identically.

The simulator *prices* faults (`examples/fault_tolerance.py`); the
live actors backend *survives* them.  Under a `SupervisePolicy` the
control loop heartbeats worker liveness, bounds every recognize-act
cycle with a deadline, and replays a failed cycle from its `CyclePlan`
checkpoint on a fresh generation of workers.  `ChaosPolicy` injects
the failures deterministically — counter-based splitmix64 draws, so
one seed is one fault schedule — and the contract is binary: the run
either recovers to counters bit-identical to the simulator's, or
raises a typed `ExecutorError`.  Never a hang, never silently-wrong.

This example walks the contract:

1. a supervised zero-chaos run (supervision must be invisible),
2. a worker killed at a known cycle — restarted and replayed,
3. probabilistic chaos (kills + stalls + delays) from one seed,
4. an unsurvivable fault: the typed give-up.

Run:  python examples/chaos_recovery.py
"""

from repro.exec import (ActorExecutor, ChaosPolicy, RestartsExhausted,
                        match_signature, run)
from repro.mpc import RunConfig, SupervisePolicy, TABLE_5_1
from repro.obs import get_registry
from repro.workloads import rubik_section

N_PROCS = 4
OVERHEADS = TABLE_5_1[1]  # Run 2: 5 us send + 3 us receive

#: Test-sized supervision: fail fast, no backoff pauses.
POLICY = SupervisePolicy(heartbeat_s=0.02, cycle_timeout_s=10.0,
                         max_restarts=3, restart_delay_s=0.0)


def supervised_run(trace, config, chaos=None):
    executor = ActorExecutor(transport="asyncio", chaos=chaos)
    return executor.submit(trace, config).result()


def main() -> None:
    trace = rubik_section()
    config = RunConfig(n_procs=N_PROCS, overheads=OVERHEADS,
                       supervise=POLICY)
    sim_sig = match_signature(run(trace, config, backend="sim"))

    print("--- 1. supervision is invisible when nothing fails ---")
    outcome = supervised_run(trace, config)
    assert match_signature(outcome) == sim_sig
    print(f"{trace.name}: {len(outcome.result.cycles)} cycles, "
          f"{outcome.result.n_messages} messages — bit-identical to "
          f"the simulator\n")

    print("--- 2. kill worker 1 at the first cycle ---")
    restarts = get_registry().counter("supervise.restarts")
    before = restarts.value
    first = trace.cycles[0].index
    chaos = ChaosPolicy(seed=3, kills=((first, 1),))
    outcome = supervised_run(trace, config, chaos=chaos)
    assert match_signature(outcome) == sim_sig
    print(f"worker killed, cycle {first} replayed from its plan "
          f"checkpoint ({restarts.value - before} restart(s)); "
          f"results still bit-identical\n")

    print("--- 3. seeded probabilistic chaos ---")
    chaos = ChaosPolicy(seed=7, kill_prob=0.05, delay_prob=0.01,
                        delay_s=0.002, stall_prob=0.05, stall_s=0.01)
    outcome = supervised_run(trace, config, chaos=chaos)
    assert match_signature(outcome) == sim_sig
    kills = get_registry().counter("chaos.kills").value
    stalls = get_registry().counter("chaos.stalls").value
    print(f"seed 7: {kills} kill(s), {stalls} stall(s) injected so "
          f"far this process — recovered bit-identically\n")

    print("--- 4. an unsurvivable fault gives up loudly ---")
    chaos = ChaosPolicy(seed=3, persistent_kills=((first, 0),))
    try:
        supervised_run(trace, config, chaos=chaos)
    except RestartsExhausted as err:
        print(f"typed give-up after {err.attempts} attempts on cycle "
              f"{err.cycle}: {err}")
    else:
        raise AssertionError("persistent kill should exhaust restarts")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A bigger blocks-world expert system, end to end.

Builds an N-block tower-flattening problem, runs it under both the
naive matcher and Rete (verifying they agree), then records the trace
and compares simulated match time across machine sizes and overheads —
a miniature of the paper's whole methodology on a live program.

Run:  python examples/blocks_world.py [n_blocks]
"""

import sys

from repro.ops5 import Interpreter, NaiveMatcher, parse_program
from repro.rete import ReteNetwork
from repro.trace import TraceRecorder
from repro.mpc import TABLE_5_1, simulate, simulate_base, speedup

RULES = """
(p unstack-clear-block
  (goal ^want flat)
  (block ^name <top> ^on { <below> <> table } ^clear yes)
  (block ^name <below>)
  -->
  (modify 2 ^on table)
  (modify 3 ^clear yes))

(p declare-victory
  (goal ^want flat)
  -(block ^on { <other> <> table })
  -->
  (remove 1)
  (write tower flattened (crlf)))
"""


def build_program(n_blocks: int) -> str:
    """A single tower of n blocks: b1 on b2 on ... on table."""
    makes = ["(make goal ^want flat)"]
    for i in range(1, n_blocks + 1):
        below = f"b{i + 1}" if i < n_blocks else "table"
        clear = "yes" if i == 1 else "no"
        makes.append(
            f"(make block ^name b{i} ^on {below} ^clear {clear})")
    return f"(startup {' '.join(makes)})\n{RULES}"


def run_with(matcher, source):
    interp = Interpreter(matcher=matcher)
    recorder = None
    if isinstance(matcher, ReteNetwork):
        recorder = TraceRecorder(matcher)
        recorder.attach(interp)
    interp.load_program(parse_program(source))
    result = interp.run(max_cycles=10_000)
    return result, recorder


def main() -> None:
    n_blocks = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    source = build_program(n_blocks)

    naive_result, _ = run_with(NaiveMatcher(), source)
    rete_result, recorder = run_with(ReteNetwork(), source)

    naive_names = [f.production_name for f in naive_result.firings]
    rete_names = [f.production_name for f in rete_result.firings]
    assert naive_names == rete_names, "matchers disagree!"
    print(f"{n_blocks}-block tower flattened in "
          f"{rete_result.cycles} firings "
          f"(naive and Rete matchers agree)\n")

    trace = recorder.section("blocks-world", drop_setup_cycle=True)
    stats = trace.stats()
    print("hash-table activity: " + stats.row("blocks"))
    print()

    base = simulate_base(trace)
    print(f"{'procs':>5} " + " ".join(
        f"{f'{m.total_us:g}us ovh':>12}" for m in TABLE_5_1))
    for n_procs in (1, 2, 4, 8, 16):
        row = [f"{n_procs:>5}"]
        for overheads in TABLE_5_1:
            run = simulate(trace, n_procs=n_procs, overheads=overheads)
            row.append(f"{speedup(base, run):>11.2f}x")
        print(" ".join(row))
    print("\n(small cycles dominate a serial planner like this, so "
          "speedups stay modest -- the paper's Weaver effect)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Fault injection: what the paper's speedups cost on a lossy network.

The paper simulates a perfect Nectar-class network — no message is ever
lost, delayed, or duplicated, and no processor ever stalls.  The
`repro.mpc.faults` layer prices reliability back in: every data message
is acknowledged, lost messages are retransmitted after a (backed-off)
timeout, and the ack/retransmit traffic is charged through the same
Table 5-1 overhead model as real messages.  All fault decisions are
counter-based draws from a seed, so every run is bit-reproducible.

This example walks the three levels of the API:

1. a single faulty run vs the fault-free baseline,
2. the degradation curve (speedup vs loss rate),
3. deterministic disasters: a stalled processor and a fail-stop crash.

Run:  python examples/fault_tolerance.py
"""

from repro.mpc import (TABLE_5_1, FailStop, FaultModel, RunConfig,
                       StallWindow, fault_sweep, format_degradation,
                       simulate, simulate_base, simulate_config, speedup)
from repro.workloads import rubik_section

N_PROCS = 16
OVERHEADS = TABLE_5_1[1]  # Run 2: 5 us send + 3 us receive


def single_run(trace) -> None:
    print("--- one faulty run vs the fault-free baseline ---")
    base = simulate_base(trace)
    clean = simulate(trace, n_procs=N_PROCS, overheads=OVERHEADS)
    faults = FaultModel(seed=42, loss_prob=0.01, jitter_us=5.0)
    config = RunConfig(n_procs=N_PROCS, overheads=OVERHEADS,
                       faults=faults)
    faulty = simulate_config(trace, config)
    print(f"fault-free: speedup {speedup(base, clean):.2f}x")
    print(f"1% loss:    speedup {speedup(base, faulty):.2f}x"
          f"  ({faulty.fault_summary()})")

    # Same seed => bit-identical result; different seed => different
    # messages are lost, but the same order of magnitude of them.
    rerun = simulate_config(trace, config)
    assert rerun.cycles == faulty.cycles, "determinism broken!"
    print("rerun with the same seed is bit-identical: yes\n")


def degradation_curve(trace) -> None:
    print("--- speedup vs loss rate (the bench's headline curve) ---")
    curve = fault_sweep(trace, n_procs=N_PROCS, overheads=OVERHEADS,
                        seed=0)
    print(format_degradation(
        curve, title=f"{trace.name}@{N_PROCS}, "
                     f"overheads {OVERHEADS.label()}"))
    assert curve.is_monotone(), "more loss should never help"
    print()


def deterministic_disasters(trace) -> None:
    print("--- stalls and fail-stop crashes ---")
    base = simulate_base(trace)
    clean = simulate(trace, n_procs=N_PROCS, overheads=OVERHEADS)

    # Processor 3 is unavailable for the first 200 us of every cycle
    # (e.g. servicing another device on a shared node).
    stall = FaultModel(stalls=(StallWindow(proc=3, start_us=0.0,
                                           end_us=200.0),))
    stalled = simulate_config(trace, RunConfig(
        n_procs=N_PROCS, overheads=OVERHEADS, faults=stall))

    # Processor 5 fail-stops at the start of cycle 2 and takes 10 ms
    # to restart and restore its hash-table partition from checkpoint.
    crash = FaultModel(failures=(FailStop(proc=5, cycle=2),))
    crashed = simulate_config(trace, RunConfig(
        n_procs=N_PROCS, overheads=OVERHEADS, faults=crash))

    print(f"clean run:          {speedup(base, clean):.2f}x")
    print(f"recurring stall:    {speedup(base, stalled):.2f}x "
          f"({stalled.stall_us / 1000:.2f} ms stalled)")
    print(f"one fail-stop:      {speedup(base, crashed):.2f}x "
          f"({crashed.recovery_us / 1000:.1f} ms recovering)")
    assert stalled.total_us >= clean.total_us
    assert crashed.total_us >= clean.total_us
    print()


def main() -> None:
    trace = rubik_section()
    single_run(trace)
    degradation_curve(trace)
    deterministic_disasters(trace)
    print("conclusion: reliability has a fixed price (one ack per "
          "message)\nand a marginal one (retransmits + timeouts); "
          "under 1e-3 loss the\npaper's speedups survive nearly "
          "intact.")


if __name__ == "__main__":
    main()

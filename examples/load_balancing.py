#!/usr/bin/env python3
"""Bucket-to-processor distribution strategies, compared (Section 5.2.2).

Round robin (the paper's default), random, and the offline greedy upper
bound, on the Rubik and Tourney sections — plus the probabilistic
balls-into-bins model the paper built to understand why random
distribution does not help.

Run:  python examples/load_balancing.py
"""

from repro.analysis import (BucketModel, format_table, imbalance_factor)
from repro.mpc import (BucketWorkCache, GreedyMappingFactory,
                       RandomMapping, RunConfig, simulate, simulate_base,
                       simulate_config, speedup)
from repro.workloads import rubik_section, tourney_section

PROCS = [8, 16, 32]


def compare_strategies(trace) -> None:
    base = simulate_base(trace)
    rows = []
    # Shared across processor counts: bucket activity per cycle is the
    # same whatever the machine size, so price it once.
    work_cache = BucketWorkCache()
    for n_procs in PROCS:
        rr = simulate(trace, n_procs=n_procs)
        rnd = simulate_config(trace, RunConfig(
            n_procs=n_procs,
            mapping=RandomMapping(n_procs=n_procs, seed=1)))
        greedy = simulate_config(trace, RunConfig(
            n_procs=n_procs,
            mapping_factory=GreedyMappingFactory(n_procs,
                                                 work_cache=work_cache)))
        rows.append([n_procs, speedup(base, rr), speedup(base, rnd),
                     speedup(base, greedy),
                     f"{rr.total_us / greedy.total_us:.2f}x"])
    print(format_table(
        ["procs", "round-robin", "random", "greedy", "greedy gain"],
        rows, title=f"--- {trace.name} ---"))
    print()


def model_demo() -> None:
    print("--- the probabilistic model (Section 5.2.2) ---")
    print("m active buckets thrown uniformly onto p processors;")
    print("E[max load]/(m/p) is the slowdown an uneven draw causes.\n")

    rows = []
    for m in (32, 128, 512):
        for p in (8, 16, 32):
            model = BucketModel(active_buckets=m, processors=p)
            rows.append([m, p, f"{model.p_even():.1e}",
                         f"{model.p_all_on_one():.1e}",
                         f"{model.imbalance(trials=3000):.2f}"])
    print(format_table(
        ["active buckets", "procs", "P(perfectly even)",
         "P(all on one)", "E[max]/even"],
        rows))
    print("\nconclusions: extremes are rare; more active buckets -> "
          "more even;\nmore processors -> less even "
          "(exactly the paper's three conclusions)")


def main() -> None:
    for section in (rubik_section(), tourney_section()):
        compare_strategies(section)
    model_demo()
    print("\nNote the paper's caveat: the greedy distribution is an "
          "offline upper\nbound (it sees each cycle's bucket activity "
          "in advance); tokens cannot\nmove at run time because their "
          "bucket lives on one processor.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The paper's three remedies for speedup limiters (Section 5.2), both
at the source/network level and at the trace level.

1. Unsharing (Fig 5-3/5-4): rebuild the Rete network without shared
   join nodes; on traces, split the Weaver bottleneck node by output
   branch.
2. Dummy nodes: spread a wide successor fan-out over 2-4 helpers.
3. Copy and constraint (Fig 5-6): split a production into constrained
   copies so the hash function can discriminate; on traces, split the
   Tourney cross-product bucket.

Run:  python examples/transformations.py
"""

from repro.ops5 import NaiveMatcher, parse_production
from repro.ops5.wme import WME
from repro.rete import (build_network, build_unshared_network,
                        copy_and_constraint_values, sharing_factor)
from repro.trace import (copy_and_constraint_trace, insert_dummy_nodes,
                         unshare_trace)
from repro.mpc import simulate, simulate_base, speedup
from repro.workloads import tourney_section, weaver_section
from repro.workloads.tourney import CP_NODE
from repro.workloads.weaver import HOT_NODE


def network_level() -> None:
    print("=== network level ===\n")
    rules = [parse_production(s) for s in (
        "(p out1 (i1 ^v <x>) (i2 ^w <x>) (o ^k 1) --> (remove 1))",
        "(p out2 (i1 ^v <x>) (i2 ^w <x>) (o ^k 2) --> (remove 1))",
    )]
    shared = build_network(rules)
    unshared = build_unshared_network(rules)
    print(f"two productions sharing the i1xi2 join (Figure 5-3):")
    print(f"  shared build:   {shared.node_count()} two-input nodes")
    print(f"  unshared build: {unshared.node_count()} two-input nodes")
    print(f"  sharing factor: {sharing_factor(rules):.2f} "
          f"(paper: sharing buys 1.1-1.6x in general)\n")

    sched = parse_production("""
        (p schedule (game ^slot <s>) (slot ^id <s> ^day <d>)
           --> (remove 1))
    """)
    copies = copy_and_constraint_values(sched, ce_index=2, attr="day",
                                        values=["mon", "tue", "wed"])
    print("copy-and-constraint on ^day (source level):")
    for c in copies:
        print(f"  {c.name}: CE2 = {c.lhs[1]}")
    matcher = NaiveMatcher()
    for c in copies:
        matcher.add_production(c)
    matcher.add_wme(WME(1, "game", {"slot": "s1"}))
    matcher.add_wme(WME(2, "slot", {"id": "s1", "day": "tue"}))
    [inst] = matcher.conflict_set()
    print(f"  a tuesday slot matches only {inst.production.name}\n")


def trace_level() -> None:
    print("=== trace level (what the paper's simulator measured) ===\n")
    procs = 16

    weaver = weaver_section()
    base = simulate_base(weaver)
    plain = speedup(base, simulate(weaver, n_procs=procs))
    unshared = unshare_trace(weaver, node_ids=[HOT_NODE])
    unshared_s = speedup(base, simulate(unshared, n_procs=procs))
    dummies = insert_dummy_nodes(weaver, HOT_NODE, parts=4)
    dummy_s = speedup(base, simulate(dummies, n_procs=procs))
    print(f"weaver @ {procs} procs:")
    print(f"  baseline            {plain:5.2f}x")
    print(f"  unsharing (Fig 5-4) {unshared_s:5.2f}x")
    print(f"  dummy nodes x4      {dummy_s:5.2f}x\n")

    tourney = tourney_section()
    base = simulate_base(tourney)
    plain = speedup(base, simulate(tourney, n_procs=procs))
    cc = copy_and_constraint_trace(tourney, CP_NODE, 4)
    cc_s = speedup(base, simulate(cc, n_procs=procs))
    print(f"tourney @ {procs} procs:")
    print(f"  baseline                    {plain:5.2f}x")
    print(f"  copy-and-constraint (Fig 5-6) {cc_s:4.2f}x")
    print("  (a modest gain -- the paper's footnote 9)")


def main() -> None:
    network_level()
    trace_level()


if __name__ == "__main__":
    main()

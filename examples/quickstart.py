#!/usr/bin/env python3
"""Quickstart: the full pipeline in one page.

1. Write an OPS5 production system.
2. Run it on the Rete engine and watch it fire.
3. Record the hash-table activity trace (the simulator's input,
   paper Figure 4-1).
4. Simulate the trace on a message-passing computer and report the
   speedup over a single match processor.

Run:  python examples/quickstart.py
"""

from repro.ops5 import Interpreter, parse_program
from repro.rete import ReteNetwork
from repro.trace import TraceRecorder
from repro.mpc import OverheadModel, simulate, simulate_base, speedup

SOURCE = """
(literalize box id size painted)
(literalize brush id free)

(startup
  (make box ^id b1 ^size 3 ^painted no)
  (make box ^id b2 ^size 5 ^painted no)
  (make box ^id b3 ^size 8 ^painted no)
  (make brush ^id br1 ^free yes))

(p paint-a-box
  (box ^id <b> ^painted no ^size <s>)
  (brush ^id <br> ^free yes)
  -->
  (write painting <b> size <s> (crlf))
  (modify 1 ^painted yes))

(p all-done
  (brush)
  -(box ^painted no)
  -->
  (write every box is painted (crlf))
  (halt))
"""


def main() -> None:
    # --- 1+2: parse and execute on the Rete engine ---------------------
    program = parse_program(SOURCE)
    network = ReteNetwork()
    recorder = TraceRecorder(network)          # --- 3: tap the network
    interp = Interpreter(matcher=network)
    recorder.attach(interp)
    interp.load_program(program)
    result = interp.run()

    print("== execution ==")
    print(result.output, end="")
    print(f"fired {result.cycles} productions, "
          f"halted={result.halted}\n")

    # --- 4: simulate the recorded trace on an MPC -----------------------
    trace = recorder.section("quickstart", drop_setup_cycle=True)
    stats = trace.stats()
    print("== recorded hash-table activity (simulator input) ==")
    print(f"cycles: {len(trace.cycles)}   " + stats.row("quickstart"))
    print()

    base = simulate_base(trace)
    print("== simulated match time on a message-passing computer ==")
    print(f"1 processor, zero overheads: {base.total_us:.0f} us (base)")
    for n_procs in (2, 4, 8):
        for overheads in (OverheadModel(),                      # free
                          OverheadModel(send_us=5, recv_us=3)):  # Nectar
            run = simulate(trace, n_procs=n_procs,
                           overheads=overheads)
            print(f"{n_procs} processors, {overheads.total_us:>2.0f}us "
                  f"message overhead: {run.total_us:7.1f} us  "
                  f"(speedup {speedup(base, run):4.2f}x, "
                  f"{run.n_messages} messages)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Profiling a simulated section: where do the cycles actually go?

The paper's Section 5 explains *why* speedups saturate — serial
broadcast floors, long dependent chains, per-message overheads, load
imbalance — by reasoning over hand-inspected traces.  The timeline
layer makes that reasoning mechanical: an opt-in recorder captures a
typed span for every piece of work the simulator schedules, and the
attribution pass charges every idle processor-microsecond to exactly
one limiter category.

This example walks the whole loop and *checks its own output*:

1. record a run (and verify recording never changes the result),
2. reconcile spans against the aggregate counters, bit for bit,
3. attribute idle time and print the report + ASCII Gantt chart,
4. export a Chrome trace you can open in https://ui.perfetto.dev.

Run:  python examples/profile_section.py
"""

import json
import pathlib
import tempfile

from repro.mpc import (TABLE_5_1, RunConfig, TimelineRecorder,
                       attribute_timeline, critical_path,
                       format_attribution, gantt, simulate,
                       simulate_config, write_chrome_trace)
from repro.workloads import weaver_section

N_PROCS = 16
OVERHEADS = next(o for o in TABLE_5_1 if o.total_us == 16)


def record(trace):
    print("--- 1. record a run (recording must be invisible) ---")
    base = simulate(trace, n_procs=N_PROCS, overheads=OVERHEADS)
    recorder = TimelineRecorder()
    result = simulate_config(trace, RunConfig(
        n_procs=N_PROCS, overheads=OVERHEADS, recorder=recorder))
    assert result == base, "recorder changed the simulation!"
    timeline = recorder.timeline
    n_spans = sum(len(c.spans) for c in timeline.cycles)
    print(f"recorded {n_spans} spans over {len(timeline.cycles)} "
          f"cycles; results bit-identical: yes\n")
    return result, timeline


def reconcile(result, timeline):
    print("--- 2. spans reconcile with the aggregate counters ---")
    for cycle_timeline, cycle_result in zip(timeline.cycles,
                                            result.cycles):
        cycle_timeline.reconcile(cycle_result)  # raises on mismatch
    print(f"all {len(timeline.cycles)} cycles reconcile exactly "
          f"(busy sums, control, network, makespan)\n")


def attribute(timeline):
    print("--- 3. idle-time attribution (paper Section 5 limiters) ---")
    section = attribute_timeline(timeline)
    for attribution in section.cycles:
        attribution.check_sums()  # categories partition measured idle
    print(format_attribution(
        section, title=f"weaver @{N_PROCS} procs, "
                       f"overheads {OVERHEADS.label()}"))
    print()
    longest = timeline.longest_cycle()
    path = critical_path(longest)
    print(f"critical path of cycle {longest.index}: "
          f"{len(path)} activations deep, ending at "
          f"{path[-1].end_us:.1f} us")
    print()
    print("Gantt chart of the longest cycle:")
    print(gantt(longest, width=72))
    print()
    return section


def export(timeline, section):
    print("--- 4. machine-readable exports ---")
    with tempfile.TemporaryDirectory() as tmp:
        out = pathlib.Path(tmp) / "weaver.trace.json"
        write_chrome_trace(timeline, out)
        events = json.loads(out.read_text(encoding="utf-8"))
        n_events = len(events["traceEvents"])
        print(f"Chrome trace: {n_events} events "
              f"(load in https://ui.perfetto.dev)")
    payload = section.to_dict()
    json.dumps(payload)  # JSON-ready by construction
    dominant = section.dominant_category()
    share = section.idle_shares()[dominant]
    print(f"attribution JSON: dominant limiter is {dominant} "
          f"({share:.0%} of idle time)")


def main() -> int:
    trace = weaver_section()
    result, timeline = record(trace)
    reconcile(result, timeline)
    section = attribute(timeline)
    export(timeline, section)
    print("\nprofile walkthrough complete: all invariants hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Tests (incl. property-based) for the parameterized section generator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpc import simulate, simulate_base, speedup
from repro.trace import validate_trace
from repro.workloads import SectionSpec, generate_section


class TestBasics:
    def test_default_spec_generates(self):
        trace = generate_section(SectionSpec())
        stats = trace.stats()
        assert stats.left == 1000
        assert stats.right == 1000
        assert len(trace.cycles) == 4

    def test_counts_exact_for_awkward_splits(self):
        spec = SectionSpec(cycles=3, right_activations=100,
                           left_activations=77)
        stats = generate_section(spec).stats()
        assert (stats.left, stats.right) == (77, 100)

    def test_deterministic_per_seed(self):
        from repro.trace import dumps_trace
        a = generate_section(SectionSpec(seed=5))
        b = generate_section(SectionSpec(seed=5))
        assert dumps_trace(a) == dumps_trace(b)

    def test_seed_changes_layout(self):
        from repro.trace import dumps_trace
        assert dumps_trace(generate_section(SectionSpec(seed=1))) != \
            dumps_trace(generate_section(SectionSpec(seed=2)))

    def test_zero_left_activations(self):
        spec = SectionSpec(left_activations=0, terminals_per_cycle=0)
        stats = generate_section(spec).stats()
        assert stats.left == 0

    def test_zero_right_activations(self):
        spec = SectionSpec(right_activations=0)
        stats = generate_section(spec).stats()
        assert stats.right == 0


class TestValidation:
    def test_rejects_zero_cycles(self):
        with pytest.raises(ValueError):
            generate_section(SectionSpec(cycles=0))

    def test_rejects_empty_section(self):
        with pytest.raises(ValueError):
            generate_section(SectionSpec(right_activations=0,
                                         left_activations=0))

    def test_rejects_zero_fanout(self):
        with pytest.raises(ValueError):
            generate_section(SectionSpec(fanout=0))

    def test_rejects_bad_roots_fraction(self):
        with pytest.raises(ValueError):
            generate_section(SectionSpec(left_roots_fraction=0.0))

    def test_rejects_negative_skew(self):
        with pytest.raises(ValueError):
            generate_section(SectionSpec(left_skew=-1))


class TestShapeEffects:
    """The generator's knobs move the simulated behaviour the way the
    paper's analysis says they should."""

    def test_fewer_buckets_less_speedup(self):
        wide = generate_section(SectionSpec(
            name="wide", active_left_buckets=64, right_activations=0,
            left_activations=2000, terminals_per_cycle=0))
        narrow = generate_section(SectionSpec(
            name="narrow", active_left_buckets=2, right_activations=0,
            left_activations=2000, terminals_per_cycle=0))
        s_wide = speedup(simulate_base(wide), simulate(wide, 16))
        s_narrow = speedup(simulate_base(narrow), simulate(narrow, 16))
        assert s_narrow < s_wide

    def test_higher_skew_less_speedup(self):
        def s(skew):
            trace = generate_section(SectionSpec(
                name=f"skew{skew}", left_skew=skew, right_activations=0,
                left_activations=2000, active_left_buckets=32,
                terminals_per_cycle=0))
            return speedup(simulate_base(trace), simulate(trace, 16))
        assert s(2.0) < s(0.0)

    def test_right_heavy_sections_resist_overheads(self):
        """The Table 5-2 mechanism: only left activations travel."""
        from repro.mpc import TABLE_5_1

        def loss(left, right):
            trace = generate_section(SectionSpec(
                name="x", left_activations=left,
                right_activations=right, terminals_per_cycle=0))
            base = simulate_base(trace)
            s0 = speedup(base, simulate(trace, 16))
            s32 = speedup(base, simulate(trace, 16,
                                         overheads=TABLE_5_1[3]))
            return 1 - s32 / s0

        assert loss(left=200, right=1800) < loss(left=1800, right=200)


@given(
    cycles=st.integers(min_value=1, max_value=5),
    rights=st.integers(min_value=0, max_value=800),
    lefts=st.integers(min_value=0, max_value=800),
    fanout=st.integers(min_value=1, max_value=8),
    buckets=st.integers(min_value=1, max_value=64),
    skew=st.floats(min_value=0.0, max_value=2.0),
    seed=st.integers(min_value=0, max_value=99),
)
def test_generator_properties(cycles, rights, lefts, fanout, buckets,
                              skew, seed):
    if rights + lefts == 0:
        return
    spec = SectionSpec(cycles=cycles, right_activations=rights,
                       left_activations=lefts, fanout=fanout,
                       active_left_buckets=buckets, left_skew=skew,
                       terminals_per_cycle=min(3, max(rights, lefts)),
                       seed=seed)
    trace = generate_section(spec)
    # Valid, exact, simulatable.
    assert validate_trace(trace) == []
    stats = trace.stats()
    assert stats.left == lefts and stats.right == rights
    run = simulate(trace, n_procs=4)
    assert run.total_us > 0

"""Unit tests for the Section 4 cost model and Table 5-1 overheads."""

import pytest

from repro.mpc import (TABLE_5_1, ZERO_OVERHEADS, CostModel, OverheadModel,
                       table_5_1_rows)


class TestCostModel:
    def test_paper_defaults(self):
        c = CostModel()
        assert c.constant_tests_us == 30.0
        assert c.left_token_us == 32.0
        assert c.right_token_us == 16.0
        assert c.successor_us == 16.0

    def test_store_cost_left(self):
        assert CostModel().store_cost("left") == 32.0

    def test_store_cost_right(self):
        assert CostModel().store_cost("right") == 16.0

    def test_store_cost_rejects_unknown(self):
        with pytest.raises(ValueError):
            CostModel().store_cost("sideways")

    def test_scaled_ratio(self):
        c = CostModel().scaled(3.0)
        assert c.left_token_us == 48.0
        assert c.right_token_us == 16.0
        assert c.constant_tests_us == 30.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CostModel().left_token_us = 1  # type: ignore[misc]


class TestOverheadModel:
    def test_table_5_1_totals(self):
        """The Table 5-1 rows: totals 0, 8, 16, 32 µs."""
        assert [m.total_us for m in TABLE_5_1] == [0.0, 8.0, 16.0, 32.0]

    def test_table_5_1_send_receive_split(self):
        assert [(m.send_us, m.recv_us) for m in TABLE_5_1] == \
            [(0, 0), (5, 3), (10, 6), (20, 12)]

    def test_table_5_1_all_use_nectar_latency(self):
        assert all(m.latency_us == 0.5 for m in TABLE_5_1)

    def test_zero_overheads_has_zero_latency(self):
        # Figure 5-1 runs with zero network latency AND zero overhead.
        assert ZERO_OVERHEADS.latency_us == 0.0
        assert ZERO_OVERHEADS.total_us == 0.0

    def test_rows_format(self):
        rows = table_5_1_rows()
        assert rows[0] == ("Run 1", 0.0, 0.0, 0.0)
        assert rows[3] == ("Run 4", 20.0, 12.0, 32.0)

    def test_label(self):
        assert OverheadModel(send_us=5, recv_us=3).label() == "8us"

"""Tests for the Section 5.2.2 probabilistic bucket model."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (BucketModel, expected_max_load,
                            imbalance_factor, prob_all_on_one,
                            prob_perfectly_even)


class TestExactProbabilities:
    def test_even_two_buckets_two_procs(self):
        # 4 equally likely assignments; 2 are even (AB, BA).
        assert prob_perfectly_even(2, 2) == pytest.approx(0.5)

    def test_even_requires_divisibility(self):
        assert prob_perfectly_even(3, 2) == 0.0

    def test_even_single_processor(self):
        assert prob_perfectly_even(5, 1) == pytest.approx(1.0)

    def test_all_on_one_two_two(self):
        assert prob_all_on_one(2, 2) == pytest.approx(0.5)

    def test_all_on_one_formula(self):
        # p * (1/p)^m
        assert prob_all_on_one(10, 4) == pytest.approx(4 ** -9)

    def test_all_on_one_single_processor(self):
        assert prob_all_on_one(7, 1) == pytest.approx(1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            prob_perfectly_even(0, 2)
        with pytest.raises(ValueError):
            prob_all_on_one(2, 0)


class TestPaperConclusions:
    """The model's three conclusions, verified quantitatively."""

    def test_conclusion_1_extremes_are_rare(self):
        # "< 1%" for both extremes at realistic sizes (e.g. 100 active
        # buckets, 16 processors).
        assert prob_perfectly_even(96, 16) < 0.01
        assert prob_all_on_one(96, 16) < 1e-100

    def test_conclusion_2_more_active_buckets_more_even(self):
        # Imbalance factor decreases as the active-bucket count grows.
        few = imbalance_factor(32, 16, trials=3000)
        many = imbalance_factor(512, 16, trials=3000)
        assert many < few

    def test_conclusion_2_even_probability_increases(self):
        assert prob_perfectly_even(64, 4) < prob_perfectly_even(256, 4) \
            or prob_perfectly_even(64, 4) < 0.05
        # (For larger m the exact 'perfectly even' probability can fall,
        # but closeness to even rises — captured by the imbalance test.)

    def test_conclusion_3_more_processors_more_uneven(self):
        p8 = imbalance_factor(128, 8, trials=3000)
        p32 = imbalance_factor(128, 32, trials=3000)
        assert p32 > p8


class TestExpectedMax:
    def test_single_processor(self):
        assert expected_max_load(5, 1) == 5.0

    def test_exact_small_case(self):
        # m=2, p=2: max is 1 with prob 0.5, else 2 -> E = 1.5.
        assert expected_max_load(2, 2) == pytest.approx(1.5)

    def test_exact_three_two(self):
        # m=3, p=2: loads (3,0)x2 ways, (2,1)x6 ways of 8:
        # E[max] = (2*3 + 6*2)/8 = 2.25.
        assert expected_max_load(3, 2) == pytest.approx(2.25)

    def test_monte_carlo_is_seed_stable(self):
        a = expected_max_load(500, 16, trials=500, seed=7)
        b = expected_max_load(500, 16, trials=500, seed=7)
        assert a == b

    def test_bounds(self):
        e = expected_max_load(100, 10, trials=1000)
        assert 10.0 <= e <= 100.0

    def test_imbalance_at_least_one(self):
        assert imbalance_factor(100, 10, trials=1000) >= 1.0


class TestBucketModel:
    def test_wrapper_consistency(self):
        model = BucketModel(active_buckets=64, processors=8)
        assert model.p_even() == prob_perfectly_even(64, 8)
        assert model.p_all_on_one() == prob_all_on_one(64, 8)
        assert model.imbalance(trials=500) == \
            imbalance_factor(64, 8, trials=500)


@given(m=st.integers(min_value=1, max_value=12),
       p=st.integers(min_value=1, max_value=4))
def test_exact_max_matches_brute_force(m, p):
    """The DP-based exact E[max] agrees with full enumeration."""
    if p ** m > 200_000:
        return
    total = 0.0
    for assignment in range(p ** m):
        loads = [0] * p
        x = assignment
        for _ in range(m):
            loads[x % p] += 1
            x //= p
        total += max(loads)
    brute = total / p ** m
    assert expected_max_load(m, p) == pytest.approx(brute, rel=1e-9)

"""Tests for the XCON-style configurator workload."""

import pytest

from repro.mpc import simulate, simulate_base, simulate_shared_bus, speedup
from repro.ops5 import run_program
from repro.rete import ReteNetwork
from repro.trace import validate_trace
from repro.workloads.configurator import (configurator_program,
                                          configurator_source,
                                          configurator_trace)


def run_both(n_boards, n_disks, max_cycles=1000):
    naive = run_program(configurator_program(n_boards, n_disks),
                        max_cycles=max_cycles)
    rete = run_program(configurator_program(n_boards, n_disks),
                       matcher=ReteNetwork(), max_cycles=max_cycles)
    return naive, rete


class TestExecution:
    def test_completes_and_matchers_agree(self):
        naive, rete = run_both(6, 5)
        assert rete.halted
        assert [f.production_name for f in naive.firings] == \
            [f.production_name for f in rete.firings]
        assert "configuration complete" in rete.output

    def test_every_rule_class_fires(self):
        _, rete = run_both(6, 5)
        fired = {f.production_name for f in rete.firings}
        assert fired == {
            "start-configuration", "place-board",
            "add-expansion-cabinet", "power-deficit", "assign-disk",
            "add-controller", "configuration-complete"}

    def test_empty_order_completes_immediately(self):
        _, rete = run_both(0, 0)
        assert rete.halted
        assert rete.cycles == 2  # start + complete

    def test_all_boards_placed_all_disks_assigned(self):
        program = configurator_program(7, 4)
        from repro.ops5 import Interpreter
        interp = Interpreter(matcher=ReteNetwork())
        interp.load_program(program)
        interp.run(max_cycles=1000)
        boards = [w for w in interp.wm if w.cls == "board"]
        disks = [w for w in interp.wm if w.cls == "disk"]
        assert all(b.get("placed") == "yes" for b in boards)
        assert all(d.get("assigned") == "yes" for d in disks)

    def test_slot_capacity_respected(self):
        """No cabinet ends with negative slots."""
        from repro.ops5 import Interpreter
        interp = Interpreter(matcher=ReteNetwork())
        interp.load_program(configurator_program(10, 0))
        interp.run(max_cycles=1000)
        for cab in (w for w in interp.wm if w.cls == "cabinet"):
            assert cab.get("slots") >= 0

    def test_power_budget_repaired(self):
        """Power deficits trigger PSUs; final budgets are non-negative."""
        from repro.ops5 import Interpreter
        interp = Interpreter(matcher=ReteNetwork())
        interp.load_program(configurator_program(6, 0))
        result = interp.run(max_cycles=1000)
        assert "added psu" in result.output
        for cab in (w for w in interp.wm if w.cls == "cabinet"):
            assert cab.get("power") >= 0

    def test_controller_capacity_two_disks_each(self):
        from repro.ops5 import Interpreter
        interp = Interpreter(matcher=ReteNetwork())
        interp.load_program(configurator_program(0, 7))
        interp.run(max_cycles=1000)
        controllers = [w for w in interp.wm if w.cls == "controller"]
        assert len(controllers) == 4  # ceil(7 / 2)

    def test_scales_to_larger_orders(self):
        _, rete = run_both(15, 12)
        assert rete.halted

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            configurator_source(-1, 0)


class TestTraceAndSimulation:
    def test_trace_valid(self):
        trace = configurator_trace(8, 6)
        assert validate_trace(trace) == []
        assert trace.total_activations() > 100

    def test_trace_simulates_on_all_architectures(self):
        trace = configurator_trace(8, 6)
        base = simulate_base(trace)
        mpc = simulate(trace, n_procs=8)
        bus = simulate_shared_bus(trace, n_procs=8)
        assert 0 < speedup(base, mpc) <= 8
        assert 0 < speedup(base, bus) <= 8

    def test_serial_planner_has_modest_parallelism(self):
        """Configuration is a chain of small cycles — the Weaver effect
        on a live program."""
        trace = configurator_trace(8, 6)
        base = simulate_base(trace)
        assert speedup(base, simulate(trace, n_procs=32)) < 8

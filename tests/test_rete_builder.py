"""Unit tests for CE analysis and network construction (incl. sharing)."""

import pytest

from repro.ops5 import Predicate, parse_production
from repro.rete import ReteNetwork, analyze_ce, build_network
from repro.rete.builder import CEAnalysis


def ce_at(source, index=1, bound=()):
    p = parse_production(source)
    return analyze_ce(p.lhs[index - 1], set(bound))


class TestAnalyzeCE:
    def test_constant_tests_go_to_alpha(self):
        a = ce_at("(p r (block ^color blue ^size 3) --> (halt))")
        assert len(a.const_tests) == 2
        assert a.eq_tests == ()
        assert a.new_bindings == ()

    def test_fresh_variable_binds(self):
        a = ce_at("(p r (block ^name <x>) --> (halt))")
        assert a.new_bindings == (("x", "name"),)
        assert a.eq_tests == ()

    def test_bound_variable_becomes_eq_join_test(self):
        a = ce_at("(p r (a ^v <x>) (b ^w <x>) --> (halt))",
                  index=2, bound={"x"})
        assert a.eq_tests == (("x", "w"),)
        assert a.new_bindings == ()

    def test_bound_variable_relational_is_residual(self):
        a = ce_at("(p r (a ^v <x>) (b ^w > <x>) --> (halt))",
                  index=2, bound={"x"})
        assert a.residual_tests == (("x", Predicate.GT, "w"),)
        assert a.eq_tests == ()

    def test_repeated_fresh_variable_is_intra_test(self):
        a = ce_at("(p r (pair ^a <x> ^b <x>) --> (halt))")
        assert a.intra_tests == (("a", Predicate.EQ, "b"),)
        assert a.new_bindings == (("x", "a"),)

    def test_relational_on_unbound_is_always_false(self):
        a = ce_at("(p r (a ^v > <x>) --> (halt))")
        assert a.always_false

    def test_relational_then_eq_still_always_false(self):
        # Sequential semantics: the failing test comes first.
        a = ce_at("(p r (a ^v > <x> ^w <x>) --> (halt))")
        assert a.always_false

    def test_variable_bound_twice_across_attrs_eq_joins_both(self):
        a = ce_at("(p r (a ^v <x>) (b ^p <x> ^q <x>) --> (halt))",
                  index=2, bound={"x"})
        assert a.eq_tests == (("x", "p"), ("x", "q"))

    def test_eq_tests_sorted_for_determinism(self):
        a = ce_at("(p r (a ^v <x> ^w <y>) (b ^zz <y> ^aa <x>) --> (halt))",
                  index=2, bound={"x", "y"})
        assert a.eq_tests == (("x", "aa"), ("y", "zz"))


class TestSharing:
    def two_rule_network(self, share=True):
        p1 = parse_production("""
            (p r1 (goal ^id <g>) (task ^goal <g>) --> (remove 2))
        """)
        p2 = parse_production("""
            (p r2 (goal ^id <g>) (task ^goal <g>) (extra) --> (remove 3))
        """)
        return build_network([p1, p2], share=share)

    def test_common_prefix_shared(self):
        net = self.two_rule_network(share=True)
        # r1: join(goal,task).  r2: join(goal,task) shared + join(extra).
        assert net.node_count() == 2

    def test_unshared_build_duplicates(self):
        net = self.two_rule_network(share=False)
        assert net.node_count() == 3

    def test_alpha_patterns_shared_even_when_unshared(self):
        shared = self.two_rule_network(share=True)
        unshared = self.two_rule_network(share=False)
        assert shared.alpha_pattern_count() == \
            unshared.alpha_pattern_count()

    def test_identical_productions_fully_shared(self):
        p1 = parse_production("(p a (x ^v <i>) (y ^w <i>) --> (remove 1))")
        p2 = parse_production("(p b (x ^v <i>) (y ^w <i>) --> (remove 2))")
        net = build_network([p1, p2])
        assert net.node_count() == 1  # one join, two terminals

    def test_different_tests_not_shared(self):
        p1 = parse_production("(p a (x ^v <i>) (y ^w <i>) --> (remove 1))")
        p2 = parse_production("(p b (x ^v <i>) (y ^u <i>) --> (remove 1))")
        net = build_network([p1, p2])
        assert net.node_count() == 2

    def test_unshared_matches_same_conflict_set(self):
        from repro.ops5.wme import WME
        for share in (True, False):
            net = self.two_rule_network(share=share)
            net.add_wme(WME(1, "goal", {"id": "g1"}, timestamp=1))
            net.add_wme(WME(2, "task", {"goal": "g1"}, timestamp=2))
            net.add_wme(WME(3, "extra", {}, timestamp=3))
            names = sorted(i.production.name for i in net.conflict_set())
            assert names == ["r1", "r2"], f"share={share}"


class TestLateProductionAdd:
    def test_add_production_after_wme_raises(self):
        from repro.ops5.wme import WME
        from repro.rete import ReteError
        net = ReteNetwork()
        net.add_production(parse_production("(p r (a) --> (halt))"))
        net.add_wme(WME(1, "a", {}))
        with pytest.raises(ReteError):
            net.add_production(parse_production("(p r2 (b) --> (halt))"))

"""Tests for the shared-bus (shared-memory) baseline simulator."""

import pytest

from repro.mpc import (CostModel, simulate, simulate_base,
                       simulate_shared_bus, speedup)
from repro.rete.hashing import BucketKey
from repro.trace import CycleTrace, SectionTrace, TraceActivation


def act(i, node, side="right", tag="+", parent=None, succ=(),
        kind="join", vals=()):
    return TraceActivation(act_id=i, parent_id=parent, node_id=node,
                           kind=kind, side=side, tag=tag,
                           key=BucketKey(node, tuple(vals)),
                           successors=tuple(succ))


def spread_trace(n=64):
    """Independent activations in distinct buckets."""
    cycle = CycleTrace(index=1)
    for i in range(n):
        cycle.add(act(i + 1, node=i + 1))
    return SectionTrace(name="spread", cycles=[cycle])


def hot_bucket_trace(n=32):
    """All activations share one bucket."""
    cycle = CycleTrace(index=1)
    for i in range(n):
        cycle.add(act(i + 1, node=7, side="left"))
    return SectionTrace(name="hot", cycles=[cycle])


class TestBasics:
    def test_single_proc_matches_base_plus_queue(self):
        trace = spread_trace(10)
        base = simulate_base(trace)
        run = simulate_shared_bus(trace, n_procs=1, queue_access_us=2.0)
        # 10 pops x 2us on top of the serial work.
        assert run.total_us == pytest.approx(base.total_us + 20.0)

    def test_zero_queue_cost_single_proc_equals_base(self):
        trace = spread_trace(10)
        base = simulate_base(trace)
        run = simulate_shared_bus(trace, n_procs=1, queue_access_us=0.0)
        assert run.total_us == pytest.approx(base.total_us)

    def test_spread_work_scales(self):
        trace = spread_trace(64)
        base = simulate_base(trace)
        run = simulate_shared_bus(trace, n_procs=8)
        assert speedup(base, run) > 4.0

    def test_speedup_bounded(self):
        trace = spread_trace(64)
        base = simulate_base(trace)
        for p in (2, 4, 8):
            run = simulate_shared_bus(trace, n_procs=p)
            assert speedup(base, run) <= p + 1e-9

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            simulate_shared_bus(spread_trace(), n_procs=0)
        with pytest.raises(ValueError):
            simulate_shared_bus(spread_trace(), 2, queue_access_us=-1)
        with pytest.raises(ValueError):
            simulate_shared_bus(spread_trace(), 2, n_queues=0)


class TestContentionEffects:
    def test_hot_bucket_serializes_shared_memory_too(self):
        """The paper's closing point: multiple tokens in one bucket are
        processed sequentially on shared memory as well."""
        trace = hot_bucket_trace(32)
        base = simulate_base(trace)
        run = simulate_shared_bus(trace, n_procs=16)
        assert speedup(base, run) < 1.5

    def test_hot_bucket_does_not_stall_other_work(self):
        """A processor whose next task's bucket is locked must take
        other work instead of spinning."""
        cycle = CycleTrace(index=1)
        i = 1
        for _ in range(16):           # hot bucket: serial 16 x 32us
            cycle.add(act(i, node=7, side="left"))
            i += 1
        for k in range(64):           # independent filler
            cycle.add(act(i, node=100 + k))
            i += 1
        trace = SectionTrace(name="mix", cycles=[cycle])
        base = simulate_base(trace)
        run = simulate_shared_bus(trace, n_procs=8)
        # Serial hot chain = 16*32 = 512us; filler = 64*16/7 procs.
        # If procs blocked on the bucket, makespan would exceed 1ms.
        assert run.cycles[0].makespan_us < 700

    def test_single_queue_is_a_bottleneck_at_scale(self):
        trace = spread_trace(256)
        base = simulate_base(trace)
        many = speedup(base, simulate_shared_bus(trace, n_procs=32,
                                                 n_queues=8))
        one = speedup(base, simulate_shared_bus(trace, n_procs=32,
                                                n_queues=1))
        assert one < many

    def test_no_static_partition_imbalance(self):
        """Unlike the MPC round-robin mapping, shared memory balances
        activations across processors regardless of bucket hashing."""
        trace = spread_trace(64)
        run = simulate_shared_bus(trace, n_procs=8)
        counts = run.cycles[0].proc_activations
        assert max(counts) - min(counts) <= 1

    def test_transactions_counted(self):
        trace = spread_trace(10)
        run = simulate_shared_bus(trace, n_procs=4)
        assert run.n_messages == 10  # one pop per activation

    def test_search_costs_apply(self):
        cycle = CycleTrace(index=1)
        for i, tag in enumerate(["+", "+", "+", "-"], start=1):
            cycle.add(act(i, node=1, side="left", tag=tag))
        trace = SectionTrace(name="s", cycles=[cycle])
        plain = simulate_shared_bus(trace, 1, queue_access_us=0.0)
        priced = simulate_shared_bus(
            trace, 1, costs=CostModel(delete_search_us=2.0),
            queue_access_us=0.0)
        assert priced.total_us == pytest.approx(plain.total_us + 6.0)


class TestPaperComparison:
    def test_comparable_speedups_on_sections(self):
        """Section 5.2: MPC speedups are comparable to the shared-bus
        implementation on these sections."""
        from repro.workloads import all_sections
        for trace in all_sections():
            base = simulate_base(trace)
            mpc = speedup(base, simulate(trace, n_procs=16))
            bus = speedup(base, simulate_shared_bus(trace, n_procs=16))
            ratio = mpc / bus
            assert 0.5 <= ratio <= 2.0, (trace.name, ratio)

"""Cross-backend conformance: live actors vs the discrete simulator,
and the served multi-session mode.

The property pinned here is the PR's core claim: a *real* asyncio run
of the Section 3.2 message protocol produces the same match outcome —
per-processor activation counts, message counts, conflict-set
deliveries — as the discrete-event simulator, on arbitrary generated
traces.  The served mode must additionally keep concurrent sessions
isolated: N overlapping sessions each equal a solo run.
"""

import json
import socket

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.generate import generate_cases
from repro.exec import (ServedExecutor, SessionServer, match_signature,
                        run)
from repro.mpc import TABLE_5_1, RunConfig, simulate_config
from repro.workloads import rubik_section, weaver_section

from tests.test_simulator_properties import random_traces

OV8 = next(o for o in TABLE_5_1 if o.total_us == 8)


def signatures_match(trace, config):
    live = run(trace, config, backend="actors")
    sim = run(trace, config)
    assert match_signature(live) == match_signature(sim)


@settings(max_examples=25, deadline=None)
@given(trace=random_traces(),
       n_procs=st.integers(min_value=1, max_value=8),
       overheads=st.sampled_from(TABLE_5_1))
def test_actors_equal_sim_on_random_traces(trace, n_procs, overheads):
    """Property: identical match/fire sequences on arbitrary traces."""
    signatures_match(trace, RunConfig(n_procs=n_procs,
                                      overheads=overheads))


@pytest.mark.parametrize("case", [
    c for c in generate_cases(seed=0, budget=10) if c.family != "program"
], ids=lambda c: f"{c.family}-{c.index}")
def test_actors_equal_sim_on_adversarial_cases(case):
    """The conformance harness's own generated hard cases (cross
    products, modify bursts, empty cycles, deep chains...)."""
    signatures_match(case.trace, RunConfig(n_procs=4, overheads=OV8))


class TestServedSessions:
    def test_concurrent_sessions_are_isolated(self):
        """N overlapping sessions on different traces: each equals its
        own solo run — no shared working memory bleeds through."""
        traces = [rubik_section(), weaver_section(),
                  rubik_section(seed=3), weaver_section(seed=5)]
        config = RunConfig(n_procs=4, overheads=OV8)
        with ServedExecutor(max_sessions=2) as executor:
            handles = [executor.submit(trace, config)
                       for trace in traces]
            outcomes = [handle.result() for handle in handles]
        for trace, outcome in zip(traces, outcomes):
            assert outcome.backend == "served"
            solo = simulate_config(trace, config)
            assert match_signature(outcome) == \
                match_signature(run(trace, config))
            # Counters match the simulator field for field; only the
            # makespan differs (wall time on a live backend).
            for live_cycle, sim_cycle in zip(outcome.result.cycles,
                                             solo.cycles):
                assert live_cycle.proc_busy_us == sim_cycle.proc_busy_us
                assert live_cycle.n_messages == sim_cycle.n_messages
                assert live_cycle.network_busy_us == \
                    sim_cycle.network_busy_us
                assert live_cycle.control_busy_us == \
                    sim_cycle.control_busy_us

    def test_same_input_sessions_identical(self):
        trace = rubik_section()
        config = RunConfig(n_procs=8, overheads=OV8)
        with ServedExecutor() as executor:
            outcomes = [executor.submit(trace, config).result()
                        for _ in range(4)]
        first = match_signature(outcomes[0])
        for outcome in outcomes[1:]:
            assert match_signature(outcome) == first

    def test_session_limit_validated(self):
        with pytest.raises(ValueError, match="max_sessions"):
            SessionServer(max_sessions=0)

    def test_run_front_door(self):
        trace = rubik_section()
        config = RunConfig(n_procs=2)
        outcome = run(trace, config, backend="served")
        assert match_signature(outcome) == \
            match_signature(run(trace, config))


class TestTcpFrontEnd:
    def request(self, port, payload):
        with socket.create_connection(("127.0.0.1", port),
                                      timeout=30) as sock:
            sock.sendall(json.dumps(payload).encode() + b"\n")
            reply = b""
            while not reply.endswith(b"\n"):
                chunk = sock.recv(65536)
                if not chunk:
                    break
                reply += chunk
        return json.loads(reply)

    def test_json_line_session(self):
        with SessionServer(max_sessions=4) as server:
            port = server.serve_tcp()
            reply = self.request(port, {"section": "rubik", "procs": 8,
                                        "overhead": 8})
        assert reply["ok"]
        assert reply["section"] == "rubik"
        expected = run(rubik_section(),
                       RunConfig(n_procs=8, overheads=OV8))
        assert reply["cycles"] == len(expected.result.cycles)
        assert reply["n_messages"] == expected.result.n_messages
        assert reply["total_us"] > 0  # wall time on a live backend
        assert reply["wall_s"] > 0
        assert [tuple(f) for f in reply["fires"]] == expected.fires

    def test_bad_requests_answered_not_dropped(self):
        with SessionServer() as server:
            port = server.serve_tcp()
            unknown = self.request(port, {"section": "nope"})
            bad_overhead = self.request(port, {"section": "rubik",
                                               "overhead": 7})
        assert not unknown["ok"]
        assert "unknown section" in unknown["error"]
        assert not bad_overhead["ok"]
        assert "overhead" in bad_overhead["error"]

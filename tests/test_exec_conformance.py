"""Cross-backend conformance: live actors vs the discrete simulator,
and the served multi-session mode.

The property pinned here is the PR's core claim: a *real* asyncio run
of the Section 3.2 message protocol produces the same match outcome —
per-processor activation counts, message counts, conflict-set
deliveries — as the discrete-event simulator, on arbitrary generated
traces.  The served mode must additionally keep concurrent sessions
isolated: N overlapping sessions each equal a solo run.
"""

import json
import socket

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.generate import generate_cases
from repro.exec import (ServedExecutor, SessionServer, match_signature,
                        run)
from repro.mpc import TABLE_5_1, RunConfig, simulate_config
from repro.workloads import rubik_section, weaver_section

from tests.test_simulator_properties import random_traces

OV8 = next(o for o in TABLE_5_1 if o.total_us == 8)


def signatures_match(trace, config):
    live = run(trace, config, backend="actors")
    sim = run(trace, config)
    assert match_signature(live) == match_signature(sim)


@settings(max_examples=25, deadline=None)
@given(trace=random_traces(),
       n_procs=st.integers(min_value=1, max_value=8),
       overheads=st.sampled_from(TABLE_5_1))
def test_actors_equal_sim_on_random_traces(trace, n_procs, overheads):
    """Property: identical match/fire sequences on arbitrary traces."""
    signatures_match(trace, RunConfig(n_procs=n_procs,
                                      overheads=overheads))


@pytest.mark.parametrize("case", [
    c for c in generate_cases(seed=0, budget=10) if c.family != "program"
], ids=lambda c: f"{c.family}-{c.index}")
def test_actors_equal_sim_on_adversarial_cases(case):
    """The conformance harness's own generated hard cases (cross
    products, modify bursts, empty cycles, deep chains...)."""
    signatures_match(case.trace, RunConfig(n_procs=4, overheads=OV8))


class TestServedSessions:
    def test_concurrent_sessions_are_isolated(self):
        """N overlapping sessions on different traces: each equals its
        own solo run — no shared working memory bleeds through."""
        traces = [rubik_section(), weaver_section(),
                  rubik_section(seed=3), weaver_section(seed=5)]
        config = RunConfig(n_procs=4, overheads=OV8)
        with ServedExecutor(max_sessions=2) as executor:
            handles = [executor.submit(trace, config)
                       for trace in traces]
            outcomes = [handle.result() for handle in handles]
        for trace, outcome in zip(traces, outcomes):
            assert outcome.backend == "served"
            solo = simulate_config(trace, config)
            assert match_signature(outcome) == \
                match_signature(run(trace, config))
            # Counters match the simulator field for field; only the
            # makespan differs (wall time on a live backend).
            for live_cycle, sim_cycle in zip(outcome.result.cycles,
                                             solo.cycles):
                assert live_cycle.proc_busy_us == sim_cycle.proc_busy_us
                assert live_cycle.n_messages == sim_cycle.n_messages
                assert live_cycle.network_busy_us == \
                    sim_cycle.network_busy_us
                assert live_cycle.control_busy_us == \
                    sim_cycle.control_busy_us

    def test_same_input_sessions_identical(self):
        trace = rubik_section()
        config = RunConfig(n_procs=8, overheads=OV8)
        with ServedExecutor() as executor:
            outcomes = [executor.submit(trace, config).result()
                        for _ in range(4)]
        first = match_signature(outcomes[0])
        for outcome in outcomes[1:]:
            assert match_signature(outcome) == first

    def test_session_limit_validated(self):
        with pytest.raises(ValueError, match="max_sessions"):
            SessionServer(max_sessions=0)

    def test_run_front_door(self):
        trace = rubik_section()
        config = RunConfig(n_procs=2)
        outcome = run(trace, config, backend="served")
        assert match_signature(outcome) == \
            match_signature(run(trace, config))


class TestTcpFrontEnd:
    def request(self, port, payload):
        with socket.create_connection(("127.0.0.1", port),
                                      timeout=30) as sock:
            sock.sendall(json.dumps(payload).encode() + b"\n")
            reply = b""
            while not reply.endswith(b"\n"):
                chunk = sock.recv(65536)
                if not chunk:
                    break
                reply += chunk
        return json.loads(reply)

    def test_json_line_session(self):
        with SessionServer(max_sessions=4) as server:
            port = server.serve_tcp()
            reply = self.request(port, {"section": "rubik", "procs": 8,
                                        "overhead": 8})
        assert reply["ok"]
        assert reply["section"] == "rubik"
        expected = run(rubik_section(),
                       RunConfig(n_procs=8, overheads=OV8))
        assert reply["cycles"] == len(expected.result.cycles)
        assert reply["n_messages"] == expected.result.n_messages
        assert reply["total_us"] > 0  # wall time on a live backend
        assert reply["wall_s"] > 0
        assert [tuple(f) for f in reply["fires"]] == expected.fires

    def test_bad_requests_answered_not_dropped(self):
        with SessionServer() as server:
            port = server.serve_tcp()
            unknown = self.request(port, {"section": "nope"})
            bad_overhead = self.request(port, {"section": "rubik",
                                               "overhead": 7})
        assert not unknown["ok"]
        assert "unknown section" in unknown["error"]
        assert not bad_overhead["ok"]
        assert "overhead" in bad_overhead["error"]


class TestServedObservability:
    """Satellite contract: a served deployment is probe-able — uptime,
    session/shed totals, a full stats snapshot, latency quantiles and
    a Prometheus scrape endpoint, all stdlib-only."""

    def test_probes_carry_uptime_sessions_and_shed(self):
        trace = rubik_section()
        with SessionServer(max_sessions=4) as server:
            server.submit(trace, RunConfig(n_procs=2)).result(
                timeout=60)
            health = server._probe_reply("health")
        assert health["uptime_s"] >= 0.0
        assert health["sessions"]["started"] == 1
        assert health["sessions"]["completed"] == 1
        assert health["sessions"]["failed"] == 0
        assert health["shed"] == {"total": 0, "overloaded": 0,
                                  "draining": 0}

    def test_stats_op_returns_load_and_registry(self):
        trace = rubik_section()
        with SessionServer(max_sessions=4) as server:
            port = server.serve_tcp()
            server.submit(trace, RunConfig(n_procs=2)).result(
                timeout=60)
            stats = TestTcpFrontEnd().request(port, {"op": "stats"})
        assert stats["ok"] and stats["op"] == "stats"
        assert stats["load"]["sessions"]["completed"] == 1
        # The registry is process-global: earlier tests' sessions
        # accumulate, so assert floors, not exact counts.
        latency = stats["obs"]["served.session_latency_s"]
        assert latency["count"] >= 1
        assert latency["p99"] is not None
        assert stats["obs"]["served.completed"] >= 1

    def test_metrics_endpoint_scrapes_prometheus_text(self):
        import urllib.request
        trace = rubik_section()
        with SessionServer(max_sessions=4) as server:
            metrics_port = server.serve_metrics()
            server.submit(trace, RunConfig(n_procs=2)).result(
                timeout=60)
            base = f"http://127.0.0.1:{metrics_port}"
            text = urllib.request.urlopen(
                f"{base}/metrics", timeout=30).read().decode()
            ready = json.loads(urllib.request.urlopen(
                f"{base}/ready", timeout=30).read())
        assert "# TYPE repro_served_sessions_total counter" in text
        assert "repro_served_session_latency_s_count" in text
        assert 'quantile="0.99"' in text
        assert ready["ok"] and ready["ready"]

    def test_live_trace_rejected(self):
        trace = rubik_section()
        server = SessionServer(max_sessions=2)
        try:
            with pytest.raises(ValueError, match="live tracing"):
                server.submit(trace, RunConfig(n_procs=2,
                                               live_trace=True))
        finally:
            server.stop()


class TestLoadtest:
    def test_arrival_schedule_is_deterministic(self):
        from repro.exec import arrival_offsets
        a = arrival_offsets(100, 2.0, seed=7)
        assert a == arrival_offsets(100, 2.0, seed=7)
        assert a != arrival_offsets(100, 2.0, seed=8)
        assert len(a) == 100
        assert all(x < y for x, y in zip(a, a[1:]))

    def test_accounting_balances_and_quantiles_ordered(self):
        from repro.exec import run_loadtest
        payload = run_loadtest(sessions=12, duration_s=0.3, seed=3,
                               procs=2)
        assert payload["completed"] + payload["shed"]["total"] \
            + sum(payload["errors"].values()) == 12
        latency = payload["latency_s"]
        if latency["count"]:
            assert latency["p50"] <= latency["p95"] <= latency["p99"]
            assert latency["p99"] <= latency["max"]

    def test_overload_sheds_with_reason(self):
        from repro.exec import run_loadtest
        payload = run_loadtest(sessions=40, duration_s=0.05, seed=3,
                               procs=2, max_sessions=1, max_pending=2)
        assert payload["shed"]["total"] > 0
        assert payload["shed"]["overloaded"] == payload["shed"]["total"]
        assert payload["completed"] + payload["shed"]["total"] \
            + sum(payload["errors"].values()) == 40

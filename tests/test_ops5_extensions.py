"""Tests for the OPS5 extensions: value disjunctions (``<< ... >>``)
and RHS arithmetic (``(compute ...)``)."""

import pytest

from repro.ops5 import (ComputeExpr, Constant, Disjunction, ExecutionError,
                        Interpreter, NaiveMatcher, ParseError,
                        SemanticError, Variable, parse_production,
                        parse_program, run_program)
from repro.ops5.wme import WME
from repro.ops5.matcher import match_ce
from repro.rete import ReteNetwork


class TestDisjunctionParsing:
    def test_parses_values(self):
        p = parse_production(
            "(p r (item ^color << red blue 3 >>) --> (halt))")
        operand = p.lhs[0].tests[0].operand
        assert operand == Disjunction(("red", "blue", 3))

    def test_empty_rejected(self):
        with pytest.raises((ParseError, SemanticError)):
            parse_production("(p r (item ^color << >>) --> (halt))")

    def test_variable_inside_rejected(self):
        with pytest.raises(ParseError):
            parse_production("(p r (item ^color << red <x> >>) --> (halt))")

    def test_predicate_before_disjunction_rejected(self):
        with pytest.raises(ParseError):
            parse_production("(p r (item ^size > << 1 2 >>) --> (halt))")

    def test_str_roundtrip(self):
        p = parse_production(
            "(p r (item ^color << red blue >>) --> (halt))")
        assert parse_production(str(p)) == p


class TestDisjunctionMatching:
    def ce(self):
        return parse_production(
            "(p r (item ^color << red blue >>) --> (halt))").lhs[0]

    def test_matches_member(self):
        assert match_ce(self.ce(), WME(1, "item", {"color": "red"}),
                        {}) is not None
        assert match_ce(self.ce(), WME(1, "item", {"color": "blue"}),
                        {}) is not None

    def test_rejects_non_member(self):
        assert match_ce(self.ce(), WME(1, "item", {"color": "green"}),
                        {}) is None

    def test_numeric_member_matches_across_types(self):
        ce = parse_production(
            "(p r (item ^n << 1 2 >>) --> (halt))").lhs[0]
        assert match_ce(ce, WME(1, "item", {"n": 1.0}), {}) is not None

    def test_rete_and_naive_agree(self):
        source = """
            (startup (make item ^color red) (make item ^color green))
            (p warm (item ^color << red orange >>) --> (remove 1))
        """
        naive = run_program(parse_program(source))
        rete = run_program(parse_program(source), matcher=ReteNetwork())
        assert naive.cycles == rete.cycles == 1

    def test_disjunction_is_alpha_shared(self):
        """Two productions with the same disjunction share the alpha
        pattern (it is a constant test)."""
        from repro.rete import build_network
        rules = [parse_production(
            f"(p r{i} (a ^c << x y >>) (b) --> (remove 1))")
            for i in range(2)]
        net = build_network(rules)
        assert net.alpha_pattern_count() == 2  # one for a+disj, one for b


class TestComputeParsing:
    def test_simple_expression(self):
        p = parse_production(
            "(p r (c ^n <n>) --> (modify 1 ^n (compute <n> + 1)))")
        value = p.rhs[0].assignments[0][1]
        assert isinstance(value.operand, ComputeExpr)
        assert value.operand.items == (Variable("n"), "+", Constant(1))

    def test_multi_op(self):
        p = parse_production(
            "(p r (c ^n <n>) --> (bind <x> (compute <n> + 1 * 2)))")
        assert len(p.rhs[0].value.operand.items) == 5

    def test_trailing_operator_rejected(self):
        with pytest.raises(ParseError):
            parse_production(
                "(p r (c ^n <n>) --> (bind <x> (compute <n> +)))")

    def test_unknown_operator_rejected(self):
        with pytest.raises(ParseError):
            parse_production(
                "(p r (c ^n <n>) --> (bind <x> (compute <n> ** 2)))")

    def test_unbound_variable_rejected_at_parse(self):
        with pytest.raises(SemanticError):
            parse_production(
                "(p r (c) --> (make d ^v (compute <nope> + 1)))")

    def test_unsupported_rhs_form_rejected(self):
        with pytest.raises(ParseError):
            parse_production("(p r (c) --> (make d ^v (frob 1)))")


class TestComputeEvaluation:
    def run_counter(self, expr, start=7):
        source = f"""
            (startup (make c ^n {start}))
            (p go (c ^n <n>) --> (modify 1 ^n {expr}) (halt))
        """
        interp = Interpreter()
        interp.load_program(parse_program(source))
        interp.run()
        [wme] = list(interp.wm)
        return wme.get("n")

    def test_addition(self):
        assert self.run_counter("(compute <n> + 1)") == 8

    def test_subtraction(self):
        assert self.run_counter("(compute <n> - 10)") == -3

    def test_left_to_right_no_precedence(self):
        # 7 + 1 * 2 = 16 under left-to-right evaluation.
        assert self.run_counter("(compute <n> + 1 * 2)") == 16

    def test_integer_division(self):
        assert self.run_counter("(compute <n> // 2)") == 3

    def test_modulus(self):
        assert self.run_counter("(compute <n> \\\\ 4)") == 3

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError):
            self.run_counter("(compute <n> // 0)")

    def test_symbol_operand_raises(self):
        source = """
            (startup (make c ^n hello))
            (p go (c ^n <n>) --> (modify 1 ^n (compute <n> + 1)))
        """
        interp = Interpreter()
        interp.load_program(parse_program(source))
        with pytest.raises(ExecutionError):
            interp.run()

    def test_compute_in_write(self):
        result = run_program(parse_program("""
            (startup (make c ^n 6))
            (p go (c ^n <n>) --> (write answer (compute <n> * 7))
                                 (remove 1))
        """))
        assert result.output == "answer 42"

    def test_counting_loop_terminates(self):
        """The idiom compute enables: a real counting loop."""
        result = run_program(parse_program("""
            (startup (make c ^n 0))
            (p bump (c ^n { <n> < 5 }) --> (modify 1 ^n (compute <n> + 1)))
            (p done (c ^n 5) --> (write reached 5) (halt))
        """), max_cycles=100)
        assert result.halted
        assert result.cycles == 6

"""Tests for trace-level transformations (unshare, copy-and-constraint,
dummy nodes)."""

import pytest

from repro.rete.hashing import BucketKey
from repro.trace import (CycleTrace, SectionTrace, TraceActivation,
                         copy_and_constraint_trace, insert_dummy_nodes,
                         unshare_trace, validate_trace)


def act(act_id, node, side="right", tag="+", parent=None, succ=(),
        kind="join", values=()):
    return TraceActivation(
        act_id=act_id, parent_id=parent, node_id=node, kind=kind,
        side=side, tag=tag, key=BucketKey(node, tuple(values)),
        successors=tuple(succ))


def shared_node_trace():
    """Fig 5-3 shape: node 1 (shared) feeds nodes 2 and 3."""
    cycle = CycleTrace(index=1)
    cycle.add(act(1, node=1, side="right", succ=(2, 3, 4)))
    cycle.add(act(2, node=2, side="left", parent=1))
    cycle.add(act(3, node=3, side="left", parent=1))
    cycle.add(act(4, node=2, side="left", parent=1))
    return SectionTrace(name="shared", cycles=[cycle])


class TestUnshare:
    def test_trace_validates_before_and_after(self):
        trace = shared_node_trace()
        assert validate_trace(trace) == []
        out = unshare_trace(trace)
        assert validate_trace(out) == []

    def test_activation_at_shared_node_is_replicated(self):
        out = unshare_trace(shared_node_trace())
        cycle = out.cycles[0]
        roots = cycle.roots()
        assert len(roots) == 2  # one copy per output branch
        # Copies live at fresh node ids with the same key values.
        assert len({r.node_id for r in roots}) == 2

    def test_successors_partition_by_branch(self):
        out = unshare_trace(shared_node_trace())
        cycle = out.cycles[0]
        succ_counts = sorted(r.n_successors for r in cycle.roots())
        assert succ_counts == [1, 2]  # node-3 branch, node-2 branch

    def test_total_downstream_work_preserved(self):
        trace = shared_node_trace()
        out = unshare_trace(trace)
        # Non-root activations (the real downstream work) are unchanged.
        before = sum(1 for c in trace for a in c if not a.is_root)
        after = sum(1 for c in out for a in c if not a.is_root)
        assert after == before

    def test_single_branch_node_untouched(self):
        cycle = CycleTrace(index=1)
        cycle.add(act(1, node=1, succ=(2,)))
        cycle.add(act(2, node=2, side="left", parent=1))
        trace = SectionTrace(name="mono", cycles=[cycle])
        out = unshare_trace(trace)
        assert len(out.cycles[0]) == 2
        assert {a.node_id for a in out.cycles[0]} == {1, 2}

    def test_explicit_node_selection(self):
        trace = shared_node_trace()
        # Selecting a node with a single branch (or absent) is a no-op.
        out = unshare_trace(trace, node_ids=[99])
        assert len(out.cycles[0]) == len(trace.cycles[0])

    def test_mid_chain_parent_duplication(self):
        """When the unshared node is fed by a parent, the parent's
        successor count grows: it must generate one token per copy."""
        cycle = CycleTrace(index=1)
        cycle.add(act(1, node=9, succ=(2,)))
        cycle.add(act(2, node=1, side="left", parent=1, succ=(3, 4)))
        cycle.add(act(3, node=2, side="left", parent=2))
        cycle.add(act(4, node=3, side="left", parent=2))
        trace = SectionTrace(name="chain", cycles=[cycle])
        out = unshare_trace(trace, node_ids=[1])
        assert validate_trace(out) == []
        [root] = out.cycles[0].roots()
        assert root.n_successors == 2  # was 1; duplicated work


class TestCopyAndConstraint:
    def hot_bucket_trace(self, n=8):
        """All activations of node 5 share a single (valueless) bucket —
        the Tourney cross-product shape."""
        cycle = CycleTrace(index=1)
        for i in range(n):
            cycle.add(act(i + 1, node=5, side="left",
                          tag="+" if i % 2 == 0 else "-"))
        return SectionTrace(name="hot", cycles=[cycle])

    def test_validates(self):
        out = copy_and_constraint_trace(self.hot_bucket_trace(), 5, 4)
        assert validate_trace(out) == []

    def test_spreads_over_k_buckets(self):
        out = copy_and_constraint_trace(self.hot_bucket_trace(8), 5, 4)
        keys = {a.key for c in out for a in c}
        assert len(keys) == 4

    def test_round_robin_is_balanced(self):
        out = copy_and_constraint_trace(self.hot_bucket_trace(8), 5, 4)
        per_node = {}
        for a in out.cycles[0]:
            per_node[a.node_id] = per_node.get(a.node_id, 0) + 1
        assert sorted(per_node.values()) == [2, 2, 2, 2]

    def test_activation_count_unchanged(self):
        trace = self.hot_bucket_trace(8)
        out = copy_and_constraint_trace(trace, 5, 4)
        assert out.total_activations() == trace.total_activations()

    def test_custom_assignment(self):
        out = copy_and_constraint_trace(
            self.hot_bucket_trace(4), 5, 2,
            assignment=lambda a: a.act_id)  # odd/even split
        nodes = [a.node_id for a in out.cycles[0]]
        assert nodes[0] != nodes[1] and nodes[0] == nodes[2]

    def test_other_nodes_untouched(self):
        cycle = CycleTrace(index=1)
        cycle.add(act(1, node=5))
        cycle.add(act(2, node=7, values=("x",)))
        trace = SectionTrace(name="mixed", cycles=[cycle])
        out = copy_and_constraint_trace(trace, 5, 2)
        other = [a for a in out.cycles[0] if a.key.values == ("x",)]
        assert other[0].node_id == 7

    def test_rejects_k_zero(self):
        with pytest.raises(ValueError):
            copy_and_constraint_trace(self.hot_bucket_trace(), 5, 0)


class TestDummyNodes:
    def bottleneck_trace(self, fanout=12):
        """One left activation generating many successors (Weaver small
        cycles, Section 5.2.1)."""
        cycle = CycleTrace(index=1)
        cycle.add(act(1, node=1, side="left",
                      succ=tuple(range(2, 2 + fanout))))
        for i in range(fanout):
            cycle.add(act(2 + i, node=10 + (i % 3), side="left", parent=1))
        return SectionTrace(name="bottleneck", cycles=[cycle])

    def test_validates(self):
        out = insert_dummy_nodes(self.bottleneck_trace(), 1, parts=3)
        assert validate_trace(out) == []

    def test_bottleneck_fanout_reduced(self):
        out = insert_dummy_nodes(self.bottleneck_trace(12), 1, parts=3)
        [root] = out.cycles[0].roots()
        assert root.n_successors == 3  # hands off to 3 dummies

    def test_dummies_carry_the_original_successors(self):
        out = insert_dummy_nodes(self.bottleneck_trace(12), 1, parts=3)
        cycle = out.cycles[0]
        [root] = cycle.roots()
        dummy_succ = sum(cycle.activations[d].n_successors
                         for d in root.successors)
        assert dummy_succ == 12

    def test_activation_count_grows_by_dummies(self):
        trace = self.bottleneck_trace(12)
        out = insert_dummy_nodes(trace, 1, parts=3)
        assert out.total_activations() == trace.total_activations() + 3

    def test_single_successor_not_split(self):
        trace = self.bottleneck_trace(1)
        out = insert_dummy_nodes(trace, 1, parts=2)
        assert out.total_activations() == trace.total_activations()

    def test_rejects_parts_below_two(self):
        with pytest.raises(ValueError):
            insert_dummy_nodes(self.bottleneck_trace(), 1, parts=1)

"""Unit coverage for the termination-detection cost models."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpc import (TABLE_5_1, ZERO_OVERHEADS, OverheadModel,
                       TerminationScheme, apply_termination,
                       detection_delay, simulate,
                       termination_overhead_fraction)
from repro.workloads import weaver_section

NECTAR = TABLE_5_1[1]  # send 5, recv 3, latency 0.5
HOP = NECTAR.send_us + NECTAR.latency_us + NECTAR.recv_us

schemes = st.sampled_from(list(TerminationScheme))
overhead_rows = st.sampled_from((ZERO_OVERHEADS,) + TABLE_5_1)


class TestDetectionDelay:
    def test_ideal_is_free(self):
        for overheads in (ZERO_OVERHEADS,) + TABLE_5_1:
            assert detection_delay(TerminationScheme.IDEAL, 32,
                                   overheads) == 0.0

    def test_barrier_serializes_receives_at_control(self):
        # One send+latency to get the first report in, then the control
        # processor consumes the P reports back to back.
        delay = detection_delay(TerminationScheme.BARRIER, 8, NECTAR)
        assert delay == NECTAR.send_us + NECTAR.latency_us \
            + 8 * NECTAR.recv_us

    def test_barrier_free_messages_are_free(self):
        # hop == 0 means reports cost nothing even serialized.
        assert detection_delay(TerminationScheme.BARRIER, 32,
                               ZERO_OVERHEADS) == 0.0

    def test_ring_is_one_clean_round_plus_report(self):
        delay = detection_delay(TerminationScheme.RING, 8, NECTAR)
        assert delay == (8 + 1) * HOP

    def test_tree_prices_log2_levels_plus_report(self):
        for n_procs in (2, 3, 4, 5, 8, 32):
            levels = math.ceil(math.log2(n_procs))
            assert detection_delay(TerminationScheme.TREE, n_procs,
                                   NECTAR) == (levels + 1) * HOP

    def test_single_processor_degenerate_cases(self):
        # One processor: no merging to do; the tree and ring collapse
        # to a single report, the barrier to one send/recv.
        assert detection_delay(TerminationScheme.TREE, 1, NECTAR) == HOP
        assert detection_delay(TerminationScheme.RING, 1, NECTAR) \
            == 2 * HOP
        assert detection_delay(TerminationScheme.BARRIER, 1, NECTAR) \
            == NECTAR.send_us + NECTAR.latency_us + NECTAR.recv_us

    def test_rejects_nonpositive_processor_counts(self):
        for scheme in TerminationScheme:
            with pytest.raises(ValueError):
                detection_delay(scheme, 0, NECTAR)
            with pytest.raises(ValueError):
                detection_delay(scheme, -3, NECTAR)

    @given(scheme=schemes, n_procs=st.integers(1, 64),
           overheads=overhead_rows)
    def test_delay_is_never_negative(self, scheme, n_procs, overheads):
        assert detection_delay(scheme, n_procs, overheads) >= 0.0

    @given(n_procs=st.integers(2, 64), overheads=overhead_rows)
    def test_tree_never_beats_nor_loses_to_structure(self, n_procs,
                                                     overheads):
        # The tree's latency grows like log P, the ring's like P: for
        # P >= 2 the tree is never slower than the ring.
        tree = detection_delay(TerminationScheme.TREE, n_procs, overheads)
        ring = detection_delay(TerminationScheme.RING, n_procs, overheads)
        assert tree <= ring


class TestApplyTermination:
    @pytest.fixture(scope="class")
    def result(self):
        return simulate(weaver_section(), n_procs=8, overheads=NECTAR)

    def test_adds_delay_to_every_cycle(self, result):
        priced = apply_termination(result, TerminationScheme.RING, NECTAR)
        delay = detection_delay(TerminationScheme.RING, 8, NECTAR)
        assert len(priced.cycles) == len(result.cycles)
        for before, after in zip(result.cycles, priced.cycles):
            assert after.makespan_us == before.makespan_us + delay
        assert priced.total_us == pytest.approx(
            result.total_us + len(result.cycles) * delay)

    def test_only_makespan_changes(self, result):
        priced = apply_termination(result, TerminationScheme.TREE, NECTAR)
        for before, after in zip(result.cycles, priced.cycles):
            assert after.n_messages == before.n_messages
            assert after.proc_busy_us == before.proc_busy_us
            assert after.proc_activations == before.proc_activations

    def test_ideal_is_identity_on_totals(self, result):
        priced = apply_termination(result, TerminationScheme.IDEAL,
                                   NECTAR)
        assert priced.total_us == result.total_us

    def test_overhead_fraction_in_unit_interval(self, result):
        for scheme in TerminationScheme:
            fraction = termination_overhead_fraction(result, scheme,
                                                     NECTAR)
            assert 0.0 <= fraction < 1.0

    def test_overhead_fraction_matches_definition(self, result):
        fraction = termination_overhead_fraction(
            result, TerminationScheme.BARRIER, NECTAR)
        priced = apply_termination(result, TerminationScheme.BARRIER,
                                   NECTAR)
        assert fraction == pytest.approx(
            1.0 - result.total_us / priced.total_us)

    def test_ideal_fraction_is_zero(self, result):
        assert termination_overhead_fraction(
            result, TerminationScheme.IDEAL, NECTAR) == 0.0

"""Shared test configuration: hypothesis profiles and tier markers.

Three profiles, selected with ``HYPOTHESIS_PROFILE`` (default ``ci``):

* ``ci`` — the PR gate: moderate example counts, no deadline (CI
  runners stall unpredictably; a wall-clock deadline makes good tests
  flaky without making bad ones fail).
* ``dev`` — quick local iteration.
* ``nightly`` — the scheduled deep run: several times the examples,
  still no deadline.

Property tests should NOT carry their own ``@settings`` decorators for
example counts or deadlines — the profile is the single knob.  A test
may still use ``@settings`` for semantic options (e.g. suppressing a
specific health check).
"""

import os

from hypothesis import settings

settings.register_profile("ci", max_examples=60, deadline=None)
settings.register_profile("dev", max_examples=20, deadline=None)
settings.register_profile("nightly", max_examples=400, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))

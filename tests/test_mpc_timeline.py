"""Tests of the opt-in timeline recorder and its exports.

The contract under test: a recorder never changes simulation results
(bit-identical SimResult, fault-free and faulty), and the spans it
produces reconcile exactly with the aggregate counters — per-processor
busy sums, control busy, network busy, and the makespan.
"""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpc import (FaultModel, OverheadModel, ProtocolModel,
                       RunConfig, StallWindow, TimelineRecorder,
                       chrome_trace, gantt, gantt_section, simulate,
                       simulate_config, timeline_jsonl,
                       write_chrome_trace)
from repro.mpc.costmodel import TABLE_5_1
from repro.mpc.timeline import CONTROL, NETWORK, CATEGORIES
from repro.workloads import weaver_section

from tests.test_simulator_properties import random_traces

OV16 = next(o for o in TABLE_5_1 if o.total_us == 16)


@pytest.fixture(scope="module")
def weaver():
    return weaver_section()


def recorded(trace, n_procs, **kwargs):
    recorder = TimelineRecorder()
    result = simulate_config(trace, RunConfig(n_procs=n_procs,
                                              recorder=recorder,
                                              **kwargs))
    return result, recorder.timeline


class TestBitIdentity:
    def test_fault_free(self, weaver):
        base = simulate(weaver, n_procs=8, overheads=OV16)
        result, timeline = recorded(weaver, 8, overheads=OV16)
        assert result == base
        assert len(timeline.cycles) == len(base.cycles)

    def test_faulty(self, weaver):
        faults = FaultModel(seed=11, loss_prob=0.15, dup_prob=0.05,
                            jitter_us=3.0)
        base = simulate_config(weaver, RunConfig(
            n_procs=8, overheads=OV16, faults=faults))
        result, timeline = recorded(weaver, 8, overheads=OV16,
                                    faults=faults)
        assert result == base
        assert timeline.faulty

    def test_recorder_reusable(self, weaver):
        recorder = TimelineRecorder()
        simulate_config(weaver, RunConfig(n_procs=2, overheads=OV16,
                                          recorder=recorder))
        first = recorder.timeline
        simulate_config(weaver, RunConfig(n_procs=4, overheads=OV16,
                                          recorder=recorder))
        assert recorder.timeline is not first
        assert recorder.timeline.n_procs == 4


class TestReconciliation:
    """Span totals must equal the aggregate counters, bit for bit."""

    @pytest.mark.parametrize("n_procs", [1, 4, 16])
    def test_fault_free_exact(self, weaver, n_procs):
        result, timeline = recorded(weaver, n_procs, overheads=OV16)
        for cycle_timeline, cycle_result in zip(timeline.cycles,
                                                result.cycles):
            cycle_timeline.reconcile(cycle_result)

    def test_faulty_exact_without_jitter(self, weaver):
        # All protocol constants are multiples of 0.5 us, so even the
        # ack/retransmit machinery reconciles exactly — only jitter
        # introduces non-dyadic floats.
        faults = FaultModel(seed=5, loss_prob=0.2, dup_prob=0.1)
        result, timeline = recorded(weaver, 8, overheads=OV16,
                                    faults=faults,
                                    protocol=ProtocolModel())
        assert result.retransmits > 0
        for cycle_timeline, cycle_result in zip(timeline.cycles,
                                                result.cycles):
            cycle_timeline.reconcile(cycle_result)

    def test_faulty_with_jitter_close(self, weaver):
        faults = FaultModel(seed=5, loss_prob=0.1, jitter_us=2.5)
        result, timeline = recorded(weaver, 8, overheads=OV16,
                                    faults=faults)
        for cycle_timeline, cycle_result in zip(timeline.cycles,
                                                result.cycles):
            cycle_timeline.reconcile(cycle_result, exact=False)

    def test_reconcile_detects_tampering(self, weaver):
        result, timeline = recorded(weaver, 4, overheads=OV16)
        cycle = timeline.cycles[0]
        cycle.spans[0] = type(cycle.spans[0])(
            category=cycle.spans[0].category, proc=cycle.spans[0].proc,
            start_us=cycle.spans[0].start_us,
            end_us=cycle.spans[0].end_us + 1.0)
        with pytest.raises(ValueError):
            cycle.reconcile(result.cycles[0])

    def test_stall_spans_are_not_busy(self, weaver):
        faults = FaultModel(seed=0, stalls=(
            StallWindow(proc=0, start_us=0.0, end_us=500.0),))
        result, timeline = recorded(weaver, 4, overheads=OV16,
                                    faults=faults)
        stall_spans = [s for c in timeline.cycles for s in c.spans
                      if s.category == "stall"]
        assert stall_spans
        assert not any(s.is_busy for s in stall_spans)
        for cycle_timeline, cycle_result in zip(timeline.cycles,
                                                result.cycles):
            cycle_timeline.reconcile(cycle_result)


@given(trace=random_traces(),
       n_procs=st.integers(min_value=1, max_value=12))
def test_recorder_never_changes_results(trace, n_procs):
    """Property: recording is invisible to the simulation physics."""
    overheads = OverheadModel(send_us=5.0, recv_us=3.0)
    base = simulate(trace, n_procs=n_procs, overheads=overheads)
    recorder = TimelineRecorder()
    result = simulate_config(trace, RunConfig(
        n_procs=n_procs, overheads=overheads, recorder=recorder))
    assert result == base
    for cycle_timeline, cycle_result in zip(recorder.timeline.cycles,
                                            result.cycles):
        cycle_timeline.reconcile(cycle_result)


@given(trace=random_traces(),
       n_procs=st.integers(min_value=1, max_value=8),
       loss=st.sampled_from([0.0, 0.1, 0.5]))
def test_recorder_never_changes_fault_results(trace, n_procs, loss):
    faults = FaultModel(seed=1, loss_prob=loss, dup_prob=0.1)
    base = simulate_config(trace, RunConfig(
        n_procs=n_procs, overheads=OV16, faults=faults))
    recorder = TimelineRecorder()
    result = simulate_config(trace, RunConfig(
        n_procs=n_procs, overheads=OV16, faults=faults,
        recorder=recorder))
    assert result == base
    if not faults.is_null:
        for cycle_timeline, cycle_result in zip(recorder.timeline.cycles,
                                                result.cycles):
            cycle_timeline.reconcile(cycle_result)


class TestExports:
    def test_chrome_trace_round_trips(self, weaver, tmp_path):
        _, timeline = recorded(weaver, 4, overheads=OV16)
        path = tmp_path / "trace.json"
        write_chrome_trace(timeline, path)
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data == chrome_trace(timeline)

    def test_chrome_trace_schema(self, weaver):
        _, timeline = recorded(weaver, 4, overheads=OV16)
        data = chrome_trace(timeline)
        events = data["traceEvents"]
        assert isinstance(events, list) and events
        names = {e["name"] for e in events if e["ph"] == "M"}
        assert "process_name" in names and "thread_name" in names
        for event in events:
            assert event["ph"] in ("M", "X")
            if event["ph"] == "X":
                assert event["ts"] >= 0 and event["dur"] >= 0
                assert isinstance(event["tid"], int)
                # every duration event names a known category or cycle
                assert event["cat"] == "cycle" or \
                    event["name"] in CATEGORIES

    def test_chrome_trace_cycles_do_not_overlap(self, weaver):
        _, timeline = recorded(weaver, 4, overheads=OV16)
        offsets = timeline.cycle_offsets_us()
        for offset, cycle in zip(offsets, timeline.cycles):
            for span in cycle.spans:
                assert offset + span.end_us <= \
                    offset + cycle.makespan_us + 1e-9

    def test_jsonl_lines_parse(self, weaver):
        _, timeline = recorded(weaver, 4, overheads=OV16)
        lines = list(timeline_jsonl(timeline))
        assert len(lines) == sum(len(c.spans) for c in timeline.cycles)
        for line in lines:
            record = json.loads(line)
            assert record["category"] in CATEGORIES
            assert record["end_us"] >= record["start_us"]

    def test_gantt_smoke(self, weaver):
        _, timeline = recorded(weaver, 4, overheads=OV16)
        chart = gantt(timeline.cycles[0], width=40)
        lines = chart.splitlines()
        # header + control + 4 procs + network + legend
        assert len(lines) == 8
        assert "control" in chart and "proc 0" in chart
        assert "network" in chart

    def test_gantt_section_selects_cycles(self, weaver):
        _, timeline = recorded(weaver, 2, overheads=OV16)
        indices = [c.index for c in timeline.cycles[:2]]
        out = gantt_section(timeline, width=32, cycles=indices)
        for index in indices:
            assert f"cycle {index}:" in out
        with pytest.raises(ValueError):
            gantt_section(timeline, cycles=[999])

    def test_gantt_rejects_narrow_width(self, weaver):
        _, timeline = recorded(weaver, 2, overheads=OV16)
        with pytest.raises(ValueError):
            gantt(timeline.cycles[0], width=4)


class TestTimelineStructure:
    def test_rows_are_well_formed(self, weaver):
        _, timeline = recorded(weaver, 4, overheads=OV16)
        for cycle in timeline.cycles:
            for span in cycle.spans:
                assert span.end_us >= span.start_us
                assert span.proc in (CONTROL, NETWORK) or \
                    0 <= span.proc < cycle.n_procs
                assert span.category in CATEGORIES

    def test_envelopes_cover_activations(self, weaver):
        _, timeline = recorded(weaver, 4, overheads=OV16)
        for trace_cycle, cycle in zip(weaver, timeline.cycles):
            non_terminal_roots = [a for a in trace_cycle
                                  if a.kind != "terminal"
                                  or a.parent_id is None]
            assert len(cycle.envelopes) == len(non_terminal_roots)

    def test_total_and_offsets(self, weaver):
        _, timeline = recorded(weaver, 4, overheads=OV16)
        offsets = timeline.cycle_offsets_us()
        assert offsets[0] == 0.0
        assert timeline.total_us == pytest.approx(
            offsets[-1] + timeline.cycles[-1].makespan_us)
        assert timeline.longest_cycle().makespan_us == \
            max(c.makespan_us for c in timeline.cycles)

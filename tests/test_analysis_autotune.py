"""Tests for the autotune loop (diagnose -> transform -> measure)."""

import pytest

from repro.analysis import autotune
from repro.trace import validate_trace
from repro.workloads import (rubik_section, tourney_section,
                             weaver_section)
from repro.workloads.tourney import CP_NODE
from repro.workloads.weaver import HOT_NODE


class TestWeaver:
    def test_applies_unsharing_to_hot_node(self):
        result = autotune(weaver_section(), n_procs=16)
        assert any(f"unshare node {HOT_NODE}" in a
                   for a in result.applied)

    def test_substantial_improvement(self):
        result = autotune(weaver_section(), n_procs=16)
        assert result.improvement > 1.3

    def test_small_cycles_reported_as_skipped(self):
        result = autotune(weaver_section(), n_procs=16)
        assert any("small-cycle" in s for s in result.skipped)

    def test_tuned_trace_valid(self):
        result = autotune(weaver_section(), n_procs=16)
        assert validate_trace(result.trace) == []


class TestTourney:
    def test_applies_cc_to_cross_product_node(self):
        result = autotune(tourney_section(), n_procs=16)
        assert any(f"copy-and-constraint node {CP_NODE}" in a
                   for a in result.applied)

    def test_cascading_rounds_find_secondary_hot_spots(self):
        """Splitting the cp node exposes the stage-2 buckets; a second
        round must pick them up."""
        one_round = autotune(tourney_section(), n_procs=16,
                             max_rounds=1)
        many_rounds = autotune(tourney_section(), n_procs=16,
                               max_rounds=3)
        assert len(many_rounds.applied) > len(one_round.applied)
        assert many_rounds.tuned_speedup > one_round.tuned_speedup

    def test_large_improvement_with_cascade(self):
        result = autotune(tourney_section(), n_procs=16)
        assert result.improvement > 1.5

    def test_multiple_modify_skipped(self):
        result = autotune(tourney_section(), n_procs=16)
        assert any("multiple-modify" in s for s in result.skipped)


class TestGeneral:
    def test_initial_findings_reported(self):
        result = autotune(weaver_section(), n_procs=16)
        assert any(f.kind == "bottleneck-generator"
                   for f in result.findings)

    def test_nodes_transformed_at_most_once(self):
        result = autotune(tourney_section(), n_procs=16)
        nodes = [a.split()[2] for a in result.applied]
        assert len(nodes) == len(set(nodes))

    def test_summary_mentions_speedups(self):
        result = autotune(rubik_section(), n_procs=16)
        text = result.summary()
        assert "->" in text and "improvement" in text

    def test_clean_trace_untouched(self):
        """A perfectly spread synthetic section has nothing to fix."""
        from repro.workloads import SectionSpec, generate_section
        trace = generate_section(SectionSpec(
            name="clean", right_activations=400, left_activations=200,
            active_left_buckets=64, left_skew=0.0,
            terminals_per_cycle=0))
        result = autotune(trace, n_procs=8)
        assert result.applied == []
        assert result.improvement == pytest.approx(1.0)

    def test_max_rounds_zero_only_measures(self):
        result = autotune(tourney_section(), n_procs=16, max_rounds=0)
        assert result.applied == []
        assert result.tuned_speedup == \
            pytest.approx(result.baseline_speedup)

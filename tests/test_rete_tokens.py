"""Unit tests for Rete tokens and the bucket-key hash."""

import pytest

from repro.ops5.wme import WME
from repro.rete import (EMPTY_TOKEN, BucketKey, Token, bucket_index, fnv1a,
                        make_unit_token, stable_hash)


def w(i, **attrs):
    return WME(i, "thing", attrs)


class TestToken:
    def test_empty_token(self):
        assert len(EMPTY_TOKEN) == 0
        assert EMPTY_TOKEN.ids() == ()

    def test_unit_token(self):
        t = make_unit_token(w(3, v=1), {"x": 1})
        assert t.ids() == (3,)
        assert t.binding("x") == 1

    def test_extend_appends_wme_and_merges_bindings(self):
        t = make_unit_token(w(1, v="a"), {"x": "a"})
        t2 = t.extend(w(2, u="b"), {"y": "b"})
        assert t2.ids() == (1, 2)
        assert t2.binding("x") == "a"
        assert t2.binding("y") == "b"

    def test_extend_without_bindings_reuses_tuple(self):
        t = make_unit_token(w(1), {"x": 1})
        t2 = t.extend(w(2), {})
        assert t2.bindings is t.bindings

    def test_unbound_variable_raises(self):
        t = make_unit_token(w(1), {"x": 1})
        with pytest.raises(KeyError):
            t.binding("nope")

    def test_equality_by_wme_ids_only(self):
        # Bindings are derived data; identity is the wme-id list
        # (paper Section 2.2), which is what minus tokens match on.
        a = Token(wmes=(w(1, v=1),), bindings=(("x", 1),))
        b = Token(wmes=(w(1, v=1),), bindings=(("y", 2),))
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_different_wmes(self):
        a = make_unit_token(w(1), {})
        b = make_unit_token(w(2), {})
        assert a != b

    def test_bindings_dict(self):
        t = make_unit_token(w(1), {"x": 1, "a": 2})
        assert t.bindings_dict() == {"x": 1, "a": 2}

    def test_extend_interns_symbols(self):
        # Binding names and string values are interned so repeated
        # symbols share one object across tokens.
        value = "".join(["sy", "mbol-", "runtime"])  # defeat literal pool
        a = make_unit_token(w(1), {"x": value})
        b = make_unit_token(w(2), {"x": "".join(["sy", "mbol-",
                                                 "runtime"])})
        assert a.bindings[0][1] is b.bindings[0][1]
        assert a.bindings[0][0] is b.bindings[0][0]

    def test_extend_interning_skips_non_strings(self):
        class Sym(str):
            pass
        t = make_unit_token(w(1), {"x": Sym("keep-type"), "y": 3})
        assert type(t.binding("x")) is Sym
        assert t.binding("y") == 3


class TestBucketKeyInterning:
    def test_values_interned_on_construction(self):
        value = "".join(["bu", "cket-", "symbol"])
        a = BucketKey(1, (value, 7))
        b = BucketKey(1, ("".join(["bu", "cket-", "symbol"]), 7))
        assert a == b
        assert a.values[0] is b.values[0]
        assert a.values[1] == 7


class TestStableHash:
    def test_deterministic(self):
        k = BucketKey(5, ("a", 1))
        assert stable_hash(k) == stable_hash(BucketKey(5, ("a", 1)))

    def test_node_id_matters(self):
        assert stable_hash(BucketKey(1, ("a",))) != \
            stable_hash(BucketKey(2, ("a",)))

    def test_values_matter(self):
        assert stable_hash(BucketKey(1, ("a",))) != \
            stable_hash(BucketKey(1, ("b",)))

    def test_symbol_vs_number_distinguished(self):
        assert stable_hash(BucketKey(1, ("1",))) != \
            stable_hash(BucketKey(1, (1,)))

    def test_int_and_integral_float_collide(self):
        # OPS5 treats 1 and 1.0 as equal, so they must share a bucket.
        assert stable_hash(BucketKey(1, (1,))) == \
            stable_hash(BucketKey(1, (1.0,)))

    def test_known_fnv_vector(self):
        # FNV-1a 64-bit test vector for empty input is the offset basis.
        assert fnv1a(b"") == 0xCBF29CE484222325

    def test_bucket_index_range(self):
        for node in range(20):
            idx = bucket_index(BucketKey(node, ("v",)), 7)
            assert 0 <= idx < 7

    def test_bucket_index_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bucket_index(BucketKey(1, ()), 0)

    def test_spread_over_buckets(self):
        # 1000 distinct keys into 32 buckets: no bucket should be wildly
        # overloaded (sanity check on the hash quality).
        counts = [0] * 32
        for i in range(1000):
            counts[bucket_index(BucketKey(7, (i,)), 32)] += 1
        assert max(counts) < 4 * (1000 // 32)

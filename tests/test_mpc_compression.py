"""Round compression, the active-set loop and the streaming path.

The contract under test is strong: with ``compress_rounds=True`` the
simulator must produce results *bit-identical* to the exact dense loop
(and to the frozen reference mirror) after RLE expansion — on any
trace, any seed, any processor count.  Compression is a representation
change, never a model change.
"""

import dataclasses
import io
import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpc import (CostModel, RunConfig, SparseProcArray,
                       TimelineRecorder, attribute_timeline,
                       iter_cycle_results, simulate_config, total_time_us)
from repro.mpc._reference import simulate_reference
from repro.mpc.costmodel import TABLE_5_1, ZERO_OVERHEADS
from repro.mpc.faults import FaultModel, StallWindow
from repro.rete.hashing import BucketKey
from repro.trace import (CycleTrace, SectionTrace, TraceActivation,
                         validate_trace)
from repro.trace.events import IdleRun, materialize
from repro.trace.format import FileTraceStream, save_entries
from repro.workloads import StreamSpec, SyntheticStream


def _identical(a, b):
    """Bitwise equality via the same lens the oracles use."""
    return dataclasses.asdict(a) == dataclasses.asdict(b)


def _small_trace(idle_runs=((2, 3), (7, 2)), n_active=4):
    """A few active cycles with explicit empty stretches between them."""
    trace = SectionTrace(name="small")
    idle = dict(idle_runs)
    index = 1
    made = 0
    while made < n_active:
        if index in idle:
            for j in range(idle[index]):
                trace.cycles.append(CycleTrace(index=index + j))
            index += idle.pop(index)
            continue
        cycle = CycleTrace(index=index)
        for act_id in (1, 2):
            cycle.add(TraceActivation(
                act_id=act_id, parent_id=None, node_id=act_id,
                kind="join", side="right" if act_id == 1 else "left",
                tag="+", key=BucketKey(act_id, (act_id,)),
                successors=()))
        term = TraceActivation(
            act_id=3, parent_id=1, node_id=1, kind="terminal",
            side="left", tag="+", key=BucketKey(1, (1,)), successors=())
        cycle.add(term)
        cycle.activations[1].successors = (3,)
        trace.cycles.append(cycle)
        index += 1
        made += 1
    assert validate_trace(trace) == []
    return trace


# -- bit-exactness -----------------------------------------------------------

@pytest.mark.parametrize("n_procs", [1, 3, 16])
@pytest.mark.parametrize("overheads", TABLE_5_1)
def test_compressed_matches_exact_and_reference(n_procs, overheads):
    trace = _small_trace()
    exact = simulate_config(trace, RunConfig(
        n_procs=n_procs, overheads=overheads))
    compressed = simulate_config(trace, RunConfig(
        n_procs=n_procs, overheads=overheads, compress_rounds=True))
    reference = simulate_reference(trace, n_procs, overheads=overheads)
    assert _identical(compressed.expanded(), exact)
    assert _identical(exact, reference)
    assert compressed.total_us == exact.total_us
    assert compressed.n_messages == exact.n_messages
    # The RLE actually bit: fewer stored cycles than simulated ones.
    assert len(compressed.cycles) < compressed.n_cycles == len(trace.cycles)


def test_compressed_with_search_costs():
    """The deletion-search tracker is causal state; compression must
    charge idle cycles through it identically."""
    trace = _small_trace()
    costs = CostModel(delete_search_us=2.0)
    exact = simulate_config(trace, RunConfig(n_procs=4, costs=costs))
    compressed = simulate_config(
        trace, RunConfig(n_procs=4, costs=costs, compress_rounds=True))
    assert _identical(compressed.expanded(), exact)


def test_p1_degenerate():
    trace = _small_trace()
    exact = simulate_config(trace, RunConfig(n_procs=1))
    compressed = simulate_config(
        trace, RunConfig(n_procs=1, compress_rounds=True))
    assert _identical(compressed.expanded(), exact)


def test_all_idle_section_collapses_to_one_run():
    trace = SectionTrace(name="idle", cycles=[
        CycleTrace(index=i) for i in range(1, 51)])
    compressed = simulate_config(
        trace, RunConfig(n_procs=8, compress_rounds=True))
    assert len(compressed.cycles) == 1
    assert compressed.repeats == [50]
    exact = simulate_config(trace, RunConfig(n_procs=8))
    assert _identical(compressed.expanded(), exact)
    assert compressed.total_us == exact.total_us


def test_empty_trace():
    trace = SectionTrace(name="empty", cycles=[])
    compressed = simulate_config(
        trace, RunConfig(n_procs=4, compress_rounds=True))
    assert compressed.cycles == [] and compressed.n_cycles == 0
    assert compressed.total_us == 0.0


def test_compression_off_by_default():
    result = simulate_config(_small_trace(), RunConfig(n_procs=4))
    assert result.repeats is None


def test_compress_composes_with_fault_injection():
    """Compression no longer refuses faults: draws are keyed to absolute
    cycle indices, so the compressed run matches the exact loop bitwise."""
    trace = _small_trace()
    faults = FaultModel(seed=11, loss_prob=0.05, dup_prob=0.02,
                        stalls=(StallWindow(proc=0, start_us=0.0,
                                            end_us=50.0, cycle=3),))
    exact = simulate_config(trace, RunConfig(n_procs=4, faults=faults))
    compressed = simulate_config(
        trace, RunConfig(n_procs=4, compress_rounds=True, faults=faults))
    assert _identical(compressed.expanded(), exact)
    assert compressed.total_us == exact.total_us
    assert compressed.n_messages == exact.n_messages
    # A null fault model never perturbs a run either way.
    config = RunConfig(n_procs=4, compress_rounds=True,
                       faults=FaultModel())
    assert not config.faulty


def test_stall_window_untouched_without_compression():
    """The fault path is unchanged: a stall overlapping an idle stretch
    still lands on the exact per-cycle loop (compression defaults off)."""
    trace = _small_trace()
    faults = FaultModel(stalls=(StallWindow(proc=0, start_us=0.0,
                                            end_us=100.0, cycle=3),))
    result = simulate_config(trace, RunConfig(n_procs=4, faults=faults))
    assert result.repeats is None
    assert result.n_cycles == len(trace.cycles)


# -- hypothesis: compression is invisible at any seed ------------------------

@st.composite
def traces_with_idle(draw):
    """Random small forests with random idle stretches interleaved."""
    trace = SectionTrace(name="random")
    index = 1
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        idle = draw(st.integers(min_value=0, max_value=4))
        for j in range(idle):
            trace.cycles.append(CycleTrace(index=index + j))
        index += idle
        cycle = CycleTrace(index=index)
        next_id = 1
        parents = []
        for _ in range(draw(st.integers(min_value=1, max_value=5))):
            node = draw(st.integers(min_value=1, max_value=6))
            act = TraceActivation(
                act_id=next_id, parent_id=None, node_id=node,
                kind="join",
                side=draw(st.sampled_from(["left", "right"])),
                tag=draw(st.sampled_from(["+", "-"])),
                key=BucketKey(node, (draw(st.integers(0, 3)),)),
                successors=())
            cycle.add(act)
            parents.append(act)
            next_id += 1
        for _ in range(draw(st.integers(min_value=0, max_value=6))):
            parent = draw(st.sampled_from(parents))
            node = draw(st.integers(min_value=1, max_value=6))
            kind = draw(st.sampled_from(["join", "terminal"]))
            act = TraceActivation(
                act_id=next_id, parent_id=parent.act_id, node_id=node,
                kind=kind, side="left", tag=parent.tag,
                key=BucketKey(node, ()), successors=())
            cycle.add(act)
            parent.successors = parent.successors + (act.act_id,)
            if kind != "terminal":
                parents.append(act)
            next_id += 1
        trace.cycles.append(cycle)
        index += 1
    # Optional idle tail (exercises the final flush).
    for j in range(draw(st.integers(min_value=0, max_value=3))):
        trace.cycles.append(CycleTrace(index=index + j))
    return trace


@given(trace=traces_with_idle(),
       n_procs=st.integers(min_value=1, max_value=32),
       overhead_row=st.integers(min_value=0, max_value=3))
def test_compression_invisible(trace, n_procs, overhead_row):
    assert validate_trace(trace) == []
    overheads = TABLE_5_1[overhead_row]
    exact = simulate_config(trace, RunConfig(
        n_procs=n_procs, overheads=overheads))
    compressed = simulate_config(trace, RunConfig(
        n_procs=n_procs, overheads=overheads, compress_rounds=True))
    assert _identical(compressed.expanded(), exact)
    assert compressed.total_us == exact.total_us


# -- SparseProcArray ---------------------------------------------------------

def test_sparse_array_sequence_protocol():
    arr = SparseProcArray(5, 1.5, {2: 4.0})
    assert len(arr) == 5
    assert arr[0] == 1.5 and arr[2] == 4.0 and arr[-1] == 1.5
    assert arr[-3] == 4.0
    assert arr[1:4] == [1.5, 4.0, 1.5]
    assert list(arr) == [1.5, 1.5, 4.0, 1.5, 1.5]
    with pytest.raises(IndexError):
        arr[5]
    with pytest.raises(IndexError):
        arr[-6]


def test_sparse_array_equality_both_directions():
    arr = SparseProcArray(3, 0.0, {1: 2.0})
    dense = [0.0, 2.0, 0.0]
    assert arr == dense
    assert dense == arr  # list.__eq__ defers via NotImplemented
    assert arr == tuple(dense)
    assert arr != [0.0, 2.0, 1.0]
    assert arr == SparseProcArray(3, 0.0, {1: 2.0})
    # Same values, different (default, overrides) split.
    assert SparseProcArray(3, 2.0, {0: 0.0, 2: 0.0}) == arr
    assert SparseProcArray(3, 0.0) != SparseProcArray(4, 0.0)


def test_sparse_array_fast_sum():
    arr = SparseProcArray(100, 0.5, {3: 2.0, 7: 4.0})
    assert arr.fast_sum() == sum(list(arr)) == 49.0 + 6.0


# -- SimResult RLE -----------------------------------------------------------

def test_rle_aggregates_match_expansion():
    trace = _small_trace(idle_runs=((2, 5),), n_active=3)
    compressed = simulate_config(
        trace, RunConfig(n_procs=4, compress_rounds=True))
    expanded = compressed.expanded()
    assert compressed.n_cycles == expanded.n_cycles == len(trace.cycles)
    assert compressed.total_us == expanded.total_us
    assert compressed.n_messages == expanded.n_messages
    assert compressed.average_idle_fraction() \
        == expanded.average_idle_fraction()
    assert compressed.network_utilization() \
        == expanded.network_utilization()
    for pos in range(compressed.n_cycles):
        assert compressed.cycle_at(pos).makespan_us \
            == expanded.cycles[pos].makespan_us
    # Expanded indices are consecutive and 1-based like the trace.
    assert [c.index for c in expanded.cycles] \
        == [c.index for c in trace.cycles]


# -- streaming sources -------------------------------------------------------

def test_synthetic_stream_deterministic_and_picklable():
    stream = SyntheticStream(StreamSpec(
        active_cycles=5, activations_per_cycle=20, idle_between=3,
        terminals_per_cycle=2, seed=7))
    first = materialize(stream)
    second = materialize(stream)
    assert _identical(first, second)
    clone = pickle.loads(pickle.dumps(stream))
    assert _identical(materialize(clone), first)
    assert stream.total_activations() == 100
    assert stream.n_cycles() == 20 == len(first.cycles)
    assert validate_trace(first) == []


def test_stream_simulates_like_materialized():
    stream = SyntheticStream(StreamSpec(
        active_cycles=4, activations_per_cycle=15, idle_between=6,
        seed=3))
    section = materialize(stream)
    for n_procs in (1, 5, 64):
        exact = simulate_config(section, RunConfig(n_procs=n_procs))
        compressed = simulate_config(
            stream, RunConfig(n_procs=n_procs, compress_rounds=True))
        assert _identical(compressed.expanded(), exact)
        assert len(compressed.cycles) < exact.n_cycles


def test_file_stream_round_trip_with_idle_runs(tmp_path):
    stream = SyntheticStream(StreamSpec(
        active_cycles=3, activations_per_cycle=10, idle_between=4,
        seed=1))
    path = tmp_path / "stream.trace"
    save_entries(stream.name, iter(stream), path)
    reread = FileTraceStream(path)
    assert _identical(materialize(reread), materialize(stream))
    # Idle runs survive as markers, not expanded cycles.
    kinds = [type(e).__name__ for e in reread]
    assert "IdleRun" in kinds
    compressed = simulate_config(
        reread, RunConfig(n_procs=8, compress_rounds=True))
    exact = simulate_config(materialize(stream), RunConfig(n_procs=8))
    assert _identical(compressed.expanded(), exact)


def test_iter_cycle_results_streams_pairs():
    trace = _small_trace(idle_runs=((1, 4), (6, 2)), n_active=3)
    pairs = list(iter_cycle_results(
        trace, RunConfig(n_procs=4, compress_rounds=True)))
    assert sum(repeat for _, repeat in pairs) == len(trace.cycles)
    assert any(repeat > 1 for _, repeat in pairs)
    exact = simulate_config(trace, RunConfig(n_procs=4))
    assert sum(r.makespan_us * k for r, k in pairs) == exact.total_us


def test_total_time_us_matches_sim_result():
    trace = _small_trace()
    config = RunConfig(n_procs=8, compress_rounds=True)
    assert total_time_us(trace, config) \
        == simulate_config(trace, config).total_us \
        == simulate_config(trace, RunConfig(n_procs=8)).total_us


# -- timeline / attribution under compression --------------------------------

def test_recorded_compressed_timeline_reconciles():
    trace = _small_trace(idle_runs=((2, 6),), n_active=3)
    recorder = TimelineRecorder()
    compressed = simulate_config(trace, RunConfig(
        n_procs=4, compress_rounds=True, recorder=recorder))
    timeline = recorder.timeline
    assert timeline.n_cycles() == len(trace.cycles)
    assert timeline.total_us == compressed.total_us
    stored = {(c.index, c.repeat) for c in timeline.cycles}
    assert any(repeat > 1 for _, repeat in stored)
    for cycle_tl, (cycle_result, _) in zip(
            timeline.cycles,
            iter_cycle_results(trace, RunConfig(n_procs=4,
                                                compress_rounds=True))):
        cycle_tl.reconcile(cycle_result)
    attribution = attribute_timeline(timeline)
    assert attribution.n_cycles == len(trace.cycles)
    for cycle in attribution.cycles:
        cycle.check_sums()


def test_compressed_attribution_matches_uncompressed_totals():
    trace = _small_trace(idle_runs=((2, 6),), n_active=3)

    def record(compress):
        recorder = TimelineRecorder()
        simulate_config(trace, RunConfig(
            n_procs=4, compress_rounds=compress, recorder=recorder))
        return attribute_timeline(recorder.timeline)

    compressed, exact = record(True), record(False)
    assert compressed.n_cycles == exact.n_cycles
    assert sum(c.idle_us for c in compressed.cycles) \
        == sum(c.idle_us for c in exact.cycles)
    assert sum(c.busy_us for c in compressed.cycles) \
        == sum(c.busy_us for c in exact.cycles)


# -- CLI ---------------------------------------------------------------------

def test_cli_compress_rounds_smoke(capsys):
    from repro.cli import main
    assert main(["simulate", "--section", "rubik", "--procs", "8",
                 "--compress-rounds", "--json"]) == 0
    import json as json_mod
    compressed = json_mod.loads(capsys.readouterr().out)
    assert main(["simulate", "--section", "rubik", "--procs", "8",
                 "--json"]) == 0
    exact = json_mod.loads(capsys.readouterr().out)
    # The "obs" snapshot is process-global state (cache hits, sweep
    # counters) that accumulates across the two invocations; the
    # equality under test is the simulation payload.
    compressed.pop("obs", None)
    exact.pop("obs", None)
    assert compressed == exact


def test_cli_compress_rounds_composes_with_faults(capsys):
    from repro.cli import main
    assert main(["simulate", "--section", "rubik", "--procs", "8",
                 "--compress-rounds", "--loss", "0.01"]) == 0
    out = capsys.readouterr().out
    assert "rubik" in out

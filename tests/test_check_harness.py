"""The conformance harness itself: matrix, shrinker, mutation smoke.

The mutation smoke test is the harness's own acceptance test: with one
cost constant deliberately mis-priced behind the test-only hook, the
oracle matrix must fail and the shrinker must deliver a repro of at
most 5 cycles.  If these tests pass while the mutation test fails, the
harness has gone blind.
"""

import json

import pytest

from repro import cli
from repro.check import (ProgramCase, TraceCase, build_case,
                         generate_cases, mutated_right_token_cost,
                         run_check, run_invariants, run_oracles,
                         shrink_program, shrink_trace)
from repro.obs import get_registry, reset_registry
from repro.trace import validate_trace
from repro.trace.events import SectionTrace


def first_trace_case(seed=0):
    for case in generate_cases(seed, 10):
        if isinstance(case, TraceCase):
            return case
    raise AssertionError("no trace case in the first 10")


class TestMatrixClean:
    def test_oracles_and_invariants_pass_on_main(self):
        for case in generate_cases(0, 30):
            assert run_oracles(case) == []
            if isinstance(case, TraceCase):
                assert run_invariants(case) == []

    def test_run_check_reports_clean(self):
        reset_registry()
        report = run_check(seed=0, budget=25)
        assert report.ok
        assert report.cases_run == 25
        assert report.to_dict()["failures"] == []
        registry = get_registry()
        assert registry.counter("check.cases").value == 25
        assert registry.counter("check.oracle_runs").value > 0
        assert registry.counter("check.invariant_runs").value > 0
        assert registry.counter("check.failures").value == 0

    @pytest.mark.fuzz
    def test_deep_matrix_clean(self):
        # The nightly-tier sweep: several hundred cases, a second seed.
        assert run_check(seed=0, budget=300).ok
        assert run_check(seed=2026, budget=150).ok


class TestMutationSmoke:
    def test_mispriced_cost_is_caught_and_shrunk(self, tmp_path):
        with mutated_right_token_cost(1.0):
            report = run_check(seed=0, budget=5,
                               out_dir=str(tmp_path))
        assert not report.ok
        assert report.failures, "harness did not catch the mutation"
        for failure in report.failures:
            # Acceptance bar: a shrunk repro of <= 5 cycles.
            assert failure.repro["n_cycles"] <= 5
            assert failure.repro["n_activations"] <= 10
            assert failure.checks
            path = failure.repro_path
            assert path is not None
            payload = json.loads((tmp_path / path.split("/")[-1])
                                 .read_text())
            assert payload["case"]["seed"] == 0
            assert payload["repro"]["trace"][0].startswith("#repro-trace")

    def test_mutation_is_scoped_to_the_context(self):
        case = first_trace_case()
        with mutated_right_token_cost(5.0):
            assert run_oracles(case) != []
        assert run_oracles(case) == []

    def test_multiple_oracles_catch_it(self):
        # The mutation hits only the optimized fast path, so every
        # mirror of that path must notice.
        case = first_trace_case()
        with mutated_right_token_cost(1.0):
            names = {name for name, _ in run_oracles(case)}
        assert "opt_vs_reference" in names
        assert "recorder_invisible" in names


class TestShrinkTrace:
    def test_shrinks_to_single_activation(self):
        case = first_trace_case()

        def fails(trace: SectionTrace) -> bool:
            return any(act.side == "right"
                       for cycle in trace for act in cycle)

        shrunk = shrink_trace(case.trace, fails)
        assert fails(shrunk)
        assert validate_trace(shrunk) == []
        assert len(shrunk.cycles) == 1
        assert sum(len(c.activations) for c in shrunk.cycles) == 1

    def test_result_always_still_fails(self):
        case = first_trace_case(seed=3)

        def fails(trace: SectionTrace) -> bool:
            return sum(len(c.activations) for c in trace.cycles) >= 7

        shrunk = shrink_trace(case.trace, fails)
        assert fails(shrunk)
        assert sum(len(c.activations) for c in shrunk.cycles) == 7

    def test_non_failing_input_unchanged(self):
        case = first_trace_case()
        shrunk = shrink_trace(case.trace, lambda trace: False)
        assert shrunk is case.trace

    def test_respects_eval_budget(self):
        case = first_trace_case()
        evals = []

        def fails(trace: SectionTrace) -> bool:
            evals.append(1)
            return True

        shrink_trace(case.trace, fails, max_evals=10)
        assert len(evals) <= 10

    def test_shrinks_key_values(self):
        case = first_trace_case()

        def fails(trace: SectionTrace) -> bool:
            return bool(trace.cycles)

        shrunk = shrink_trace(case.trace, fails)
        for cycle in shrunk.cycles:
            for act in cycle:
                assert act.key.values == ()


class TestShrinkProgram:
    def _program(self):
        for case in generate_cases(0, 10):
            if isinstance(case, ProgramCase):
                return case
        raise AssertionError("no program case in the first 10")

    def test_drops_irrelevant_rules_and_ops(self):
        case = self._program()

        def fails(rules, script) -> bool:
            return any(op[0] == "add" for op in script)

        rules, script = shrink_program(case.rules, case.script, fails)
        assert fails(rules, script)
        assert len(rules) == 1
        assert len(script) == 1

    def test_dropping_add_drops_its_remove(self):
        rules = ("(p const (a ^p 1) --> (remove 1))",)
        script = (("add", 1, "a", {"p": 1}), ("add", 2, "b", {"p": 1}),
                  ("remove", 1), ("remove", 2))

        def fails(r, s) -> bool:
            # Well-formedness probe: every remove follows its add.
            live = set()
            for op in s:
                if op[0] == "add":
                    live.add(op[1])
                elif op[1] not in live:
                    raise AssertionError("shrunk script is malformed")
                else:
                    live.remove(op[1])
            return any(op[0] == "remove" for op in s)

        _, shrunk = shrink_program(rules, script, fails)
        assert fails(rules, shrunk)
        assert len(shrunk) == 2  # one add + its remove


class TestCLI:
    def test_clean_run_exits_zero(self, capsys):
        assert cli.main(["check", "--seed", "0", "--budget", "12"]) == 0
        out = capsys.readouterr().out
        assert "12 cases" in out and "0 failing" in out

    def test_json_report(self, capsys):
        assert cli.main(["check", "--budget", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["cases_run"] == 8

    def test_mutated_run_exits_nonzero_and_writes_repros(self, tmp_path,
                                                         capsys):
        code = cli.main(["check", "--budget", "3", "--mutate", "1.0",
                         "--out", str(tmp_path)])
        assert code == 1
        assert list(tmp_path.glob("repro-seed0-case*.json"))
        assert "FAIL" in capsys.readouterr().err

    def test_bad_budget_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["check", "--budget", "0"])
        assert excinfo.value.code == 2


class TestReproRoundTrip:
    def test_descriptor_rebuilds_failing_case(self, tmp_path):
        with mutated_right_token_cost(1.0):
            report = run_check(seed=0, budget=2,
                               out_dir=str(tmp_path))
        failure = report.failures[0]
        rebuilt = build_case(failure.case["seed"],
                             failure.case["index"],
                             family=failure.case["family"])
        with mutated_right_token_cost(1.0):
            assert run_oracles(rebuilt) != []
